file(REMOVE_RECURSE
  "libmparch_beam.a"
)
