/**
 * @file
 * Registry entries for the ablation studies: each one removes or
 * replaces a DESIGN.md modelling decision and measures what the
 * paper-facing conclusions owe to it.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "arch/fpga/fpga.hh"
#include "arch/gpu/gpu.hh"
#include "arch/gpu/params.hh"
#include "arch/gpu/sm_sim.hh"
#include "arch/phi/params.hh"
#include "arch/phi/phi.hh"
#include "arch/phi/vpu_sim.hh"
#include "beam/virtual_beam.hh"
#include "common/rng.hh"
#include "fault/campaign.hh"
#include "metrics/metrics.hh"
#include "nn/nn_workloads.hh"
#include "report/experiments.hh"

namespace mparch::report {

namespace {

using fp::Precision;

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

Experiment
ablationInjectionSites()
{
    Experiment e;
    e.id = "ablation_injection_sites";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: operand-only vs full-datapath injection";
    e.shapeTarget = "operand-only over-estimates AVF and "
                    "criticality; gap widens with precision";
    e.defaultTrials = 600;
    e.defaultScale = 0.2;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"precision", "sites", "avf-sdc", "remain@0.1%",
                     "remain@1%"});
        for (auto p : fp::allPrecisions) {
            for (const bool operand_only : {true, false}) {
                auto w = nn::makeAnyWorkload("mxm", p, scale);
                fault::CampaignConfig config;
                config.trials = self.trialsFor(ctx);
                config.operandStagesOnly = operand_only;
                const auto r = runReportCampaign(
                    *w, fault::CampaignKind::Datapath, config, ctx,
                    scale);
                table.row()
                    .cell(precisionLabel(p))
                    .cell(operand_only ? "operands-only"
                                       : "full-datapath")
                    .cell({r.avfSdc(), 3})
                    .cell({r.survivingFraction(1e-3), 3})
                    .cell({r.survivingFraction(1e-2), 3});
            }
        }
        return doc;
    };
    e.checks = {
        exceeds("operand-only-overestimates-double",
                "operand-only injection over-estimates double's "
                "AVF (every flipped bit is architecturally "
                "meaningful)",
                sel("avf-sdc", {{"precision", "double"},
                                {"sites", "operands-only"}}),
                sel("avf-sdc", {{"precision", "double"},
                                {"sites", "full-datapath"}}),
                1.10),
        custom("gap-closes-at-half",
               "the operand-only/full-datapath AVF gap shrinks as "
               "precision does (narrow formats carry less sub-ulp "
               "datapath state)",
               [](const ResultDoc &doc) {
                   CheckOutcome out;
                   auto scalar = [&](const char *p,
                                     const char *sites) {
                       std::string err;
                       const auto v = extract(
                           doc,
                           sel("avf-sdc",
                               {{"precision", p}, {"sites", sites}}),
                           &err);
                       return v.size() == 1 ? v[0] : 0.0;
                   };
                   const double gap_double =
                       scalar("double", "operands-only") /
                       scalar("double", "full-datapath");
                   const double gap_half =
                       scalar("half", "operands-only") /
                       scalar("half", "full-datapath");
                   out.pass = gap_double > gap_half;
                   out.observed = "over-estimation factor double=" +
                                  num(gap_double) +
                                  " half=" + num(gap_half);
                   return out;
               }),
    };
    return e;
}

Experiment
ablationBeamMc()
{
    Experiment e;
    e.id = "ablation_beam_mc";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: Monte Carlo beam vs analytic FIT";
    e.shapeTarget = "MC FIT confidence interval must cover the "
                    "analytic estimate";
    e.defaultTrials = 400;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main",
            {"precision", "analytic-fit", "mc-fit", "mc-ci95-lo",
             "mc-ci95-hi", "mc-faults", "covered"});
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload("micro-mul", p, scale);
            gpu::GpuOptions opt;
            opt.datapathTrials = self.trialsFor(ctx);
            opt.memoryTrials = self.trialsFor(ctx) / 2;
            opt.supervisor = reportSupervisor(ctx, scale);
            const auto eval = gpu::evaluateGpu(*w, opt);

            // Strip the control entry (its DUEs are analytic-only)
            // and drive the SDC entries through real executions.
            beam::ResourceInventory inv = eval.inventory;
            inv.entries.resize(2);
            const double analytic = inv.fitSdc();

            Rng rng(97);
            const double fluence = 400.0 / inv.rawRate();
            const auto mc = beam::runBeam(
                inv, fluence, rng,
                [&w](std::size_t entry, Rng &r) {
                    fault::CampaignConfig one;
                    one.trials = 1;
                    one.seed = r.next();
                    const fault::CampaignResult res =
                        entry == 0
                            ? fault::runDatapathCampaign(*w, one)
                            : fault::runMemoryCampaign(*w, one);
                    if (res.due)
                        return beam::BeamOutcome::Due;
                    if (res.sdc)
                        return beam::BeamOutcome::Sdc;
                    return beam::BeamOutcome::Masked;
                });
            const Interval ci = mc.fitSdc95();
            table.row()
                .cell(precisionLabel(p))
                .cell({analytic, 0})
                .cell({mc.fitSdc(), 0})
                .cell({ci.lo, 0})
                .cell({ci.hi, 0})
                .cell(static_cast<std::int64_t>(mc.faults))
                .cell(ci.contains(analytic) ? "yes" : "NO");
        }
        return doc;
    };
    e.checks = {
        custom("ci-covers-analytic",
               "the Monte Carlo beam's 95% interval covers the "
               "analytic exposure x AVF estimate at every precision",
               [](const ResultDoc &doc) {
                   CheckOutcome out;
                   const auto *table = doc.table("main");
                   out.pass = true;
                   for (std::size_t r = 0; r < table->rowCount();
                        ++r) {
                       const bool yes =
                           table->at(r, "covered")->formatted() ==
                           "yes";
                       out.pass = out.pass && yes;
                       if (!out.observed.empty())
                           out.observed += ", ";
                       out.observed +=
                           table->at(r, "precision")->formatted() +
                           "=" + (yes ? "covered" : "NOT covered");
                   }
                   return out;
               }),
    };
    return e;
}

Experiment
ablationProtection()
{
    Experiment e;
    e.id = "ablation_protection";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: ECC / triplication contribution";
    e.shapeTarget = "unprotected variants must dominate the "
                    "baseline FIT";
    e.defaultTrials = 300;
    e.defaultScale = 0.2;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &phi_table = doc.addTable(
            "Xeon Phi: with vs without MCA/ECC",
            {"benchmark", "precision", "fit-sdc(baseline)",
             "fit-sdc(no ECC)", "ratio"});
        for (const std::string name : {"lavamd", "lud"}) {
            for (auto p :
                 {Precision::Double, Precision::Single}) {
                auto w = workloads::makeWorkload(name, p, scale);
                phi::PhiOptions opt;
                opt.pvfTrials = self.trialsFor(ctx);
                opt.datapathTrials = self.trialsFor(ctx);
                opt.supervisor = reportSupervisor(ctx, scale);
                auto eval = phi::evaluatePhi(*w, opt);
                const double base = eval.fitSdc;
                // Without MCA the architectural register file (32 x
                // 512-bit vector registers per core) joins the
                // exposure, propagating with the measured PVF.
                beam::ResourceInventory no_ecc = eval.inventory;
                no_ecc.entries.push_back(
                    {"register-file(unprotected)",
                     beam::BitClass::SramData,
                     static_cast<double>(phi::kCores) *
                         phi::kVectorRegisters * phi::kVpuBits,
                     eval.pvfCampaign.avfSdc(), 0.0});
                phi_table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({base, 0})
                    .cell({no_ecc.fitSdc(), 0})
                    .cell({no_ecc.fitSdc() / base, 1});
            }
        }
        auto &gpu_table = doc.addTable(
            "Titan V: HBM2 triplicated vs raw",
            {"benchmark", "precision", "fit-sdc(triplicated)",
             "fit-sdc(raw HBM2)", "ratio"});
        for (const std::string name : {"mxm", "lavamd"}) {
            for (auto p : fp::allPrecisions) {
                auto w = workloads::makeWorkload(name, p, scale);
                gpu::GpuOptions opt;
                opt.datapathTrials = self.trialsFor(ctx);
                opt.memoryTrials = self.trialsFor(ctx) / 2;
                opt.supervisor = reportSupervisor(ctx, scale);
                auto eval = gpu::evaluateGpu(*w, opt);
                const double base = eval.fitSdc;
                // Without triplication every DRAM-resident copy of
                // the working set is exposed for the whole
                // execution, not just the cache-resident fraction.
                // Model the HBM2 window as 64x the on-chip
                // residency.
                beam::ResourceInventory raw = eval.inventory;
                for (auto &entry : raw.entries) {
                    if (entry.name == "cache-resident-data")
                        entry.bits *= 65.0;
                }
                gpu_table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({base, 0})
                    .cell({raw.fitSdc(), 0})
                    .cell({raw.fitSdc() / base, 1});
            }
        }
        return doc;
    };
    e.checks = {
        allAbove("phi-ecc-dominates",
                 "removing the Phi's MCA/ECC raises its SDC FIT by "
                 "an order of magnitude (17-65x at defaults)",
                 sel("ratio", {}, "Xeon Phi: with vs without "
                                  "MCA/ECC"),
                 10.0),
        allAbove("gpu-triplication-matters-mxm",
                 "un-triplicating HBM2 costs memory-bound MxM "
                 "heavily (2.8-6.5x)",
                 sel("ratio", {{"benchmark", "mxm"}},
                     "Titan V: HBM2 triplicated vs raw"),
                 2.0),
        allBelow("gpu-lavamd-barely-moves",
                 "compute-bound LavaMD barely notices raw HBM2 "
                 "(~1.2x)",
                 sel("ratio", {{"benchmark", "lavamd"}},
                     "Titan V: HBM2 triplicated vs raw"),
                 2.0),
    };
    return e;
}

Experiment
ablationScrubbing()
{
    Experiment e;
    e.id = "ablation_scrubbing";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: FPGA scrubbing interval sweep";
    e.shapeTarget = "error rate ~ raw*avf at short intervals, "
                    "saturates at 1/interval; precision advantage "
                    "shrinks with the interval";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        struct Row
        {
            Precision p;
            double rawRate;
            double avf;
        };
        std::vector<Row> rows;
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload("mxm", p, scale);
            fpga::FpgaOptions opt;
            opt.configTrials = self.trialsFor(ctx);
            opt.bramTrials = self.trialsFor(ctx) / 2;
            opt.supervisor = reportSupervisor(ctx, scale);
            const auto eval = fpga::evaluateFpga(*w, opt);
            // Scrubbing only concerns the persistent mechanism: the
            // configuration-memory entry's raw upset rate and AVF.
            const double config_rate =
                eval.circuit.configBits *
                beam::bitSensitivity(beam::Node::Fpga28nm,
                                     beam::BitClass::SramConfig);
            rows.push_back({p, config_rate,
                            eval.configCampaign.avfSdc()});
        }
        auto &table = doc.addTable(
            "main", {"scrub-interval(a.u.)", "double", "single",
                     "half", "double/half advantage"});
        for (const double interval :
             {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4}) {
            std::array<double, 3> rate{};
            for (std::size_t i = 0; i < rows.size(); ++i) {
                rate[i] = metrics::scrubbedErrorRate(
                    rows[i].rawRate, rows[i].avf, interval);
            }
            table.row()
                .cell({interval, 10})
                .cell({rate[0], 0})
                .cell({rate[1], 0})
                .cell({rate[2], 0})
                .cell({rate[0] / rate[2], 2});
        }
        doc.notes.push_back(
            "(advantage column: how much more often the double "
            "design fails than the half design; it decays towards "
            "1.0 as the scrub interval grows)");
        return doc;
    };
    e.checks = {
        decreasesAlong("advantage-decays",
                       "the double/half failure-rate advantage "
                       "decays as the scrub interval grows",
                       sel("double/half advantage"), 0.01),
        allAbove("short-interval-advantage",
                 "at short scrub intervals the double design fails "
                 "substantially more often than half (raw x AVF "
                 "regime, ~2.1x)",
                 sel("double/half advantage",
                     {{"scrub-interval(a.u.)", "0.0000000010"}}),
                 1.50),
        allBelow("long-interval-no-advantage",
                 "past ~1 upset per interval the reduced-precision "
                 "advantage vanishes (ratio -> 1)",
                 sel("double/half advantage",
                     {{"scrub-interval(a.u.)", "0.0001000000"}}),
                 1.30),
    };
    return e;
}

Experiment
ablationSmSim()
{
    Experiment e;
    e.id = "ablation_sm_sim";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: SM scheduler simulation";
    e.shapeTarget = "simulated cycles match the latency model; "
                    "control-fault DUE rate ~precision-independent";
    e.defaultTrials = 2500;
    e.defaultScale = 1.0;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        gpu::WarpProgram prog;
        prog.instructions = 256;

        auto &timing = doc.addTable(
            "fault-free schedule",
            {"precision", "warps", "sim-cycles",
             "latency-model-cycles", "issue-util", "avg-inflight"});
        for (auto p : fp::allPrecisions) {
            for (int warps : {1, 4, 8}) {
                gpu::SmConfig config;
                config.precision = p;
                config.warps = warps;
                const auto s = gpu::simulateSm(config, prog);
                // Closed form: chains are latency-bound per warp
                // until the single issue slot saturates.
                const double instrs =
                    static_cast<double>(prog.instructions);
                const double latency_model = std::max(
                    instrs * gpu::opLatencyCycles(p) *
                        gpu::packFactor(p),
                    instrs * warps);
                timing.row()
                    .cell(precisionLabel(p))
                    .cell(static_cast<std::int64_t>(warps))
                    .cell(static_cast<std::int64_t>(s.cycles))
                    .cell({latency_model, 0})
                    .cell({s.issueUtilization, 3})
                    .cell({s.avgInFlight, 2});
            }
        }

        auto &control = doc.addTable(
            "scheduler-state injection",
            {"precision", "trials", "masked", "sdc(program)",
             "due(hang)", "avf-due", "ci95"});
        for (auto p : fp::allPrecisions) {
            gpu::SmConfig config;
            config.precision = p;
            const auto r = gpu::measureControlAvf(
                config, prog, self.trialsFor(ctx), 17);
            const auto ci = r.due95();
            char buf[48];
            std::snprintf(buf, sizeof(buf), "[%.3f, %.3f]", ci.lo,
                          ci.hi);
            control.row()
                .cell(precisionLabel(p))
                .cell(static_cast<std::int64_t>(r.trials))
                .cell(static_cast<std::int64_t>(r.masked))
                .cell(static_cast<std::int64_t>(r.sdc))
                .cell(static_cast<std::int64_t>(r.due))
                .cell({r.avfDue(), 3})
                .cell(buf);
        }
        return doc;
    };
    e.checks = {
        custom("sim-matches-latency-model",
               "simulated cycle counts agree with the closed-form "
               "latency/occupancy model to < 0.5% on every "
               "precision/warp point",
               [](const ResultDoc &doc) {
                   CheckOutcome out;
                   const auto *table =
                       doc.table("fault-free schedule");
                   double worst = 0.0;
                   for (std::size_t r = 0; r < table->rowCount();
                        ++r) {
                       bool ok = false;
                       const double a =
                           table->at(r, "sim-cycles")
                               ->asNumber(&ok);
                       const double b =
                           table->at(r, "latency-model-cycles")
                               ->asNumber(&ok);
                       worst = std::max(worst,
                                        std::abs(a / b - 1.0));
                   }
                   out.pass = worst < 0.005;
                   out.observed =
                       "worst relative disagreement " + num(worst);
                   return out;
               }),
        flatWithin("control-due-precision-independent",
                   "the scheduler-state DUE rate is roughly "
                   "precision-independent",
                   sel("avf-due", {}, "scheduler-state injection"),
                   1.25),
    };
    return e;
}

Experiment
ablationVpuSim()
{
    Experiment e;
    e.id = "ablation_vpu_sim";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: KNC VPU pipeline simulation";
    e.shapeTarget = "unroll-2 feeds the pipe where unroll-1 stalls; "
                    "lane-mask width shifts control faults into "
                    "SDCs";
    e.defaultTrials = 2500;
    e.defaultScale = 1.0;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        phi::VpuProgram prog;
        prog.instructions = 256;

        auto &timing = doc.addTable(
            "fault-free schedule (double precision)",
            {"threads", "unroll", "cycles", "issue-util"});
        for (int threads : {1, 2, 4}) {
            for (int unroll : {1, 2, 4}) {
                phi::VpuConfig config;
                config.threads = threads;
                prog.unroll = unroll;
                const auto s = phi::simulateVpu(config, prog);
                timing.row()
                    .cell(static_cast<std::int64_t>(threads))
                    .cell(static_cast<std::int64_t>(unroll))
                    .cell(static_cast<std::int64_t>(s.cycles))
                    .cell({s.issueUtilization, 3});
            }
        }

        auto &control = doc.addTable(
            "control-state injection",
            {"precision", "lane-mask-bits", "masked", "sdc", "due",
             "avf-sdc", "avf-due"});
        prog.unroll = 2;
        for (auto p : {Precision::Double, Precision::Single}) {
            phi::VpuConfig config;
            config.precision = p;
            const auto r = phi::measureVpuControlAvf(
                config, prog, self.trialsFor(ctx), 9);
            control.row()
                .cell(precisionLabel(p))
                .cell(static_cast<std::int64_t>(phi::lanes(p)))
                .cell(static_cast<std::int64_t>(r.masked))
                .cell(static_cast<std::int64_t>(r.sdc))
                .cell(static_cast<std::int64_t>(r.due))
                .cell({r.avfSdc(), 3})
                .cell({r.avfDue(), 3});
        }
        return doc;
    };
    e.checks = {
        exceeds("unroll2-feeds-the-pipe",
                "software-pipelining depth 2 lifts single-thread "
                "issue utilisation over depth 1",
                sel("issue-util",
                    {{"threads", "1"}, {"unroll", "2"}},
                    "fault-free schedule (double precision)"),
                sel("issue-util",
                    {{"threads", "1"}, {"unroll", "1"}},
                    "fault-free schedule (double precision)"),
                1.05),
        allBelow("single-thread-half-rate",
                 "KNC's no-back-to-back-issue rule caps one thread "
                 "at half rate even fully unrolled",
                 sel("issue-util",
                     {{"threads", "1"}, {"unroll", "4"}},
                     "fault-free schedule (double precision)"),
                 0.55),
        exceeds("lane-mask-shifts-hangs-to-sdc",
                "single's wider lane mask gives control faults "
                "more silently-corrupting landing spots than "
                "double's",
                sel("avf-sdc", {{"precision", "single"}},
                    "control-state injection"),
                sel("avf-sdc", {{"precision", "double"}},
                    "control-state injection"),
                1.10),
        exceeds("double-hangs-more",
                "double's control faults hang relatively more "
                "often (fewer mask bits to land in)",
                sel("avf-due", {{"precision", "double"}},
                    "control-state injection"),
                sel("avf-due", {{"precision", "single"}},
                    "control-state injection")),
    };
    return e;
}

Experiment
ablationFaultModels()
{
    Experiment e;
    e.id = "ablation_fault_models";
    e.paperRef = "-";
    e.kind = ExperimentKind::Ablation;
    e.title = "Ablation: fault-model sweep (GEMM memory campaign)";
    e.shapeTarget = "criticality ordering half > single > double "
                    "holds under every bit-level model; "
                    "whole-word randomisation erases it";
    e.defaultTrials = 400;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"model", "precision", "avf-sdc",
                     "remain@0.1%", "remain@1%"});
        for (auto model :
             {fault::FaultModel::SingleBitFlip,
              fault::FaultModel::DoubleBitFlip,
              fault::FaultModel::RandomByte,
              fault::FaultModel::RandomValue,
              fault::FaultModel::WordBurst}) {
            for (auto p : fp::allPrecisions) {
                auto w = workloads::makeWorkload("mxm", p, scale);
                fault::CampaignConfig config;
                config.trials = self.trialsFor(ctx);
                config.model = model;
                const auto r = runReportCampaign(
                    *w, fault::CampaignKind::Memory, config, ctx,
                    scale);
                table.row()
                    .cell(fault::faultModelName(model))
                    .cell(precisionLabel(p))
                    .cell({r.avfSdc(), 3})
                    .cell({r.survivingFraction(1e-3), 3})
                    .cell({r.survivingFraction(1e-2), 3});
            }
        }
        return doc;
    };
    for (const char *model :
         {"single-bit-flip", "double-bit-flip", "random-byte",
          "word-burst"}) {
        e.checks.push_back(increasesAlong(
            std::string("ordering-survives-") + model,
            std::string("remaining FIT at 0.1% TRE still orders "
                        "double < single < half under the ") +
                model + " model",
            sel("remain@0.1%", {{"model", model}})));
    }
    e.checks.push_back(allAbove(
        "whole-word-erases-ordering",
        "whole-word randomisation erases the criticality ordering "
        "(remaining fraction ~1.0 at every precision)",
        sel("remain@0.1%", {{"model", "random-value"}}), 0.95));
    return e;
}

} // namespace

void
addAblationExperiments(std::vector<Experiment> &out)
{
    out.push_back(ablationInjectionSites());
    out.push_back(ablationBeamMc());
    out.push_back(ablationProtection());
    out.push_back(ablationScrubbing());
    out.push_back(ablationSmSim());
    out.push_back(ablationVpuSim());
    out.push_back(ablationFaultModels());
}

} // namespace mparch::report
