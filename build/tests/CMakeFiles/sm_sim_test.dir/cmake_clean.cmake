file(REMOVE_RECURSE
  "CMakeFiles/sm_sim_test.dir/sm_sim_test.cc.o"
  "CMakeFiles/sm_sim_test.dir/sm_sim_test.cc.o.d"
  "sm_sim_test"
  "sm_sim_test.pdb"
  "sm_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
