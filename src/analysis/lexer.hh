/**
 * @file
 * Lightweight C++ lexer for the project linter.
 *
 * Produces a flat token stream — identifiers, numbers, string/char
 * literals, punctuation, comments and preprocessor directives — with
 * 1-based line/column positions. It is *not* a conforming phase-3
 * translator: no trigraphs, no macro expansion, no keyword table.
 * That is deliberate: lint rules match patterns in the spelling of
 * the source, and a full frontend would make every rule hostage to
 * the include graph. What the lexer does get right is the part that
 * matters for precision: comments and string literals (including raw
 * strings) are single tokens, so an identifier like `std::rand`
 * inside a doc comment or a test fixture string can never trip a
 * rule.
 */

#ifndef MPARCH_ANALYSIS_LEXER_HH
#define MPARCH_ANALYSIS_LEXER_HH

#include <string>
#include <vector>

namespace mparch::analysis {

enum class TokKind
{
    Identifier,  ///< identifiers and keywords (no keyword table)
    Number,      ///< pp-number: integers, floats, hex, separators
    String,      ///< string literal, spelling incl. quotes/prefix
    CharLit,     ///< character literal, spelling incl. quotes
    Punct,       ///< operator / punctuator, maximal munch
    Comment,     ///< // or block comment, full spelling
    Directive,   ///< preprocessor directive name ("include", "ifndef")
    HeaderName,  ///< <...> after #include, text without the brackets
};

/** Printable name of a token kind ("identifier", "string", ...). */
const char *tokKindName(TokKind kind);

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    unsigned line = 1;  ///< 1-based source line
    unsigned col = 1;   ///< 1-based source column

    bool
    is(TokKind k, const char *spelling) const
    {
        return kind == k && text == spelling;
    }

    bool isIdent(const char *name) const
    {
        return is(TokKind::Identifier, name);
    }

    bool isPunct(const char *spelling) const
    {
        return is(TokKind::Punct, spelling);
    }
};

/**
 * Lex a whole translation unit.
 *
 * Never fails: unterminated literals and stray characters degrade to
 * best-effort tokens so rules can still run over malformed fixtures.
 * Backslash-newline splices are treated as whitespace.
 */
std::vector<Token> lex(const std::string &source);

} // namespace mparch::analysis

#endif // MPARCH_ANALYSIS_LEXER_HH
