/**
 * @file
 * Fault-injecting FpHook implementations.
 *
 * OneShotDatapathHook models a transient particle strike inside a
 * functional unit: it corrupts one datapath stage of one dynamic
 * operation instance. PersistentDatapathHook models an FPGA
 * configuration-memory upset: a physical operator is broken, so every
 * dynamic operation that the broken unit executes (operation index
 * congruent to the unit's position modulo the number of physical
 * units) is corrupted the same way until the bitstream is reloaded.
 */

#ifndef MPARCH_FAULT_HOOKS_HH
#define MPARCH_FAULT_HOOKS_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "fp/format.hh"
#include "fp/hooks.hh"

namespace mparch::fault {

/** Valid perturbation stages for an operation kind. */
const std::array<fp::Stage, 10> &stagesFor(fp::OpKind kind,
                                           std::size_t &count);

/**
 * Relative bit population of a stage for a given format — the default
 * "uniform over datapath bits" sampling weight.
 */
unsigned stageWidthEstimate(fp::Stage stage, fp::Format f);

/** Flip one bit of one stage of one dynamic op instance. */
class OneShotDatapathHook : public fp::FpHook
{
  public:
    /**
     * @param kind      Operation kind to strike.
     * @param index     Dynamic instance among ops of that kind.
     * @param stage     Datapath stage to corrupt.
     * @param bit_frac  Bit position as a fraction of the stage width
     *                  (the width is only known at fire time).
     */
    OneShotDatapathHook(fp::OpKind kind, std::uint64_t index,
                        fp::Stage stage, double bit_frac)
        : kind_(kind), index_(index), stage_(stage),
          bitFrac_(bit_frac)
    {}

    std::uint64_t
    perturb(fp::OpKind op, fp::Stage stage, unsigned width,
            std::uint64_t value) override
    {
        if (stage == fp::Stage::OperandA) {
            // Every instrumented op visits OperandA exactly once,
            // first: use it as the dynamic instance counter.
            current_ = seen_[static_cast<std::size_t>(op)]++;
        }
        if (!fired_ && op == kind_ && stage == stage_ &&
            current_ == index_ &&
            seen_[static_cast<std::size_t>(op)] == index_ + 1) {
            fired_ = true;
            auto bit = static_cast<unsigned>(bitFrac_ * width);
            if (bit >= width)
                bit = width - 1;
            return value ^ (1ULL << bit);
        }
        return value;
    }

    /** True once the fault was placed. */
    bool fired() const { return fired_; }

  private:
    fp::OpKind kind_;
    std::uint64_t index_;
    fp::Stage stage_;
    double bitFrac_;
    std::array<std::uint64_t,
               static_cast<std::size_t>(fp::OpKind::NumKinds)>
        seen_{};
    std::uint64_t current_ = 0;
    bool fired_ = false;
};

/**
 * How a broken physical operator corrupts the datapath bit it owns.
 *
 * A configuration-memory upset rewires logic, so the classic model
 * is a stuck-at: the bit reads 0 (or 1) regardless of the computed
 * value — which masks the fault whenever the correct value already
 * matches. Flip (always-wrong) is kept for worst-case analysis.
 */
enum class PersistMode { Flip, StuckAt0, StuckAt1 };

/** Name of a PersistMode ("flip" / "stuck-at-0" / "stuck-at-1"). */
constexpr const char *
persistModeName(PersistMode mode)
{
    switch (mode) {
      case PersistMode::Flip:     return "flip";
      case PersistMode::StuckAt0: return "stuck-at-0";
      case PersistMode::StuckAt1: return "stuck-at-1";
    }
    return "?";
}

/**
 * Break one physical operator: corrupt every op of a kind whose
 * dynamic index falls on the broken unit (index % units == unit),
 * optionally restricted to an engine's periodic index window so a
 * fault in (say) a CNN's conv engine never touches its dense engine.
 */
class PersistentDatapathHook : public fp::FpHook
{
  public:
    /**
     * @param kind  Operation kind implemented by the broken unit.
     * @param units Physical operator instances of that kind in the
     *              affected engine (time-multiplexing factor).
     * @param unit  Which instance is broken.
     * @param stage Datapath stage the upset affects.
     * @param bit_frac Bit position as a fraction of stage width.
     * @param period Engine window period in ops of @p kind (0 = all).
     * @param lo     Window start within the period.
     * @param hi     Window end within the period.
     * @param mode   Stuck-at or always-flip corruption.
     */
    PersistentDatapathHook(fp::OpKind kind, std::uint64_t units,
                           std::uint64_t unit, fp::Stage stage,
                           double bit_frac, std::uint64_t period = 0,
                           std::uint64_t lo = 0, std::uint64_t hi = 0,
                           PersistMode mode = PersistMode::Flip)
        : kind_(kind), units_(units ? units : 1), unit_(unit % units_),
          stage_(stage), bitFrac_(bit_frac), period_(period), lo_(lo),
          hi_(hi), mode_(mode)
    {}

    std::uint64_t
    perturb(fp::OpKind op, fp::Stage stage, unsigned width,
            std::uint64_t value) override
    {
        if (stage == fp::Stage::OperandA && op == kind_) {
            current_ = count_++;
            inWindow_ = period_ == 0 ||
                        (current_ % period_ >= lo_ &&
                         current_ % period_ < hi_);
        }
        if (op == kind_ && stage == stage_ && inWindow_ &&
            current_ % units_ == unit_) {
            ++hits_;
            auto bit = static_cast<unsigned>(bitFrac_ * width);
            if (bit >= width)
                bit = width - 1;
            switch (mode_) {
              case PersistMode::Flip:
                return value ^ (1ULL << bit);
              case PersistMode::StuckAt0:
                return setBit(value, bit, false);
              case PersistMode::StuckAt1:
                return setBit(value, bit, true);
            }
        }
        return value;
    }

    /** Number of operations the broken unit corrupted. */
    std::uint64_t hits() const { return hits_; }

  private:
    fp::OpKind kind_;
    std::uint64_t units_;
    std::uint64_t unit_;
    fp::Stage stage_;
    double bitFrac_;
    std::uint64_t period_;
    std::uint64_t lo_;
    std::uint64_t hi_;
    PersistMode mode_;
    std::uint64_t count_ = 0;
    std::uint64_t current_ = 0;
    bool inWindow_ = false;
    std::uint64_t hits_ = 0;
};

} // namespace mparch::fault

#endif // MPARCH_FAULT_HOOKS_HH
