/**
 * @file
 * mparch_cli — command-line frontend over the whole public API.
 *
 * Subcommands:
 *
 *   study    --arch fpga|xeon-phi|gpu --workload NAME
 *            [--precision double|single|half|bfloat16] [--trials N]
 *            [--scale S] [--csv FILE] [--json FILE]
 *            [--journal DIR] [--resume] [--batch N] [--jobs N]
 *     Run the full reliability study (FIT, MEBF, TRE, criticality).
 *     With --journal every campaign appends its trials to a journal
 *     under DIR; --resume continues an interrupted study from those
 *     journals; --batch sets records per flush.
 *
 *   campaign --workload NAME --precision P
 *            [--site memory|datapath] [--model single-bit-flip|
 *            double-bit-flip|random-byte|random-value] [--trials N]
 *            [--scale S] [--journal DIR] [--resume] [--batch N]
 *            [--shards N --shard I] [--jobs N]
 *     Run one injection campaign and print the outcome accounting.
 *     --jobs executes trials on N worker threads (0 = all hardware
 *     threads, the default); journals and results are byte-identical
 *     to --jobs 1 because outcomes are committed in index order.
 *     --shards/--shard run an interleaved slice (trial i belongs to
 *     shard i mod N); merged shard journals reproduce the unsharded
 *     campaign exactly.
 *
 *   replay-trial --journal FILE --trial N
 *     Re-execute one journaled trial standalone and dump its fault
 *     anatomy, outcome and agreement with the journal record.
 *
 *   beamplan --fit-per-hour R [--errors N] [--flux F]
 *     Size a (virtual) beam campaign the way the paper sizes real
 *     ones: hours needed, natural-exposure equivalence.
 *
 * Exit code 0 on success; 1 on usage errors (via fatal()).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "beam/exposure.hh"
#include "common/table.hh"
#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "fault/supervisor.hh"
#include "nn/nn_workloads.hh"

namespace {

using namespace mparch;

/** Minimal --flag [value] parser; a flag followed by another flag
 *  (or nothing) is a boolean switch, e.g. --resume. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            if (argv[i][0] != '-' || argv[i][1] != '-')
                fatal("expected --flag, got '", argv[i], "'");
            const std::string key = argv[i] + 2;
            if (i + 1 < argc &&
                std::strncmp(argv[i + 1], "--", 2) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "1";
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    double
    getNum(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

    bool
    getFlag(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

  private:
    std::map<std::string, std::string> values_;
};

fp::Precision
parsePrecision(const std::string &text)
{
    if (text == "double")
        return fp::Precision::Double;
    if (text == "single")
        return fp::Precision::Single;
    if (text == "half")
        return fp::Precision::Half;
    if (text == "bfloat16")
        return fp::Precision::Bfloat16;
    fatal("unknown precision '", text, "'");
}

core::Architecture
parseArch(const std::string &text)
{
    if (text == "fpga")
        return core::Architecture::Fpga;
    if (text == "xeon-phi")
        return core::Architecture::XeonPhi;
    if (text == "gpu")
        return core::Architecture::Gpu;
    fatal("unknown architecture '", text, "'");
}

fault::FaultModel
parseModel(const std::string &text)
{
    for (auto model : {fault::FaultModel::SingleBitFlip,
                       fault::FaultModel::DoubleBitFlip,
                       fault::FaultModel::RandomByte,
                       fault::FaultModel::RandomValue}) {
        if (text == fault::faultModelName(model))
            return model;
    }
    fatal("unknown fault model '", text, "'");
}

int
cmdStudy(const Args &args)
{
    core::StudyConfig config;
    config.arch = parseArch(args.get("arch", "gpu"));
    config.workload = args.get("workload", "mxm");
    config.trials =
        static_cast<std::uint64_t>(args.getNum("trials", 300));
    config.scale = args.getNum("scale", 0.2);
    const std::string precision = args.get("precision", "");
    if (!precision.empty())
        config.precisions = {parsePrecision(precision)};
    config.journalDir = args.get("journal", "");
    config.resume = args.getFlag("resume");
    config.batchSize =
        static_cast<std::uint64_t>(args.getNum("batch", 256));
    config.jobs = static_cast<unsigned>(args.getNum("jobs", 0));

    const core::StudyResult result = core::runStudy(config);
    result.printReport(std::cout);

    const std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot write '", json_path, "'");
        result.writeJson(out);
        std::cout << "wrote " << json_path << "\n";
    }

    const std::string csv_path = args.get("csv", "");
    if (!csv_path.empty()) {
        Table csv({"arch", "workload", "precision", "fit_sdc",
                   "fit_due", "time_s", "mebf", "avf_dp", "pvf"});
        for (const auto &row : result.rows) {
            csv.row()
                .cell(core::architectureName(config.arch))
                .cell(config.workload)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.fitSdc, 3)
                .cell(row.fitDue, 3)
                .cell(row.timeSeconds, 9)
                .cell(row.mebf, 6)
                .cell(row.avfDatapath, 4)
                .cell(row.pvf, 4);
        }
        std::ofstream out(csv_path);
        if (!out)
            fatal("cannot write '", csv_path, "'");
        csv.printCsv(out);
        std::cout << "wrote " << csv_path << "\n";
    }
    return 0;
}

int
cmdCampaign(const Args &args)
{
    const std::string workload = args.get("workload", "mxm");
    const fp::Precision precision =
        parsePrecision(args.get("precision", "single"));
    auto w = nn::makeAnyWorkload(workload, precision,
                                 args.getNum("scale", 0.2));

    fault::CampaignConfig config;
    config.trials =
        static_cast<std::uint64_t>(args.getNum("trials", 500));
    config.model =
        parseModel(args.get("model", "single-bit-flip"));
    config.recordAnatomy = true;

    const std::string site = args.get("site", "memory");
    fault::CampaignKind kind;
    if (site == "memory") {
        kind = fault::CampaignKind::Memory;
    } else if (site == "datapath") {
        kind = fault::CampaignKind::Datapath;
    } else {
        fatal("unknown site '", site, "' (memory | datapath)");
    }

    fault::SupervisorConfig supervisor;
    supervisor.journalDir = args.get("journal", "");
    supervisor.resume = args.getFlag("resume");
    supervisor.batchSize =
        static_cast<std::uint64_t>(args.getNum("batch", 256));
    supervisor.shardCount =
        static_cast<std::uint64_t>(args.getNum("shards", 1));
    supervisor.shardIndex =
        static_cast<std::uint64_t>(args.getNum("shard", 0));
    supervisor.scale = args.getNum("scale", 0.2);
    supervisor.jobs = static_cast<unsigned>(args.getNum("jobs", 0));
    // Factory workload + correct scale: the cache key is sound.
    supervisor.useGoldenCache = true;
    supervisor.handleSignals = true;

    const fault::SupervisedCampaign run =
        fault::runCampaign(*w, kind, config, supervisor, site);
    if (!run.error.empty())
        fatal(run.error);
    const fault::CampaignResult &r = run.result;

    Table table({"metric", "value"});
    table.setTitle(workload + " / " +
                   std::string(fp::precisionName(precision)) + " / " +
                   site + " / " + fault::faultModelName(config.model));
    const Interval ci = r.avfSdc95();
    table.row().cell("trials").cell(
        static_cast<std::int64_t>(r.trials));
    table.row().cell("masked").cell(
        static_cast<std::int64_t>(r.masked));
    table.row().cell("sdc").cell(static_cast<std::int64_t>(r.sdc));
    table.row().cell("detected").cell(
        static_cast<std::int64_t>(r.detected));
    table.row().cell("due").cell(static_cast<std::int64_t>(r.due));
    table.row().cell("avf-sdc").cell(r.avfSdc(), 4);
    table.row().cell("avf-sdc ci95-lo").cell(ci.lo, 4);
    table.row().cell("avf-sdc ci95-hi").cell(ci.hi, 4);
    table.row().cell("remaining @ TRE 0.1%").cell(
        r.survivingFraction(1e-3), 4);
    table.row().cell("remaining @ TRE 1%").cell(
        r.survivingFraction(1e-2), 4);
    table.row().cell("coverage").cell(run.coverage(), 4);
    table.row().cell("poisoned").cell(
        static_cast<std::int64_t>(run.poisoned));
    if (run.resumed)
        table.row().cell("resumed trials").cell(
            static_cast<std::int64_t>(run.resumed));
    table.print(std::cout);
    if (!run.journalPath.empty())
        std::cout << "journal: " << run.journalPath << "\n";
    return run.interrupted ? 1 : 0;
}

int
cmdReplayTrial(const Args &args)
{
    const std::string path = args.get("journal", "");
    if (path.empty())
        fatal("replay-trial needs --journal FILE");
    const auto index =
        static_cast<std::uint64_t>(args.getNum("trial", 0));

    std::string why;
    const auto journal = fault::readJournal(path, &why);
    if (!journal)
        fatal("cannot read '", path, "': ", why);

    auto w = nn::makeAnyWorkload(journal->header.workload,
                                 journal->header.precision,
                                 journal->header.scale);
    const fault::ReplayResult replay =
        fault::replayTrial(*w, *journal, index);
    if (!replay.error.empty())
        fatal(replay.error);

    const auto fieldName = [](fault::FaultAnatomy::Field field) {
        using Field = fault::FaultAnatomy::Field;
        switch (field) {
          case Field::Sign:         return "sign";
          case Field::Exponent:     return "exponent";
          case Field::MantissaHigh: return "mantissa-high";
          case Field::MantissaLow:  return "mantissa-low";
        }
        return "?";
    };

    Table table({"metric", "value"});
    table.setTitle("replay of trial " + std::to_string(index) +
                   " from " + path);
    table.row().cell("workload").cell(journal->header.workload);
    table.row().cell("precision").cell(std::string(
        fp::precisionName(journal->header.precision)));
    table.row().cell("campaign kind").cell(
        fault::campaignKindName(journal->header.kind));
    table.row().cell("fault").cell(replay.trial.description);
    table.row().cell("outcome").cell(
        fault::outcomeKindName(replay.trial.outcome));
    if (replay.trial.outcome == fault::OutcomeKind::Sdc) {
        table.row().cell("max relative deviation").cell(
            replay.trial.sdc.maxRel, 6);
        table.row().cell("corrupted fraction").cell(
            replay.trial.sdc.corruptedFraction, 6);
    }
    if (replay.trial.hasAnatomy) {
        table.row().cell("flipped bit").cell(
            static_cast<std::int64_t>(replay.trial.anatomy.bit));
        table.row().cell("bit field").cell(
            fieldName(replay.trial.anatomy.field));
    }
    if (replay.hasJournaled) {
        table.row().cell("journaled outcome").cell(
            fault::outcomeKindName(replay.journaled.outcome));
        table.row().cell("replay consistent").cell(
            replay.consistent ? "yes" : "NO");
    } else {
        table.row().cell("journaled outcome").cell(
            "(not in journal — trial never completed)");
    }
    table.print(std::cout);
    return replay.consistent ? 0 : 1;
}

int
cmdBeamPlan(const Args &args)
{
    const double rate = args.getNum("fit-per-hour", 0.0);
    if (rate <= 0.0)
        fatal("beamplan needs --fit-per-hour > 0");
    const double errors = args.getNum("errors", 100.0);
    const double flux = args.getNum("flux", 13.0 * 1e6);

    const double hours = beam::beamHoursForErrors(rate, errors);
    const double acc = beam::accelerationFactor(flux);
    Table table({"quantity", "value"});
    table.setTitle("beam campaign plan");
    table.row().cell("target errors").cell(errors, 0);
    table.row().cell("beam error rate [1/h]").cell(rate, 3);
    table.row().cell("beam hours needed").cell(hours, 1);
    table.row().cell("acceleration vs nature").cell(acc, 0);
    table.row().cell("natural years represented").cell(
        beam::naturalYearsEquivalent(hours, acc), 0);
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: mparch_cli "
                     "<study|campaign|replay-trial|beamplan> "
                     "[--flag value ...]\n"
                     "see the file header for the full flag list\n";
        return 1;
    }
    const Args args(argc, argv, 2);
    const std::string cmd = argv[1];
    if (cmd == "study")
        return cmdStudy(args);
    if (cmd == "campaign")
        return cmdCampaign(args);
    if (cmd == "replay-trial")
        return cmdReplayTrial(args);
    if (cmd == "beamplan")
        return cmdBeamPlan(args);
    fatal("unknown subcommand '", cmd, "'");
}
