file(REMOVE_RECURSE
  "CMakeFiles/mparch_gpu.dir/datapath.cc.o"
  "CMakeFiles/mparch_gpu.dir/datapath.cc.o.d"
  "CMakeFiles/mparch_gpu.dir/gpu.cc.o"
  "CMakeFiles/mparch_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/mparch_gpu.dir/regfile.cc.o"
  "CMakeFiles/mparch_gpu.dir/regfile.cc.o.d"
  "CMakeFiles/mparch_gpu.dir/sm_sim.cc.o"
  "CMakeFiles/mparch_gpu.dir/sm_sim.cc.o.d"
  "libmparch_gpu.a"
  "libmparch_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
