/**
 * @file
 * The workload abstraction shared by the fault injector, the virtual
 * beam engine and the architecture models.
 *
 * A workload owns its input/working/output buffers, exposes them to
 * the injector through type-erased BufferViews, and calls
 * ExecutionEnv::tick() at injection-safe points so a fault can be
 * placed at a random instant of the execution — CAROL-FI's "interrupt
 * the program at a random time, corrupt a random variable" protocol.
 */

#ifndef MPARCH_WORKLOADS_WORKLOAD_HH
#define MPARCH_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "fp/value.hh"

namespace mparch::workloads {

/**
 * Type-erased mutable view of one live data buffer.
 *
 * Fault injectors flip bits through set()/get() without knowing the
 * buffer's static precision.
 */
struct BufferView
{
    std::string name;
    fp::Precision precision = fp::Precision::Double;
    std::size_t count = 0;   ///< number of elements
    std::function<std::uint64_t(std::size_t)> get;
    std::function<void(std::size_t, std::uint64_t)> set;

    /** Total data bits held by this buffer. */
    std::uint64_t
    bits() const
    {
        return static_cast<std::uint64_t>(count) *
               fp::formatOf(precision).totalBits;
    }
};

/** Build a BufferView over a vector of typed values. */
template <fp::Precision P>
BufferView
makeBufferView(std::string name, std::vector<fp::Fp<P>> &data)
{
    BufferView view;
    view.name = std::move(name);
    view.precision = P;
    view.count = data.size();
    view.get = [&data](std::size_t i) { return data[i].bits(); };
    view.set = [&data](std::size_t i, std::uint64_t bits) {
        data[i].setBits(bits);
    };
    return view;
}

/**
 * Execution environment handed to Workload::execute().
 *
 * tick() is called by workloads once per outer-loop step; the
 * injector schedules its corruption at a uniformly random tick, and
 * the watchdog aborts executions that exceed their tick budget
 * (a hang, classified as a DUE).
 */
class ExecutionEnv
{
  public:
    /** Callback fired before the given tick executes. */
    std::function<void(std::uint64_t)> onTick;

    /** Abort threshold; 0 disables the watchdog. */
    std::uint64_t tickBudget = 0;

    /** Advance one injection-safe point. */
    void
    tick()
    {
        if (onTick)
            onTick(ticks_);
        ++ticks_;
        if (tickBudget && ticks_ > tickBudget)
            aborted_ = true;
    }

    /** True once the watchdog fired; workloads must return early. */
    bool aborted() const { return aborted_; }

    /** Ticks executed so far. */
    std::uint64_t ticks() const { return ticks_; }

  private:
    std::uint64_t ticks_ = 0;
    bool aborted_ = false;
};

/**
 * Static kernel descriptor consumed by the architecture models
 * (compiler register-allocation heuristic, timing, DUE control-bit
 * estimation). Values describe the algorithm, not a measurement.
 */
struct KernelDesc
{
    /** Live scalar temporaries in the vectorised inner loop. */
    int liveValues = 4;

    /** Distinct input streams the inner loop reads. */
    int inputStreams = 2;

    /**
     * Arithmetic intensity in flops per element loaded; low values
     * mark memory-bound kernels (MxM without tiling), high values
     * compute-bound ones (LavaMD).
     */
    double arithmeticIntensity = 1.0;

    /** Kernel calls transcendental functions (exp). */
    bool usesTranscendental = false;

    /** Inner-loop accesses are regular/streaming (prefetchable). */
    bool regularAccess = true;

    /** Branch/control operations per arithmetic operation. */
    double branchDensity = 0.02;

    /** Data-dependent loop bound (defeats static unrolling). */
    bool dataDependentBounds = false;
};

/**
 * A hardware engine of an accelerator implementing this workload.
 *
 * When a spatial design (FPGA) implements a workload, distinct
 * program phases map to distinct physical engines (a CNN's conv
 * engine vs its fully-connected engine). An Engine names the dynamic
 * operation window it executes: within each period of @c period
 * operations of kind @c kind, indices in [lo, hi) belong to this
 * engine. period == 0 means "all operations of the kind".
 */
struct Engine
{
    std::string name;
    fp::OpKind kind = fp::OpKind::Fma;
    std::uint64_t period = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    /** Fraction of the kind's dynamic operations this engine runs. */
    double
    share() const
    {
        if (period == 0)
            return 1.0;
        return static_cast<double>(hi - lo) /
               static_cast<double>(period);
    }
};

/**
 * Severity levels of an SDC, assigned by the workload's comparator.
 *
 * Numeric kernels only use Tolerable/Critical via TRE analysis in the
 * metrics layer; neural-network workloads override classifySdc() to
 * implement the paper's classification- and detection-change split.
 */
enum class SdcSeverity
{
    Tolerable,          ///< output corrupted, semantics preserved
    DetectionChange,    ///< (YOLO) box geometry changed
    CriticalChange,     ///< classification / detected class changed
};

/** Name for an SdcSeverity value. */
const char *sdcSeverityName(SdcSeverity severity);

/**
 * Abstract benchmark executed under fault injection.
 *
 * Lifecycle per trial: reset(seed) regenerates inputs and clears
 * outputs (bit-identical for identical seeds), execute() runs the
 * kernel (instrumented softfloat inside the caller's FpEnvGuard),
 * then the campaign inspects output() and classifySdc().
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name ("mxm", "lavamd", ...). */
    virtual std::string name() const = 0;

    /**
     * Deep copy of this workload, buffers and all, so parallel
     * campaign workers can each own an isolated instance. Clones of
     * the same workload must behave bit-identically under identical
     * reset()/execute() sequences (all concrete workloads are
     * value-semantic, so the copy constructor satisfies this).
     */
    virtual std::unique_ptr<Workload> clone() const = 0;

    /** Data/operation precision this instance runs at. */
    virtual fp::Precision precision() const = 0;

    /** Regenerate inputs deterministically and clear outputs. */
    virtual void reset(std::uint64_t input_seed) = 0;

    /** Run the kernel, honouring env.aborted() between ticks. */
    virtual void execute(ExecutionEnv &env) = 0;

    /** Live data buffers eligible for fault injection. */
    virtual std::vector<BufferView> buffers() = 0;

    /** The output buffer compared against the golden run. */
    virtual BufferView output() = 0;

    /** Algorithm descriptor for the architecture models. */
    virtual KernelDesc desc() const = 0;

    /**
     * Hardware engines a spatial implementation would instantiate.
     *
     * The default maps each executed operation kind to one engine;
     * layered workloads (CNNs) override this to separate per-layer
     * engines so persistent faults stay inside one engine.
     *
     * @param golden_ops Dynamic op counts of a fault-free run.
     */
    virtual std::vector<Engine>
    engines(const fp::FpContext &golden_ops) const
    {
        std::vector<Engine> list;
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(fp::OpKind::NumKinds); ++k) {
            const auto kind = static_cast<fp::OpKind>(k);
            if (kind == fp::OpKind::Exp)
                continue;  // realised as constituent mul/fma ops
            if (golden_ops.count(kind) == 0)
                continue;
            Engine engine;
            engine.name = fp::opKindName(kind);
            engine.kind = kind;
            list.push_back(engine);
        }
        return list;
    }

    /**
     * Severity of the current (known corrupted) output versus the
     * golden bits. Numeric kernels return CriticalChange and leave
     * tolerance decisions to TRE analysis; CNN workloads override.
     *
     * @param golden_bits Golden output bit patterns, element-wise.
     */
    virtual SdcSeverity
    classifySdc(const std::vector<std::uint64_t> &golden_bits)
    {
        (void)golden_bits;
        return SdcSeverity::CriticalChange;
    }

    /**
     * True when the workload's own error detector fired during the
     * last execute() (duplication mismatch, failed ABFT checksum it
     * could not correct, ...). Campaigns classify such runs as
     * detected errors — the recoverable cousin of a DUE — instead of
     * SDCs or masks.
     */
    virtual bool detectedError() const { return false; }
};

/** Shorthand for factory results. */
using WorkloadPtr = std::unique_ptr<Workload>;

/**
 * Instantiate a benchmark by name and precision.
 *
 * Known names: "mxm", "lavamd", "lud", "micro-add", "micro-mul",
 * "micro-fma". Throws via fatal() on unknown names.
 *
 * @param scale 1.0 is the default problem size; campaigns can shrink
 *              (or grow) the run time with this knob.
 */
WorkloadPtr makeWorkload(const std::string &name, fp::Precision p,
                         double scale = 1.0);

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_WORKLOAD_HH
