#include "core/study.hh"

#include <ostream>

#include "arch/fpga/fpga.hh"
#include "common/json.hh"
#include "arch/gpu/gpu.hh"
#include "arch/phi/phi.hh"
#include "common/table.hh"
#include "fault/supervisor.hh"
#include "nn/nn_workloads.hh"

namespace mparch::core {

const char *
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::Fpga:    return "fpga";
      case Architecture::XeonPhi: return "xeon-phi";
      case Architecture::Gpu:     return "gpu";
    }
    return "?";
}

std::vector<fp::Precision>
supportedPrecisions(Architecture arch)
{
    using fp::Precision;
    if (arch == Architecture::XeonPhi)
        return {Precision::Double, Precision::Single};
    return {Precision::Double, Precision::Single, Precision::Half};
}

const PrecisionResult *
StudyResult::find(fp::Precision p) const
{
    for (const auto &row : rows)
        if (row.precision == p)
            return &row;
    return nullptr;
}

namespace {

/** Crash-safety knobs forwarded into every campaign. Journals land
 *  under <journalDir>/<arch> so studies of different devices never
 *  collide on campaign tags. */
fault::SupervisorConfig
makeSupervisor(const StudyConfig &config)
{
    fault::SupervisorConfig supervisor;
    if (!config.journalDir.empty())
        supervisor.journalDir =
            config.journalDir + "/" + architectureName(config.arch);
    supervisor.resume = config.resume;
    supervisor.batchSize = config.batchSize;
    supervisor.scale = config.scale;
    supervisor.jobs = config.jobs;
    // Study workloads come from the factories, so the (name,
    // precision, scale, inputSeed) cache key fully identifies them:
    // the N campaigns per workload share one golden run.
    supervisor.useGoldenCache = true;
    // Ctrl-C on a journaled study flushes and prints a resume hint.
    supervisor.handleSignals = !supervisor.journalDir.empty();
    return supervisor;
}

PrecisionResult
evaluateOne(const StudyConfig &config, fp::Precision p)
{
    PrecisionResult row;
    row.precision = p;
    auto w = nn::makeAnyWorkload(config.workload, p, config.scale);

    switch (config.arch) {
      case Architecture::Fpga: {
        fpga::FpgaOptions options;
        options.configTrials = config.trials;
        options.bramTrials = config.trials / 2 + 1;
        options.seed = config.seed;
        options.supervisor = makeSupervisor(config);
        const auto eval = fpga::evaluateFpga(*w, options);
        row.fitSdc = eval.fitSdc;
        row.fitDue = eval.fitDue;
        row.timeSeconds = eval.timeSeconds;
        row.mebf = eval.mebf;
        row.avfDatapath = eval.configCampaign.avfSdc();
        row.pvf = eval.bramCampaign.avfSdc();
        row.tre = metrics::treCurve(eval.configCampaign);
        row.severity = metrics::criticalitySplit(eval.configCampaign);
        row.luts = eval.circuit.luts;
        row.dsps = eval.circuit.dsps;
        row.brams = eval.circuit.brams;
        row.coverage = eval.coverage;
        row.poisoned = eval.poisoned;
        break;
      }
      case Architecture::XeonPhi: {
        phi::PhiOptions options;
        options.pvfTrials = config.trials;
        options.datapathTrials = config.trials;
        options.seed = config.seed;
        options.supervisor = makeSupervisor(config);
        const auto eval = phi::evaluatePhi(*w, options);
        row.fitSdc = eval.fitSdc;
        row.fitDue = eval.fitDue;
        row.timeSeconds = eval.timeSeconds;
        row.mebf = eval.mebf;
        row.avfDatapath = eval.datapathCampaign.avfSdc();
        row.pvf = eval.pvfCampaign.avfSdc();
        row.tre = metrics::treCurve(eval.datapathCampaign);
        row.severity =
            metrics::criticalitySplit(eval.datapathCampaign);
        row.vectorRegisters = eval.compiled.vectorRegisters;
        row.coverage = eval.coverage;
        row.poisoned = eval.poisoned;
        break;
      }
      case Architecture::Gpu: {
        gpu::GpuOptions options;
        options.datapathTrials = config.trials;
        options.memoryTrials = config.trials / 2 + 1;
        options.seed = config.seed;
        options.supervisor = makeSupervisor(config);
        const auto eval = gpu::evaluateGpu(*w, options);
        row.fitSdc = eval.fitSdc;
        row.fitDue = eval.fitDue;
        row.timeSeconds = eval.timeSeconds;
        row.mebf = eval.mebf;
        row.avfDatapath = eval.datapathCampaign.avfSdc();
        row.pvf = eval.memoryCampaign.avfSdc();
        row.tre = metrics::treCurve(eval.datapathCampaign);
        row.severity =
            metrics::criticalitySplit(eval.datapathCampaign);
        row.coverage = eval.coverage;
        row.poisoned = eval.poisoned;
        break;
      }
    }
    return row;
}

} // namespace

StudyResult
runStudy(const StudyConfig &config)
{
    StudyResult result;
    result.config = config;
    std::vector<fp::Precision> precisions = config.precisions;
    if (precisions.empty())
        precisions = supportedPrecisions(config.arch);
    for (fp::Precision p : precisions)
        result.rows.push_back(evaluateOne(config, p));
    return result;
}

void
StudyResult::printReport(std::ostream &os) const
{
    Table table({"precision", "fit-sdc(a.u.)", "fit-due(a.u.)",
                 "time(s)", "mebf(a.u.)", "avf-dp", "pvf",
                 "crit-frac", "coverage"});
    table.setTitle(std::string(architectureName(config.arch)) + " / " +
                   config.workload);
    for (const auto &row : rows) {
        table.row()
            .cell(std::string(fp::precisionName(row.precision)))
            .cell(row.fitSdc, 1)
            .cell(row.fitDue, 1)
            .cell(row.timeSeconds, 9)
            .cell(row.mebf, 4)
            .cell(row.avfDatapath, 3)
            .cell(row.pvf, 3)
            .cell(row.severity.criticalChange +
                      row.severity.detectionChange,
                  3)
            .cell(row.coverage, 3);
    }
    table.print(os);

    Table tre_table({"precision", "tre", "fit-fraction-remaining"});
    tre_table.setTitle("FIT reduction vs tolerated relative error");
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.tre.thresholds.size(); ++i) {
            tre_table.row()
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.tre.thresholds[i], 4)
                .cell(row.tre.remaining[i], 3);
        }
    }
    tre_table.print(os);
}

void
StudyResult::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject()
        .member("arch", architectureName(config.arch))
        .member("workload", config.workload)
        .member("trials", config.trials)
        .member("scale", config.scale);
    w.key("rows").beginArray();
    for (const auto &row : rows) {
        w.beginObject()
            .member("precision",
                    std::string(fp::precisionName(row.precision)))
            .member("fit_sdc", row.fitSdc)
            .member("fit_due", row.fitDue)
            .member("time_s", row.timeSeconds)
            .member("mebf", row.mebf)
            .member("avf_datapath", row.avfDatapath)
            .member("pvf", row.pvf)
            .member("coverage", row.coverage)
            .member("poisoned", row.poisoned);
        w.key("severity")
            .beginObject()
            .member("tolerable", row.severity.tolerable)
            .member("detection_change", row.severity.detectionChange)
            .member("critical_change", row.severity.criticalChange)
            .endObject();
        w.key("tre").beginArray();
        for (std::size_t t = 0; t < row.tre.thresholds.size();
             ++t) {
            w.beginArray()
                .value(row.tre.thresholds[t])
                .value(row.tre.remaining[t])
                .endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace mparch::core
