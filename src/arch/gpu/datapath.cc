#include "arch/gpu/datapath.hh"

#include <cmath>

#include "arch/gpu/params.hh"

namespace mparch::gpu {

using fp::OpKind;
using fp::Precision;

namespace {

/** Lane state for one operation of @p kind at format width m/e. */
double
laneBits(OpKind kind, double m, double e)
{
    const double mul_array = std::pow(m, kMulBitExponent);
    const double rounder = m + e;
    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
        // Two aligners + shared normalise/round stage.
        return 2.0 * (m + e) + rounder;
      case OpKind::Mul:
        return mul_array + rounder;
      case OpKind::Fma:
        // Multiplier + triple-width aligned addend + rounder.
        return mul_array + 3.0 * m + rounder;
      case OpKind::Div:
      case OpKind::Sqrt:
        // Iterative recurrence: one CSA row plus quotient state.
        return 4.0 * m + rounder;
      case OpKind::Convert:
        return 2.0 * (m + e);
      case OpKind::Exp:
        // Realised as mul/fma chains; no dedicated lane state.
        return 0.0;
      default:
        return 0.0;
    }
}

} // namespace

double
datapathBitsPerCore(OpKind kind, Precision p)
{
    const fp::Format f = fp::formatOf(p);
    const double m = static_cast<double>(f.manBits) + 1.0;
    const double e = static_cast<double>(f.expBits);
    return packFactor(p) * laneBits(kind, m, e) + kCoreControlBits;
}

double
mixDatapathBitsPerCore(const fp::FpContext &ops, Precision p)
{
    double weighted = 0.0;
    double total = 0.0;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(OpKind::NumKinds); ++k) {
        const auto kind = static_cast<OpKind>(k);
        if (kind == OpKind::Exp)
            continue;
        const auto count = static_cast<double>(ops.count(kind));
        if (count <= 0.0)
            continue;
        weighted += count * datapathBitsPerCore(kind, p);
        total += count;
    }
    return total > 0.0 ? weighted / total : 0.0;
}

} // namespace mparch::gpu
