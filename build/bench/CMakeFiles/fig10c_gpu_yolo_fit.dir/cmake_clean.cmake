file(REMOVE_RECURSE
  "CMakeFiles/fig10c_gpu_yolo_fit.dir/fig10c_gpu_yolo_fit.cpp.o"
  "CMakeFiles/fig10c_gpu_yolo_fit.dir/fig10c_gpu_yolo_fit.cpp.o.d"
  "fig10c_gpu_yolo_fit"
  "fig10c_gpu_yolo_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_gpu_yolo_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
