file(REMOVE_RECURSE
  "CMakeFiles/mparch_common.dir/histogram.cc.o"
  "CMakeFiles/mparch_common.dir/histogram.cc.o.d"
  "CMakeFiles/mparch_common.dir/logging.cc.o"
  "CMakeFiles/mparch_common.dir/logging.cc.o.d"
  "CMakeFiles/mparch_common.dir/stats.cc.o"
  "CMakeFiles/mparch_common.dir/stats.cc.o.d"
  "CMakeFiles/mparch_common.dir/table.cc.o"
  "CMakeFiles/mparch_common.dir/table.cc.o.d"
  "libmparch_common.a"
  "libmparch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
