/**
 * @file
 * LUD benchmark.
 *
 * In-place Doolittle LU factorisation without pivoting (Rodinia's
 * lud), run on a diagonally dominant random matrix so the
 * factorisation is well conditioned at every precision. CPU-bound,
 * division-bearing, and — per the paper's Xeon Phi compiler analysis —
 * the one kernel whose single- and double-precision builds use the
 * same number of vector registers.
 */

#ifndef MPARCH_WORKLOADS_LUD_HH
#define MPARCH_WORKLOADS_LUD_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** LU decomposition at precision P. */
template <fp::Precision P>
class LudWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    /** @param scale Problem-size knob; 1.0 means a 40x40 matrix. */
    explicit LudWorkload(double scale = 1.0)
    {
        n_ = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   40.0 * std::cbrt(std::max(scale, 1e-3)))));
        m_.resize(n_ * n_);
    }

    std::string name() const override { return "lud"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<LudWorkload<P>>(*this);
    }

    /** Matrix dimension. */
    std::size_t dim() const { return n_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (std::size_t i = 0; i < n_; ++i) {
            for (std::size_t j = 0; j < n_; ++j) {
                double v = rng.uniform(-1.0, 1.0);
                if (i == j)
                    v += static_cast<double>(n_);  // dominance
                m_[i * n_ + j] = Value::fromDouble(v);
            }
        }
    }

    void
    execute(ExecutionEnv &env) override
    {
        for (std::size_t k = 0; k < n_; ++k) {
            env.tick();
            if (env.aborted())
                return;
            const Value pivot = m_[k * n_ + k];
            for (std::size_t i = k + 1; i < n_; ++i) {
                const Value l = m_[i * n_ + k] / pivot;
                m_[i * n_ + k] = l;
                for (std::size_t j = k + 1; j < n_; ++j)
                    m_[i * n_ + j] -= l * m_[k * n_ + j];
            }
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("M", m_)};
    }

    BufferView output() override { return makeBufferView("M", m_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 4;   // l, pivot, streamed row elements
        d.inputStreams = 2;
        d.arithmeticIntensity = 2.0;
        d.usesTranscendental = false;
        d.regularAccess = true;
        d.branchDensity = 0.08;  // triangular loops branch more
        // The shrinking trip count defeats the vectoriser's static
        // unrolling: single and double allocate alike (paper 5.0).
        d.dataDependentBounds = true;
        return d;
    }

  private:
    std::size_t n_;
    std::vector<Value> m_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_LUD_HH
