/**
 * @file
 * Monte Carlo virtual beam experiment.
 *
 * Mirrors the ChipIR methodology (paper Section 3.2): neutrons arrive
 * as a Poisson process over the exposed resources; each arrival picks
 * a resource class proportionally to bits x sensitivity and either
 * resolves through a real injected execution (callback mode) or
 * through the class's measured AVF (analytic mode). FIT estimates
 * come with Poisson confidence intervals, and experiments are sized
 * so that the per-execution error probability stays below 1e-3, the
 * single-fault regime the paper maintains.
 */

#ifndef MPARCH_BEAM_VIRTUAL_BEAM_HH
#define MPARCH_BEAM_VIRTUAL_BEAM_HH

#include <cstdint>
#include <functional>

#include "beam/inventory.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace mparch::beam {

/** Outcome of one beam-induced fault. */
enum class BeamOutcome { Masked, Sdc, Due };

/** Tally of a virtual beam campaign. */
struct BeamResult
{
    double fluence = 0.0;       ///< accumulated beam time (a.u.)
    std::uint64_t faults = 0;   ///< particle-induced upsets
    std::uint64_t sdc = 0;
    std::uint64_t due = 0;

    /** Measured SDC FIT (a.u.) with its 95% interval. */
    double
    fitSdc() const
    {
        return fluence > 0.0 ? static_cast<double>(sdc) / fluence
                             : 0.0;
    }

    /** 95% Poisson interval on fitSdc(). */
    Interval fitSdc95() const { return poissonRate95(sdc, fluence); }

    /** Measured DUE FIT (a.u.). */
    double
    fitDue() const
    {
        return fluence > 0.0 ? static_cast<double>(due) / fluence
                             : 0.0;
    }
};

/**
 * Resolve one fault in entry @p index to an outcome (e.g. by running
 * a real injected execution of the workload).
 */
using FaultResolver =
    std::function<BeamOutcome(std::size_t index, Rng &rng)>;

/**
 * Run a virtual beam campaign.
 *
 * @param inventory Exposure inventory of the configuration.
 * @param fluence   Beam exposure in arbitrary time units.
 * @param rng       Randomness source.
 * @param resolver  Optional real-execution resolver; when empty,
 *                  outcomes are drawn from the entries' stored AVFs.
 */
BeamResult runBeam(const ResourceInventory &inventory, double fluence,
                   Rng &rng, const FaultResolver &resolver = {});

} // namespace mparch::beam

#endif // MPARCH_BEAM_VIRTUAL_BEAM_HH
