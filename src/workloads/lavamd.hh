/**
 * @file
 * LavaMD benchmark.
 *
 * Particle-potential kernel after Rodinia's lavaMD (Szafaryn et al.):
 * for every particle, accumulate the potential and force contributed
 * by the particles of all neighbouring boxes through an exponential
 * cutoff interaction. The arithmetic mix is multiplication-dominated
 * (squares, scaling, force terms) with one transcendental exp() per
 * pair — the two properties the paper leans on when explaining
 * LavaMD's GPU FIT trend (follows Micro-MUL, Section 6.1) and its
 * Xeon Phi criticality inversion (Section 5.3).
 */

#ifndef MPARCH_WORKLOADS_LAVAMD_HH
#define MPARCH_WORKLOADS_LAVAMD_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** LavaMD particle interactions at precision P. */
template <fp::Precision P>
class LavaMDWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    /**
     * @param scale Problem-size knob; 1.0 means a 2x2x2 box grid with
     *              8 particles per box (4,096 interacting pairs).
     */
    explicit LavaMDWorkload(double scale = 1.0)
    {
        grid_ = 2;
        par_ = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::lround(
                   8.0 * std::cbrt(std::max(scale, 1e-3)))));
        const std::size_t particles = boxCount() * par_;
        x_.resize(particles);
        y_.resize(particles);
        z_.resize(particles);
        q_.resize(particles);
        v_.resize(particles);
        fx_.resize(particles);
        fy_.resize(particles);
        fz_.resize(particles);
    }

    std::string name() const override { return "lavamd"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<LavaMDWorkload<P>>(*this);
    }

    /** Number of boxes in the periodic grid. */
    std::size_t boxCount() const { return grid_ * grid_ * grid_; }

    /** Particles per box. */
    std::size_t particlesPerBox() const { return par_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (std::size_t i = 0; i < x_.size(); ++i) {
            x_[i] = Value::fromDouble(rng.uniform(0.0, 1.0));
            y_[i] = Value::fromDouble(rng.uniform(0.0, 1.0));
            z_[i] = Value::fromDouble(rng.uniform(0.0, 1.0));
            q_[i] = Value::fromDouble(rng.uniform(0.1, 1.0));
        }
        std::fill(v_.begin(), v_.end(), Value{});
        std::fill(fx_.begin(), fx_.end(), Value{});
        std::fill(fy_.begin(), fy_.end(), Value{});
        std::fill(fz_.begin(), fz_.end(), Value{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        const Value a2 = Value::fromDouble(0.5);  // alpha^2 cutoff
        const Value two = Value::fromDouble(2.0);
        const std::size_t boxes = boxCount();
        for (std::size_t hb = 0; hb < boxes; ++hb) {
            for (std::size_t nb = 0; nb < boxes; ++nb) {
                env.tick();
                if (env.aborted())
                    return;
                interact(hb, nb, a2, two);
            }
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("x", x_),  makeBufferView("y", y_),
                makeBufferView("z", z_),  makeBufferView("q", q_),
                makeBufferView("v", v_),  makeBufferView("fx", fx_),
                makeBufferView("fy", fy_), makeBufferView("fz", fz_)};
    }

    BufferView output() override { return makeBufferView("v", v_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 10;  // dx/dy/dz, r2, u2, vij, fs, accumulators
        d.inputStreams = 4;
        d.arithmeticIntensity = 16.0;  // compute-bound
        d.usesTranscendental = true;
        d.regularAccess = true;
        d.branchDensity = 0.05;
        return d;
    }

  private:
    /** Accumulate contributions of box @p nb onto box @p hb. */
    void
    interact(std::size_t hb, std::size_t nb, Value a2, Value two)
    {
        const std::size_t base_i = hb * par_;
        const std::size_t base_j = nb * par_;
        for (std::size_t i = base_i; i < base_i + par_; ++i) {
            for (std::size_t j = base_j; j < base_j + par_; ++j) {
                if (i == j)
                    continue;
                // Explicit mul/add (not contracted to FMA), matching
                // the Rodinia source and keeping the kernel's
                // instruction mix multiplication-dominated.
                const Value dx = x_[i] - x_[j];
                const Value dy = y_[i] - y_[j];
                const Value dz = z_[i] - z_[j];
                const Value r2 = dx * dx + dy * dy + dz * dz;
                const Value u2 = a2 * r2;
                const Value vij = exp(-u2);
                const Value fs = two * q_[j] * vij;
                v_[i] += q_[j] * vij;
                fx_[i] += dx * fs;
                fy_[i] += dy * fs;
                fz_[i] += dz * fs;
            }
        }
    }

    std::size_t grid_;
    std::size_t par_;
    std::vector<Value> x_, y_, z_, q_;
    std::vector<Value> v_, fx_, fy_, fz_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_LAVAMD_HH
