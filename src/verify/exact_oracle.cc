/**
 * @file
 * Oracle 2: exact integer reference arithmetic.
 *
 * Every finite operand is decoded to an exact integer significand and
 * a power-of-two scale; the operation is carried out *exactly* in
 * 128-bit (FMA: 256-bit) integer arithmetic; and the result is
 * rounded once by roundExactRNE, which compares the dropped bits
 * against the exact halfway point. No guard/round/sticky jamming,
 * no incremental normalisation — the two places where the production
 * implementation could plausibly hide a double-rounding or
 * sticky-promotion bug.
 *
 * Where an operand falls so far below the other that an exact 256-bit
 * alignment will not hold it, it is provably below a quarter of the
 * final rounding granule and collapses into the rounder's sub-LSB
 * remainder flag — an *exact* transformation (the remainder can shift
 * a would-be tie but can never cross a halfway point).
 *
 * exp and log are transcendental, so no finite integer oracle exists;
 * for them the reference re-derives the documented algorithm
 * (Cody-Waite reduction + in-format Horner chain, softfloat.hh) on
 * top of the reference primitives above. That pins both the
 * primitives the chains execute and the algorithm spec itself.
 */

#include "verify/internal.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mparch::verify {

using detail::Dec;
using detail::U128;
using detail::decodeBits;
using detail::highestSetBit128;
using detail::roundExactRNE;

using fp::FpClass;
using fp::Format;
using fp::classify;
using fp::infinity;
using fp::isInf;
using fp::isNaN;
using fp::isZero;
using fp::kDouble;
using fp::kHalf;
using fp::kSingle;
using fp::packFields;
using fp::quietNaN;
using fp::signOf;
using fp::zero;

namespace detail {

int
highestSetBit128(U128 v)
{
    const auto hi = static_cast<std::uint64_t>(v >> 64);
    if (hi)
        return 64 + highestSetBit(hi);
    return highestSetBit(static_cast<std::uint64_t>(v));
}

Dec
decodeBits(Format f, std::uint64_t bits)
{
    const bool sign = signOf(f, bits);
    const int be = biasedExpOf(f, bits);
    const std::uint64_t m = mantissaOf(f, bits);
    if (be == 0)
        return {sign, f.minExp() - static_cast<int>(f.manBits), m};
    return {sign, be - f.bias() - static_cast<int>(f.manBits),
            m | f.hiddenBit()};
}

std::uint64_t
roundExactRNE(Format f, bool sign, U128 mag, int exp, bool rest)
{
    const int man = static_cast<int>(f.manBits);
    const int min_lsb = f.minExp() - man;  // scale of subnormal LSBs

    if (mag == 0) {
        MPARCH_ASSERT(!rest, "sub-LSB remainder with zero significand");
        return zero(f, sign);
    }

    const int msb = highestSetBit128(mag);
    int lsb = exp + msb - man;  // keep manBits+1 significant bits
    if (lsb < min_lsb)
        lsb = min_lsb;
    const int shift = lsb - exp;

    std::uint64_t kept;
    if (shift <= 0) {
        // Exact fit (including exact widening); nothing is dropped,
        // so a sub-LSB remainder would change the result — callers
        // scale to prevent this.
        MPARCH_ASSERT(!rest, "sub-LSB remainder but no dropped bits");
        kept = static_cast<std::uint64_t>(mag << -shift);
    } else if (shift > msb + 1) {
        // Everything, including the leading bit, sits strictly below
        // half of the smallest granule: rounds to zero.
        return zero(f, sign);
    } else {
        MPARCH_ASSERT(!rest || shift >= 1, "unreachable");
        U128 kept128, dropped;
        if (shift >= 128) {
            kept128 = 0;
            dropped = mag;
        } else {
            kept128 = mag >> shift;
            dropped = mag & ((U128{1} << shift) - 1);
        }
        const U128 half = U128{1} << (shift - 1);
        kept = static_cast<std::uint64_t>(kept128);
        // dropped + r vs half: r in [0,1) only matters on the exact
        // halfway point, where r > 0 forces the round up.
        if (dropped > half ||
            (dropped == half && (rest || (kept & 1))))
            ++kept;
    }

    if (kept == 0)
        return zero(f, sign);
    if (kept == (f.hiddenBit() << 1)) {
        // Carry out of the significand: exact power of two one binade up.
        kept >>= 1;
        lsb += 1;
    }
    const int kmsb = highestSetBit(kept);
    MPARCH_ASSERT(kmsb <= man, "rounded significand too wide");
    if (kmsb < man) {
        MPARCH_ASSERT(lsb == min_lsb, "unnormalised non-subnormal");
        return packFields(f, sign, 0, kept);
    }
    const int biased = lsb + man + f.bias();
    MPARCH_ASSERT(biased >= 1, "normal below subnormal range");
    if (biased >= f.maxBiasedExp())
        return infinity(f, sign);
    return packFields(f, sign, biased, kept & f.manMask());
}

} // namespace detail

namespace {

// ------------------------------------------------------------- U256
// Just enough 256-bit arithmetic to keep an FMA exact until its one
// rounding: the widest intermediate is a 108-bit product shifted left
// by up to 140 positions (248 bits).

struct U256
{
    U128 hi = 0;
    U128 lo = 0;
};

U256
shl256(U128 v, int n)
{
    if (n == 0)
        return {0, v};
    if (n < 128)
        return {v >> (128 - n), v << n};
    return {v << (n - 128), 0};
}

U256
add256(U256 a, U256 b)
{
    U256 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
}

/** a - b; @pre a >= b. */
U256
sub256(U256 a, U256 b)
{
    U256 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
}

int
cmp256(U256 a, U256 b)
{
    if (a.hi != b.hi)
        return a.hi < b.hi ? -1 : 1;
    if (a.lo != b.lo)
        return a.lo < b.lo ? -1 : 1;
    return 0;
}

/**
 * Reduce a 256-bit magnitude at scale @p exp to (mag, exp', rest) for
 * roundExactRNE, keeping ~120 significant bits so the rounder always
 * drops at least 7 bits ahead of any format's significand.
 */
std::uint64_t
roundU256(Format f, bool sign, U256 v, int exp, bool rest)
{
    if (v.hi == 0)
        return roundExactRNE(f, sign, v.lo, exp, rest);
    const int top = 128 + highestSetBit128(v.hi);
    const int k = top - 119;  // > 0 since top >= 128
    const U128 dropped_lo =
        k >= 128 ? v.lo : v.lo & ((U128{1} << k) - 1);
    const U128 mag = k >= 128
                         ? v.hi >> (k - 128)
                         : (v.hi << (128 - k)) | (v.lo >> k);
    // The shifted-out bits are a remainder < 1 at the new LSB scale;
    // fold them into rest (exact: the rounder keeps >= 60 spare bits
    // below any format's rounding position).
    const bool lost = k >= 128 ? (v.lo != 0 || (v.hi & ((U128{1} << (k - 128)) - 1)) != 0)
                               : dropped_lo != 0;
    return roundExactRNE(f, sign, mag, exp + k, lost || rest);
}

// --------------------------------------------------------- reference ops

/**
 * Exact a + b (or a - b). Alignment distances that exceed the exact
 * 128-bit window collapse the small operand into the sub-LSB
 * remainder: with lsb-scale gap >= 73, the small operand is below
 * 2^-17 of the big operand's (pre-scaled) LSB.
 */
std::uint64_t
refAdd(Format f, std::uint64_t a, std::uint64_t b, bool subtract)
{
    if (subtract)
        b ^= 1ULL << f.signPos();

    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf && cb == FpClass::Inf)
        return signOf(f, a) == signOf(f, b) ? a : quietNaN(f);
    if (ca == FpClass::Inf)
        return a;
    if (cb == FpClass::Inf)
        return b;

    Dec da = decodeBits(f, a);
    Dec db = decodeBits(f, b);
    if (da.mag == 0 && db.mag == 0) {
        // IEEE sum-of-zeros sign rules (RNE: mixed signs give +0).
        return da.sign == db.sign ? zero(f, da.sign) : zero(f, false);
    }
    if (da.mag == 0)
        return roundExactRNE(f, db.sign, db.mag, db.exp, false);
    if (db.mag == 0)
        return roundExactRNE(f, da.sign, da.mag, da.exp, false);

    // Within one format the LSB scale orders with the magnitude
    // (normals carry a fixed-position leading bit; subnormals share
    // the minimum scale), so da.exp >= db.exp means |a| >= |b| except
    // possibly at equal scales, where the significands decide.
    if (db.exp > da.exp ||
        (db.exp == da.exp && db.mag > da.mag))
        std::swap(da, db);

    const int diff = da.exp - db.exp;
    if (diff <= 72) {
        const U128 big = static_cast<U128>(da.mag) << diff;
        const U128 small = db.mag;
        if (da.sign == db.sign)
            return roundExactRNE(f, da.sign, big + small, db.exp,
                                 false);
        if (big == small)
            return zero(f, false);  // exact cancellation: +0 under RNE
        return roundExactRNE(f, da.sign, big - small, db.exp, false);
    }

    // The small operand is strictly below a quarter of the big
    // operand's pre-scaled LSB: fold it into the remainder.
    const U128 m4 = static_cast<U128>(da.mag) << 2;
    if (da.sign == db.sign)
        return roundExactRNE(f, da.sign, m4, da.exp - 2, true);
    return roundExactRNE(f, da.sign, m4 - 1, da.exp - 2, true);
}

std::uint64_t
refMul(Format f, std::uint64_t a, std::uint64_t b)
{
    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const bool sign = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf || cb == FpClass::Inf) {
        if (ca == FpClass::Zero || cb == FpClass::Zero)
            return quietNaN(f);
        return infinity(f, sign);
    }
    const Dec da = decodeBits(f, a);
    const Dec db = decodeBits(f, b);
    if (da.mag == 0 || db.mag == 0)
        return zero(f, sign);
    // The product of two <= 54-bit significands is exact in 128 bits.
    return roundExactRNE(f, sign,
                         static_cast<U128>(da.mag) * db.mag,
                         da.exp + db.exp, false);
}

std::uint64_t
refDiv(Format f, std::uint64_t a, std::uint64_t b)
{
    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const bool sign = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return cb == FpClass::Inf ? quietNaN(f) : infinity(f, sign);
    if (cb == FpClass::Inf)
        return zero(f, sign);
    if (cb == FpClass::Zero)
        return ca == FpClass::Zero ? quietNaN(f) : infinity(f, sign);
    if (ca == FpClass::Zero)
        return zero(f, sign);

    const Dec da = decodeBits(f, a);
    const Dec db = decodeBits(f, b);
    // Scale the dividend so the quotient lands on ~60 significant
    // bits regardless of either operand's normalisation; the division
    // remainder is the exact sub-LSB rest.
    const int k = 60 + highestSetBit(db.mag) - highestSetBit(da.mag);
    const U128 num = static_cast<U128>(da.mag) << k;
    const U128 q = num / db.mag;
    const U128 r = num % db.mag;
    return roundExactRNE(f, sign, q, da.exp - db.exp - k, r != 0);
}

/** Bitwise restoring integer square root (exact floor). */
U128
isqrt(U128 value)
{
    U128 root = 0;
    U128 bit = U128{1} << 126;
    while (bit > value)
        bit >>= 2;
    while (bit != 0) {
        const U128 probe = root + bit;
        root >>= 1;
        if (value >= probe) {
            value -= probe;
            root += bit;
        }
        bit >>= 2;
    }
    return root;
}

std::uint64_t
refSqrt(Format f, std::uint64_t a)
{
    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Zero)
        return a;  // sqrt(+/-0) = +/-0
    if (signOf(f, a))
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return a;

    const Dec da = decodeBits(f, a);
    // Widen to an even scale so sqrt(2^exp) is exact and the integer
    // root carries ~59 significant bits.
    int t = 118 - highestSetBit(da.mag);
    if ((da.exp - t) & 1)
        ++t;
    const U128 wide = static_cast<U128>(da.mag) << t;
    const U128 root = isqrt(wide);
    const bool inexact = root * root != wide;
    return roundExactRNE(f, false, root, (da.exp - t) / 2, inexact);
}

std::uint64_t
refFma(Format f, std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const FpClass cc = classify(f, c);
    if (ca == FpClass::NaN || cb == FpClass::NaN || cc == FpClass::NaN)
        return quietNaN(f);
    const bool ps = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::Inf || cb == FpClass::Inf) {
        if (ca == FpClass::Zero || cb == FpClass::Zero)
            return quietNaN(f);
        if (cc == FpClass::Inf && signOf(f, c) != ps)
            return quietNaN(f);
        return infinity(f, ps);
    }
    if (cc == FpClass::Inf)
        return c;

    const Dec da = decodeBits(f, a);
    const Dec db = decodeBits(f, b);
    const Dec dc = decodeBits(f, c);
    const U128 prod = static_cast<U128>(da.mag) * db.mag;  // exact
    const int pe = da.exp + db.exp;
    const bool cs = dc.sign;

    if (prod == 0) {
        if (dc.mag == 0)
            return ps == cs ? zero(f, ps) : zero(f, false);
        return roundExactRNE(f, cs, dc.mag, dc.exp, false);
    }
    if (dc.mag == 0)
        return roundExactRNE(f, ps, prod, pe, false);

    const int d = pe - dc.exp;
    U256 x, y;  // x carries the product's sign, y the addend's
    int scale;
    if (d >= 0) {
        if (d > 140) {
            // Addend below a quarter of the product's pre-scaled LSB.
            const U128 p4 = prod << 2;
            if (ps == cs)
                return roundExactRNE(f, ps, p4, pe - 2, true);
            return roundExactRNE(f, ps, p4 - 1, pe - 2, true);
        }
        x = shl256(prod, d);
        y = {0, dc.mag};
        scale = dc.exp;
    } else {
        if (-d > 140) {
            // Product below a quarter of the addend's pre-scaled LSB.
            const U128 c4 = static_cast<U128>(dc.mag) << 2;
            if (ps == cs)
                return roundExactRNE(f, cs, c4, dc.exp - 2, true);
            return roundExactRNE(f, cs, c4 - 1, dc.exp - 2, true);
        }
        x = {0, prod};
        y = shl256(static_cast<U128>(dc.mag), -d);
        scale = pe;
    }

    if (ps == cs)
        return roundU256(f, ps, add256(x, y), scale, false);
    const int cmp = cmp256(x, y);
    if (cmp == 0)
        return zero(f, false);  // exact cancellation: +0 under RNE
    if (cmp > 0)
        return roundU256(f, ps, sub256(x, y), scale, false);
    return roundU256(f, cs, sub256(y, x), scale, false);
}

std::uint64_t
refConvert(Format dst, Format src, std::uint64_t a)
{
    const FpClass ca = classify(src, a);
    const bool sign = signOf(src, a);
    if (ca == FpClass::NaN)
        return quietNaN(dst);
    if (ca == FpClass::Inf)
        return infinity(dst, sign);
    if (ca == FpClass::Zero)
        return zero(dst, sign);
    const Dec da = decodeBits(src, a);
    return roundExactRNE(dst, sign, da.mag, da.exp, false);
}

// ------------------------------------------------- transcendental mirror
//
// Reference re-derivation of the fpExp/fpLog algorithm spec
// (softfloat.hh) on top of the reference primitives. Constants,
// degrees, range checks and operation order mirror the documented
// algorithm; the arithmetic underneath is the exact oracle's. A
// mismatch therefore indicts either a primitive the chain executes or
// a drift between src/fp/transcendental.cc and its spec.

std::uint64_t
refFromDouble(Format f, double v)
{
    const auto bits = std::bit_cast<std::uint64_t>(v);
    if (f == kDouble)
        return bits;
    return refConvert(f, kDouble, bits);
}

double
refToDouble(Format f, std::uint64_t a)
{
    if (f == kDouble)
        return std::bit_cast<double>(a);
    return std::bit_cast<double>(refConvert(kDouble, f, a));
}

int
refExpDegree(Format f)
{
    if (f == kHalf)
        return 4;
    if (f == kSingle)
        return 6;
    return 13;
}

std::uint64_t
refScaleByPow2(Format f, std::uint64_t x, long k)
{
    while (k != 0) {
        long step = std::clamp<long>(k, f.minExp(), f.maxExp());
        const std::uint64_t factor = packFields(
            f, false, static_cast<int>(step) + f.bias(), 0);
        x = refMul(f, x, factor);
        k -= step;
        if (isZero(f, x) || isInf(f, x) || isNaN(f, x))
            break;
    }
    return x;
}

std::uint64_t
refExp(Format f, std::uint64_t a)
{
    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return signOf(f, a) ? zero(f, false) : a;
    if (ca == FpClass::Zero)
        return fp::one(f);

    const double xd = refToDouble(f, a);
    if (xd > (f.maxExp() + 1) * std::log(2.0))
        return infinity(f, false);
    if (xd < (f.minExp() - static_cast<int>(f.manBits) - 1) *
                 std::log(2.0))
        return zero(f, false);

    const std::uint64_t log2e = refFromDouble(f, 1.4426950408889634);
    const std::uint64_t neg_ln2_hi =
        refFromDouble(f, -0x1.62e42fefa38p-1);
    const std::uint64_t neg_ln2_lo =
        refFromDouble(f, -0x1.ef35793c7673p-45);

    const std::uint64_t t = refMul(f, a, log2e);
    const double td = refToDouble(f, t);
    const double k_limit = 2.0 * (f.maxExp() + f.manBits + 2);
    const long k = std::isfinite(td)
                       ? std::lround(std::clamp(td, -k_limit, k_limit))
                       : 0;
    const std::uint64_t kf =
        refFromDouble(f, static_cast<double>(k));

    std::uint64_t r = refFma(f, kf, neg_ln2_hi, a);
    r = refFma(f, kf, neg_ln2_lo, r);

    const int deg = refExpDegree(f);
    double inv_fact = 1.0;
    std::vector<std::uint64_t> coeff(static_cast<std::size_t>(deg) + 1);
    for (int i = 0; i <= deg; ++i) {
        if (i > 1)
            inv_fact /= i;
        coeff[static_cast<std::size_t>(i)] = refFromDouble(f, inv_fact);
    }
    std::uint64_t p = coeff[static_cast<std::size_t>(deg)];
    for (int i = deg - 1; i >= 0; --i)
        p = refFma(f, p, r, coeff[static_cast<std::size_t>(i)]);

    return refScaleByPow2(f, p, k);
}

std::uint64_t
refLog(Format f, std::uint64_t a)
{
    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Zero)
        return infinity(f, true);
    if (signOf(f, a))
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return a;

    // Normalise so the leading bit sits at manBits, mirroring the
    // spec's m in [1, 2) times 2^k decomposition.
    Dec u = decodeBits(f, a);
    const int up = static_cast<int>(f.manBits) - highestSetBit(u.mag);
    u.mag <<= up;
    u.exp -= up;
    long k = u.exp + static_cast<int>(f.manBits);
    std::uint64_t m =
        packFields(f, false, f.bias(), u.mag & f.manMask());
    const std::uint64_t sqrt2 = refFromDouble(f, 1.4142135623730951);
    // IEEE "less" on positive finite patterns is a plain value compare.
    if (!(refToDouble(f, m) < refToDouble(f, sqrt2))) {
        m = refMul(f, m, refFromDouble(f, 0.5));
        ++k;
    }

    const std::uint64_t one_v = fp::one(f);
    const std::uint64_t tt =
        refDiv(f, refAdd(f, m, one_v, true), refAdd(f, m, one_v, false));
    const std::uint64_t t2 = refMul(f, tt, tt);

    const int terms = f == kHalf ? 3 : f == kSingle ? 6 : 10;
    std::uint64_t poly = refFromDouble(f, 1.0 / (2.0 * terms + 1.0));
    for (int i = terms - 1; i >= 0; --i) {
        poly = refFma(f, poly, t2,
                      refFromDouble(f, 1.0 / (2.0 * i + 1.0)));
    }
    std::uint64_t ln_m =
        refMul(f, refMul(f, tt, poly), refFromDouble(f, 2.0));

    const std::uint64_t kf = refFromDouble(f, static_cast<double>(k));
    const std::uint64_t ln2 = refFromDouble(f, 0.6931471805599453);
    return refFma(f, kf, ln2, ln_m);
}

} // namespace

OracleResult
exactOracle(const Case &c)
{
    switch (c.op) {
      case VOp::Add:
        return {true, refAdd(c.fmt, c.a, c.b, false)};
      case VOp::Sub:
        return {true, refAdd(c.fmt, c.a, c.b, true)};
      case VOp::Mul:
        return {true, refMul(c.fmt, c.a, c.b)};
      case VOp::Div:
        return {true, refDiv(c.fmt, c.a, c.b)};
      case VOp::Fma:
        return {true, refFma(c.fmt, c.a, c.b, c.c)};
      case VOp::Sqrt:
        return {true, refSqrt(c.fmt, c.a)};
      case VOp::Exp:
        return {true, refExp(c.fmt, c.a)};
      case VOp::Log:
        return {true, refLog(c.fmt, c.a)};
      case VOp::Convert:
        return {true, refConvert(c.dst, c.fmt, c.a)};
      case VOp::NumOps:
        break;
    }
    return {};
}

} // namespace mparch::verify
