file(REMOVE_RECURSE
  "CMakeFiles/mparch_fpga.dir/fpga.cc.o"
  "CMakeFiles/mparch_fpga.dir/fpga.cc.o.d"
  "CMakeFiles/mparch_fpga.dir/opcost.cc.o"
  "CMakeFiles/mparch_fpga.dir/opcost.cc.o.d"
  "libmparch_fpga.a"
  "libmparch_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
