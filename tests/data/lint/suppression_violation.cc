// Fixture: malformed suppression comments — an allow() without a
// reason and an allow() naming an unknown rule. Both are findings of
// the lint-suppression pseudo-rule (which cannot itself be waived).

namespace fixture {

// mparch-lint: allow(banned-api)
inline int noReason() { return 1; }

// mparch-lint: allow(no-such-rule): the rule name is wrong
inline int unknownRule() { return 2; }

} // namespace fixture
