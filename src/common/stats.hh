/**
 * @file
 * Streaming statistics and interval estimators for campaign results.
 *
 * Fault-injection campaigns produce Bernoulli outcomes (propagated /
 * masked) and beam campaigns produce Poisson counts; both need
 * confidence intervals so that "single > double" style conclusions in
 * EXPERIMENTS.md are statistically grounded, as in the paper's
 * methodology.
 */

#ifndef MPARCH_COMMON_STATS_HH
#define MPARCH_COMMON_STATS_HH

#include <cstdint>

namespace mparch {

/** Closed interval [lo, hi]. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    /** True if @p x lies inside the interval. */
    bool contains(double x) const { return x >= lo && x <= hi; }
};

/**
 * Welford streaming mean/variance accumulator.
 *
 * Numerically stable for long campaigns; O(1) memory.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void push(double x);

    /** Number of samples seen so far. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Standard error of the mean. */
    double stderrMean() const;

    /** Normal-approximation 95% CI for the mean. */
    Interval ci95() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Wilson score 95% interval for a binomial proportion.
 *
 * Used for AVF/PVF estimates: @p hits propagated faults out of
 * @p trials injections.
 */
Interval wilson95(std::uint64_t hits, std::uint64_t trials);

/**
 * Normal-approximation 95% interval for a Poisson rate.
 *
 * Used for FIT estimates: @p events errors over @p exposure units of
 * fluence/time. Falls back to the exact-ish Garwood bound behaviour
 * for tiny counts by clamping the lower bound at zero.
 */
Interval poissonRate95(std::uint64_t events, double exposure);

} // namespace mparch

#endif // MPARCH_COMMON_STATS_HH
