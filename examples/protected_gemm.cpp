/**
 * @file
 * Protecting a kernel: wrap the GEMM in DWC, TMR or ABFT and watch
 * what each scheme does to the fault-injection outcome mix — the
 * follow-up question the paper's discussion leaves the reader with
 * ("lower precision is faster and fails rarer, but fails worse; what
 * does protection cost?").
 *
 *   $ ./protected_gemm [precision] [trials]
 */

#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "fault/campaign.hh"
#include "mitigation/abft.hh"
#include "mitigation/replicated.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;

    fp::Precision precision = fp::Precision::Half;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "double"))
            precision = fp::Precision::Double;
        else if (!std::strcmp(argv[1], "single"))
            precision = fp::Precision::Single;
        else if (!std::strcmp(argv[1], "bfloat16"))
            precision = fp::Precision::Bfloat16;
    }
    fault::CampaignConfig config;
    config.trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : 400;

    std::cout << "GEMM at " << fp::precisionName(precision)
              << " under CAROL-FI memory injection, "
              << config.trials << " trials per variant\n\n";

    struct Variant
    {
        const char *label;
        workloads::WorkloadPtr w;
    };
    std::vector<Variant> variants;
    variants.push_back(
        {"unprotected",
         workloads::makeWorkload("mxm", precision, 0.15)});
    variants.push_back(
        {"dwc (2x)", mitigation::makeReplicated(
                         mitigation::Redundancy::Dwc, "mxm",
                         precision, 0.15)});
    variants.push_back(
        {"tmr (3x)", mitigation::makeReplicated(
                         mitigation::Redundancy::Tmr, "mxm",
                         precision, 0.15)});
    variants.push_back(
        {"abft (~1.3x)", mitigation::makeAbftMxM(precision, 0.15)});

    Table table({"variant", "masked", "sdc", "detected", "due",
                 "critical(>1%) avf"});
    for (auto &variant : variants) {
        const auto r = fault::runMemoryCampaign(*variant.w, config);
        table.row()
            .cell(variant.label)
            .cell(static_cast<std::int64_t>(r.masked))
            .cell(static_cast<std::int64_t>(r.sdc))
            .cell(static_cast<std::int64_t>(r.detected))
            .cell(static_cast<std::int64_t>(r.due))
            .cell(r.avfSdc() * r.survivingFraction(0.01), 3);
    }
    table.print(std::cout);

    std::cout
        << "\nHow to read it:\n"
        << " - TMR's voter erases the fault (sdc -> masked) at 3x "
           "arithmetic;\n"
        << " - DWC can't correct, but converts silent corruption "
           "into detections;\n"
        << " - ABFT corrects single elements cheaply, yet its "
           "checksum tolerance must\n"
        << "   absorb rounding noise, which at low precision hides "
           "real corruption too\n"
        << "   (compare its critical column across precisions).\n";
    return 0;
}
