/**
 * @file
 * Log-bucketed histogram for SDC deviation corpora.
 *
 * Output deviations span many decades (1e-16 ulp noise up to
 * infinite, for NaN outputs), so the natural presentation is one
 * bucket per decade — the same shape the TRE curves integrate.
 */

#ifndef MPARCH_COMMON_HISTOGRAM_HH
#define MPARCH_COMMON_HISTOGRAM_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace mparch {

/** Decade-bucketed histogram over positive values. */
class LogHistogram
{
  public:
    /**
     * @param lo_exp First bucket covers [10^lo_exp, 10^(lo_exp+1)).
     * @param buckets Number of decade buckets; values below the
     *                first bucket land in an underflow bin, values
     *                above (and infinities) in an overflow bin.
     */
    LogHistogram(int lo_exp, int buckets)
        : loExp_(lo_exp), counts_(static_cast<std::size_t>(buckets) + 2)
    {
        MPARCH_ASSERT(buckets > 0, "histogram needs buckets");
    }

    /** Add one sample (must be >= 0; 0 counts as underflow). */
    void
    add(double value)
    {
        ++total_;
        if (!(value > 0.0)) {
            ++counts_.front();
            return;
        }
        if (std::isinf(value)) {
            ++counts_.back();
            return;
        }
        const int decade =
            static_cast<int>(std::floor(std::log10(value)));
        const int idx = decade - loExp_;
        if (idx < 0)
            ++counts_.front();
        else if (idx >= static_cast<int>(counts_.size()) - 2)
            ++counts_.back();
        else
            ++counts_[static_cast<std::size_t>(idx) + 1];
    }

    /** Total samples added. */
    std::uint64_t total() const { return total_; }

    /** Count in decade bucket @p i (0-based, excluding under/over). */
    std::uint64_t
    bucket(int i) const
    {
        return counts_[static_cast<std::size_t>(i) + 1];
    }

    /** Samples below the first bucket (including zeros). */
    std::uint64_t underflow() const { return counts_.front(); }

    /** Samples above the last bucket (including infinities). */
    std::uint64_t overflow() const { return counts_.back(); }

    /** Number of decade buckets. */
    int bucketCount() const
    {
        return static_cast<int>(counts_.size()) - 2;
    }

    /** Label of bucket @p i, e.g. "[1e-4,1e-3)". */
    std::string
    bucketLabel(int i) const
    {
        return "[1e" + std::to_string(loExp_ + i) + ",1e" +
               std::to_string(loExp_ + i + 1) + ")";
    }

    /** ASCII bar rendering, one line per non-empty bucket. */
    std::string render(int width = 40) const;

  private:
    int loExp_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace mparch

#endif // MPARCH_COMMON_HISTOGRAM_HH
