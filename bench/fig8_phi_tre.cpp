/**
 * @file
 * Reproduces Figure 8: FIT reduction vs TRE for LavaMD, MxM and LUD
 * on the Xeon Phi.
 *
 * Shape targets: double enjoys the better FIT reduction for LUD and
 * (marginally) MxM. The paper additionally measures an *inversion*
 * for LavaMD — single reducing faster than double — which it
 * attributes to the double build's heavier use of the KNC's
 * table-based transcendental unit, whose faults are catastrophic.
 * Our software polynomial exp() attenuates in-chain faults instead,
 * so the inversion does not emerge; EXPERIMENTS.md records this as a
 * known deviation.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 500, 0.3);
    bench::banner("Figure 8: Xeon Phi FIT reduction vs TRE",
                  "double reduces faster for LUD and (slightly) MxM; "
                  "paper's LavaMD inversion is a documented deviation");

    for (const std::string name : {"lavamd", "mxm", "lud"}) {
        const auto result =
            bench::study(core::Architecture::XeonPhi, name, args);
        const auto *d = result.find(fp::Precision::Double);
        const auto *s = result.find(fp::Precision::Single);
        Table table({"tre", "double-remaining", "single-remaining"});
        table.setTitle(name);
        for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
            table.row()
                .cell(d->tre.thresholds[i], 4)
                .cell(d->tre.remaining[i], 3)
                .cell(s->tre.remaining[i], 3);
        }
        table.print(std::cout);
    }

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
