/**
 * @file
 * MNIST-like convolutional classifier.
 *
 * Topology (LeNet-flavoured, scaled to the 12x12 synthetic digit
 * task): conv 6@3x3 + ReLU -> maxpool 2x2 -> dense 150->32 + ReLU ->
 * dense 32->10 logits. The network is trained once in host double
 * precision by SGD with softmax cross-entropy; the trained weights
 * are then *converted* (never retrained) to half/single/double
 * softfloat for the reliability experiments — the paper's protocol
 * for isolating mixed-precision effects (Section 3.1).
 */

#ifndef MPARCH_NN_MNISTNET_HH
#define MPARCH_NN_MNISTNET_HH

#include <array>
#include <cstdint>
#include <vector>

#include "nn/digits.hh"
#include "nn/tensor.hh"

namespace mparch::nn {

/** Topology constants. */
inline constexpr std::size_t kConvFilters = 6;
inline constexpr std::size_t kKernel = 3;
inline constexpr std::size_t kConvOut = kDigitSize - kKernel + 1;  // 10
inline constexpr std::size_t kPoolOut = kConvOut / 2;              // 5
inline constexpr std::size_t kFlat =
    kConvFilters * kPoolOut * kPoolOut;                            // 150
inline constexpr std::size_t kHidden = 32;

/** Trained parameters, in host double precision. */
struct MnistParams
{
    std::vector<double> convW;  ///< [filters][ky][kx]
    std::vector<double> convB;  ///< [filters]
    std::vector<double> fc1W;   ///< [hidden][flat]
    std::vector<double> fc1B;   ///< [hidden]
    std::vector<double> fc2W;   ///< [classes][hidden]
    std::vector<double> fc2B;   ///< [classes]
};

/** SGD training configuration. */
struct TrainConfig
{
    std::uint64_t seed = 2019;
    std::size_t samples = 1500;  ///< training set size
    std::size_t epochs = 15;
    double learningRate = 0.05;
    double noise = 0.15;  ///< dataset pixel noise
};

/**
 * Train the classifier with backpropagation (conv included) on the
 * synthetic digit task. Deterministic for a given config.
 */
MnistParams trainMnist(const TrainConfig &config = {});

/** Host-double inference: logits for one image. */
std::array<double, kDigitClasses>
inferHost(const MnistParams &params,
          const std::array<double, kDigitSize * kDigitSize> &pixels);

/** Classification accuracy over @p count fresh samples. */
double evaluateHostAccuracy(const MnistParams &params,
                            std::size_t count, std::uint64_t seed,
                            double noise = 0.15);

/**
 * The classifier at softfloat precision P, weights converted from a
 * trained MnistParams.
 */
template <fp::Precision P>
class MnistNet
{
  public:
    using Value = fp::Fp<P>;

    /** Convert trained parameters into precision P. */
    explicit MnistNet(const MnistParams &params)
    {
        auto load = [](std::vector<Value> &dst,
                       const std::vector<double> &src) {
            dst.resize(src.size());
            for (std::size_t i = 0; i < src.size(); ++i)
                dst[i] = Value::fromDouble(src[i]);
        };
        load(convW_, params.convW);
        load(convB_, params.convB);
        load(fc1W_, params.fc1W);
        load(fc1B_, params.fc1B);
        load(fc2W_, params.fc2W);
        load(fc2B_, params.fc2B);
    }

    /**
     * Forward pass entirely in softfloat precision P.
     *
     * @param pixels Image encoded at precision P (row-major 12x12).
     * @param logits Output array of kDigitClasses logits.
     */
    void
    infer(const std::vector<Value> &pixels,
          std::array<Value, kDigitClasses> &logits) const
    {
        // conv + ReLU + 2x2 maxpool
        std::array<Value, kFlat> flat{};
        for (std::size_t filt = 0; filt < kConvFilters; ++filt) {
            for (std::size_t py = 0; py < kPoolOut; ++py) {
                for (std::size_t px = 0; px < kPoolOut; ++px) {
                    Value best{};
                    bool first = true;
                    for (std::size_t wy = 0; wy < 2; ++wy) {
                        for (std::size_t wx = 0; wx < 2; ++wx) {
                            const std::size_t oy = 2 * py + wy;
                            const std::size_t ox = 2 * px + wx;
                            Value acc = convB_[filt];
                            for (std::size_t ky = 0; ky < kKernel;
                                 ++ky) {
                                for (std::size_t kx = 0; kx < kKernel;
                                     ++kx) {
                                    acc = fma(
                                        convW_[(filt * kKernel + ky) *
                                                   kKernel + kx],
                                        pixels[(oy + ky) * kDigitSize +
                                               ox + kx],
                                        acc);
                                }
                            }
                            if (acc < Value{})  // ReLU
                                acc = Value{};
                            if (first || best < acc) {
                                best = acc;
                                first = false;
                            }
                        }
                    }
                    flat[(filt * kPoolOut + py) * kPoolOut + px] =
                        best;
                }
            }
        }

        // dense 150 -> 32 + ReLU
        std::array<Value, kHidden> hidden{};
        for (std::size_t h = 0; h < kHidden; ++h) {
            Value acc = fc1B_[h];
            for (std::size_t i = 0; i < kFlat; ++i)
                acc = fma(fc1W_[h * kFlat + i], flat[i], acc);
            hidden[h] = acc < Value{} ? Value{} : acc;
        }

        // dense 32 -> 10 logits
        for (std::size_t c = 0; c < kDigitClasses; ++c) {
            Value acc = fc2B_[c];
            for (std::size_t h = 0; h < kHidden; ++h)
                acc = fma(fc2W_[c * kHidden + h], hidden[h], acc);
            logits[c] = acc;
        }
    }

    /** Weight buffers, exposed for fault injection. */
    std::vector<Value> &convW() { return convW_; }
    std::vector<Value> &convB() { return convB_; }
    std::vector<Value> &fc1W() { return fc1W_; }
    std::vector<Value> &fc1B() { return fc1B_; }
    std::vector<Value> &fc2W() { return fc2W_; }
    std::vector<Value> &fc2B() { return fc2B_; }

  private:
    std::vector<Value> convW_, convB_, fc1W_, fc1B_, fc2W_, fc2B_;
};

/** Index of the largest logit (ties to the lower index). */
template <fp::Precision P>
std::size_t
argmaxLogits(const std::array<fp::Fp<P>, kDigitClasses> &logits)
{
    std::size_t best = 0;
    for (std::size_t c = 1; c < kDigitClasses; ++c)
        if (logits[best] < logits[c])
            best = c;
    return best;
}

} // namespace mparch::nn

#endif // MPARCH_NN_MNISTNET_HH
