/**
 * @file
 * rng-discipline: all randomness flows through common/rng.
 *
 * The whole reproduction depends on bit-identical random streams:
 * std engine types (mt19937, ...) have implementation-defined
 * distribution behaviour, so any draw through <random> machinery can
 * differ between libstdc++ and libc++ builds. Three checks:
 *
 *  1. No std random engine / distribution / seed_seq / std::shuffle
 *     anywhere — mparch::Rng is the only generator.
 *  2. No default-constructed Rng at function scope: a bare `Rng r;`
 *     silently shares the library-wide default seed with every other
 *     bare Rng, entangling streams that must be independent.
 *  3. In the trial machinery (src/fault/, src/core/), every Rng must
 *     be derived from the counter-based trialRng(seed, index) (or
 *     fork()/mix() thereof): a sequentially shared stream would make
 *     trial results depend on execution order, breaking resume and
 *     --jobs invariance.
 */

#include "analysis/rules.hh"

namespace mparch::analysis {

namespace {

const char *const kStdRandomTypes[] = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "ranlux24", "ranlux24_base", "ranlux48", "ranlux48_base",
    "knuth_b", "default_random_engine", "seed_seq",
    "uniform_int_distribution", "uniform_real_distribution",
    "normal_distribution", "bernoulli_distribution",
    "poisson_distribution", "exponential_distribution",
    "geometric_distribution", "binomial_distribution",
    "negative_binomial_distribution", "discrete_distribution",
    "gamma_distribution", "weibull_distribution",
    "extreme_value_distribution", "lognormal_distribution",
    "chi_squared_distribution", "cauchy_distribution",
    "fisher_f_distribution", "student_t_distribution",
    "piecewise_constant_distribution", "piecewise_linear_distribution",
};

bool
isStdRandomType(const Token &t)
{
    if (t.kind != TokKind::Identifier &&
        t.kind != TokKind::HeaderName)
        return false;
    for (const char *name : kStdRandomTypes)
        if (t.text == name)
            return true;
    return false;
}

/** Does [begin, end) mention a counter-derived stream source? */
bool
mentionsDerivedStream(const std::vector<Token> &code, std::size_t begin,
                      std::size_t end)
{
    for (std::size_t j = begin; j < end && j < code.size(); ++j) {
        const Token &t = code[j];
        if (t.isIdent("trialRng") || t.isIdent("fork") ||
            t.isIdent("mix"))
            return true;
    }
    return false;
}

class RngDisciplineRule final : public Rule
{
  public:
    const char *name() const override { return "rng-discipline"; }

    const char *
    summary() const override
    {
        return "randomness only via mparch::Rng; trial code derives "
               "streams from trialRng(seed, index)";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        const auto &code = file.code;
        const bool trialTree =
            file.pathHas("src/fault") || file.pathHas("src/core");
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = code[i];
            if (isStdRandomType(t)) {
                Finding f;
                f.rule = name();
                f.path = file.path;
                f.line = t.line;
                f.col = t.col;
                f.message =
                    "std <random> machinery (" + t.text +
                    ") is not bit-portable across standard libraries";
                f.hint = "use mparch::Rng from common/rng.hh; its "
                         "distribution helpers are bit-identical "
                         "everywhere";
                out.push_back(std::move(f));
                continue;
            }
            if (t.isIdent("shuffle") &&
                detail::stdQualified(code, i)) {
                Finding f;
                f.rule = name();
                f.path = file.path;
                f.line = t.line;
                f.col = t.col;
                f.message = "std::shuffle draws from the URBG in an "
                            "implementation-defined way";
                f.hint = "write a Fisher-Yates loop over "
                         "Rng::below(i + 1) instead";
                out.push_back(std::move(f));
                continue;
            }
            if (!t.isIdent("Rng") || detail::memberAccess(code, i))
                continue;
            checkRngConstruction(file, i, trialTree, out);
        }
    }

  private:
    void
    checkRngConstruction(const SourceFile &file, std::size_t i,
                         bool trialTree,
                         std::vector<Finding> &out) const
    {
        const auto &code = file.code;
        const ScopeKind scope = file.scope[i];
        const bool inFunction = scope == ScopeKind::Function ||
                                scope == ScopeKind::Block;
        // `Rng r;` / `Rng r{};` / `Rng()` — default construction.
        if (inFunction && i + 2 < code.size() &&
            code[i + 1].kind == TokKind::Identifier &&
            (code[i + 2].isPunct(";") ||
             (code[i + 2].isPunct("{") && i + 3 < code.size() &&
              code[i + 3].isPunct("}")))) {
            Finding f;
            f.rule = name();
            f.path = file.path;
            f.line = code[i].line;
            f.col = code[i].col;
            f.message =
                "default-constructed Rng shares the library-wide "
                "default seed with every other bare Rng";
            f.hint = "seed explicitly, or derive an independent "
                     "stream via trialRng(seed, index) or "
                     "parent.fork()";
            out.push_back(std::move(f));
            return;
        }
        if (!trialTree || !inFunction)
            return;
        // Trial machinery: Rng x(expr...) / Rng x = expr...; must
        // reference trialRng/fork/mix somewhere in the initializer.
        if (i + 2 >= code.size() ||
            code[i + 1].kind != TokKind::Identifier)
            return;
        std::size_t initBegin = 0, initEnd = 0;
        if (code[i + 2].isPunct("(")) {
            initBegin = i + 2;
            initEnd = detail::matchParen(code, i + 2);
        } else if (code[i + 2].isPunct("=")) {
            initBegin = i + 3;
            initEnd = initBegin;
            while (initEnd < code.size() &&
                   !code[initEnd].isPunct(";"))
                ++initEnd;
        } else {
            return;
        }
        if (mentionsDerivedStream(code, initBegin, initEnd + 1))
            return;
        Finding f;
        f.rule = name();
        f.path = file.path;
        f.line = code[i].line;
        f.col = code[i].col;
        f.message =
            "trial machinery seeds an Rng ad hoc — per-trial streams "
            "must come from the counter-based trialRng(seed, index)";
        f.hint = "use trialRng(seed, index) (or fork()/Rng::mix of "
                 "an existing stream) so any trial replays "
                 "standalone and sharding cannot reorder draws";
        out.push_back(std::move(f));
    }
};

} // namespace

const Rule &
rngDisciplineRule()
{
    static const RngDisciplineRule rule;
    return rule;
}

} // namespace mparch::analysis
