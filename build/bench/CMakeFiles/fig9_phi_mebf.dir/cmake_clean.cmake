file(REMOVE_RECURSE
  "CMakeFiles/fig9_phi_mebf.dir/fig9_phi_mebf.cpp.o"
  "CMakeFiles/fig9_phi_mebf.dir/fig9_phi_mebf.cpp.o.d"
  "fig9_phi_mebf"
  "fig9_phi_mebf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_phi_mebf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
