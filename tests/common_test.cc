/**
 * @file
 * Tests for the common substrate: RNG, bits, stats, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace mparch {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform)
{
    Rng rng(7);
    constexpr std::uint64_t bound = 10;
    std::array<int, bound> histo{};
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto v = rng.below(bound);
        ASSERT_LT(v, bound);
        ++histo[v];
    }
    for (int count : histo) {
        EXPECT_GT(count, n / 10 - 1000);
        EXPECT_LT(count, n / 10 + 1000);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(8);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stat.push(u);
    }
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
    EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    RunningStat stat;
    for (int i = 0; i < 200000; ++i)
        stat.push(rng.normal(3.0, 2.0));
    EXPECT_NEAR(stat.mean(), 3.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(10);
    for (double mean : {0.5, 4.0, 200.0}) {
        RunningStat stat;
        for (int i = 0; i < 50000; ++i)
            stat.push(static_cast<double>(rng.poisson(mean)));
        EXPECT_NEAR(stat.mean(), mean, mean * 0.05 + 0.05) << mean;
    }
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(11);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

TEST(Bits, MaskExtractFlip)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(3), 7u);
    EXPECT_EQ(maskBits(64), ~0ULL);
    EXPECT_EQ(extractBits(0xabcdULL, 4, 8), 0xbcULL);
    EXPECT_EQ(flipBit<std::uint64_t>(0, 5), 32u);
    EXPECT_EQ(flipBit<std::uint64_t>(32, 5), 0u);
    EXPECT_TRUE(testBit<std::uint64_t>(32, 5));
    EXPECT_EQ(setBit<std::uint64_t>(0, 3, true), 8u);
    EXPECT_EQ(setBit<std::uint64_t>(8, 3, false), 0u);
}

TEST(Bits, HighestSetBit)
{
    EXPECT_EQ(highestSetBit(0), -1);
    EXPECT_EQ(highestSetBit(1), 0);
    EXPECT_EQ(highestSetBit(0x8000000000000000ULL), 63);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(highestSetBit(1ULL << i), i);
}

TEST(Stats, RunningStatBasics)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_TRUE(s.ci95().contains(5.0));
}

TEST(Stats, WilsonIntervalCoversTruth)
{
    // 30 hits out of 100: interval must cover 0.3 and stay in [0,1].
    const Interval iv = wilson95(30, 100);
    EXPECT_TRUE(iv.contains(0.3));
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
    EXPECT_LT(iv.lo, iv.hi);
    // Degenerate cases.
    EXPECT_TRUE(wilson95(0, 0).contains(0.5));
    const Interval zero_hits = wilson95(0, 50);
    EXPECT_LT(zero_hits.lo, 1e-12);
    EXPECT_GT(zero_hits.hi, 0.0);
}

TEST(Stats, WilsonShrinksWithSamples)
{
    const Interval small = wilson95(5, 10);
    const Interval big = wilson95(500, 1000);
    EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(Stats, PoissonRateInterval)
{
    const Interval iv = poissonRate95(100, 10.0);
    EXPECT_TRUE(iv.contains(10.0));
    EXPECT_GT(iv.lo, 5.0);
    EXPECT_LT(iv.hi, 15.0);
    EXPECT_DOUBLE_EQ(poissonRate95(0, 0.0).lo, 0.0);
}

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.setTitle("demo");
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b").cell(std::int64_t{42});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvQuoting)
{
    Table t({"a", "b"});
    t.row().cell("x,y").cell("plain");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

} // namespace
} // namespace mparch
