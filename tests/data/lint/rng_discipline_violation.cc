// Fixture: rng-discipline violations — std <random> machinery and a
// default-constructed Rng at function scope.

#include <random>

#include "common/rng.hh"

namespace fixture {

double
adHocDraws()
{
    std::mt19937 gen(1234);                      // std engine
    std::uniform_real_distribution<double> d;    // std distribution
    mparch::Rng bare;                            // default-constructed
    return d(gen) + bare.uniform();
}

} // namespace fixture
