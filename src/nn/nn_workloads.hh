/**
 * @file
 * Workload adapters for the CNN benchmarks (MNIST-like classifier and
 * the YOLite detector), so the fault-injection campaigns and the
 * architecture models drive them exactly like the numeric kernels.
 *
 * SDC severity semantics follow the paper:
 *  - MNIST (Figure 3): Tolerable = output corrupted, classification
 *    intact; CriticalChange = classification flipped.
 *  - YOLO (Figure 11c): Tolerable; DetectionChange = boxes appear,
 *    vanish or move; CriticalChange = a detected object's class flips.
 */

#ifndef MPARCH_NN_NN_WORKLOADS_HH
#define MPARCH_NN_NN_WORKLOADS_HH

#include <memory>
#include <string>

#include "workloads/workload.hh"

namespace mparch::nn {

/**
 * Lazily train (once per process) and cache the classifier weights
 * used by every MNIST workload instance.
 */
const struct MnistParams &pretrainedMnist();

/**
 * Instantiate a CNN workload.
 *
 * Known names: "mnist" (classifier, batch of 4 digits per
 * execution), "yolite" (detector, batch of 2 scenes per execution).
 *
 * @param scale Batch-size knob (1.0 = default batch).
 */
workloads::WorkloadPtr makeNnWorkload(const std::string &name,
                                      fp::Precision p,
                                      double scale = 1.0);

/**
 * Factory covering both numeric and CNN benchmarks: tries the
 * numeric registry names first, then "mnist"/"yolite".
 */
workloads::WorkloadPtr makeAnyWorkload(const std::string &name,
                                       fp::Precision p,
                                       double scale = 1.0);

} // namespace mparch::nn

#endif // MPARCH_NN_NN_WORKLOADS_HH
