# Empty compiler generated dependencies file for fig12_gpu_avf.
# This may be replaced when dependencies are built.
