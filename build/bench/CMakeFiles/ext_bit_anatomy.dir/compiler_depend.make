# Empty compiler generated dependencies file for ext_bit_anatomy.
# This may be replaced when dependencies are built.
