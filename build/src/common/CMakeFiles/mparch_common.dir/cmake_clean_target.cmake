file(REMOVE_RECURSE
  "libmparch_common.a"
)
