/**
 * @file
 * Tests for the top-level study API.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/study.hh"

namespace mparch::core {
namespace {

using fp::Precision;

TEST(StudyConfigTest, SupportedPrecisions)
{
    EXPECT_EQ(supportedPrecisions(Architecture::Fpga).size(), 3u);
    EXPECT_EQ(supportedPrecisions(Architecture::Gpu).size(), 3u);
    const auto phi = supportedPrecisions(Architecture::XeonPhi);
    ASSERT_EQ(phi.size(), 2u);
    EXPECT_EQ(phi[0], Precision::Double);
    EXPECT_EQ(phi[1], Precision::Single);
}

TEST(StudyConfigTest, ArchitectureNames)
{
    EXPECT_STREQ(architectureName(Architecture::Fpga), "fpga");
    EXPECT_STREQ(architectureName(Architecture::XeonPhi), "xeon-phi");
    EXPECT_STREQ(architectureName(Architecture::Gpu), "gpu");
}

TEST(StudyRunTest, GpuStudyPopulatesAllRows)
{
    StudyConfig config;
    config.arch = Architecture::Gpu;
    config.workload = "micro-mul";
    config.trials = 80;
    config.scale = 0.1;
    const StudyResult result = runStudy(config);
    ASSERT_EQ(result.rows.size(), 3u);
    for (const auto &row : result.rows) {
        EXPECT_GT(row.fitSdc, 0.0);
        EXPECT_GT(row.timeSeconds, 0.0);
        EXPECT_GT(row.mebf, 0.0);
        EXPECT_GT(row.avfDatapath, 0.0);
        EXPECT_FALSE(row.tre.remaining.empty());
    }
    EXPECT_NE(result.find(Precision::Half), nullptr);
    EXPECT_EQ(result.find(Precision::Half)->precision,
              Precision::Half);
}

TEST(StudyRunTest, PhiStudySkipsHalf)
{
    StudyConfig config;
    config.arch = Architecture::XeonPhi;
    config.workload = "lud";
    config.trials = 60;
    config.scale = 0.1;
    const StudyResult result = runStudy(config);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.find(Precision::Half), nullptr);
    EXPECT_GT(result.rows[0].vectorRegisters, 0);
}

TEST(StudyRunTest, FpgaStudyReportsResources)
{
    StudyConfig config;
    config.arch = Architecture::Fpga;
    config.workload = "mxm";
    config.trials = 60;
    config.scale = 0.1;
    config.precisions = {Precision::Single};
    const StudyResult result = runStudy(config);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_GT(result.rows[0].luts, 0.0);
    EXPECT_GT(result.rows[0].dsps, 0.0);
    EXPECT_DOUBLE_EQ(result.rows[0].fitDue, 0.0);
}

TEST(StudyRunTest, ReportRendersEveryPrecision)
{
    StudyConfig config;
    config.arch = Architecture::Gpu;
    config.workload = "micro-add";
    config.trials = 50;
    config.scale = 0.1;
    const StudyResult result = runStudy(config);
    std::ostringstream os;
    result.printReport(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("gpu / micro-add"), std::string::npos);
    EXPECT_NE(text.find("double"), std::string::npos);
    EXPECT_NE(text.find("single"), std::string::npos);
    EXPECT_NE(text.find("half"), std::string::npos);
    EXPECT_NE(text.find("FIT reduction"), std::string::npos);
}

TEST(StudyRunTest, DeterministicAcrossRuns)
{
    StudyConfig config;
    config.arch = Architecture::Gpu;
    config.workload = "micro-fma";
    config.trials = 60;
    config.scale = 0.1;
    config.precisions = {Precision::Single};
    const StudyResult a = runStudy(config);
    const StudyResult b = runStudy(config);
    EXPECT_DOUBLE_EQ(a.rows[0].fitSdc, b.rows[0].fitSdc);
    EXPECT_DOUBLE_EQ(a.rows[0].avfDatapath, b.rows[0].avfDatapath);
}

} // namespace
} // namespace mparch::core
