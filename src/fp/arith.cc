/**
 * @file
 * Rounding core plus add, sub, mul, negation and comparisons.
 */

#include "fp/softfloat.hh"

#include <algorithm>

#include "fp/internal.hh"

namespace mparch::fp {

using detail::U128;
using detail::Unpacked;
using detail::unpackFinite;

std::uint64_t
shiftRightSticky(std::uint64_t v, int n)
{
    MPARCH_ASSERT(n >= 0, "negative sticky shift");
    if (n == 0)
        return v;
    if (n >= 64)
        return v != 0 ? 1 : 0;
    const std::uint64_t lost = v & maskBits(static_cast<unsigned>(n));
    return (v >> n) | (lost ? 1 : 0);
}

unsigned __int128
shiftRightSticky128(unsigned __int128 v, int n)
{
    MPARCH_ASSERT(n >= 0, "negative sticky shift");
    if (n == 0)
        return v;
    if (n >= 128)
        return v != 0 ? 1 : 0;
    const U128 lost = v & ((U128{1} << n) - 1);
    return (v >> n) | (lost ? 1 : 0);
}

namespace {

/** Decide whether to round the magnitude up, per IEEE754 mode. */
bool
roundUp(Rounding mode, bool sign, std::uint64_t low3, bool lsb_odd)
{
    switch (mode) {
      case Rounding::NearestEven:
        return low3 > 4 || (low3 == 4 && lsb_odd);
      case Rounding::TowardZero:
        return false;
      case Rounding::Upward:
        return !sign && low3 != 0;
      case Rounding::Downward:
        return sign && low3 != 0;
    }
    return false;
}

/** Saturated overflow value, per IEEE754 mode. */
std::uint64_t
overflowResult(Format f, Rounding mode, bool sign)
{
    switch (mode) {
      case Rounding::NearestEven:
        return infinity(f, sign);
      case Rounding::TowardZero:
        return maxFinite(f, sign);
      case Rounding::Upward:
        return sign ? maxFinite(f, true) : infinity(f, false);
      case Rounding::Downward:
        return sign ? infinity(f, true) : maxFinite(f, false);
    }
    return infinity(f, sign);
}

} // namespace

std::uint64_t
roundPack(Format f, RawFloat raw, const OpCtx &ctx, OpKind op)
{
    const Rounding mode =
        ctx.rounding();
    // Normalisation target: hidden bit at manBits + 3 leaves three
    // guard/round/sticky positions below the kept significand.
    const int norm_pos = static_cast<int>(f.manBits) + 3;

    if (raw.sig == 0)
        return zero(f, raw.sign);

    int hb = highestSetBit(raw.sig);
    int shift = hb - norm_pos;
    if (shift > 0) {
        raw.sig = shiftRightSticky(raw.sig, shift);
    } else if (shift < 0) {
        raw.sig <<= -shift;
    }
    raw.exp += shift;

    raw.sig = detail::touch(ctx, op, Stage::PreRoundSig,
                            static_cast<unsigned>(norm_pos + 1), raw.sig);
    if (raw.sig == 0)
        return zero(f, raw.sign);
    // A hook may have moved the MSB; re-normalise (inexactness from a
    // perturbed datapath is part of the fault effect being modelled).
    hb = highestSetBit(raw.sig);
    shift = hb - norm_pos;
    if (shift > 0)
        raw.sig = shiftRightSticky(raw.sig, shift);
    else if (shift < 0)
        raw.sig <<= -shift;
    raw.exp += shift;

    // True exponent of the leading bit, then biased.
    std::int64_t biased = static_cast<std::int64_t>(raw.exp) + norm_pos +
                          f.bias();
    biased = static_cast<std::int64_t>(detail::touch(
        ctx, op, Stage::ExponentLogic, f.expBits + 2u,
        static_cast<std::uint64_t>(biased)));

    std::uint64_t result;
    if (biased >= f.maxBiasedExp()) {
        result = overflowResult(f, mode, raw.sign);
    } else if (biased <= 0) {
        // Subnormal (or total underflow): shift out the deficit.
        const std::int64_t deficit = 1 - biased;
        std::uint64_t sig =
            deficit > 63 ? (raw.sig ? 1 : 0)
                         : shiftRightSticky(raw.sig,
                                            static_cast<int>(deficit));
        const std::uint64_t low3 = sig & 7;
        std::uint64_t kept = sig >> 3;
        if (roundUp(mode, raw.sign, low3, kept & 1))
            ++kept;
        // A carry out of the subnormal significand lands exactly on
        // the biased exponent 1 encoding, which is correct.
        result = packFields(f, raw.sign, 0, 0) + kept;
    } else {
        const std::uint64_t low3 = raw.sig & 7;
        std::uint64_t kept = raw.sig >> 3;  // includes hidden bit
        if (roundUp(mode, raw.sign, low3, kept & 1))
            ++kept;
        // Compose via addition so a significand carry bumps the
        // exponent field; re-check for overflow into inf afterwards.
        std::uint64_t body =
            (static_cast<std::uint64_t>(biased - 1) << f.manBits) + kept;
        if ((body >> f.manBits) >= static_cast<std::uint64_t>(
                f.maxBiasedExp())) {
            result = overflowResult(f, mode, raw.sign);
        } else {
            result = (static_cast<std::uint64_t>(raw.sign)
                      << f.signPos()) | body;
        }
    }

    result = detail::touch(ctx, op, Stage::Result, f.totalBits, result) &
             f.valueMask();
    return result;
}

namespace {

/** Shared implementation of add and sub (sub flips b's sign). */
std::uint64_t
addCore(Format f, std::uint64_t a, std::uint64_t b, OpKind op)
{
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();
    b = detail::touch(ctx, op, Stage::OperandB, f.totalBits, b) &
        f.valueMask();
    if (op == OpKind::Sub)
        b ^= 1ULL << f.signPos();

    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf && cb == FpClass::Inf) {
        return signOf(f, a) == signOf(f, b) ? a : quietNaN(f);
    }
    if (ca == FpClass::Inf)
        return a;
    if (cb == FpClass::Inf)
        return b;

    const Rounding mode = ctx.rounding();
    Unpacked ua = unpackFinite(f, a);
    Unpacked ub = unpackFinite(f, b);
    if (ua.sig == 0 && ub.sig == 0) {
        // (+0)+(+0)=+0, (-0)+(-0)=-0; mixed signs give +0 in every
        // mode except roundTowardNegative.
        if (ua.sign == ub.sign)
            return zero(f, ua.sign);
        return zero(f, mode == Rounding::Downward);
    }
    if (ua.sig == 0)
        return roundPack(f, {ub.sign, ub.exp - 3, ub.sig << 3}, ctx, op);
    if (ub.sig == 0)
        return roundPack(f, {ua.sign, ua.exp - 3, ua.sig << 3}, ctx, op);

    // Order so that ua has the larger exponent.
    if (ub.exp > ua.exp)
        std::swap(ua, ub);

    std::uint64_t sa = ua.sig << 3;
    std::uint64_t sb = shiftRightSticky(ub.sig << 3, ua.exp - ub.exp);

    const unsigned sig_width = f.manBits + 5u;
    sa = detail::touch(ctx, op, Stage::AlignedSigA, sig_width, sa);
    sb = detail::touch(ctx, op, Stage::AlignedSigB, sig_width, sb);

    bool sign;
    std::uint64_t sum;
    if (ua.sign == ub.sign) {
        sign = ua.sign;
        sum = sa + sb;
    } else if (sa >= sb) {
        sign = ua.sign;
        sum = sa - sb;
    } else {
        sign = ub.sign;
        sum = sb - sa;
    }
    if (sum == 0) {
        // Exact cancellation of non-zeros: +0 except toward-negative.
        return zero(f, mode == Rounding::Downward);
    }
    return roundPack(f, {sign, ua.exp - 3, sum}, ctx, op);
}

} // namespace

std::uint64_t
fpAdd(Format f, std::uint64_t a, std::uint64_t b)
{
    return addCore(f, a, b, OpKind::Add);
}

std::uint64_t
fpSub(Format f, std::uint64_t a, std::uint64_t b)
{
    return addCore(f, a, b, OpKind::Sub);
}

std::uint64_t
fpMul(Format f, std::uint64_t a, std::uint64_t b)
{
    const OpKind op = OpKind::Mul;
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();
    b = detail::touch(ctx, op, Stage::OperandB, f.totalBits, b) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const bool sign = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf || cb == FpClass::Inf) {
        if (ca == FpClass::Zero || cb == FpClass::Zero)
            return quietNaN(f);
        return infinity(f, sign);
    }
    if (ca == FpClass::Zero || cb == FpClass::Zero)
        return zero(f, sign);

    const Unpacked ua = unpackFinite(f, a);
    const Unpacked ub = unpackFinite(f, b);

    U128 prod = static_cast<U128>(ua.sig) * ub.sig;
    std::uint64_t lo = static_cast<std::uint64_t>(prod);
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 64);
    lo = detail::touch(ctx, op, Stage::ProductLo, 64, lo);
    hi = detail::touch(ctx, op, Stage::ProductHi,
                       2u * (f.manBits + 1u) > 64u
                           ? 2u * (f.manBits + 1u) - 64u : 1u, hi);
    prod = (static_cast<U128>(hi) << 64) | lo;

    int exp = ua.exp + ub.exp;
    // Compress into 64 bits, folding lost bits into sticky.
    std::uint64_t sig;
    if (prod >> 64) {
        const int top = highestSetBit(static_cast<std::uint64_t>(
                            prod >> 64)) + 65;
        const int shift = top - 62;
        prod = shiftRightSticky128(prod, shift);
        exp += shift;
        sig = static_cast<std::uint64_t>(prod);
    } else {
        sig = static_cast<std::uint64_t>(prod);
    }
    if (sig == 0)
        return zero(f, sign);
    return roundPack(f, {sign, exp, sig}, ctx, op);
}

std::uint64_t
fpNeg(Format f, std::uint64_t a)
{
    return (a ^ (1ULL << f.signPos())) & f.valueMask();
}

std::uint64_t
fpAbs(Format f, std::uint64_t a)
{
    return a & (f.valueMask() >> 1);
}

namespace {

/**
 * Map a bit pattern to a signed key that orders like the real line.
 * Requires non-NaN input.
 */
std::int64_t
orderKey(Format f, std::uint64_t bits)
{
    const std::uint64_t mag = bits & (f.valueMask() >> 1);
    const auto smag = static_cast<std::int64_t>(mag);
    return signOf(f, bits) ? -smag : smag;
}

} // namespace

bool
fpEqual(Format f, std::uint64_t a, std::uint64_t b)
{
    if (isNaN(f, a) || isNaN(f, b))
        return false;
    return orderKey(f, a) == orderKey(f, b);
}

bool
fpLess(Format f, std::uint64_t a, std::uint64_t b)
{
    if (isNaN(f, a) || isNaN(f, b))
        return false;
    return orderKey(f, a) < orderKey(f, b);
}

bool
fpLessEqual(Format f, std::uint64_t a, std::uint64_t b)
{
    if (isNaN(f, a) || isNaN(f, b))
        return false;
    return orderKey(f, a) <= orderKey(f, b);
}

} // namespace mparch::fp
