/**
 * @file
 * Workload factory.
 */

#include "workloads/workload.hh"

#include "workloads/hotspot.hh"
#include "workloads/lavamd.hh"
#include "workloads/lud.hh"
#include "workloads/micro.hh"
#include "workloads/mxm.hh"
#include "workloads/mxm_mixed.hh"

namespace mparch::workloads {

const char *
sdcSeverityName(SdcSeverity severity)
{
    switch (severity) {
      case SdcSeverity::Tolerable:       return "tolerable";
      case SdcSeverity::DetectionChange: return "detection-change";
      case SdcSeverity::CriticalChange:  return "critical-change";
    }
    return "?";
}

namespace {

/** Instantiate one benchmark template at a runtime precision. */
template <template <fp::Precision> class W, typename... Args>
WorkloadPtr
dispatch(fp::Precision p, Args &&...args)
{
    switch (p) {
      case fp::Precision::Half:
        return std::make_unique<W<fp::Precision::Half>>(
            std::forward<Args>(args)...);
      case fp::Precision::Single:
        return std::make_unique<W<fp::Precision::Single>>(
            std::forward<Args>(args)...);
      case fp::Precision::Double:
        return std::make_unique<W<fp::Precision::Double>>(
            std::forward<Args>(args)...);
      case fp::Precision::Bfloat16:
        return std::make_unique<W<fp::Precision::Bfloat16>>(
            std::forward<Args>(args)...);
    }
    panic("unknown precision");
}

} // namespace

WorkloadPtr
makeWorkload(const std::string &name, fp::Precision p, double scale)
{
    if (name == "mxm")
        return dispatch<MxMWorkload>(p, scale);
    if (name == "mxm-mixed")
        return std::make_unique<MxMMixedWorkload>(scale);
    if (name == "lavamd")
        return dispatch<LavaMDWorkload>(p, scale);
    if (name == "hotspot")
        return dispatch<HotspotWorkload>(p, scale);
    if (name == "lud")
        return dispatch<LudWorkload>(p, scale);
    if (name == "micro-add")
        return dispatch<MicroWorkload>(p, MicroOp::Add, scale);
    if (name == "micro-mul")
        return dispatch<MicroWorkload>(p, MicroOp::Mul, scale);
    if (name == "micro-fma")
        return dispatch<MicroWorkload>(p, MicroOp::Fma, scale);
    fatal("unknown workload '", name, "'");
}

} // namespace mparch::workloads
