# Empty dependencies file for fig9_phi_mebf.
# This may be replaced when dependencies are built.
