#include "nn/yolite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mparch::nn {

namespace {

constexpr std::array<const char *, kYoliteClasses> kShapes = {
    // square (hollow box)
    "#####"
    "#...#"
    "#...#"
    "#...#"
    "#####",
    // plus
    "..#.."
    "..#.."
    "#####"
    "..#.."
    "..#..",
    // diamond
    "..#.."
    ".#.#."
    "#...#"
    ".#.#."
    "..#..",
};

} // namespace

const std::array<const char *, kYoliteClasses> &
SceneGenerator::shapes()
{
    return kShapes;
}

std::vector<double>
yoliteFilterBank()
{
    std::vector<double> bank(kYoliteClasses * kShapeSize * kShapeSize);
    for (std::size_t cls = 0; cls < kYoliteClasses; ++cls) {
        double mean = 0.0;
        for (std::size_t i = 0; i < kShapeSize * kShapeSize; ++i)
            mean += kShapes[cls][i] == '#' ? 1.0 : 0.0;
        mean /= kShapeSize * kShapeSize;
        double norm = 0.0;
        for (std::size_t i = 0; i < kShapeSize * kShapeSize; ++i) {
            const double v =
                (kShapes[cls][i] == '#' ? 1.0 : 0.0) - mean;
            bank[cls * kShapeSize * kShapeSize + i] = v;
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (std::size_t i = 0; i < kShapeSize * kShapeSize; ++i)
            bank[cls * kShapeSize * kShapeSize + i] /= norm;
    }
    return bank;
}

double
yoliteThreshold()
{
    // Smallest self-response of a clean shape against its own
    // matched filter, scaled back for noise/jitter headroom.
    const std::vector<double> bank = yoliteFilterBank();
    double min_self = 1e300;
    for (std::size_t cls = 0; cls < kYoliteClasses; ++cls) {
        double self = 0.0;
        for (std::size_t i = 0; i < kShapeSize * kShapeSize; ++i) {
            self += bank[cls * kShapeSize * kShapeSize + i] *
                    (kShapes[cls][i] == '#' ? 1.0 : 0.0);
        }
        min_self = std::min(min_self, self);
    }
    return 0.6 * min_self;
}

Scene
SceneGenerator::next()
{
    Scene scene;
    const std::size_t count = 1 + rng_.below(2);
    const std::size_t span = kSceneSize - kShapeSize;
    for (std::size_t n = 0; n < count; ++n) {
        // Rejection-place to avoid overlapping objects.
        for (int attempt = 0; attempt < 32; ++attempt) {
            SceneObject obj;
            obj.cls = rng_.below(kYoliteClasses);
            obj.y = rng_.below(span + 1);
            obj.x = rng_.below(span + 1);
            bool clash = false;
            for (const auto &other : scene.objects) {
                const auto dy =
                    static_cast<long>(obj.y) - static_cast<long>(other.y);
                const auto dx =
                    static_cast<long>(obj.x) - static_cast<long>(other.x);
                if (std::abs(dy) < static_cast<long>(kShapeSize) + 1 &&
                    std::abs(dx) < static_cast<long>(kShapeSize) + 1) {
                    clash = true;
                    break;
                }
            }
            if (clash)
                continue;
            scene.objects.push_back(obj);
            break;
        }
    }
    for (const auto &obj : scene.objects) {
        const char *shape = kShapes[obj.cls];
        for (std::size_t ky = 0; ky < kShapeSize; ++ky)
            for (std::size_t kx = 0; kx < kShapeSize; ++kx)
                if (shape[ky * kShapeSize + kx] == '#')
                    scene.pixels[(obj.y + ky) * kSceneSize + obj.x +
                                 kx] = 1.0;
    }
    for (auto &px : scene.pixels)
        px = std::clamp(px + rng_.normal(0.0, noise_), 0.0, 1.0);
    return scene;
}

std::vector<Detection>
decodeDetections(const std::array<double, kYoliteOut> &out,
                 double threshold)
{
    std::vector<Detection> dets;
    for (std::size_t cell = 0; cell < kGrid * kGrid; ++cell) {
        const double *scores = &out[cell * kCellValues];
        std::size_t best_cls = 0;
        for (std::size_t cls = 1; cls < kYoliteClasses; ++cls)
            if (scores[cls] > scores[best_cls])
                best_cls = cls;
        if (scores[best_cls] < threshold)
            continue;
        Detection det;
        det.cell = cell;
        det.cls = best_cls;
        det.pos = std::lround(scores[kYoliteClasses]);
        det.score = scores[best_cls];
        dets.push_back(det);
    }
    return dets;
}

} // namespace mparch::nn
