/**
 * @file
 * Shared plumbing for the reproduction benches.
 *
 * Every binary under bench/ is a thin shim over one entry of the
 * declarative experiment registry (src/report/registry.hh): it looks
 * its experiment up by id, parses the common CLI knobs, runs the
 * registered closure and prints the structured result document in
 * the classic column-aligned format — then optionally runs a
 * google-benchmark timing of the underlying simulated kernels, as
 * declared by the experiment's TimingSpecs.
 *
 * Usage: <bench> [trials] [scale] [--trials=N] [--scale=X]
 *                [--jobs=N] [--json] [--benchmark_*...]
 *   trials  injection trials per campaign (0/omitted = per-bench
 *           default)
 *   scale   workload problem-size knob (0/omitted = per-bench
 *           default)
 *
 * Malformed arguments are an error (usage on stderr, exit 2) — they
 * are never silently replaced with defaults.
 */

#ifndef MPARCH_BENCH_BENCH_UTIL_HH
#define MPARCH_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "nn/nn_workloads.hh"
#include "report/registry.hh"

namespace mparch::bench {

/** Command-line knobs common to all benches. */
struct BenchArgs
{
    /** Effective run knobs; 0-valued fields mean "experiment
     *  default". */
    report::RunContext ctx;

    /** Write the structured JSON document next to the text report. */
    bool json = false;

    /** argv[0] plus any --benchmark_* passthrough arguments. */
    std::vector<char *> benchmarkArgv;
};

inline void
printUsage(const char *prog, std::ostream &os)
{
    os << "usage: " << prog
       << " [trials] [scale] [--trials=N] [--scale=X] [--jobs=N]"
          " [--json] [--benchmark_*...]\n"
          "  trials     injection trials per campaign (non-negative"
          " integer; 0 = default)\n"
          "  scale      workload problem-size knob (non-negative"
          " real; 0 = default)\n"
          "  --jobs=N   campaign worker threads (0 = all hardware"
          " threads); results\n"
          "             are bit-identical for every N\n"
          "  --json     also write the structured result document"
          " as JSON\n"
          "  --benchmark_*  forwarded to google-benchmark\n";
}

/** Strict base-10 unsigned parse: whole string, no sign, no junk. */
inline bool
parseCount(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.find_first_not_of("0123456789") !=
                            std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

/** Strict non-negative real parse: whole string, finite, >= 0. */
inline bool
parseReal(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size() || v < 0.0)
        return false;
    *out = v;
    return true;
}

/**
 * Parse the common bench CLI. Positional "[trials] [scale]" is the
 * historical form; --trials=/--scale=/--jobs= (or the two-token
 * "--jobs N" form) are the named equivalents. Anything malformed
 * prints the usage and exits 2 instead of silently running with
 * defaults (the old behaviour that let typos masquerade as runs).
 */
inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    args.benchmarkArgv.push_back(argv[0]);
    const auto fail = [&](const std::string &why) {
        std::cerr << argv[0] << ": error: " << why << "\n";
        printUsage(argv[0], std::cerr);
        std::exit(2);
    };
    const auto value_of = [&](const std::string &arg, int *i) {
        const auto eq = arg.find('=');
        if (eq != std::string::npos)
            return arg.substr(eq + 1);
        if (*i + 1 >= argc)
            fail(arg + " needs a value");
        return std::string(argv[++*i]);
    };

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--benchmark_", 0) == 0) {
            args.benchmarkArgv.push_back(argv[i]);
        } else if (arg == "--json") {
            args.json = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0], std::cout);
            std::exit(0);
        } else if (arg == "--trials" ||
                   arg.rfind("--trials=", 0) == 0) {
            const std::string v = value_of(arg, &i);
            if (!parseCount(v, &args.ctx.trials))
                fail("bad --trials value '" + v + "'");
        } else if (arg == "--scale" ||
                   arg.rfind("--scale=", 0) == 0) {
            const std::string v = value_of(arg, &i);
            if (!parseReal(v, &args.ctx.scale))
                fail("bad --scale value '" + v + "'");
        } else if (arg == "--jobs" ||
                   arg.rfind("--jobs=", 0) == 0) {
            const std::string v = value_of(arg, &i);
            std::uint64_t jobs = 0;
            if (!parseCount(v, &jobs))
                fail("bad --jobs value '" + v + "'");
            args.ctx.jobs = static_cast<unsigned>(jobs);
        } else if (arg.rfind("--", 0) == 0) {
            fail("unknown option '" + arg + "'");
        } else if (positional == 0) {
            if (!parseCount(arg, &args.ctx.trials))
                fail("bad trials argument '" + arg + "'");
            ++positional;
        } else if (positional == 1) {
            if (!parseReal(arg, &args.ctx.scale))
                fail("bad scale argument '" + arg + "'");
            ++positional;
        } else {
            fail("unexpected argument '" + arg + "'");
        }
    }
    return args;
}

/** Print the bench banner: what is reproduced and what must hold. */
inline void
banner(const std::string &what, const std::string &shape_target)
{
    std::cout << "=============================================="
                 "==============\n"
              << what << "\n"
              << "shape target: " << shape_target << "\n"
              << "=============================================="
                 "==============\n";
}

/**
 * Register a google-benchmark that times one fault-free execution of
 * the simulated kernel (the cost of the softfloat substrate itself).
 */
inline void
registerKernelTiming(const std::string &workload, fp::Precision p,
                     double scale)
{
    const std::string label = "simulate/" + workload + "/" +
                              std::string(fp::precisionName(p));
    benchmark::RegisterBenchmark(
        label.c_str(),
        [workload, p, scale](benchmark::State &state) {
            auto w = nn::makeAnyWorkload(workload, p, scale);
            w->reset(1);
            for (auto _ : state) {
                workloads::ExecutionEnv env;
                w->execute(env);
                benchmark::DoNotOptimize(env.ticks());
            }
        });
}

/** Run any registered google-benchmarks (after table output). */
inline void
runRegisteredBenchmarks(int *argc, char **argv)
{
    benchmark::Initialize(argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
}

/**
 * The whole bench main: look the experiment up, parse the CLI, run,
 * print, optionally dump JSON, then time the declared kernels.
 *
 * Exit status: 2 on CLI misuse; for Engine-kind experiments a failed
 * shape check (e.g. parallel tallies diverging from serial) exits 1,
 * mirroring the old bench contract — paper-shape checks at reduced
 * trials are reported but never fail the binary (the scorecard
 * driver owns that judgement at default trials).
 */
inline int
shimMain(int argc, char **argv, const std::string &id,
         const std::string &json_path = "")
{
    const report::Experiment *experiment = report::findExperiment(id);
    if (experiment == nullptr) {
        std::cerr << argv[0] << ": experiment '" << id
                  << "' is not in the registry\n";
        return 1;
    }

    BenchArgs args = parseArgs(argc, argv);
    banner(experiment->title, experiment->shapeTarget);
    const report::ResultDoc doc =
        report::runExperiment(*experiment, args.ctx);
    doc.print(std::cout);

    if (args.json) {
        const std::string path =
            json_path.empty() ? id + ".json" : json_path;
        std::ofstream out(path);
        doc.writeJson(out);
        std::cout << "wrote " << path << "\n";
    }

    for (const auto &timing : experiment->timings)
        for (auto p : timing.precisions)
            registerKernelTiming(timing.workload, p,
                                 experiment->scaleFor(args.ctx));
    int bench_argc = static_cast<int>(args.benchmarkArgv.size());
    runRegisteredBenchmarks(&bench_argc, args.benchmarkArgv.data());

    const bool engine_contract_ok =
        experiment->kind != report::ExperimentKind::Engine ||
        doc.allPassed();
    return engine_contract_ok ? 0 : 1;
}

} // namespace mparch::bench

#endif // MPARCH_BENCH_BENCH_UTIL_HH
