file(REMOVE_RECURSE
  "CMakeFiles/mparch_mitigation.dir/abft.cc.o"
  "CMakeFiles/mparch_mitigation.dir/abft.cc.o.d"
  "CMakeFiles/mparch_mitigation.dir/replicated.cc.o"
  "CMakeFiles/mparch_mitigation.dir/replicated.cc.o.d"
  "libmparch_mitigation.a"
  "libmparch_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
