/**
 * @file
 * Ablation (DESIGN.md section 5, decision 1): does it matter that
 * mparch injects into the *internal* datapath stages of an operation
 * rather than only into its operand registers, as register-level
 * injectors (SASSIFI-style) do?
 *
 * The sweep compares AVF and the TRE criticality curve for MxM under
 * operand-only vs full-datapath strikes at every precision. Expected
 * outcome: operand-only injection over-estimates criticality (every
 * flipped bit is architecturally meaningful), while datapath strikes
 * include product/pre-round bits that rounding absorbs — the gap
 * grows with precision because wide formats carry more sub-ulp
 * datapath state. This quantifies what a beam experiment sees that a
 * register-level injector cannot, one of the paper's motivations for
 * combining both (Section 3.3).
 */

#include "bench_util.hh"

#include "fault/campaign.hh"
#include "metrics/metrics.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 600, 0.2);
    bench::banner("Ablation: operand-only vs full-datapath injection",
                  "operand-only over-estimates AVF and criticality; "
                  "gap widens with precision");

    Table table({"precision", "sites", "avf-sdc", "remain@0.1%",
                 "remain@1%"});
    for (auto p : fp::allPrecisions) {
        for (const bool operand_only : {true, false}) {
            auto w = nn::makeAnyWorkload("mxm", p, args.scale);
            fault::CampaignConfig config;
            config.trials = args.trials;
            config.operandStagesOnly = operand_only;
            const auto r = fault::runDatapathCampaign(*w, config);
            table.row()
                .cell(std::string(fp::precisionName(p)))
                .cell(operand_only ? "operands-only" : "full-datapath")
                .cell(r.avfSdc(), 3)
                .cell(r.survivingFraction(1e-3), 3)
                .cell(r.survivingFraction(1e-2), 3);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
