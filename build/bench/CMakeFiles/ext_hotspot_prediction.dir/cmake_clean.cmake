file(REMOVE_RECURSE
  "CMakeFiles/ext_hotspot_prediction.dir/ext_hotspot_prediction.cpp.o"
  "CMakeFiles/ext_hotspot_prediction.dir/ext_hotspot_prediction.cpp.o.d"
  "ext_hotspot_prediction"
  "ext_hotspot_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hotspot_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
