file(REMOVE_RECURSE
  "CMakeFiles/fig10b_gpu_app_fit.dir/fig10b_gpu_app_fit.cpp.o"
  "CMakeFiles/fig10b_gpu_app_fit.dir/fig10b_gpu_app_fit.cpp.o.d"
  "fig10b_gpu_app_fit"
  "fig10b_gpu_app_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_gpu_app_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
