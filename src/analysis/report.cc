/**
 * @file
 * Machine-readable lint report on the common/json writer — same
 * streaming emitter the experiment ResultDocs use, so CI tooling can
 * ingest lint findings and scorecards with one parser.
 */

#include "analysis/lint.hh"

#include <ostream>

#include "common/json.hh"

namespace mparch::analysis {

void
writeJsonReport(const LintReport &report, std::ostream &os)
{
    json::Writer w(os);
    w.beginObject();
    w.member("tool", "mparch_lint");
    w.member("filesScanned",
             static_cast<std::uint64_t>(report.filesScanned));
    w.member("activeFindings",
             static_cast<std::uint64_t>(report.active()));
    w.member("suppressedFindings",
             static_cast<std::uint64_t>(report.suppressedCount()));
    w.key("errors").beginArray();
    for (const std::string &e : report.errors)
        w.value(e);
    w.endArray();
    w.key("findings").beginArray();
    for (const Finding &f : report.findings) {
        w.beginObject();
        w.member("rule", f.rule);
        w.member("path", f.path);
        w.member("line", static_cast<std::uint64_t>(f.line));
        w.member("col", static_cast<std::uint64_t>(f.col));
        w.member("message", f.message);
        w.member("hint", f.hint);
        w.member("suppressed", f.suppressed);
        if (f.suppressed)
            w.member("reason", f.suppressReason);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace mparch::analysis
