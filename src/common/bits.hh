/**
 * @file
 * Bit-manipulation helpers shared by the softfloat core and the fault
 * injectors.
 */

#ifndef MPARCH_COMMON_BITS_HH
#define MPARCH_COMMON_BITS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace mparch {

/** Mask with the low @p n bits set. @pre n <= 64. */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Extract bits [lo, lo+len) of @p value. */
constexpr std::uint64_t
extractBits(std::uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & maskBits(len);
}

/** Return @p value with bit @p pos flipped. */
template <typename T>
constexpr T
flipBit(T value, unsigned pos)
{
    static_assert(std::is_unsigned_v<T>, "flipBit needs unsigned storage");
    return value ^ (T{1} << pos);
}

/** Return @p value with bit @p pos set to @p on. */
template <typename T>
constexpr T
setBit(T value, unsigned pos, bool on)
{
    static_assert(std::is_unsigned_v<T>, "setBit needs unsigned storage");
    const T mask = T{1} << pos;
    return on ? (value | mask) : (value & static_cast<T>(~mask));
}

/** Test bit @p pos of @p value. */
template <typename T>
constexpr bool
testBit(T value, unsigned pos)
{
    static_assert(std::is_unsigned_v<T>, "testBit needs unsigned storage");
    return (value >> pos) & 1;
}

/**
 * Index of the most significant set bit, or -1 for zero.
 *
 * Equivalently floor(log2(value)) for non-zero inputs.
 */
constexpr int
highestSetBit(std::uint64_t value)
{
    return value == 0 ? -1 : 63 - std::countl_zero(value);
}

/** Count of set bits. */
constexpr int
popcount(std::uint64_t value)
{
    return std::popcount(value);
}

} // namespace mparch

#endif // MPARCH_COMMON_BITS_HH
