file(REMOVE_RECURSE
  "CMakeFiles/fig10a_gpu_micro_fit.dir/fig10a_gpu_micro_fit.cpp.o"
  "CMakeFiles/fig10a_gpu_micro_fit.dir/fig10a_gpu_micro_fit.cpp.o.d"
  "fig10a_gpu_micro_fit"
  "fig10a_gpu_micro_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_gpu_micro_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
