file(REMOVE_RECURSE
  "CMakeFiles/fig11c_gpu_yolo_crit.dir/fig11c_gpu_yolo_crit.cpp.o"
  "CMakeFiles/fig11c_gpu_yolo_crit.dir/fig11c_gpu_yolo_crit.cpp.o.d"
  "fig11c_gpu_yolo_crit"
  "fig11c_gpu_yolo_crit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_gpu_yolo_crit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
