# Empty dependencies file for mparch_gpu.
# This may be replaced when dependencies are built.
