# Empty compiler generated dependencies file for mparch_beam.
# This may be replaced when dependencies are built.
