/**
 * @file
 * The top-level mixed-precision reliability study API.
 *
 * This is the library's front door: pick an architecture, a
 * benchmark and a set of precisions, and get back the quantities the
 * paper reports — SDC/DUE FIT (a.u.), execution time, MEBF, the
 * FIT-reduction-vs-TRE curve and the SDC criticality split — with
 * all AVFs measured by fault-injection campaigns against the
 * softfloat-simulated workload.
 *
 * Typical use (see examples/quickstart.cpp):
 * @code
 *   core::StudyConfig config;
 *   config.arch = core::Architecture::Gpu;
 *   config.workload = "mxm";
 *   const core::StudyResult result = core::runStudy(config);
 *   result.printReport(std::cout);
 * @endcode
 */

#ifndef MPARCH_CORE_STUDY_HH
#define MPARCH_CORE_STUDY_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "workloads/workload.hh"

namespace mparch::core {

/** The three devices the paper irradiates. */
enum class Architecture { Fpga, XeonPhi, Gpu };

/** Name of an Architecture ("fpga", "xeon-phi", "gpu"). */
const char *architectureName(Architecture arch);

/** Precisions a device supports (KNC has no half). */
std::vector<fp::Precision> supportedPrecisions(Architecture arch);

/** Study configuration. */
struct StudyConfig
{
    Architecture arch = Architecture::Gpu;
    std::string workload = "mxm";

    /** Precisions to evaluate; empty = all the device supports. */
    std::vector<fp::Precision> precisions;

    /** Problem-size knob forwarded to the workload factory. */
    double scale = 0.15;

    /** Injection trials per campaign (paper: >2000 per data type;
     *  the default trades precision for bench turnaround). */
    std::uint64_t trials = 400;

    /** Campaign seed. */
    std::uint64_t seed = 7;

    /** Directory for per-campaign trial journals; empty disables
     *  journaling. Each campaign writes one append-only journal
     *  (see docs/campaigns.md) so an interrupted study can resume. */
    std::string journalDir;

    /** Resume from existing journals in journalDir: completed trials
     *  are loaded instead of re-run. Refuses (and reports a partial
     *  campaign) if a journal disagrees with this configuration. */
    bool resume = false;

    /** Trial records buffered between journal flushes; a killed
     *  process loses at most one batch. */
    std::uint64_t batchSize = 256;

    /** Worker threads per campaign: 0 = all hardware threads,
     *  1 = serial. Results are bit-identical for every value (see
     *  docs/performance.md). */
    unsigned jobs = 0;
};

/** Everything measured for one precision. */
struct PrecisionResult
{
    fp::Precision precision = fp::Precision::Double;

    double fitSdc = 0.0;       ///< a.u.
    double fitDue = 0.0;       ///< a.u.
    double timeSeconds = 0.0;  ///< modelled execution time
    double mebf = 0.0;         ///< a.u.

    /** Propagation probabilities. */
    double avfDatapath = 0.0;  ///< functional-unit injection
    double pvf = 0.0;          ///< variable (CAROL-FI) injection

    /** FIT-reduction curve (beam-like datapath corpus). */
    metrics::TreCurve tre;

    /** SDC severity split (CNN workloads; numeric kernels report
     *  100% critical-change and defer to TRE). */
    metrics::CriticalitySplit severity;

    /** FPGA extras (zero elsewhere). */
    double luts = 0.0, dsps = 0.0, brams = 0.0;

    /** Phi extra: instantiated vector registers (zero elsewhere). */
    int vectorRegisters = 0;

    /** Completed fraction of the planned trials (minimum over the
     *  precision's campaigns); < 1 when a campaign degraded. */
    double coverage = 1.0;

    /** Trials the supervisor abandoned after repeated failures. */
    std::uint64_t poisoned = 0;
};

/** A full study: one architecture x workload, several precisions. */
struct StudyResult
{
    StudyConfig config;
    std::vector<PrecisionResult> rows;

    /** Row for a precision, if evaluated. */
    const PrecisionResult *find(fp::Precision p) const;

    /** Render a human-readable report of every metric. */
    void printReport(std::ostream &os) const;

    /** Emit the result as a JSON document (stable schema for
     *  external tooling; see examples/mparch_cli.cpp --json). */
    void writeJson(std::ostream &os) const;
};

/** Run the campaigns and models for every requested precision. */
StudyResult runStudy(const StudyConfig &config);

} // namespace mparch::core

#endif // MPARCH_CORE_STUDY_HH
