#include "arch/fpga/opcost.hh"

#include <cmath>

namespace mparch::fpga {

using fp::Format;
using fp::OpKind;

namespace {

/** Significand width including the hidden bit. */
double
sig(Format f)
{
    return static_cast<double>(f.manBits) + 1.0;
}

/** DSP slices to tile an m x m partial-product array (25x18 DSPs). */
double
mulDsps(Format f)
{
    return std::ceil(sig(f) / 17.0) * std::ceil(sig(f) / 24.0);
}

/** LUTs for a floating-point multiplier (normalise + round). */
double
mulLuts(Format f)
{
    return 8.0 * (f.manBits + f.expBits) + 120.0;
}

/** LUTs for a floating-point adder (two shifters + LZC + round). */
double
addLuts(Format f)
{
    const double m = static_cast<double>(f.manBits);
    return 1.2 * m * std::log2(m) + 4.0 * f.expBits + 150.0;
}

} // namespace

OperatorCost
operatorCost(OpKind kind, Format f)
{
    const double m = static_cast<double>(f.manBits);
    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
        return {addLuts(f), 0.0};
      case OpKind::Mul:
        return {mulLuts(f), mulDsps(f)};
      case OpKind::Fma:
        // Fused unit: multiplier plus a wide (3m) aligned adder that
        // shares the multiplier's normalisation stage.
        return {mulLuts(f) + 0.8 * addLuts(f), mulDsps(f)};
      case OpKind::Div:
        // Digit-recurrence divider: m iterations of an m-bit CSA row.
        return {0.35 * m * m + 100.0, 0.0};
      case OpKind::Sqrt:
        return {0.3 * m * m + 100.0, 0.0};
      case OpKind::Convert:
        return {2.0 * (f.manBits + f.expBits) + 40.0, 0.0};
      case OpKind::Exp:
        // Polynomial evaluation unit: table + one FMA datapath.
        return operatorCost(OpKind::Fma, f) + OperatorCost{200.0, 0.0};
      default:
        return {};
    }
}

} // namespace mparch::fpga
