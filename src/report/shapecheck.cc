#include "report/shapecheck.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mparch::report {

namespace {

/** Compact %g rendering for observed-value traces. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
joinSeries(const std::vector<double> &series)
{
    std::string out;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            out += ", ";
        out += num(series[i]);
    }
    return out;
}

CheckOutcome
failure(const std::string &why)
{
    return {false, why};
}

/** Extract or produce a failure outcome describing why not. */
bool
series(const ResultDoc &doc, const Selector &selector,
       std::vector<double> &out, CheckOutcome &fail_out)
{
    std::string error;
    out = extract(doc, selector, &error);
    if (out.empty()) {
        fail_out = failure("cannot extract " + selector.describe() +
                           ": " + error);
        return false;
    }
    return true;
}

bool
scalar(const ResultDoc &doc, const Selector &selector, double &out,
       CheckOutcome &fail_out)
{
    std::vector<double> values;
    if (!series(doc, selector, values, fail_out))
        return false;
    if (values.size() != 1) {
        fail_out = failure(selector.describe() + " matched " +
                           std::to_string(values.size()) +
                           " rows, expected exactly 1");
        return false;
    }
    out = values[0];
    return true;
}

CheckOutcome
monotone(const ResultDoc &doc, const Selector &selector, double slack,
         bool decreasing, bool share)
{
    std::vector<double> values;
    CheckOutcome fail_out;
    if (!series(doc, selector, values, fail_out))
        return fail_out;
    if (values.size() < 2)
        return failure(selector.describe() +
                       " has fewer than 2 rows");
    bool ok = true;
    if (share) {
        for (double v : values)
            ok = ok && v >= 0.0 && v <= 1.0;
        if (!ok)
            return failure("share outside [0,1]: " +
                           joinSeries(values));
    }
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        if (decreasing)
            ok = ok && values[i + 1] < values[i] * (1.0 + slack);
        else
            ok = ok && values[i + 1] > values[i] * (1.0 - slack);
    }
    const char *arrow = decreasing ? " falling" : " rising";
    return {ok, selector.describe() + " = [" + joinSeries(values) +
                    "]" + (ok ? arrow : " NOT monotone")};
}

} // namespace

std::string
Selector::describe() const
{
    std::string out = column;
    if (!where.empty()) {
        out += "[";
        for (std::size_t i = 0; i < where.size(); ++i) {
            if (i)
                out += ",";
            out += where[i].first + "=" + where[i].second;
        }
        out += "]";
    }
    if (!table.empty())
        out += "@" + table;
    return out;
}

Selector
sel(std::string column,
    std::vector<std::pair<std::string, std::string>> where,
    std::string table)
{
    Selector out;
    out.column = std::move(column);
    out.where = std::move(where);
    out.table = std::move(table);
    return out;
}

std::vector<double>
extract(const ResultDoc &doc, const Selector &selector,
        std::string *error)
{
    const ResultTable *table = nullptr;
    if (selector.table.empty()) {
        if (!doc.tables.empty())
            table = &doc.tables.front();
    } else {
        table = doc.table(selector.table);
    }
    if (!table) {
        if (error)
            *error = "no such table '" + selector.table + "'";
        return {};
    }
    const int value_col = table->columnIndex(selector.column);
    if (value_col < 0) {
        if (error)
            *error = "no column '" + selector.column + "' in table '" +
                     table->name() + "'";
        return {};
    }
    std::vector<int> key_cols;
    for (const auto &clause : selector.where) {
        const int key = table->columnIndex(clause.first);
        if (key < 0) {
            if (error)
                *error = "no key column '" + clause.first + "'";
            return {};
        }
        key_cols.push_back(key);
    }

    std::vector<double> out;
    for (const auto &cells : table->rows()) {
        bool match = true;
        for (std::size_t k = 0; k < key_cols.size(); ++k) {
            const auto &cell =
                cells[static_cast<std::size_t>(key_cols[k])];
            match = match &&
                    cell.formatted() == selector.where[k].second;
        }
        if (!match)
            continue;
        const auto &cell =
            cells[static_cast<std::size_t>(value_col)];
        bool numeric = false;
        const double v = cell.asNumber(&numeric);
        if (!numeric) {
            if (error)
                *error = "column '" + selector.column +
                         "' holds text, not numbers";
            return {};
        }
        out.push_back(v);
    }
    if (out.empty() && error)
        *error = "no rows match the filter";
    return out;
}

CheckVerdict
evaluate(const ShapeCheck &check, const ResultDoc &doc)
{
    const CheckOutcome outcome = check.eval(doc);
    CheckVerdict verdict;
    verdict.id = check.id;
    verdict.description = check.description;
    verdict.observed = outcome.observed;
    verdict.pass = outcome.pass;
    return verdict;
}

void
evaluateAll(const std::vector<ShapeCheck> &checks, ResultDoc &doc)
{
    for (const auto &check : checks)
        doc.verdicts.push_back(evaluate(check, doc));
}

ShapeCheck
custom(std::string id, std::string description,
       std::function<CheckOutcome(const ResultDoc &)> fn)
{
    return {std::move(id), std::move(description), std::move(fn)};
}

ShapeCheck
decreasesAlong(std::string id, std::string description,
               Selector series_sel, double slack)
{
    return custom(std::move(id), std::move(description),
                  [series_sel, slack](const ResultDoc &doc) {
                      return monotone(doc, series_sel, slack, true,
                                      false);
                  });
}

ShapeCheck
increasesAlong(std::string id, std::string description,
               Selector series_sel, double slack)
{
    return custom(std::move(id), std::move(description),
                  [series_sel, slack](const ResultDoc &doc) {
                      return monotone(doc, series_sel, slack, false,
                                      false);
                  });
}

ShapeCheck
shareGrows(std::string id, std::string description,
           Selector series_sel, double slack)
{
    return custom(std::move(id), std::move(description),
                  [series_sel, slack](const ResultDoc &doc) {
                      return monotone(doc, series_sel, slack, false,
                                      true);
                  });
}

ShapeCheck
exceeds(std::string id, std::string description, Selector a,
        Selector b, double factor)
{
    return custom(
        std::move(id), std::move(description),
        [a, b, factor](const ResultDoc &doc) {
            CheckOutcome fail_out;
            double va = 0.0, vb = 0.0;
            if (!scalar(doc, a, va, fail_out))
                return fail_out;
            if (!scalar(doc, b, vb, fail_out))
                return fail_out;
            const bool ok = va > factor * vb;
            std::string observed = a.describe() + " = " + num(va) +
                                   (ok ? " > " : " NOT > ");
            if (factor != 1.0)
                observed += num(factor) + " * ";
            observed += b.describe() + " = " + num(vb);
            return CheckOutcome{ok, observed};
        });
}

ShapeCheck
ratioWithin(std::string id, std::string description,
            Selector numerator, Selector denominator, double lo,
            double hi)
{
    return custom(
        std::move(id), std::move(description),
        [numerator, denominator, lo, hi](const ResultDoc &doc) {
            CheckOutcome fail_out;
            double vn = 0.0, vd = 0.0;
            if (!scalar(doc, numerator, vn, fail_out))
                return fail_out;
            if (!scalar(doc, denominator, vd, fail_out))
                return fail_out;
            if (vd == 0.0)
                return failure(denominator.describe() + " is zero");
            const double ratio = vn / vd;
            const bool ok = ratio >= lo && ratio <= hi;
            return CheckOutcome{
                ok, numerator.describe() + " / " +
                        denominator.describe() + " = " + num(ratio) +
                        (ok ? " within [" : " OUTSIDE [") + num(lo) +
                        ", " + num(hi) + "]"};
        });
}

ShapeCheck
nearlyEqual(std::string id, std::string description, Selector a,
            Selector b, double tolerance)
{
    return custom(
        std::move(id), std::move(description),
        [a, b, tolerance](const ResultDoc &doc) {
            CheckOutcome fail_out;
            double va = 0.0, vb = 0.0;
            if (!scalar(doc, a, va, fail_out))
                return fail_out;
            if (!scalar(doc, b, vb, fail_out))
                return fail_out;
            const double diff = std::abs(va - vb);
            const bool ok = diff <= tolerance;
            return CheckOutcome{
                ok, "|" + a.describe() + " - " + b.describe() +
                        "| = " + num(diff) +
                        (ok ? " <= " : " EXCEEDS ") + num(tolerance)};
        });
}

ShapeCheck
flatWithin(std::string id, std::string description,
           Selector series_sel, double maxRatio)
{
    return custom(
        std::move(id), std::move(description),
        [series_sel, maxRatio](const ResultDoc &doc) {
            std::vector<double> values;
            CheckOutcome fail_out;
            if (!series(doc, series_sel, values, fail_out))
                return fail_out;
            double lo = values[0], hi = values[0];
            for (double v : values) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            if (lo <= 0.0)
                return failure(series_sel.describe() +
                               " has non-positive values: " +
                               joinSeries(values));
            const double spread = hi / lo;
            const bool ok = spread <= maxRatio;
            return CheckOutcome{
                ok, series_sel.describe() + " spread max/min = " +
                        num(spread) + (ok ? " <= " : " EXCEEDS ") +
                        num(maxRatio)};
        });
}

ShapeCheck
allBelow(std::string id, std::string description, Selector series_sel,
         double bound)
{
    return custom(
        std::move(id), std::move(description),
        [series_sel, bound](const ResultDoc &doc) {
            std::vector<double> values;
            CheckOutcome fail_out;
            if (!series(doc, series_sel, values, fail_out))
                return fail_out;
            bool ok = true;
            for (double v : values)
                ok = ok && v < bound;
            return CheckOutcome{ok, series_sel.describe() + " = [" +
                                        joinSeries(values) + "]" +
                                        (ok ? " all < " : " NOT all < ") +
                                        num(bound)};
        });
}

ShapeCheck
allAbove(std::string id, std::string description, Selector series_sel,
         double bound)
{
    return custom(
        std::move(id), std::move(description),
        [series_sel, bound](const ResultDoc &doc) {
            std::vector<double> values;
            CheckOutcome fail_out;
            if (!series(doc, series_sel, values, fail_out))
                return fail_out;
            bool ok = true;
            for (double v : values)
                ok = ok && v > bound;
            return CheckOutcome{ok, series_sel.describe() + " = [" +
                                        joinSeries(values) + "]" +
                                        (ok ? " all > " : " NOT all > ") +
                                        num(bound)};
        });
}

ShapeCheck
crossoverAt(std::string id, std::string description, Selector a,
            Selector b, std::size_t loIndex, std::size_t hiIndex)
{
    return custom(
        std::move(id), std::move(description),
        [a, b, loIndex, hiIndex](const ResultDoc &doc) {
            std::vector<double> va, vb;
            CheckOutcome fail_out;
            if (!series(doc, a, va, fail_out))
                return fail_out;
            if (!series(doc, b, vb, fail_out))
                return fail_out;
            if (va.size() != vb.size() || va.size() < 2)
                return failure("series lengths " +
                               std::to_string(va.size()) + " vs " +
                               std::to_string(vb.size()));
            if (va[0] < vb[0])
                return failure(a.describe() + " already below " +
                               b.describe() + " at index 0");
            std::size_t crossing = va.size();
            for (std::size_t i = 0; i < va.size(); ++i) {
                if (va[i] < vb[i]) {
                    crossing = i;
                    break;
                }
            }
            if (crossing == va.size())
                return failure(a.describe() + " never drops below " +
                               b.describe());
            const bool ok = crossing >= loIndex && crossing <= hiIndex;
            return CheckOutcome{
                ok, a.describe() + " crosses below " + b.describe() +
                        " at index " + std::to_string(crossing) +
                        (ok ? " within [" : " OUTSIDE [") +
                        std::to_string(loIndex) + ", " +
                        std::to_string(hiIndex) + "]"};
        });
}

} // namespace mparch::report
