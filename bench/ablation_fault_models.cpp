/**
 * @file
 * Ablation: does the single-bit-flip assumption matter?
 *
 * The paper's injections (and most of the literature's) use the
 * single-bit-flip model; real SRAM events include multi-bit upsets
 * (its FPGA reference [8] measures them directly). This bench
 * re-runs the GEMM memory campaign under every fault model — single
 * flip, adjacent double flip, random byte, whole-word randomisation,
 * and a 4-word row burst — to show which conclusions are
 * model-robust (the precision ordering of criticality) and which
 * move (absolute AVF, the masked fraction).
 */

#include "bench_util.hh"

#include "fault/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 0.15);
    bench::banner("Ablation: fault-model sweep (GEMM memory "
                  "campaign)",
                  "criticality ordering half > single > double holds "
                  "under every model; absolute AVF shifts");

    Table table({"model", "precision", "avf-sdc", "remain@0.1%",
                 "remain@1%"});
    for (auto model :
         {fault::FaultModel::SingleBitFlip,
          fault::FaultModel::DoubleBitFlip,
          fault::FaultModel::RandomByte,
          fault::FaultModel::RandomValue,
          fault::FaultModel::WordBurst}) {
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload("mxm", p, args.scale);
            fault::CampaignConfig config;
            config.trials = args.trials;
            config.model = model;
            const auto r = fault::runMemoryCampaign(*w, config);
            table.row()
                .cell(fault::faultModelName(model))
                .cell(std::string(fp::precisionName(p)))
                .cell(r.avfSdc(), 3)
                .cell(r.survivingFraction(1e-3), 3)
                .cell(r.survivingFraction(1e-2), 3);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
