/**
 * @file
 * Hotspot benchmark (extension workload).
 *
 * Rodinia's hotspot thermal simulation: iterate a 5-point stencil
 * that relaxes a chip temperature grid against a power map. Not one
 * of the paper's five benchmarks, but a standard kernel in this
 * research group's companion studies, and a useful counterpoint in
 * mparch: its arithmetic mix is *addition*-dominated (neighbour sums
 * and scaling), so the GPU model predicts its FIT trend follows
 * Micro-ADD (single/half above double) where LavaMD follows
 * Micro-MUL — a testable prediction beyond the paper's figures.
 */

#ifndef MPARCH_WORKLOADS_HOTSPOT_HH
#define MPARCH_WORKLOADS_HOTSPOT_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** Hotspot stencil relaxation at precision P. */
template <fp::Precision P>
class HotspotWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    /**
     * @param scale Problem-size knob; 1.0 means a 24x24 grid relaxed
     *              for 8 sweeps.
     */
    explicit HotspotWorkload(double scale = 1.0)
    {
        n_ = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   24.0 * std::cbrt(std::max(scale, 1e-3)))));
        iters_ = 8;
        temp_.resize(n_ * n_);
        power_.resize(n_ * n_);
        next_.resize(n_ * n_);
    }

    std::string name() const override { return "hotspot"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<HotspotWorkload<P>>(*this);
    }

    /** Grid side length. */
    std::size_t dim() const { return n_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (std::size_t i = 0; i < n_ * n_; ++i) {
            // Ambient temperature around 0.6 (normalised), mild
            // power map: values stay well inside binary16 range.
            temp_[i] = Value::fromDouble(rng.uniform(0.55, 0.65));
            power_[i] = Value::fromDouble(rng.uniform(0.0, 0.02));
        }
        std::fill(next_.begin(), next_.end(), Value{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        const Value k = Value::fromDouble(0.125);     // diffusion
        const Value ambient = Value::fromDouble(0.6);
        const Value leak = Value::fromDouble(0.015);  // sink
        for (std::size_t it = 0; it < iters_; ++it) {
            env.tick();
            if (env.aborted())
                return;
            for (std::size_t r = 0; r < n_; ++r) {
                for (std::size_t c = 0; c < n_; ++c) {
                    const Value centre = temp_[r * n_ + c];
                    // Clamped (insulated) borders.
                    const Value north =
                        r > 0 ? temp_[(r - 1) * n_ + c] : centre;
                    const Value south = r + 1 < n_
                                            ? temp_[(r + 1) * n_ + c]
                                            : centre;
                    const Value west =
                        c > 0 ? temp_[r * n_ + c - 1] : centre;
                    const Value east = c + 1 < n_
                                           ? temp_[r * n_ + c + 1]
                                           : centre;
                    // ADD-heavy update: one mul for the diffusion
                    // scale, one for leakage, the rest additions.
                    const Value sum =
                        ((north + south) + (west + east)) -
                        (((centre + centre) + centre) + centre);
                    Value t = centre + k * sum;
                    t = t + power_[r * n_ + c];
                    t = t - leak * (centre - ambient);
                    next_[r * n_ + c] = t;
                }
            }
            std::swap(temp_, next_);
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("temp", temp_),
                makeBufferView("power", power_),
                makeBufferView("next", next_)};
    }

    BufferView output() override { return makeBufferView("temp", temp_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 7;  // centre, 4 neighbours, sum, power
        d.inputStreams = 2;
        d.arithmeticIntensity = 3.0;
        d.usesTranscendental = false;
        d.regularAccess = true;
        d.branchDensity = 0.06;  // border handling
        return d;
    }

  private:
    std::size_t n_ = 0;
    std::size_t iters_ = 0;
    std::vector<Value> temp_, power_, next_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_HOTSPOT_HH
