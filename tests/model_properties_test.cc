/**
 * @file
 * Property-style sweeps over the architecture models: monotonicity,
 * scaling and consistency invariants that must hold for any
 * parameter choice (not just the calibrated defaults).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/fpga/fpga.hh"
#include "arch/fpga/opcost.hh"
#include "arch/gpu/datapath.hh"
#include "arch/gpu/params.hh"
#include "arch/gpu/gpu.hh"
#include "arch/phi/compiler_model.hh"
#include "arch/phi/params.hh"
#include "arch/phi/phi.hh"
#include "beam/inventory.hh"
#include "nn/mnistnet.hh"
#include "nn/nn_workloads.hh"

namespace mparch {
namespace {

using fp::OpKind;
using fp::Precision;

// ---------------------------------------------------------------
// FPGA operator-cost properties
// ---------------------------------------------------------------

class FpgaCostSweep
    : public ::testing::TestWithParam<std::tuple<OpKind, fp::Format>>
{};

TEST_P(FpgaCostSweep, CostsArePositiveAndFiniteEverywhere)
{
    const auto &[kind, format] = GetParam();
    const auto cost = fpga::operatorCost(kind, format);
    EXPECT_GT(cost.luts, 0.0);
    EXPECT_GE(cost.dsps, 0.0);
    EXPECT_LT(cost.luts, 1e6);
}

TEST_P(FpgaCostSweep, FusedUnitCostsAtLeastItsMultiplier)
{
    const auto &[kind, format] = GetParam();
    if (kind != OpKind::Fma)
        return;
    const auto fma = fpga::operatorCost(OpKind::Fma, format);
    const auto mul = fpga::operatorCost(OpKind::Mul, format);
    EXPECT_GE(fma.luts, mul.luts);
    EXPECT_GE(fma.dsps, mul.dsps);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndFormats, FpgaCostSweep,
    ::testing::Combine(
        ::testing::Values(OpKind::Add, OpKind::Sub, OpKind::Mul,
                          OpKind::Fma, OpKind::Div, OpKind::Sqrt,
                          OpKind::Convert, OpKind::Exp),
        ::testing::Values(fp::kHalf, fp::kBfloat16, fp::kTf32,
                          fp::kSingle, fp::kDouble)));

TEST(FpgaCostMonotone, WiderSignificandNeverCheaper)
{
    // Formats ordered by significand width.
    const fp::Format order[] = {fp::kBfloat16, fp::kHalf, fp::kTf32,
                                fp::kSingle, fp::kDouble};
    for (auto kind : {OpKind::Add, OpKind::Mul, OpKind::Fma,
                      OpKind::Div}) {
        double prev = 0.0;
        for (const auto &format : order) {
            const double luts =
                fpga::operatorCost(kind, format).luts;
            EXPECT_GE(luts, prev) << fp::opKindName(kind);
            prev = luts;
        }
    }
}

// ---------------------------------------------------------------
// FPGA synthesis scaling
// ---------------------------------------------------------------

TEST(FpgaSynthesisScaling, BiggerProblemsNeedMoreCyclesAndBram)
{
    auto report = [](double scale) {
        auto w =
            workloads::makeWorkload("mxm", Precision::Single, scale);
        const fault::GoldenRun golden(*w, 99);
        return fpga::synthesize(*w, golden);
    };
    const auto small = report(0.05);
    const auto big = report(0.5);
    EXPECT_GT(big.cycles, small.cycles);
    EXPECT_GT(big.bramBits, small.bramBits);
    // The PE budget is fixed, so logic stays put.
    EXPECT_NEAR(big.luts, small.luts, 1.0);
}

// ---------------------------------------------------------------
// GPU datapath-model properties
// ---------------------------------------------------------------

class GpuDatapathSweep : public ::testing::TestWithParam<Precision>
{};

TEST_P(GpuDatapathSweep, ControlFloorAndOrdering)
{
    const Precision p = GetParam();
    for (auto kind : {OpKind::Add, OpKind::Mul, OpKind::Fma,
                      OpKind::Div, OpKind::Sqrt, OpKind::Convert}) {
        const double bits = gpu::datapathBitsPerCore(kind, p);
        EXPECT_GE(bits, gpu::kCoreControlBits);
        EXPECT_LT(bits, 1e5);
    }
    EXPECT_GT(gpu::datapathBitsPerCore(OpKind::Fma, p),
              gpu::datapathBitsPerCore(OpKind::Add, p));
}

TEST_P(GpuDatapathSweep, MixWeightingIsBounded)
{
    const Precision p = GetParam();
    fp::FpContext ops;
    ops.opCount[static_cast<std::size_t>(OpKind::Add)] = 100;
    ops.opCount[static_cast<std::size_t>(OpKind::Fma)] = 300;
    const double mixed = gpu::mixDatapathBitsPerCore(ops, p);
    EXPECT_GE(mixed, gpu::datapathBitsPerCore(OpKind::Add, p));
    EXPECT_LE(mixed, gpu::datapathBitsPerCore(OpKind::Fma, p));
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GpuDatapathSweep,
                         ::testing::Values(Precision::Double,
                                           Precision::Single,
                                           Precision::Half,
                                           Precision::Bfloat16));

TEST(GpuDatapathMonotone, DoubleLaneStateWidest)
{
    for (auto kind : {OpKind::Mul, OpKind::Fma}) {
        EXPECT_GT(gpu::datapathBitsPerCore(kind, Precision::Double),
                  gpu::datapathBitsPerCore(kind, Precision::Single));
        EXPECT_GT(gpu::datapathBitsPerCore(kind, Precision::Single),
                  gpu::datapathBitsPerCore(kind, Precision::Half));
    }
}

TEST(GpuTimingScaling, TimeGrowsWithProblemSize)
{
    for (const char *name : {"mxm", "micro-fma"}) {
        auto small =
            workloads::makeWorkload(name, Precision::Single, 0.05);
        auto big =
            workloads::makeWorkload(name, Precision::Single, 0.5);
        const fault::GoldenRun gs(*small, 99), gb(*big, 99);
        EXPECT_GT(gpu::gpuTimeSeconds(*big, gb),
                  gpu::gpuTimeSeconds(*small, gs))
            << name;
    }
}

// ---------------------------------------------------------------
// Phi compiler-model properties
// ---------------------------------------------------------------

TEST(PhiCompilerSweep, RegistersBoundedByArchitecture)
{
    workloads::KernelDesc desc;
    for (int live = 1; live <= 40; ++live) {
        desc.liveValues = live;
        for (int streams = 0; streams <= 6; ++streams) {
            desc.inputStreams = streams;
            for (bool data_dep : {false, true}) {
                desc.dataDependentBounds = data_dep;
                for (auto p : {Precision::Double,
                               Precision::Single}) {
                    const auto k = phi::compileKernel(desc, p);
                    EXPECT_GE(k.vectorRegisters, 1);
                    EXPECT_LE(k.vectorRegisters,
                              phi::kVectorRegisters);
                }
            }
        }
    }
}

TEST(PhiCompilerSweep, DataDependentBoundsEqualiseAllocations)
{
    workloads::KernelDesc desc;
    desc.dataDependentBounds = true;
    for (int live = 1; live <= 20; ++live) {
        desc.liveValues = live;
        EXPECT_EQ(
            phi::compileKernel(desc, Precision::Double)
                .vectorRegisters,
            phi::compileKernel(desc, Precision::Single)
                .vectorRegisters);
    }
}

TEST(PhiCompilerSweep, SingleNeverAllocatesFewer)
{
    workloads::KernelDesc desc;
    for (int live = 1; live <= 20; ++live) {
        desc.liveValues = live;
        EXPECT_GE(phi::compileKernel(desc, Precision::Single)
                      .vectorRegisters,
                  phi::compileKernel(desc, Precision::Double)
                      .vectorRegisters);
    }
}

TEST(PhiTimingScaling, TimeGrowsWithProblemSize)
{
    auto small = workloads::makeWorkload("lud", Precision::Double,
                                         0.05);
    auto big =
        workloads::makeWorkload("lud", Precision::Double, 0.5);
    const fault::GoldenRun gs(*small, 99), gb(*big, 99);
    EXPECT_GT(phi::phiTimeSeconds(*big, gb),
              phi::phiTimeSeconds(*small, gs));
}

// ---------------------------------------------------------------
// Beam inventory properties
// ---------------------------------------------------------------

TEST(InventoryProperties, FitIsLinearInBitsAndAvf)
{
    beam::ResourceInventory inv;
    inv.node = beam::Node::Phi22nm;
    inv.entries = {{"x", beam::BitClass::SramData, 1e5, 0.4, 0.1}};
    const double base_sdc = inv.fitSdc();
    const double base_due = inv.fitDue();
    inv.entries[0].bits *= 3.0;
    EXPECT_DOUBLE_EQ(inv.fitSdc(), 3.0 * base_sdc);
    EXPECT_DOUBLE_EQ(inv.fitDue(), 3.0 * base_due);
    inv.entries[0].avfSdc *= 0.5;
    EXPECT_DOUBLE_EQ(inv.fitSdc(), 1.5 * base_sdc);
}

TEST(InventoryProperties, EntriesCompose)
{
    beam::ResourceInventory a, b, both;
    a.entries = {{"x", beam::BitClass::SramData, 1e5, 0.4, 0.0}};
    b.entries = {{"y", beam::BitClass::ControlLatch, 2e4, 0.0, 0.3}};
    both.entries = {a.entries[0], b.entries[0]};
    EXPECT_DOUBLE_EQ(both.fitSdc(), a.fitSdc() + b.fitSdc());
    EXPECT_DOUBLE_EQ(both.fitDue(), a.fitDue() + b.fitDue());
}

// ---------------------------------------------------------------
// Workload engine-window consistency
// ---------------------------------------------------------------

TEST(EngineWindows, MnistEnginesTileTheFmaStream)
{
    auto w = nn::makeAnyWorkload("mnist", Precision::Single, 1.0);
    const fault::GoldenRun golden(*w, 99);
    const auto engines = w->engines(golden.ops);
    ASSERT_EQ(engines.size(), 2u);
    const auto &conv = engines[0];
    const auto &dense = engines[1];
    // Windows tile the period exactly.
    EXPECT_EQ(conv.lo, 0u);
    EXPECT_EQ(conv.hi, dense.lo);
    EXPECT_EQ(dense.hi, conv.period);
    EXPECT_EQ(conv.period, dense.period);
    // The FMA stream is a whole number of periods.
    EXPECT_EQ(golden.ops.count(OpKind::Fma) % conv.period, 0u);
    // Shares sum to one.
    EXPECT_DOUBLE_EQ(conv.share() + dense.share(), 1.0);
}

TEST(EngineWindows, DefaultEnginesCoverEveryActiveKind)
{
    auto w =
        workloads::makeWorkload("lavamd", Precision::Single, 0.1);
    const fault::GoldenRun golden(*w, 99);
    const auto engines = w->engines(golden.ops);
    for (const auto &engine : engines) {
        EXPECT_GT(golden.ops.count(engine.kind), 0u);
        EXPECT_DOUBLE_EQ(engine.share(), 1.0);
    }
    // Every active non-Exp kind appears exactly once.
    std::size_t active = 0;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(OpKind::NumKinds); ++k) {
        const auto kind = static_cast<OpKind>(k);
        if (kind != OpKind::Exp && golden.ops.count(kind))
            ++active;
    }
    EXPECT_EQ(engines.size(), active);
}

} // namespace
} // namespace mparch
