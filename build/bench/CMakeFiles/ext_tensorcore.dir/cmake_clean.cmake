file(REMOVE_RECURSE
  "CMakeFiles/ext_tensorcore.dir/ext_tensorcore.cpp.o"
  "CMakeFiles/ext_tensorcore.dir/ext_tensorcore.cpp.o.d"
  "ext_tensorcore"
  "ext_tensorcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tensorcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
