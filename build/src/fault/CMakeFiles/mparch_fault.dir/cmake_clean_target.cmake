file(REMOVE_RECURSE
  "libmparch_fault.a"
)
