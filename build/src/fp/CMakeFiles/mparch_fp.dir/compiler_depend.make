# Empty compiler generated dependencies file for mparch_fp.
# This may be replaced when dependencies are built.
