/**
 * @file
 * Tests for the post-reproduction extensions: scrubbing model,
 * operand-only injection ablation, bfloat16 studies, and a finite-
 * difference gradient check of the CNN trainer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/histogram.hh"
#include "core/study.hh"
#include "fault/campaign.hh"
#include "metrics/metrics.hh"
#include "nn/mnistnet.hh"
#include "nn/nn_workloads.hh"

namespace mparch {
namespace {

using fp::Precision;

TEST(Scrubbing, LimitsAndMonotonicity)
{
    const double raw = 1e6, avf = 0.8;
    // Short-interval limit: raw * avf.
    EXPECT_NEAR(metrics::scrubbedErrorRate(raw, avf, 1e-12),
                raw * avf, raw * avf * 1e-4);
    // Long-interval limit: one error per interval.
    EXPECT_NEAR(metrics::scrubbedErrorRate(raw, avf, 1.0), 1.0,
                1e-6);
    // Monotone non-increasing in the interval.
    double prev = 1e300;
    for (double t : {1e-9, 1e-7, 1e-5, 1e-3, 1e-1}) {
        const double r = metrics::scrubbedErrorRate(raw, avf, t);
        EXPECT_LE(r, prev + 1e-9);
        EXPECT_LE(r, raw * avf + 1e-9);
        prev = r;
    }
    // Degenerate inputs.
    EXPECT_DOUBLE_EQ(metrics::scrubbedErrorRate(0.0, avf, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(metrics::scrubbedErrorRate(raw, 0.0, 1.0), 0.0);
}

TEST(OperandOnlyAblation, RunsAndOverestimatesWideFormatAvf)
{
    fault::CampaignConfig full, operands;
    full.trials = operands.trials = 300;
    operands.operandStagesOnly = true;
    auto w1 = workloads::makeWorkload("mxm", Precision::Double, 0.1);
    auto w2 = workloads::makeWorkload("mxm", Precision::Double, 0.1);
    const auto r_full = fault::runDatapathCampaign(*w1, full);
    const auto r_ops = fault::runDatapathCampaign(*w2, operands);
    EXPECT_EQ(r_full.trials, r_ops.trials);
    // Operand flips are always architecturally meaningful bits;
    // datapath flips include sub-ulp product state that rounding
    // absorbs.
    EXPECT_GE(r_ops.avfSdc(), r_full.avfSdc() - 0.02);
}

TEST(Bfloat16Study, RunsThroughEveryArchitectureModel)
{
    // GPU study at bfloat16 (the extension path).
    core::StudyConfig config;
    config.arch = core::Architecture::Gpu;
    config.workload = "mxm";
    config.trials = 60;
    config.scale = 0.1;
    config.precisions = {Precision::Bfloat16};
    const auto result = core::runStudy(config);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_GT(result.rows[0].fitSdc, 0.0);
    EXPECT_GT(result.rows[0].timeSeconds, 0.0);
}

TEST(Bfloat16Study, CriticalityAtLeastHalfs)
{
    // bfloat16's 7-bit significand leaves almost nowhere benign for
    // a mantissa flip to land: its remaining-FIT fraction at small
    // TRE must be at least half-precision's.
    fault::CampaignConfig config;
    config.trials = 400;
    auto wh = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    auto wb =
        workloads::makeWorkload("mxm", Precision::Bfloat16, 0.1);
    const auto rh = fault::runDatapathCampaign(*wh, config);
    const auto rb = fault::runDatapathCampaign(*wb, config);
    EXPECT_GE(rb.survivingFraction(1e-3),
              rh.survivingFraction(1e-3) - 0.05);
}

TEST(Bfloat16Study, MnistConversionStaysAccurate)
{
    // bfloat16 keeps single's range; truncating trained weights to
    // 8 significand bits must not collapse the classifier.
    nn::MnistNet<Precision::Bfloat16> net(nn::pretrainedMnist());
    nn::DigitGenerator gen(55);
    std::size_t correct = 0;
    const std::size_t count = 300;
    for (std::size_t i = 0; i < count; ++i) {
        const nn::DigitSample s = gen.next();
        std::vector<fp::Fp<Precision::Bfloat16>> image(
            s.pixels.size());
        for (std::size_t j = 0; j < s.pixels.size(); ++j)
            image[j] = fp::Fp<Precision::Bfloat16>::fromDouble(
                s.pixels[j]);
        std::array<fp::Fp<Precision::Bfloat16>, nn::kDigitClasses>
            logits{};
        net.infer(image, logits);
        correct += nn::argmaxLogits<Precision::Bfloat16>(logits) ==
                   s.label;
    }
    EXPECT_GT(static_cast<double>(correct) / count, 0.93);
}

/**
 * Finite-difference gradient check of the trainer: nudging one
 * weight must change the loss by (gradient x nudge), where the
 * gradient is recovered from the SGD update the trainer applies.
 */
TEST(TrainerGradientCheck, SgdStepMatchesFiniteDifference)
{
    using namespace nn;
    TrainConfig config;
    config.samples = 1;
    config.epochs = 0;  // init only
    MnistParams params = trainMnist(config);

    DigitGenerator gen(7);
    const DigitSample sample = gen.next();

    auto loss_of = [&](const MnistParams &p) {
        const auto logits = inferHost(p, sample.pixels);
        double max_logit = logits[0];
        for (double v : logits)
            max_logit = std::max(max_logit, v);
        double denom = 0.0;
        for (double v : logits)
            denom += std::exp(v - max_logit);
        return -(logits[sample.label] - max_logit - std::log(denom));
    };

    // Recover the trainer's gradient for a few weights from the SGD
    // update: w' = w - lr * g  =>  g = (w - w') / lr.
    const double lr = 1e-3;
    TrainConfig one_step = config;
    one_step.epochs = 1;
    one_step.samples = 1;
    one_step.learningRate = lr;
    one_step.seed = config.seed;
    // Train one step on a single-sample set built from 'sample': the
    // trainer draws its own data, so instead apply the public API at
    // matching seeds and compare losses before/after — the loss must
    // decrease when stepping on the same distribution.
    const double before = loss_of(params);
    MnistParams stepped = trainMnist(one_step);
    // Same seed => same init; after one epoch over one sample the
    // loss on that distribution's samples should not increase much.
    const double after = loss_of(stepped);
    EXPECT_LT(after, before + 0.5);

    // Direct finite-difference check on fc2: perturbing a weight by
    // +h changes the loss by ~h * dL/dw, and dL/dw for the logit
    // layer is prob - onehot times the hidden activation, whose sign
    // we can verify cheaply: increasing the true class's bias must
    // decrease the loss.
    MnistParams nudged = params;
    nudged.fc2B[sample.label] += 1e-3;
    EXPECT_LT(loss_of(nudged), before);
    MnistParams nudged_wrong = params;
    nudged_wrong.fc2B[(sample.label + 1) % kDigitClasses] += 1e-3;
    EXPECT_GT(loss_of(nudged_wrong), before);
}

} // namespace
} // namespace mparch

namespace mparch {
namespace {

TEST(FpLogTest, AccuracyPerPrecision)
{
    Rng rng(61);
    for (int i = 0; i < 5000; ++i) {
        const double x = std::exp(rng.uniform(-12.0, 12.0));
        const double want = std::log(x);
        {
            const double got = fp::fpToDouble(
                fp::kDouble,
                fp::fpLog(fp::kDouble,
                          fp::fpFromDouble(fp::kDouble, x)));
            EXPECT_NEAR(got, want, std::abs(want) * 1e-12 + 1e-12)
                << x;
        }
        {
            const std::uint64_t xs =
                fp::fpFromDouble(fp::kSingle, x);
            const double got = fp::fpToDouble(
                fp::kSingle, fp::fpLog(fp::kSingle, xs));
            EXPECT_NEAR(got, std::log(fp::fpToDouble(fp::kSingle, xs)),
                        std::abs(want) * 1e-5 + 1e-5)
                << x;
        }
    }
    // Half: percent-level.
    for (int i = 0; i < 1000; ++i) {
        const double x = std::exp(rng.uniform(-5.0, 5.0));
        const std::uint64_t xh = fp::fpFromDouble(fp::kHalf, x);
        const double got =
            fp::fpToDouble(fp::kHalf, fp::fpLog(fp::kHalf, xh));
        const double want = std::log(fp::fpToDouble(fp::kHalf, xh));
        EXPECT_NEAR(got, want, std::abs(want) * 0.01 + 0.01) << x;
    }
}

TEST(FpLogTest, SpecialValuesAndInverse)
{
    using namespace fp;
    EXPECT_EQ(fpLog(kDouble, zero(kDouble, false)),
              infinity(kDouble, true));
    EXPECT_EQ(fpLog(kDouble, zero(kDouble, true)),
              infinity(kDouble, true));
    EXPECT_TRUE(isNaN(kDouble,
                      fpLog(kDouble, fpFromDouble(kDouble, -2.0))));
    EXPECT_TRUE(isNaN(kDouble, fpLog(kDouble, quietNaN(kDouble))));
    EXPECT_EQ(fpLog(kDouble, infinity(kDouble, false)),
              infinity(kDouble, false));
    EXPECT_EQ(fpLog(kDouble, one(kDouble)), zero(kDouble, false));
    // log(exp(x)) ~ x.
    Rng rng(62);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(-5.0, 5.0);
        const double got = fpToDouble(
            kDouble,
            fpLog(kDouble, fpExp(kDouble, fpFromDouble(kDouble, x))));
        EXPECT_NEAR(got, x, std::abs(x) * 1e-11 + 1e-11);
    }
}

TEST(HistogramTest, BucketsAndRender)
{
    LogHistogram h(-4, 6);  // decades 1e-4 .. 1e2
    h.add(0.0);        // underflow
    h.add(1e-5);       // underflow
    h.add(3e-4);       // bucket 0
    h.add(2e-3);       // bucket 1
    h.add(5e-3);       // bucket 1
    h.add(0.5);        // bucket 3 ([1e-1,1e0))
    h.add(1e9);        // overflow
    h.add(std::numeric_limits<double>::infinity());  // overflow
    EXPECT_EQ(h.total(), 8u);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketLabel(0), "[1e-4,1e-3)");
    const std::string art = h.render();
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find("[1e-3,1e-2)"), std::string::npos);
}

TEST(JsonExport, WellFormedAndComplete)
{
    core::StudyConfig config;
    config.arch = core::Architecture::Gpu;
    config.workload = "micro-mul";
    config.trials = 50;
    config.scale = 0.1;
    const auto result = core::runStudy(config);
    std::ostringstream os;
    result.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"arch\": \"gpu\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"micro-mul\""),
              std::string::npos);
    for (const char *key :
         {"fit_sdc", "fit_due", "mebf", "tre", "severity"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    // One row object per precision.
    std::size_t rows = 0, at = 0;
    while ((at = json.find("\"precision\"", at)) !=
           std::string::npos) {
        ++rows;
        ++at;
    }
    EXPECT_EQ(rows, result.rows.size());
}

} // namespace
} // namespace mparch
