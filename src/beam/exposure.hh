/**
 * @file
 * Beam-time planning helpers.
 *
 * The paper's methodology section sizes its campaigns in exactly
 * these terms: ChipIR's flux is ~8 orders of magnitude above the
 * terrestrial 13 n/(cm^2 h) reference (JESD89A [33]), each of the 30
 * configurations got >= 100 beam hours (equivalent to >= 11,000
 * years of natural exposure), and error rates were kept under 1e-3
 * errors/execution so that double faults per run stay negligible.
 * These helpers reproduce those calculations so campaign configs can
 * be justified the same way.
 */

#ifndef MPARCH_BEAM_EXPOSURE_HH
#define MPARCH_BEAM_EXPOSURE_HH

#include "common/logging.hh"

namespace mparch::beam {

/** JESD89A reference terrestrial flux at sea level, n/(cm^2 h). */
inline constexpr double kTerrestrialFlux = 13.0;

/** Hours per (average) year. */
inline constexpr double kHoursPerYear = 8766.0;

/** Beam-to-nature acceleration factor for a given beam flux. */
constexpr double
accelerationFactor(double beam_flux,
                   double natural_flux = kTerrestrialFlux)
{
    return beam_flux / natural_flux;
}

/** Natural-exposure years represented by a beam campaign. */
constexpr double
naturalYearsEquivalent(double beam_hours, double acceleration)
{
    return beam_hours * acceleration / kHoursPerYear;
}

/**
 * Beam hours needed to observe @p target_errors expected errors from
 * a device whose error rate under beam is @p beam_error_rate
 * (errors per hour).
 */
constexpr double
beamHoursForErrors(double beam_error_rate, double target_errors)
{
    return beam_error_rate > 0.0 ? target_errors / beam_error_rate
                                 : 0.0;
}

/**
 * Probability of more than one fault in a single execution, given
 * the per-execution fault probability @p p — the quantity the paper
 * keeps "highly unlikely" (observed rates < 1e-3 errors/execution).
 * Poisson approximation: P(k >= 2) = 1 - e^-p (1 + p) ~ p^2 / 2.
 */
constexpr double
multiFaultProbability(double p)
{
    // Series form keeps this constexpr and exact to O(p^4).
    return p * p / 2.0 - p * p * p / 3.0;
}

/** True when a campaign maintains the paper's single-fault regime. */
constexpr bool
singleFaultRegime(double errors_per_execution)
{
    return errors_per_execution < 1e-3;
}

} // namespace mparch::beam

#endif // MPARCH_BEAM_EXPOSURE_HH
