
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_tensorcore.cpp" "bench/CMakeFiles/ext_tensorcore.dir/ext_tensorcore.cpp.o" "gcc" "bench/CMakeFiles/ext_tensorcore.dir/ext_tensorcore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mparch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/fpga/CMakeFiles/mparch_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/phi/CMakeFiles/mparch_phi.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/gpu/CMakeFiles/mparch_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mparch_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/mparch_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mparch_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/mparch_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mparch_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mparch_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/mparch_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mparch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
