# Empty compiler generated dependencies file for ext_hotspot_prediction.
# This may be replaced when dependencies are built.
