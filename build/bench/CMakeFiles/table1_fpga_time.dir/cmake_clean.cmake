file(REMOVE_RECURSE
  "CMakeFiles/table1_fpga_time.dir/table1_fpga_time.cpp.o"
  "CMakeFiles/table1_fpga_time.dir/table1_fpga_time.cpp.o.d"
  "table1_fpga_time"
  "table1_fpga_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fpga_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
