file(REMOVE_RECURSE
  "CMakeFiles/ext_bfloat16.dir/ext_bfloat16.cpp.o"
  "CMakeFiles/ext_bfloat16.dir/ext_bfloat16.cpp.o.d"
  "ext_bfloat16"
  "ext_bfloat16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bfloat16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
