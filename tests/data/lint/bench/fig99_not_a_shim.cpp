// Fixture: a bench binary that has grown logic back instead of
// staying a registry shim — no shimMain call and over the line
// budget.

#include <cstdio>
#include <vector>

namespace {

double
model(double x)
{
    // Twenty-odd lines of ad-hoc experiment logic that belong in the
    // experiment registry (src/report/), not in a bench main.
    double acc = 0.0;
    for (int i = 0; i < 100; ++i)
        acc += x / (1.0 + i);
    return acc;
}

std::vector<double>
sweep()
{
    std::vector<double> out;
    for (int i = 0; i < 8; ++i)
        out.push_back(model(static_cast<double>(i)));
    return out;
}

} // namespace

int
main()
{
    double total = 0.0;
    for (double v : sweep())
        total += v;
    std::printf("total %f\n", total);
    return total > 0.0 ? 0 : 1;
}
