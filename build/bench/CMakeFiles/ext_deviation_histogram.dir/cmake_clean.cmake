file(REMOVE_RECURSE
  "CMakeFiles/ext_deviation_histogram.dir/ext_deviation_histogram.cpp.o"
  "CMakeFiles/ext_deviation_histogram.dir/ext_deviation_histogram.cpp.o.d"
  "ext_deviation_histogram"
  "ext_deviation_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deviation_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
