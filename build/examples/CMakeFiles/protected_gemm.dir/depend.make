# Empty dependencies file for protected_gemm.
# This may be replaced when dependencies are built.
