/**
 * @file
 * Microbenchmarks: Micro-ADD, Micro-MUL, Micro-FMA.
 *
 * Synthetic op chains after the paper's Section 3.1: each simulated
 * thread repeats a single arithmetic operation on register-resident
 * values, with negligible memory traffic and control flow, so the
 * architecture models can attribute the measured AVF/FIT purely to
 * the functional unit executing that operation. Chain constants are
 * chosen so the running value stays well inside binary16 range for
 * the whole chain.
 */

#ifndef MPARCH_WORKLOADS_MICRO_HH
#define MPARCH_WORKLOADS_MICRO_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** Which operation a micro chain stresses. */
enum class MicroOp { Add, Mul, Fma };

/** Name suffix for a MicroOp ("add", "mul", "fma"). */
constexpr const char *
microOpName(MicroOp op)
{
    switch (op) {
      case MicroOp::Add: return "add";
      case MicroOp::Mul: return "mul";
      case MicroOp::Fma: return "fma";
    }
    return "?";
}

/** Single-operation chain benchmark at precision P. */
template <fp::Precision P>
class MicroWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    /**
     * @param op    The operation to stress.
     * @param scale Problem-size knob; 1.0 means 32 threads x 2,000
     *              iterations (64k operations).
     */
    explicit MicroWorkload(MicroOp op, double scale = 1.0)
        : op_(op)
    {
        threads_ = 32;
        iters_ = std::max<std::size_t>(
            64, static_cast<std::size_t>(std::lround(
                    2000.0 * std::max(scale, 1e-3))));
        x_.resize(threads_);
    }

    std::string
    name() const override
    {
        return std::string("micro-") + microOpName(op_);
    }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<MicroWorkload<P>>(*this);
    }

    /** Iterations per simulated thread. */
    std::size_t iterations() const { return iters_; }

    /** Simulated thread count. */
    std::size_t threads() const { return threads_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (auto &v : x_)
            v = Value::fromDouble(rng.uniform(1.0, 2.0));
    }

    void
    execute(ExecutionEnv &env) override
    {
        // Chain constants, exactly representable in binary16:
        //  mul: x *= 1 + 2^-10  -> x_final ~ x0 * 7.0 after 2k steps
        //  add: x += 2^-10      -> x_final ~ x0 + 2
        //  fma: x = x*m + a, m = 1 - 2^-10: converges towards a/2^-10
        const Value mul_k = Value::fromDouble(1.0009765625);
        const Value add_k = Value::fromDouble(0.0009765625);
        const Value fma_m = Value::fromDouble(0.9990234375);
        const Value fma_a = Value::fromDouble(0.001708984375);
        for (std::size_t it = 0; it < iters_; ++it) {
            env.tick();
            if (env.aborted())
                return;
            switch (op_) {
              case MicroOp::Add:
                for (auto &x : x_)
                    x = x + add_k;
                break;
              case MicroOp::Mul:
                for (auto &x : x_)
                    x = x * mul_k;
                break;
              case MicroOp::Fma:
                for (auto &x : x_)
                    x = fma(x, fma_m, fma_a);
                break;
            }
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("x", x_)};
    }

    BufferView output() override { return makeBufferView("x", x_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 2;
        d.inputStreams = 0;
        d.arithmeticIntensity = 1e6;  // register-only
        d.usesTranscendental = false;
        d.regularAccess = true;
        d.branchDensity = 0.002;  // paper: DUE ~1/10 of real codes
        return d;
    }

    /** The stressed operation. */
    MicroOp microOp() const { return op_; }

  private:
    MicroOp op_;
    std::size_t threads_;
    std::size_t iters_;
    std::vector<Value> x_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_MICRO_HH
