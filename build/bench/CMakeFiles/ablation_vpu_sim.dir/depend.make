# Empty dependencies file for ablation_vpu_sim.
# This may be replaced when dependencies are built.
