/**
 * @file
 * mparch_verify — differential-oracle frontend for the softfloat core.
 *
 * Subcommands:
 *
 *   quick [--corpus DIR] [--trials N] [--seed S] [--jobs N]
 *     The regression gate: replay the persisted counterexample corpus,
 *     run the exhaustive binary16 unary sweeps (sqrt/exp/log and the
 *     half->single/double/bfloat16 conversions), then fuzz every
 *     memory format with N trials each (default 10^6, fixed seed).
 *
 *   sweep --op OP --format F [--dst D] [--samples N] [--seed S]
 *         [--jobs N] [--no-props] [--no-monotone] [--max-report N]
 *     Sweep one operation. With --samples 0 (the default) the sweep
 *     is exhaustive: all operand pairs for binary ops (16-bit formats
 *     only), all inputs for unary ops and conversions. OP is one of
 *     add sub mul div sqrt exp log convert; convert needs --dst.
 *
 *   fuzz --format F [--trials N] [--seed S] [--jobs N] [--ops LIST]
 *     Property-based fuzzing of one format. LIST is comma-separated
 *     op names (default: all ops).
 *
 *   corpus [--corpus DIR]
 *     Replay the regression corpus alone.
 *
 *   check --op OP --format F [--dst D] --a HEX [--b HEX] [--c HEX]
 *     Run a single case through production code and every oracle,
 *     verbosely. This is the command mismatch reports print.
 *
 * Exit code 0 when everything agrees, 1 on any mismatch (or usage
 * error via fatal()).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "fp/softfloat.hh"
#include "verify/verify.hh"

namespace {

using namespace mparch;
using verify::Case;
using verify::VOp;

/** Minimal --flag [value] parser (same idiom as mparch_cli). */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            if (argv[i][0] != '-' || argv[i][1] != '-')
                fatal("expected --flag, got '", argv[i], "'");
            const std::string key = argv[i] + 2;
            if (i + 1 < argc &&
                std::strncmp(argv[i + 1], "--", 2) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "1";
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        const auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        return std::strtoull(it->second.c_str(), nullptr, 0);
    }

    bool
    getFlag(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

    bool
    has(const std::string &key) const
    {
        return values_.count(key) != 0;
    }

  private:
    std::map<std::string, std::string> values_;
};

fp::Format
requireFormat(const Args &args, const std::string &key)
{
    const std::string name = args.get(key, "");
    if (name.empty())
        fatal("missing --", key);
    const auto f = verify::parseFormat(name);
    if (!f)
        fatal("unknown format '", name, "'");
    return *f;
}

VOp
requireOp(const Args &args)
{
    const std::string name = args.get("op", "");
    if (name.empty())
        fatal("missing --op");
    const auto op = verify::parseVOp(name);
    if (!op)
        fatal("unknown op '", name, "'");
    return *op;
}

/** Default corpus location: source tree when run from a checkout. */
std::string
corpusDir(const Args &args)
{
    return args.get("corpus", "tests/data/fp_corpus");
}

int
reportSweep(const std::string &what, const verify::SweepReport &report)
{
    std::cout << what << ": " << report.cases << " cases, "
              << report.mismatches << " mismatches\n";
    for (const verify::Mismatch &m : report.sample)
        std::cout << verify::describeMismatch(m) << "\n";
    return report.ok() ? 0 : 1;
}

int
replayCorpus(const std::string &dir)
{
    const std::vector<Case> cases = verify::loadCorpusDir(dir);
    verify::CheckOptions opts;
    std::uint64_t mismatches = 0;
    for (const Case &c : cases) {
        std::vector<verify::Mismatch> found;
        if (!verify::checkCase(c, opts, &found)) {
            ++mismatches;
            for (const verify::Mismatch &m : found)
                std::cout << verify::describeMismatch(m) << "\n";
        }
    }
    std::cout << "corpus: " << cases.size() << " cases from " << dir
              << ", " << mismatches << " failing\n";
    return mismatches == 0 ? 0 : 1;
}

int
runFuzz(fp::Format f, const verify::FuzzConfig &cfg)
{
    const verify::FuzzReport report = verify::fuzzFormat(f, cfg);
    std::cout << "fuzz " << verify::formatName(f) << ": "
              << report.trials << " trials, " << report.failures
              << " failures\n";
    for (const verify::FuzzFailure &fail : report.sample) {
        std::cout << "trial " << fail.trial << " (seed " << cfg.seed
                  << "), shrunk from: "
                  << verify::corpusLine(fail.original) << "\n";
        for (const verify::Mismatch &m : fail.mismatches)
            std::cout << verify::describeMismatch(m) << "\n";
    }
    return report.ok() ? 0 : 1;
}

int
cmdQuick(const Args &args)
{
    const unsigned jobs =
        static_cast<unsigned>(args.getU64("jobs", 0));
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::uint64_t trials = args.getU64("trials", 1000000);

    int rc = replayCorpus(corpusDir(args));

    // Exhaustive binary16 unary coverage is cheap enough for the
    // default tier; the 2^32 pair sweeps stay behind -L exhaustive.
    verify::SweepConfig sweep;
    sweep.jobs = jobs;
    sweep.seed = seed;
    for (VOp op : {VOp::Sqrt, VOp::Exp, VOp::Log}) {
        std::string what =
            std::string("sweep half ") + verify::vopName(op);
        rc |= reportSweep(what, verify::sweepUnary(op, fp::kHalf,
                                                   sweep));
    }
    for (fp::Format dst : {fp::kSingle, fp::kDouble, fp::kBfloat16}) {
        std::string what = std::string("sweep convert half -> ") +
                           verify::formatName(dst);
        rc |= reportSweep(
            what, verify::sweepConvert(fp::kHalf, dst, sweep));
    }

    verify::FuzzConfig fuzz;
    fuzz.jobs = jobs;
    fuzz.seed = seed;
    fuzz.trials = trials;
    for (fp::Format f :
         {fp::kHalf, fp::kSingle, fp::kDouble, fp::kBfloat16})
        rc |= runFuzz(f, fuzz);
    return rc;
}

int
cmdSweep(const Args &args)
{
    const VOp op = requireOp(args);
    const fp::Format f = requireFormat(args, "format");

    verify::SweepConfig cfg;
    cfg.jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    cfg.samples = args.getU64("samples", 0);
    cfg.seed = args.getU64("seed", 1);
    cfg.maxReport =
        static_cast<std::size_t>(args.getU64("max-report", 32));
    cfg.checkMonotone = !args.getFlag("no-monotone");
    cfg.check.props = !args.getFlag("no-props");
    cfg.check.prop.expUlpTol = static_cast<int>(
        args.getU64("exp-tol", cfg.check.prop.expUlpTol));
    cfg.check.prop.logUlpTol = static_cast<int>(
        args.getU64("log-tol", cfg.check.prop.logUlpTol));

    std::ostringstream what;
    what << "sweep " << verify::formatName(f) << ' '
         << verify::vopName(op);
    if (op == VOp::Convert) {
        const fp::Format dst = requireFormat(args, "dst");
        what << " -> " << verify::formatName(dst);
        return reportSweep(what.str(),
                           verify::sweepConvert(f, dst, cfg));
    }
    if (verify::vopArity(op) == 2)
        return reportSweep(what.str(), verify::sweepPairs(op, f, cfg));
    return reportSweep(what.str(), verify::sweepUnary(op, f, cfg));
}

int
cmdFuzz(const Args &args)
{
    const fp::Format f = requireFormat(args, "format");
    verify::FuzzConfig cfg;
    cfg.trials = args.getU64("trials", 1000000);
    cfg.seed = args.getU64("seed", 1);
    cfg.jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    const std::string ops = args.get("ops", "");
    std::istringstream in(ops);
    std::string name;
    while (std::getline(in, name, ',')) {
        const auto op = verify::parseVOp(name);
        if (!op)
            fatal("unknown op '", name, "'");
        cfg.ops.push_back(*op);
    }
    return runFuzz(f, cfg);
}

int
cmdCheck(const Args &args)
{
    Case c;
    c.op = requireOp(args);
    c.fmt = requireFormat(args, "format");
    if (c.op == VOp::Convert)
        c.dst = requireFormat(args, "dst");
    if (!args.has("a"))
        fatal("missing --a");
    c.a = args.getU64("a", 0);
    const unsigned arity = verify::vopArity(c.op);
    if (arity >= 2) {
        if (!args.has("b"))
            fatal("missing --b");
        c.b = args.getU64("b", 0);
    }
    if (arity >= 3) {
        if (!args.has("c"))
            fatal("missing --c");
        c.c = args.getU64("c", 0);
    }

    const fp::Format rf = c.resultFormat();
    const std::uint64_t got = verify::runProduction(c);
    std::cout << "case:       " << verify::corpusLine(c) << "\n";
    std::cout << "production: " << fp::fpDescribe(rf, got) << "\n";
    const verify::OracleResult host = verify::hostOracle(c);
    std::cout << "host:       "
              << (host.supported ? fp::fpDescribe(rf, host.bits)
                                 : std::string("(unsupported)"))
              << "\n";
    const verify::OracleResult exact = verify::exactOracle(c);
    std::cout << "exact:      "
              << (exact.supported ? fp::fpDescribe(rf, exact.bits)
                                  : std::string("(unsupported)"))
              << "\n";
    std::vector<verify::Mismatch> found;
    verify::CheckOptions opts;
    const bool ok = verify::checkCase(c, opts, &found);
    for (const verify::Mismatch &m : found)
        std::cout << verify::describeMismatch(m) << "\n";
    std::cout << (ok ? "agreement\n" : "MISMATCH\n");
    return ok ? 0 : 1;
}

void
usage()
{
    fatal("usage: mparch_verify quick|sweep|fuzz|corpus|check "
          "[--flags]  (see file header for details)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "quick")
        return cmdQuick(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "fuzz")
        return cmdFuzz(args);
    if (cmd == "corpus")
        return replayCorpus(corpusDir(args));
    if (cmd == "check")
        return cmdCheck(args);
    usage();
    return 1;
}
