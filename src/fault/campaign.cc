#include "fault/campaign.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>

#include "fault/hooks.hh"

namespace mparch::fault {

using workloads::BufferView;
using workloads::ExecutionEnv;
using workloads::Workload;

const char *
outcomeKindName(OutcomeKind outcome)
{
    switch (outcome) {
      case OutcomeKind::Masked:   return "masked";
      case OutcomeKind::Sdc:      return "sdc";
      case OutcomeKind::Due:      return "due";
      case OutcomeKind::Detected: return "detected";
    }
    return "?";
}

FaultAnatomy::Field
bitField(fp::Format f, int bit)
{
    if (bit == static_cast<int>(f.signPos()))
        return FaultAnatomy::Field::Sign;
    if (bit >= static_cast<int>(f.manBits))
        return FaultAnatomy::Field::Exponent;
    if (bit >= static_cast<int>(f.manBits) / 2)
        return FaultAnatomy::Field::MantissaHigh;
    return FaultAnatomy::Field::MantissaLow;
}

void
CampaignConfig::validate() const
{
    if (!(timeoutFactor > 0.0)) {
        fatal("CampaignConfig::timeoutFactor must be > 0 (got ",
              timeoutFactor,
              "); a non-positive tick budget classifies every trial "
              "as a DUE");
    }
}

double
CampaignResult::fieldAvf(FaultAnatomy::Field field) const
{
    std::uint64_t hit = 0, total = 0;
    for (const auto &a : anatomy) {
        if (a.field != field)
            continue;
        ++total;
        hit += a.outcome == OutcomeKind::Sdc;
    }
    return total ? static_cast<double>(hit) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CampaignResult::survivingFraction(double tre) const
{
    if (corpus.empty())
        return 0.0;
    std::uint64_t surviving = 0;
    for (const auto &rec : corpus)
        if (rec.maxRel > tre)
            ++surviving;
    return static_cast<double>(surviving) /
           static_cast<double>(corpus.size());
}

double
CampaignResult::severityFraction(workloads::SdcSeverity severity) const
{
    if (corpus.empty())
        return 0.0;
    std::uint64_t n = 0;
    for (const auto &rec : corpus)
        if (rec.severity == severity)
            ++n;
    return static_cast<double>(n) /
           static_cast<double>(corpus.size());
}

void
CampaignResult::merge(const CampaignResult &other)
{
    trials += other.trials;
    masked += other.masked;
    sdc += other.sdc;
    due += other.due;
    detected += other.detected;
    corpus.reserve(corpus.size() + other.corpus.size());
    corpus.insert(corpus.end(), other.corpus.begin(),
                  other.corpus.end());
    anatomy.reserve(anatomy.size() + other.anatomy.size());
    anatomy.insert(anatomy.end(), other.anatomy.begin(),
                   other.anatomy.end());
}

void
accumulate(CampaignResult &result, const TrialOutcome &trial)
{
    ++result.trials;
    switch (trial.outcome) {
      case OutcomeKind::Masked:
        ++result.masked;
        break;
      case OutcomeKind::Sdc:
        ++result.sdc;
        result.corpus.push_back(trial.sdc);
        break;
      case OutcomeKind::Due:
        ++result.due;
        break;
      case OutcomeKind::Detected:
        ++result.detected;
        break;
    }
    if (trial.hasAnatomy)
        result.anatomy.push_back(trial.anatomy);
}

GoldenRun::GoldenRun(Workload &w, std::uint64_t input_seed)
{
    w.reset(input_seed);
    ExecutionEnv env;
    {
        fp::FpEnvGuard guard(ops);
        w.execute(env);
    }
    ticks = env.ticks();
    const BufferView out = w.output();
    outputBits.resize(out.count);
    for (std::size_t i = 0; i < out.count; ++i)
        outputBits[i] = out.get(i);
}

double
relativeDeviation(fp::Format f, std::uint64_t corrupted,
                  std::uint64_t golden)
{
    const double g = fp::fpToDouble(f, golden);
    const double c = fp::fpToDouble(f, corrupted);
    if (!std::isfinite(c) || !std::isfinite(g))
        return std::numeric_limits<double>::infinity();
    if (g == 0.0) {
        // A relative measure would report infinity for any non-zero
        // corruption of a benign zero output; record the absolute
        // deviation instead so TRE curves stay meaningful.
        return std::abs(c);
    }
    return std::abs((c - g) / g);
}

namespace {

/** Compare the workload's output with golden and classify. */
TrialOutcome
classify(Workload &w, const GoldenRun &golden, bool hung)
{
    TrialOutcome trial;
    if (hung) {
        trial.outcome = OutcomeKind::Due;
        return trial;
    }
    if (w.detectedError()) {
        // The workload's own checker caught the corruption before
        // the output was consumed: recoverable by re-execution.
        trial.outcome = OutcomeKind::Detected;
        return trial;
    }
    const BufferView out = w.output();
    MPARCH_ASSERT(out.count == golden.outputBits.size(),
                  "output size changed between runs");
    const fp::Format f = fp::formatOf(out.precision);
    double max_rel = 0.0;
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < out.count; ++i) {
        const std::uint64_t bits = out.get(i);
        if (bits == golden.outputBits[i])
            continue;
        ++diffs;
        max_rel = std::max(
            max_rel, relativeDeviation(f, bits, golden.outputBits[i]));
    }
    if (diffs == 0) {
        trial.outcome = OutcomeKind::Masked;
        return trial;
    }
    trial.outcome = OutcomeKind::Sdc;
    trial.sdc.maxRel = max_rel;
    trial.sdc.corruptedFraction =
        static_cast<double>(diffs) / static_cast<double>(out.count);
    trial.sdc.severity = w.classifySdc(golden.outputBits);
    return trial;
}

/** Run one armed execution under the watchdog. */
bool  // returns "hung"
executeArmed(Workload &w, const GoldenRun &golden,
             const CampaignConfig &config, fp::FpHook *hook,
             const std::function<void(std::uint64_t)> &on_tick)
{
    ExecutionEnv env;
    env.tickBudget = static_cast<std::uint64_t>(
        std::ceil(config.timeoutFactor *
                  static_cast<double>(golden.ticks)));
    env.onTick = on_tick;
    fp::FpContext ctx;
    ctx.hook = hook;
    {
        fp::FpEnvGuard guard(ctx);
        w.execute(env);
    }
    return env.aborted();
}

/** CAROL-FI memory campaign, one trial at a time. */
class MemoryTrialRunner : public TrialRunner
{
  public:
    MemoryTrialRunner(Workload &w, const CampaignConfig &config,
                      std::shared_ptr<const GoldenRun> golden = nullptr)
        : TrialRunner(w, config, std::move(golden))
    {
        MPARCH_ASSERT(golden_->ticks > 0,
                      "workload must tick at least once");
    }

    std::unique_ptr<TrialRunner>
    fork(Workload &w) const override
    {
        return std::make_unique<MemoryTrialRunner>(w, config_,
                                                   golden_);
    }

    TrialOutcome
    runTrial(std::uint64_t index, bool describe) override
    {
        Rng rng = trialRng(config_.seed, index);
        workload_.reset(config_.inputSeed);

        // Pick the target: buffer weighted by bit population, then a
        // uniform element, then the fault model's bit pattern.
        std::vector<BufferView> views = workload_.buffers();
        std::uint64_t total_bits = 0;
        for (const auto &view : views)
            total_bits += view.bits();
        MPARCH_ASSERT(total_bits > 0, "no injectable bits");
        std::uint64_t pick = rng.below(total_bits);
        std::size_t which = 0;
        while (pick >= views[which].bits()) {
            pick -= views[which].bits();
            ++which;
        }
        const BufferView &target = views[which];
        const std::size_t element = rng.below(target.count);
        const unsigned width =
            fp::formatOf(target.precision).totalBits;
        const std::uint64_t inject_tick = rng.below(golden_->ticks);
        Rng payload_rng = rng.fork();

        int flipped_bit = -1;
        const auto on_tick = [&](std::uint64_t tick) {
            if (tick != inject_tick)
                return;
            if (config_.model == FaultModel::WordBurst) {
                // A multi-bit upset along a physical row: the same
                // bit position flips in up to 4 adjacent words
                // (JESD89A-style MBU, paper reference [8]).
                const auto bit = static_cast<unsigned>(
                    payload_rng.below(width));
                const std::size_t span =
                    std::min<std::size_t>(4, target.count - element);
                for (std::size_t k = 0; k < span; ++k) {
                    target.set(element + k,
                               flipBit(target.get(element + k), bit));
                }
                flipped_bit = static_cast<int>(bit);
                return;
            }
            const std::uint64_t before = target.get(element);
            const std::uint64_t after = applyFault(
                config_.model, payload_rng, width, before);
            if (config_.model == FaultModel::SingleBitFlip)
                flipped_bit = highestSetBit(before ^ after);
            target.set(element, after);
        };
        const bool hung = executeArmed(workload_, *golden_, config_,
                                       nullptr, on_tick);
        TrialOutcome trial = classify(workload_, *golden_, hung);
        if (config_.recordAnatomy && flipped_bit >= 0) {
            trial.hasAnatomy = true;
            trial.anatomy.bit = flipped_bit;
            trial.anatomy.field = bitField(
                fp::formatOf(target.precision), flipped_bit);
            trial.anatomy.outcome = trial.outcome;
            if (trial.outcome == OutcomeKind::Sdc)
                trial.anatomy.maxRel = trial.sdc.maxRel;
        }
        if (describe) {
            std::ostringstream os;
            os << "site=memory model="
               << faultModelName(config_.model) << " buffer="
               << target.name << " element=" << element
               << " tick=" << inject_tick << " bit=" << flipped_bit;
            trial.description = os.str();
        }
        return trial;
    }
};

/** Transient functional-unit campaign, one trial at a time. */
class DatapathTrialRunner : public TrialRunner
{
  public:
    DatapathTrialRunner(Workload &w, const CampaignConfig &config,
                        fp::OpKind kind_filter,
                        std::shared_ptr<const GoldenRun> golden = nullptr)
        : TrialRunner(w, config, std::move(golden))
    {
        // Candidate kinds and their dynamic op counts (Exp is
        // excluded: its constituent mul/fma ops are the targets).
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(fp::OpKind::NumKinds);
             ++k) {
            const auto kind = static_cast<fp::OpKind>(k);
            if (kind == fp::OpKind::Exp)
                continue;
            if (kind_filter != fp::OpKind::NumKinds &&
                kind != kind_filter) {
                continue;
            }
            const std::uint64_t n = golden_->ops.count(kind);
            if (n == 0)
                continue;
            kinds_.emplace_back(kind, n);
            totalOps_ += n;
        }
        MPARCH_ASSERT(totalOps_ > 0, "no operations to strike");
    }

    std::unique_ptr<TrialRunner>
    fork(Workload &w) const override
    {
        auto copy =
            std::unique_ptr<DatapathTrialRunner>(
                new DatapathTrialRunner(w, config_, golden_));
        copy->kinds_ = kinds_;
        copy->totalOps_ = totalOps_;
        return copy;
    }

    TrialOutcome
    runTrial(std::uint64_t index, bool describe) override
    {
        Rng rng = trialRng(config_.seed, index);
        workload_.reset(config_.inputSeed);
        const fp::Format f = fp::formatOf(workload_.precision());

        // Uniform over dynamic operations...
        std::uint64_t pick = rng.below(totalOps_);
        std::size_t which = 0;
        while (pick >= kinds_[which].second) {
            pick -= kinds_[which].second;
            ++which;
        }
        const fp::OpKind kind = kinds_[which].first;
        const std::uint64_t op_index =
            rng.below(kinds_[which].second);

        // ...then a stage weighted by its bit population (optionally
        // restricted to the operand-read stages).
        std::size_t stage_count = 0;
        const auto &stages = stagesFor(kind, stage_count);
        const auto is_operand = [](fp::Stage s) {
            return s == fp::Stage::OperandA ||
                   s == fp::Stage::OperandB ||
                   s == fp::Stage::OperandC;
        };
        std::uint64_t weight_sum = 0;
        for (std::size_t s = 0; s < stage_count; ++s) {
            if (config_.operandStagesOnly && !is_operand(stages[s]))
                continue;
            weight_sum += stageWidthEstimate(stages[s], f);
        }
        std::uint64_t spick = rng.below(weight_sum);
        std::size_t si = 0;
        for (;; ++si) {
            if (config_.operandStagesOnly && !is_operand(stages[si]))
                continue;
            const std::uint64_t sw = stageWidthEstimate(stages[si], f);
            if (spick < sw)
                break;
            spick -= sw;
        }
        const double bit_frac = rng.uniform();
        OneShotDatapathHook hook(kind, op_index, stages[si], bit_frac);

        const bool hung = executeArmed(workload_, *golden_, config_,
                                       &hook, nullptr);
        TrialOutcome trial = classify(workload_, *golden_, hung);
        if (describe) {
            std::ostringstream os;
            os << "site=datapath kind=" << fp::opKindName(kind)
               << " dynamic-index=" << op_index << " stage="
               << fp::stageName(stages[si])
               << " bit-frac=" << bit_frac;
            trial.description = os.str();
        }
        return trial;
    }

  private:
    /** Fork constructor: sampling tables are copied by fork(). */
    DatapathTrialRunner(Workload &w, const CampaignConfig &config,
                        std::shared_ptr<const GoldenRun> golden)
        : TrialRunner(w, config, std::move(golden))
    {
    }

    std::vector<std::pair<fp::OpKind, std::uint64_t>> kinds_;
    std::uint64_t totalOps_ = 0;
};

/** Persistent (configuration-upset) campaign, one trial at a time. */
class PersistentTrialRunner : public TrialRunner
{
  public:
    PersistentTrialRunner(Workload &w, const CampaignConfig &config,
                          std::vector<EngineAllocation> engines,
                          std::shared_ptr<const GoldenRun> golden = nullptr)
        : TrialRunner(w, config, std::move(golden)),
          engines_(std::move(engines))
    {
        for (const auto &alloc : engines_)
            totalUnits_ += alloc.units;
        MPARCH_ASSERT(totalUnits_ > 0, "circuit has no physical units");
    }

    std::unique_ptr<TrialRunner>
    fork(Workload &w) const override
    {
        return std::make_unique<PersistentTrialRunner>(
            w, config_, engines_, golden_);
    }

    TrialOutcome
    runTrial(std::uint64_t index, bool describe) override
    {
        Rng rng = trialRng(config_.seed, index);
        workload_.reset(config_.inputSeed);
        const fp::Format f = fp::formatOf(workload_.precision());

        // A configuration upset strikes a physical operator; sample
        // proportionally to each engine's instance count.
        std::uint64_t pick = rng.below(totalUnits_);
        std::size_t which = 0;
        while (pick >= engines_[which].units) {
            pick -= engines_[which].units;
            ++which;
        }
        const auto &alloc = engines_[which];
        const fp::OpKind kind = alloc.engine.kind;
        const std::uint64_t unit = rng.below(alloc.units);

        std::size_t stage_count = 0;
        const auto &stages = stagesFor(kind, stage_count);
        std::uint64_t weight_sum = 0;
        for (std::size_t s = 0; s < stage_count; ++s)
            weight_sum += stageWidthEstimate(stages[s], f);
        std::uint64_t spick = rng.below(weight_sum);
        std::size_t si = 0;
        while (spick >= stageWidthEstimate(stages[si], f)) {
            spick -= stageWidthEstimate(stages[si], f);
            ++si;
        }
        // Configuration upsets rewire logic: model as stuck-at of
        // either polarity, with an always-flip tail for upsets in
        // inverting logic (the gate computes the complement).
        const std::uint64_t mode_pick = rng.below(3);
        const PersistMode mode =
            mode_pick == 0 ? PersistMode::Flip
            : mode_pick == 1 ? PersistMode::StuckAt0
                             : PersistMode::StuckAt1;
        const double bit_frac = rng.uniform();
        PersistentDatapathHook hook(kind, alloc.units, unit,
                                    stages[si], bit_frac,
                                    alloc.engine.period,
                                    alloc.engine.lo, alloc.engine.hi,
                                    mode);

        const bool hung = executeArmed(workload_, *golden_, config_,
                                       &hook, nullptr);
        TrialOutcome trial = classify(workload_, *golden_, hung);
        if (describe) {
            std::ostringstream os;
            os << "site=persistent engine=" << alloc.engine.name
               << " kind=" << fp::opKindName(kind) << " unit="
               << unit << "/" << alloc.units << " stage="
               << fp::stageName(stages[si]) << " mode="
               << persistModeName(mode) << " bit-frac=" << bit_frac;
            trial.description = os.str();
        }
        return trial;
    }

  private:
    std::vector<EngineAllocation> engines_;
    std::uint64_t totalUnits_ = 0;
};

/** Plain in-memory campaign: every trial in index order. */
CampaignResult
runAll(TrialRunner &runner, std::uint64_t trials)
{
    CampaignResult result;
    result.corpus.reserve(trials);
    if (runner.config().recordAnatomy)
        result.anatomy.reserve(trials);
    for (std::uint64_t t = 0; t < trials; ++t)
        accumulate(result, runner.runTrial(t));
    return result;
}

/** Golden-run cache key; the full identity of a factory workload. */
struct GoldenKey
{
    std::string name;
    fp::Precision precision;
    double scale;
    std::uint64_t inputSeed;

    bool
    operator<(const GoldenKey &o) const
    {
        if (name != o.name)
            return name < o.name;
        if (precision != o.precision)
            return precision < o.precision;
        if (scale != o.scale)
            return scale < o.scale;
        return inputSeed < o.inputSeed;
    }
};

std::mutex g_goldenCacheMu;
std::map<GoldenKey, std::shared_ptr<const GoldenRun>> g_goldenCache;

} // namespace

std::shared_ptr<const GoldenRun>
cachedGoldenRun(Workload &w, std::uint64_t input_seed, double scale)
{
    const GoldenKey key{w.name(), w.precision(), scale, input_seed};
    // Compute under the lock: concurrent requests for the same key
    // would otherwise duplicate the (expensive) reference execution,
    // and campaigns only parallelise trials, not golden runs.
    std::lock_guard<std::mutex> lock(g_goldenCacheMu);
    auto it = g_goldenCache.find(key);
    if (it == g_goldenCache.end()) {
        it = g_goldenCache
                 .emplace(key, std::make_shared<const GoldenRun>(
                                   w, input_seed))
                 .first;
    }
    return it->second;
}

void
clearGoldenRunCache()
{
    std::lock_guard<std::mutex> lock(g_goldenCacheMu);
    g_goldenCache.clear();
}

std::unique_ptr<TrialRunner>
makeMemoryTrialRunner(Workload &w, const CampaignConfig &config,
                      std::shared_ptr<const GoldenRun> golden)
{
    return std::make_unique<MemoryTrialRunner>(w, config,
                                               std::move(golden));
}

std::unique_ptr<TrialRunner>
makeDatapathTrialRunner(Workload &w, const CampaignConfig &config,
                        fp::OpKind kind_filter,
                        std::shared_ptr<const GoldenRun> golden)
{
    return std::make_unique<DatapathTrialRunner>(w, config,
                                                 kind_filter,
                                                 std::move(golden));
}

std::unique_ptr<TrialRunner>
makePersistentTrialRunner(Workload &w, const CampaignConfig &config,
                          const std::vector<EngineAllocation> &engines,
                          std::shared_ptr<const GoldenRun> golden)
{
    return std::make_unique<PersistentTrialRunner>(
        w, config, engines, std::move(golden));
}

CampaignResult
runMemoryCampaign(Workload &w, const CampaignConfig &config)
{
    MemoryTrialRunner runner(w, config);
    return runAll(runner, config.trials);
}

CampaignResult
runDatapathCampaign(Workload &w, const CampaignConfig &config,
                    fp::OpKind kind_filter)
{
    DatapathTrialRunner runner(w, config, kind_filter);
    return runAll(runner, config.trials);
}

CampaignResult
runPersistentCampaign(Workload &w, const CampaignConfig &config,
                      const std::vector<EngineAllocation> &engines)
{
    PersistentTrialRunner runner(w, config, engines);
    return runAll(runner, config.trials);
}

CampaignResult
runPersistentCampaign(
    Workload &w, const CampaignConfig &config,
    const std::function<std::uint64_t(fp::OpKind)> &physical_units)
{
    const GoldenRun golden(w, config.inputSeed);
    std::vector<EngineAllocation> engines;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(fp::OpKind::NumKinds); ++k) {
        const auto kind = static_cast<fp::OpKind>(k);
        if (kind == fp::OpKind::Exp)
            continue;
        if (golden.ops.count(kind) == 0)
            continue;
        const std::uint64_t units = physical_units(kind);
        if (units == 0)
            continue;
        EngineAllocation alloc;
        alloc.engine.name = fp::opKindName(kind);
        alloc.engine.kind = kind;
        alloc.units = units;
        engines.push_back(alloc);
    }
    return runPersistentCampaign(w, config, engines);
}

} // namespace mparch::fault
