/**
 * @file
 * Oracle 3: algebraic and taxonomy properties.
 *
 * These checks need no reference value at all: they assert relations
 * the IEEE754 semantics force between *production* results —
 * commutativity, sign symmetry, special-value taxonomy — plus a
 * bounded-ULP envelope for the transcendentals against the host libm
 * (the only oracle layer that covers exp/log beyond the algorithm
 * mirror, since neither is correctly rounded).
 *
 * Property violations are self-contained evidence: they do not depend
 * on the exact or host oracle being right.
 */

#include "verify/verify.hh"

#include <bit>
#include <cmath>
#include <sstream>

#include "fp/softfloat.hh"

namespace mparch::verify {

using fp::FpClass;
using fp::Format;
using fp::classify;
using fp::infinity;
using fp::isNaN;
using fp::isZero;
using fp::quietNaN;
using fp::signOf;
using fp::zero;

namespace {

std::string
expect(const char *what, Format f, std::uint64_t want,
       std::uint64_t got)
{
    std::ostringstream os;
    os << what << ": expected " << fp::fpDescribe(f, want) << ", got "
       << fp::fpDescribe(f, got);
    return os.str();
}

/** result must be the canonical quiet NaN. */
void
requireQuietNaN(const char *why, Format f, std::uint64_t result,
                std::vector<std::string> &out)
{
    if (result != quietNaN(f))
        out.push_back(expect(why, f, quietNaN(f), result));
}

void
requireBits(const char *why, Format f, std::uint64_t want,
            std::uint64_t got, std::vector<std::string> &out)
{
    if (got != want)
        out.push_back(expect(why, f, want, got));
}

/** Taxonomy of special operands, per op. */
void
checkTaxonomy(const Case &c, std::uint64_t result,
              std::vector<std::string> &out)
{
    const Format f = c.fmt;
    const Format rf = c.resultFormat();
    const FpClass ca = classify(f, c.a);
    const FpClass cb = classify(f, c.b);

    // A NaN in any consumed operand position yields the canonical
    // quiet NaN, whatever the op.
    const unsigned arity = vopArity(c.op);
    if (ca == FpClass::NaN || (arity >= 2 && cb == FpClass::NaN) ||
        (arity >= 3 && isNaN(f, c.c))) {
        requireQuietNaN("NaN operand", rf, result, out);
        return;
    }

    switch (c.op) {
      case VOp::Add:
      case VOp::Sub: {
        // Effective sign of b under the op.
        const bool bs = signOf(f, c.b) != (c.op == VOp::Sub);
        if (ca == FpClass::Inf && cb == FpClass::Inf) {
            if (signOf(f, c.a) != bs)
                requireQuietNaN("inf - inf", f, result, out);
            else
                requireBits("inf + inf", f,
                            infinity(f, signOf(f, c.a)), result, out);
        } else if (ca == FpClass::Inf) {
            requireBits("inf + finite", f,
                        infinity(f, signOf(f, c.a)), result, out);
        } else if (cb == FpClass::Inf) {
            requireBits("finite + inf", f, infinity(f, bs), result,
                        out);
        }
        break;
      }
      case VOp::Mul: {
        const bool sign = signOf(f, c.a) != signOf(f, c.b);
        if ((ca == FpClass::Inf && cb == FpClass::Zero) ||
            (ca == FpClass::Zero && cb == FpClass::Inf))
            requireQuietNaN("0 * inf", f, result, out);
        else if (ca == FpClass::Inf || cb == FpClass::Inf)
            requireBits("inf * x", f, infinity(f, sign), result, out);
        else if (ca == FpClass::Zero || cb == FpClass::Zero)
            requireBits("0 * x", f, zero(f, sign), result, out);
        break;
      }
      case VOp::Div: {
        const bool sign = signOf(f, c.a) != signOf(f, c.b);
        if (ca == FpClass::Inf && cb == FpClass::Inf)
            requireQuietNaN("inf / inf", f, result, out);
        else if (ca == FpClass::Zero && cb == FpClass::Zero)
            requireQuietNaN("0 / 0", f, result, out);
        else if (ca == FpClass::Inf)
            requireBits("inf / x", f, infinity(f, sign), result, out);
        else if (cb == FpClass::Zero)
            requireBits("x / 0", f, infinity(f, sign), result, out);
        else if (cb == FpClass::Inf)
            requireBits("x / inf", f, zero(f, sign), result, out);
        else if (ca == FpClass::Zero)
            requireBits("0 / x", f, zero(f, sign), result, out);
        break;
      }
      case VOp::Sqrt:
        if (ca == FpClass::Zero)
            requireBits("sqrt(+/-0)", f, c.a, result, out);
        else if (signOf(f, c.a))
            requireQuietNaN("sqrt(negative)", f, result, out);
        else if (ca == FpClass::Inf)
            requireBits("sqrt(+inf)", f, c.a, result, out);
        break;
      case VOp::Exp:
        if (ca == FpClass::Zero)
            requireBits("exp(+/-0)", f, fp::one(f), result, out);
        else if (ca == FpClass::Inf)
            requireBits("exp(+/-inf)", f,
                        signOf(f, c.a) ? zero(f, false) : c.a, result,
                        out);
        break;
      case VOp::Log:
        if (ca == FpClass::Zero)
            requireBits("log(+/-0)", f, infinity(f, true), result,
                        out);
        else if (signOf(f, c.a))
            requireQuietNaN("log(negative)", f, result, out);
        else if (ca == FpClass::Inf)
            requireBits("log(+inf)", f, c.a, result, out);
        else if (c.a == fp::one(f))
            requireBits("log(1)", f, zero(f, false), result, out);
        break;
      case VOp::Convert:
        if (ca == FpClass::Inf)
            requireBits("convert(inf)", rf,
                        infinity(rf, signOf(f, c.a)), result, out);
        else if (ca == FpClass::Zero)
            requireBits("convert(+/-0)", rf, zero(rf, signOf(f, c.a)),
                        result, out);
        break;
      default:
        break;
    }
}

/** Commutativity and sign-symmetry relations between production runs. */
void
checkAlgebra(const Case &c, std::uint64_t result,
             std::vector<std::string> &out)
{
    const Format f = c.fmt;
    const auto flip = [&](std::uint64_t v) {
        return v ^ (1ULL << f.signPos());
    };

    switch (c.op) {
      case VOp::Add:
      case VOp::Mul: {
        Case swapped = c;
        std::swap(swapped.a, swapped.b);
        requireBits(c.op == VOp::Add ? "add commutativity"
                                     : "mul commutativity",
                    f, result, runProduction(swapped), out);
        break;
      }
      case VOp::Fma: {
        Case swapped = c;
        std::swap(swapped.a, swapped.b);
        requireBits("fma a*b == b*a", f, result,
                    runProduction(swapped), out);
        break;
      }
      default:
        break;
    }

    if (isNaN(f, result))
        return;

    switch (c.op) {
      case VOp::Mul:
      case VOp::Div: {
        // (-a) op b == -(a op b), exactly, zeros and infs included.
        Case neg = c;
        neg.a = flip(neg.a);
        requireBits("sign symmetry (-a)", f, flip(result),
                    runProduction(neg), out);
        break;
      }
      case VOp::Add:
      case VOp::Sub: {
        // (-a) op (-b) == -(a op b) except for exact zero results,
        // whose sign is fixed (+0 under RNE) regardless of inputs.
        if (isZero(f, result))
            break;
        Case neg = c;
        neg.a = flip(neg.a);
        neg.b = flip(neg.b);
        requireBits("sign symmetry (-a, -b)", f, flip(result),
                    runProduction(neg), out);
        break;
      }
      case VOp::Fma: {
        if (isZero(f, result))
            break;
        Case neg = c;
        neg.a = flip(neg.a);
        neg.c = flip(neg.c);
        requireBits("sign symmetry (-a, b, -c)", f, flip(result),
                    runProduction(neg), out);
        break;
      }
      default:
        break;
    }
}

/**
 * Bounded-ULP envelope for the transcendentals: the in-format result
 * must land within a few grid steps of the host libm value rounded
 * into the format. Checked only when both sides are finite — near
 * overflow/underflow a one-step disagreement can cross into inf/0 and
 * the envelope is meaningless there.
 */
void
checkEnvelope(const Case &c, std::uint64_t result,
              const PropertyOptions &opts,
              std::vector<std::string> &out)
{
    if (c.op != VOp::Exp && c.op != VOp::Log)
        return;
    const Format f = c.fmt;
    if (!fp::isFinite(f, c.a) || !fp::isFinite(f, result))
        return;
    if (c.op == VOp::Log &&
        (signOf(f, c.a) || isZero(f, c.a)))
        return;

    const double x = fp::fpToDouble(f, c.a);
    const double y = c.op == VOp::Exp ? std::exp(x) : std::log(x);
    if (!std::isfinite(y))
        return;

    // Round the libm value into the format with the exact oracle's
    // conversion (independent of production code).
    Case conv;
    conv.op = VOp::Convert;
    conv.fmt = fp::kDouble;
    conv.dst = f;
    conv.a = std::bit_cast<std::uint64_t>(y);
    const OracleResult ref = exactOracle(conv);
    if (!ref.supported || !fp::isFinite(f, ref.bits))
        return;

    const std::uint64_t dist = ulpDistance(f, result, ref.bits);
    std::uint64_t tol = static_cast<std::uint64_t>(
        c.op == VOp::Exp ? opts.expUlpTol : opts.logUlpTol);
    if (c.op == VOp::Exp) {
        // The Cody-Waite reduction r = x - k*ln2 carries ln2's
        // in-format representation error k times, and exp turns the
        // absolute error in r into a relative error of the result:
        // ~ k * 2^-(p+1) relative, i.e. about k/2 ULPs. Budget one
        // ULP per unit of k on top of the base tolerance. (log needs
        // no such term: its k*ln2 error stays proportional to the
        // result's own magnitude.)
        const double k = std::abs(x) * 1.4426950408889634;
        tol += static_cast<std::uint64_t>(std::ceil(
            std::min(k, 16384.0)));
    }
    if (dist > tol) {
        std::ostringstream os;
        os << vopName(c.op) << " envelope: " << dist
           << " ulp from libm (tolerance " << tol << ", libm value "
           << fp::fpDescribe(f, ref.bits) << ")";
        out.push_back(os.str());
    }
}

/** Widening conversions are exact and round-trip to the same bits. */
void
checkRoundTrip(const Case &c, std::uint64_t result,
               std::vector<std::string> &out)
{
    if (c.op != VOp::Convert)
        return;
    const Format src = c.fmt;
    const Format dst = c.dst;
    const bool widening =
        dst.manBits >= src.manBits && dst.expBits >= src.expBits;
    if (!widening || isNaN(src, c.a))
        return;
    const std::uint64_t back = fp::fpConvertSilent(src, dst, result);
    requireBits("widening round-trip", src, c.a, back, out);
}

} // namespace

std::vector<std::string>
checkProperties(const Case &c, std::uint64_t result,
                const PropertyOptions &opts)
{
    std::vector<std::string> out;
    checkTaxonomy(c, result, out);
    checkAlgebra(c, result, out);
    checkEnvelope(c, result, opts, out);
    checkRoundTrip(c, result, out);
    return out;
}

} // namespace mparch::verify
