# Empty compiler generated dependencies file for fig7_phi_pvf.
# This may be replaced when dependencies are built.
