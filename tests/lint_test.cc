/**
 * @file
 * Tests for the project linter: lexer behaviour, per-rule positive
 * and negative fixtures (inline strings and the on-disk corpus under
 * tests/data/lint/), suppression-comment parsing, JSON report
 * round-trip through common/json, and the meta-test that keeps the
 * real source tree lint-clean.
 *
 * Violating code lives in raw string literals throughout — the
 * lexer treats string contents as opaque, which is itself part of
 * what these tests pin down (this file is swept by lint_all).
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "common/json.hh"

namespace {

using namespace mparch::analysis;

/** Run one rule (or all when @p rule is empty) over a buffer. */
LintReport
lintBuffer(const std::string &path, const std::string &code,
           const std::string &rule = "")
{
    LintOptions options;
    if (!rule.empty())
        options.onlyRules.push_back(rule);
    LintReport report;
    lintFile(sourceFromString(path, code), options, report);
    return report;
}

std::vector<std::string>
ruleNames(const LintReport &report, bool suppressedToo = false)
{
    std::vector<std::string> names;
    for (const Finding &f : report.findings)
        if (suppressedToo || !f.suppressed)
            names.push_back(f.rule);
    return names;
}

// ---------------------------------------------------------------
// Lexer

TEST(Lexer, CommentsAndStringsAreOpaque)
{
    const auto tokens = lex(
        "int a; // std::rand() in a comment\n"
        "const char *s = \"std::rand()\";\n"
        "/* rand */ int b;\n");
    for (const Token &t : tokens) {
        if (t.kind == TokKind::Identifier) {
            EXPECT_NE(t.text, "rand") << "line " << t.line;
        }
    }
}

TEST(Lexer, RawStringsSwallowEverything)
{
    const auto tokens = lex(
        "const char *s = R\"(std::rand() \" unbalanced { )\";\n"
        "int after;\n");
    bool sawAfter = false;
    for (const Token &t : tokens) {
        EXPECT_NE(t.text, "rand");
        if (t.isIdent("after"))
            sawAfter = true;
    }
    EXPECT_TRUE(sawAfter);
}

TEST(Lexer, DirectivesAndHeaderNames)
{
    const auto tokens = lex("#include <vector>\n"
                            "#include \"fp/softfloat.hh\"\n"
                            "#ifndef GUARD\n");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].kind, TokKind::Directive);
    EXPECT_EQ(tokens[0].text, "include");
    EXPECT_EQ(tokens[1].kind, TokKind::HeaderName);
    EXPECT_EQ(tokens[1].text, "vector");
    EXPECT_EQ(tokens[3].kind, TokKind::String);
    EXPECT_EQ(tokens[3].text, "\"fp/softfloat.hh\"");
    EXPECT_EQ(tokens[4].kind, TokKind::Directive);
    EXPECT_EQ(tokens[4].text, "ifndef");
}

TEST(Lexer, LineAndColumnPositions)
{
    const auto tokens = lex("a\n  bc\n");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[0].col, 1u);
    EXPECT_EQ(tokens[1].line, 2u);
    EXPECT_EQ(tokens[1].col, 3u);
}

// ---------------------------------------------------------------
// banned-api

TEST(BannedApi, FlagsHiddenStateAndWallClock)
{
    const auto report = lintBuffer("src/metrics/x.cc", R"cpp(
        #include <cstdlib>
        int f() { return std::rand(); }
        long g() { return time(nullptr); }
        const char *h() { return std::getenv("X"); }
        void w() { auto t = std::chrono::system_clock::now(); }
    )cpp", "banned-api");
    EXPECT_EQ(report.active(), 4u);
}

TEST(BannedApi, MemberNamedTimeIsNotFlagged)
{
    const auto report = lintBuffer("src/metrics/x.cc", R"cpp(
        double f(const Exposure &e) { return e.time(); }
        double g(Run *r) { return r->clock(); }
        int h(int time) { return time + 1; }
    )cpp", "banned-api");
    EXPECT_EQ(report.active(), 0u);
}

TEST(BannedApi, GetenvAllowedInCliTrees)
{
    const std::string code = R"cpp(
        #include <cstdlib>
        const char *f() { return std::getenv("MPARCH_X"); }
    )cpp";
    EXPECT_EQ(lintBuffer("examples/cli.cpp", code, "banned-api")
                  .active(),
              0u);
    EXPECT_EQ(lintBuffer("tools/helper.cc", code, "banned-api")
                  .active(),
              0u);
    EXPECT_EQ(lintBuffer("src/core/x.cc", code, "banned-api")
                  .active(),
              1u);
}

TEST(BannedApi, SteadyClockIsFine)
{
    const auto report = lintBuffer("src/report/t.cc", R"cpp(
        #include <chrono>
        auto f() { return std::chrono::steady_clock::now(); }
    )cpp", "banned-api");
    EXPECT_EQ(report.active(), 0u);
}

// ---------------------------------------------------------------
// rng-discipline

TEST(RngDiscipline, FlagsStdRandomMachinery)
{
    const auto report = lintBuffer("src/nn/x.cc", R"cpp(
        #include <random>
        double f() {
            std::mt19937 gen(7);
            std::normal_distribution<double> d(0.0, 1.0);
            return d(gen);
        }
    )cpp", "rng-discipline");
    EXPECT_EQ(report.active(), 2u);
}

TEST(RngDiscipline, FlagsDefaultConstructedRng)
{
    const auto report = lintBuffer("src/nn/x.cc", R"cpp(
        #include "common/rng.hh"
        double f() { mparch::Rng rng; return rng.uniform(); }
    )cpp", "rng-discipline");
    EXPECT_EQ(report.active(), 1u);
}

TEST(RngDiscipline, SeededRngAndMembersAreFine)
{
    const auto report = lintBuffer("src/nn/x.cc", R"cpp(
        #include "common/rng.hh"
        class Net {
            mparch::Rng rng_;   // member: initialized in the ctor
        };
        double f(std::uint64_t seed) {
            mparch::Rng rng(seed);
            return rng.uniform();
        }
    )cpp", "rng-discipline");
    EXPECT_EQ(report.active(), 0u);
}

TEST(RngDiscipline, TrialTreeRequiresCounterStreams)
{
    const std::string adHoc = R"cpp(
        #include "common/rng.hh"
        double t(std::uint64_t seed, std::uint64_t i) {
            mparch::Rng rng(seed + i);
            return rng.uniform();
        }
    )cpp";
    const std::string derived = R"cpp(
        #include "common/rng.hh"
        double t(std::uint64_t seed, std::uint64_t i) {
            mparch::Rng rng = mparch::trialRng(seed, i);
            return rng.uniform();
        }
    )cpp";
    EXPECT_EQ(lintBuffer("src/fault/t.cc", adHoc, "rng-discipline")
                  .active(),
              1u);
    EXPECT_EQ(lintBuffer("src/fault/t.cc", derived, "rng-discipline")
                  .active(),
              0u);
    // Outside the trial machinery the same code is fine.
    EXPECT_EQ(lintBuffer("src/nn/t.cc", adHoc, "rng-discipline")
                  .active(),
              0u);
}

// ---------------------------------------------------------------
// ordered-serialization

TEST(OrderedSerialization, FlagsUnorderedInSerializingFiles)
{
    const std::string code = R"cpp(
        #include <unordered_map>
        #include "common/json.hh"
        void f();
    )cpp";
    const auto report =
        lintBuffer("src/metrics/m.cc", code, "ordered-serialization");
    EXPECT_GE(report.active(), 1u);
}

TEST(OrderedSerialization, UnorderedFineAwayFromSerializers)
{
    const auto report = lintBuffer("src/nn/cache.cc", R"cpp(
        #include <unordered_map>
        std::unordered_map<int, int> cache;
    )cpp", "ordered-serialization");
    EXPECT_EQ(report.active(), 0u);
}

TEST(OrderedSerialization, ReportAndFaultTreesAlwaysCount)
{
    const auto report = lintBuffer("src/report/r.cc", R"cpp(
        #include <unordered_set>
        std::unordered_set<int> seen;
    )cpp", "ordered-serialization");
    // Both the include and the use are flagged.
    EXPECT_EQ(report.active(), 2u);
}

// ---------------------------------------------------------------
// hook-coverage

TEST(HookCoverage, FlagsUnthreadedRoundPackAndTouch)
{
    const auto report = lintBuffer("src/fp/bad.cc", R"cpp(
        #include "fp/softfloat.hh"
        namespace mparch::fp {
        std::uint64_t f(Format f, RawFloat raw) {
            return roundPack(f, raw);
        }
        std::uint64_t g(Format f, std::uint64_t a) {
            return detail::touch({}, OpKind::Add, Stage::OperandA,
                                 f.totalBits, a);
        }
        }
    )cpp", "hook-coverage");
    EXPECT_EQ(report.active(), 2u);
}

TEST(HookCoverage, ThreadedPathsPass)
{
    const auto report = lintBuffer("src/fp/good.cc", R"cpp(
        #include "fp/softfloat.hh"
        namespace mparch::fp {
        std::uint64_t entry(Format f, std::uint64_t a) {
            const OpCtx ctx = detail::enterOp(OpKind::Add);
            a = detail::touch(ctx, OpKind::Add, Stage::OperandA,
                              f.totalBits, a);
            return roundPack(f, {false, 0, a}, ctx, OpKind::Add);
        }
        std::uint64_t helper(Format f, RawFloat raw,
                             const OpCtx &ctx) {
            raw.sig = detail::touch(ctx, OpKind::Add,
                                    Stage::PreRoundSig, 64, raw.sig);
            return roundPack(f, raw, ctx, OpKind::Add);
        }
        }
    )cpp", "hook-coverage");
    EXPECT_EQ(report.active(), 0u);
}

TEST(HookCoverage, ControlFlowBracesAreNotFunctions)
{
    // An if-block between the OpCtx parameter and the touch call
    // must not sever the function's dispatch context.
    const auto report = lintBuffer("src/fp/branchy.cc", R"cpp(
        namespace mparch::fp {
        std::uint64_t f(std::uint64_t a, const OpCtx &ctx,
                        bool instrumented) {
            if (instrumented) {
                a = detail::touch(ctx, OpKind::Add, Stage::OperandA,
                                  16, a);
            }
            return a;
        }
        }
    )cpp", "hook-coverage");
    EXPECT_EQ(report.active(), 0u);
}

TEST(HookCoverage, OnlyAppliesToFpSources)
{
    const auto report = lintBuffer("src/verify/v.cc", R"cpp(
        int f() { return roundPack(1, 2); }
    )cpp", "hook-coverage");
    EXPECT_EQ(report.active(), 0u);
}

// ---------------------------------------------------------------
// include-hygiene

TEST(IncludeHygiene, FlagsGuardlessHeader)
{
    const auto report = lintBuffer("src/nn/thing.hh", R"cpp(
        #include <vector>
        inline int f() { return 1; }
    )cpp", "include-hygiene");
    ASSERT_EQ(report.active(), 1u);
    EXPECT_NE(report.findings[0].message.find("include guard"),
              std::string::npos);
}

TEST(IncludeHygiene, AcceptsProjectGuard)
{
    const auto report = lintBuffer("src/nn/thing.hh", R"cpp(
#ifndef MPARCH_NN_THING_HH
#define MPARCH_NN_THING_HH
inline int f() { return 1; }
#endif
    )cpp", "include-hygiene");
    EXPECT_EQ(report.active(), 0u);
}

TEST(IncludeHygiene, FlagsForeignGuardPrefix)
{
    const auto report = lintBuffer("src/nn/thing.hh", R"cpp(
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H
#endif
    )cpp", "include-hygiene");
    EXPECT_EQ(report.active(), 1u);
}

TEST(IncludeHygiene, FlagsParentRelativeInclude)
{
    const auto report = lintBuffer("src/nn/x.cc", R"cpp(
        #include "../common/rng.hh"
    )cpp", "include-hygiene");
    EXPECT_EQ(report.active(), 1u);
}

TEST(IncludeHygiene, SelfIncludeMustComeFirst)
{
    const std::string wrongOrder = R"cpp(
        #include <vector>
        #include "nn/digits.hh"
    )cpp";
    const std::string rightOrder = R"cpp(
        #include "nn/digits.hh"
        #include <vector>
    )cpp";
    EXPECT_EQ(lintBuffer("src/nn/digits.cc", wrongOrder,
                         "include-hygiene")
                  .active(),
              1u);
    EXPECT_EQ(lintBuffer("src/nn/digits.cc", rightOrder,
                         "include-hygiene")
                  .active(),
              0u);
    // A main with no companion header is unconstrained.
    EXPECT_EQ(lintBuffer("examples/quickstart.cpp", wrongOrder,
                         "include-hygiene")
                  .active(),
              0u);
}

// ---------------------------------------------------------------
// registry-shim

TEST(RegistryShim, AcceptsTheShimShape)
{
    const auto report = lintBuffer("bench/fig3_fpga_fit.cpp", R"cpp(
        #include "bench_util.hh"
        int main(int argc, char **argv) {
            return mparch::bench::shimMain(argc, argv,
                                           "fig3_fpga_fit");
        }
    )cpp", "registry-shim");
    EXPECT_EQ(report.active(), 0u);
}

TEST(RegistryShim, FlagsNonShimBenchBinaries)
{
    std::string big = "#include <cstdio>\n";
    for (int i = 0; i < 40; ++i)
        big += "// padding line to exceed the shim budget\n";
    big += "int main() { return 0; }\n";
    const auto report =
        lintBuffer("bench/fig99_custom.cpp", big, "registry-shim");
    EXPECT_EQ(report.active(), 2u);  // no shimMain + over budget
}

TEST(RegistryShim, IgnoresOtherTrees)
{
    const auto report = lintBuffer("examples/quickstart.cpp",
                                   "int main() { return 0; }\n",
                                   "registry-shim");
    EXPECT_EQ(report.active(), 0u);
}

// ---------------------------------------------------------------
// Suppressions

TEST(Suppression, SameLineWaives)
{
    const auto report = lintBuffer("src/x.cc",
        "#include <cstdlib>\n"
        "int f() { return std::rand(); } "
        "// mparch-lint: allow(banned-api): fixture needs rand\n",
        "banned-api");
    EXPECT_EQ(report.active(), 0u);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_TRUE(report.findings[0].suppressed);
    EXPECT_EQ(report.findings[0].suppressReason,
              "fixture needs rand");
}

TEST(Suppression, LineAboveWaivesWhenAlone)
{
    const auto report = lintBuffer("src/x.cc",
        "#include <cstdlib>\n"
        "// mparch-lint: allow(banned-api): exercising line-above\n"
        "int f() { return std::rand(); }\n",
        "banned-api");
    EXPECT_EQ(report.active(), 0u);
    EXPECT_EQ(report.suppressedCount(), 1u);
}

TEST(Suppression, WrongRuleDoesNotWaive)
{
    const auto report = lintBuffer("src/x.cc",
        "#include <cstdlib>\n"
        "int f() { return std::rand(); } "
        "// mparch-lint: allow(include-hygiene): wrong rule\n",
        "banned-api");
    EXPECT_EQ(report.active(), 1u);
}

TEST(Suppression, MissingReasonIsItselfAFinding)
{
    const auto report = lintBuffer(
        "src/x.cc", "// mparch-lint: allow(banned-api)\n");
    ASSERT_EQ(report.active(), 1u);
    EXPECT_EQ(report.findings[0].rule, suppressionRuleName());
}

TEST(Suppression, UnknownRuleIsItselfAFinding)
{
    const auto report = lintBuffer(
        "src/x.cc",
        "// mparch-lint: allow(made-up-rule): because\n");
    ASSERT_EQ(report.active(), 1u);
    EXPECT_EQ(report.findings[0].rule, suppressionRuleName());
}

TEST(Suppression, ProseMentionsAreIgnored)
{
    const auto report = lintBuffer(
        "src/x.cc",
        "// Docs: waive a finding by writing a comment of the form\n"
        "// described in docs — mparch-lint: allow(rule): reason —\n"
        "// anchored at the start of its own comment.\n");
    EXPECT_EQ(report.active(), 0u);
}

// ---------------------------------------------------------------
// Registry and report plumbing

TEST(Registry, CatalogueIsStable)
{
    std::vector<std::string> names;
    for (const Rule *r : allRules())
        names.push_back(r->name());
    const std::vector<std::string> expected = {
        "banned-api",          "rng-discipline",
        "ordered-serialization", "hook-coverage",
        "include-hygiene",     "registry-shim",
    };
    EXPECT_EQ(names, expected);
    for (const Rule *r : allRules()) {
        EXPECT_EQ(findRule(r->name()), r);
        EXPECT_STRNE(r->summary(), "");
    }
    EXPECT_EQ(findRule("no-such-rule"), nullptr);
}

TEST(Report, JsonRoundTripsThroughCommonJson)
{
    LintReport report = lintBuffer("src/x.cc",
        "#include <cstdlib>\n"
        "int f() { return std::rand(); }\n"
        "int g() { return std::rand(); } "
        "// mparch-lint: allow(banned-api): json fixture\n");
    std::ostringstream os;
    writeJsonReport(report, os);

    mparch::json::Value doc;
    std::string error;
    ASSERT_TRUE(mparch::json::parse(os.str(), doc, &error)) << error;
    EXPECT_EQ(doc.find("tool")->string, "mparch_lint");
    EXPECT_EQ(doc.find("filesScanned")->number, 1.0);
    EXPECT_EQ(doc.find("activeFindings")->number, 1.0);
    EXPECT_EQ(doc.find("suppressedFindings")->number, 1.0);
    const auto &findings = doc.find("findings")->array;
    ASSERT_EQ(findings.size(), report.findings.size());
    const mparch::json::Value &first = findings.at(0);
    EXPECT_EQ(first.find("rule")->string, "banned-api");
    EXPECT_EQ(first.find("path")->string, "src/x.cc");
    EXPECT_EQ(first.find("line")->number, 2.0);
    EXPECT_FALSE(first.find("suppressed")->boolean);
    const mparch::json::Value &second = findings.at(1);
    EXPECT_TRUE(second.find("suppressed")->boolean);
    EXPECT_EQ(second.find("reason")->string, "json fixture");
}

// ---------------------------------------------------------------
// On-disk fixture corpus

TEST(Fixtures, EveryRuleFiresOnTheCorpus)
{
    const std::string corpus =
        std::string(MPARCH_SOURCE_DIR) + "/tests/data/lint";
    const LintReport report = lintPaths({corpus}, LintOptions{});
    EXPECT_TRUE(report.errors.empty());
    EXPECT_GT(report.active(), 0u);
    const auto names = ruleNames(report);
    for (const Rule *rule : allRules()) {
        EXPECT_NE(std::count(names.begin(), names.end(),
                             rule->name()),
                  0)
            << "rule " << rule->name()
            << " has no on-disk violation fixture";
    }
    EXPECT_NE(std::count(names.begin(), names.end(),
                         suppressionRuleName()),
              0);
}

TEST(Fixtures, SuppressedFixtureScansClean)
{
    const std::string path = std::string(MPARCH_SOURCE_DIR) +
                             "/tests/data/lint/suppressed_clean.cc";
    const LintReport report = lintPaths({path}, LintOptions{});
    EXPECT_EQ(report.active(), 0u);
    EXPECT_GE(report.suppressedCount(), 2u);
}

// ---------------------------------------------------------------
// The real tree

TEST(RealTree, SweepIsLintClean)
{
    const std::string root = MPARCH_SOURCE_DIR;
    const LintReport report =
        lintPaths({root + "/src", root + "/bench",
                   root + "/examples", root + "/tests"},
                  LintOptions{});
    EXPECT_TRUE(report.errors.empty());
    for (const Finding &f : report.findings) {
        EXPECT_TRUE(f.suppressed)
            << f.path << ":" << f.line << ": [" << f.rule << "] "
            << f.message;
    }
    // The suppression budget is part of the contract: at most three
    // justified waivers in the whole tree.
    EXPECT_LE(report.suppressedCount(), 3u);
    // Sanity: the sweep actually saw the tree, and fixture files
    // under tests/data/ stayed out of it.
    EXPECT_GT(report.filesScanned, 150u);
    for (const Finding &f : report.findings)
        EXPECT_EQ(f.path.find("/tests/data/"), std::string::npos);
}

} // namespace
