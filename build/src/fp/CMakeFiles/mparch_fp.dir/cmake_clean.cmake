file(REMOVE_RECURSE
  "CMakeFiles/mparch_fp.dir/arith.cc.o"
  "CMakeFiles/mparch_fp.dir/arith.cc.o.d"
  "CMakeFiles/mparch_fp.dir/convert.cc.o"
  "CMakeFiles/mparch_fp.dir/convert.cc.o.d"
  "CMakeFiles/mparch_fp.dir/div_sqrt.cc.o"
  "CMakeFiles/mparch_fp.dir/div_sqrt.cc.o.d"
  "CMakeFiles/mparch_fp.dir/fma.cc.o"
  "CMakeFiles/mparch_fp.dir/fma.cc.o.d"
  "CMakeFiles/mparch_fp.dir/hooks.cc.o"
  "CMakeFiles/mparch_fp.dir/hooks.cc.o.d"
  "CMakeFiles/mparch_fp.dir/transcendental.cc.o"
  "CMakeFiles/mparch_fp.dir/transcendental.cc.o.d"
  "libmparch_fp.a"
  "libmparch_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
