/**
 * @file
 * Reproduces Figure 11a: FIT reduction vs TRE for the Volta
 * microbenchmarks.
 *
 * Shape targets: double benefits from the greatest reduction (a
 * fault in 64-bit data/operations usually lands far down the
 * mantissa), single and half behave similarly; ADD and FMA reduce
 * less than MUL (operands are normalised before addition, so a flip
 * in the aligned significand is either discarded or significant).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 500, 0.3);
    bench::banner("Figure 11a: Volta micro FIT reduction vs TRE",
                  "double reduces most; single ~ half; MUL reduces "
                  "more than ADD/FMA");

    for (const std::string name :
         {"micro-mul", "micro-add", "micro-fma"}) {
        const auto result =
            bench::study(core::Architecture::Gpu, name, args);
        const auto *d = result.find(fp::Precision::Double);
        const auto *s = result.find(fp::Precision::Single);
        const auto *h = result.find(fp::Precision::Half);
        Table table({"tre", "double", "single", "half"});
        table.setTitle(name + " (fraction of FIT remaining)");
        for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
            table.row()
                .cell(d->tre.thresholds[i], 4)
                .cell(d->tre.remaining[i], 3)
                .cell(s->tre.remaining[i], 3)
                .cell(h->tre.remaining[i], 3);
        }
        table.print(std::cout);
    }

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
