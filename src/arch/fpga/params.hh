/**
 * @file
 * Zynq-7000 model parameters.
 *
 * Structural constants follow public Xilinx 7-series documentation;
 * the few calibration constants (clock table, config-bit densities)
 * are marked as such and justified inline. All FIT outputs are in
 * arbitrary units, so only relative magnitudes matter.
 */

#ifndef MPARCH_ARCH_FPGA_PARAMS_HH
#define MPARCH_ARCH_FPGA_PARAMS_HH

#include "fp/format.hh"

namespace mparch::fpga {

/** Parallel processing elements instantiated per accelerator. */
inline constexpr int kPeBudget = 16;

/** Configuration bits controlling one LUT (logic + routing share). */
inline constexpr double kConfigBitsPerLut = 280.0;

/** Configuration bits controlling one DSP slice. */
inline constexpr double kConfigBitsPerDsp = 1600.0;

/** Config overhead per BRAM content bit (port/routing config). */
inline constexpr double kConfigPerBramBit = 0.05;

/** Fixed control logic of any accelerator (FSM, AXI) in LUTs. */
inline constexpr double kControlLuts = 900.0;

/** BRAM block capacity in bits (RAMB18). */
inline constexpr double kBramBits = 18432.0;

/**
 * Achievable clock per precision in Hz.
 *
 * Calibration note: single-precision operators map cleanly onto the
 * DSP48E1's 25x18 multiplier cascade; double pays a long carry /
 * cascade chain, and half forgoes most of the DSP benefit (operands
 * narrower than the DSP input) and routes through LUT logic. This
 * reproduces the paper's Table 1 observation that half-precision MxM
 * is slightly *slower* than single on the Zynq.
 */
constexpr double
clockHz(fp::Precision p)
{
    switch (p) {
      case fp::Precision::Double: return 150e6;
      case fp::Precision::Single: return 195e6;
      case fp::Precision::Half:   return 177e6;
      case fp::Precision::Bfloat16: return 185e6;  // narrow mantissa
    }
    return 150e6;
}

/** Pipeline fill + AXI setup overhead in cycles. */
inline constexpr double kFixedCycles = 2000.0;

} // namespace mparch::fpga

#endif // MPARCH_ARCH_FPGA_PARAMS_HH
