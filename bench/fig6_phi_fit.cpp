/**
 * @file
 * Reproduces Figure 6: SDC and DUE FIT on the Xeon Phi.
 *
 * Shape targets: single's SDC FIT exceeds double's for LavaMD and
 * MxM (the compiler instantiates 33% / 47% more vector registers —
 * more unprotected functional-unit state) and matches it for LUD
 * (same allocation); single's DUE FIT exceeds double's for all three
 * codes (16 lanes carry twice the control bits of 8).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 6: Xeon Phi SDC and DUE FIT (a.u.)",
                  "SDC: single > double for LavaMD/MxM, equal for "
                  "LUD; DUE: single > double everywhere");

    Table table({"benchmark", "precision", "vregs", "fit-sdc(a.u.)",
                 "fit-due(a.u.)", "sdc single/double",
                 "due single/double"});
    for (const std::string name : {"lavamd", "mxm", "lud"}) {
        const auto result =
            bench::study(core::Architecture::XeonPhi, name, args);
        const auto *d = result.find(fp::Precision::Double);
        const auto *s = result.find(fp::Precision::Single);
        for (const auto *row : {d, s}) {
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row->precision)))
                .cell(static_cast<std::int64_t>(
                    row->vectorRegisters))
                .cell(row->fitSdc, 0)
                .cell(row->fitDue, 0)
                .cell(row == s ? s->fitSdc / d->fitSdc : 1.0, 2)
                .cell(row == s ? s->fitDue / d->fitDue : 1.0, 2);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
