file(REMOVE_RECURSE
  "CMakeFiles/mparch_metrics.dir/metrics.cc.o"
  "CMakeFiles/mparch_metrics.dir/metrics.cc.o.d"
  "libmparch_metrics.a"
  "libmparch_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
