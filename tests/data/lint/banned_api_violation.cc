// Fixture: every kind of banned-api violation. Scanned by
// lint_test and by the lint_fixture_detects ctest entry (which
// expects a non-zero exit). Never part of a parent-tree sweep:
// the walker skips data/ directories.

#include <cstdlib>
#include <ctime>
#include <chrono>

namespace fixture {

int
entropySoup()
{
    std::srand(42);                              // banned: srand
    int a = std::rand();                         // banned: rand
    const std::time_t now = std::time(nullptr);  // banned: time
    const char *home = std::getenv("HOME");      // banned: getenv
    auto wall = std::chrono::system_clock::now();  // banned clock
    (void)wall;
    return a + static_cast<int>(now) + (home ? 1 : 0);
}

} // namespace fixture
