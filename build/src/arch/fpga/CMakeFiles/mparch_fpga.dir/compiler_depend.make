# Empty compiler generated dependencies file for mparch_fpga.
# This may be replaced when dependencies are built.
