file(REMOVE_RECURSE
  "CMakeFiles/fig11b_gpu_app_tre.dir/fig11b_gpu_app_tre.cpp.o"
  "CMakeFiles/fig11b_gpu_app_tre.dir/fig11b_gpu_app_tre.cpp.o.d"
  "fig11b_gpu_app_tre"
  "fig11b_gpu_app_tre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_gpu_app_tre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
