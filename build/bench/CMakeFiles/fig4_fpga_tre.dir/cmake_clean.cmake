file(REMOVE_RECURSE
  "CMakeFiles/fig4_fpga_tre.dir/fig4_fpga_tre.cpp.o"
  "CMakeFiles/fig4_fpga_tre.dir/fig4_fpga_tre.cpp.o.d"
  "fig4_fpga_tre"
  "fig4_fpga_tre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fpga_tre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
