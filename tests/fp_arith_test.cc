/**
 * @file
 * Correctness tests for the softfloat core against native IEEE754
 * hardware arithmetic.
 *
 * Oracles:
 *  - binary64 ops   -> native double (x86-64 SSE2, RNE),
 *  - binary32 ops   -> native float / fmaf,
 *  - binary16 +,-,*,/,sqrt -> compute in double, round once to half;
 *    innocuous double rounding because 53 >= 2*11 + 2 (Figueroa),
 *  - binary16 fma   -> exact 128-bit fixed-point reference (the exact
 *    result of a half fma spans < 83 bits).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.hh"
#include "fp/softfloat.hh"
#include "fp/value.hh"

namespace mparch::fp {
namespace {

std::uint64_t
d2u(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
u2d(std::uint64_t u)
{
    return std::bit_cast<double>(u);
}

std::uint64_t
f2u(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

float
u2f(std::uint64_t u)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(u));
}

/** Round a double to binary16 bits with a single RNE rounding. */
std::uint64_t
refDoubleToHalf(double v)
{
    return fpConvertSilent(kHalf, kDouble, d2u(v));
}

/** Expect bit-identical results, allowing any-NaN == any-NaN. */
void
expectSame(Format f, std::uint64_t expected, std::uint64_t actual,
           const std::string &what)
{
    if (isNaN(f, expected) && isNaN(f, actual))
        return;
    EXPECT_EQ(expected, actual) << what;
}

/** Draw a random bit pattern covering all classes incl. specials. */
std::uint64_t
randomBits(Rng &rng, Format f)
{
    const int kind = static_cast<int>(rng.below(10));
    switch (kind) {
      case 0: return zero(f, rng.chance(0.5));
      case 1: return infinity(f, rng.chance(0.5));
      case 2: return quietNaN(f);
      case 3: // subnormal
        return packFields(f, rng.chance(0.5), 0,
                          rng.below(f.manMask()) + 1);
      case 4: // near-overflow normal
        return packFields(f, rng.chance(0.5),
                          f.maxBiasedExp() - 1 -
                              static_cast<int>(rng.below(3)),
                          rng.below(f.manMask() + 1));
      case 5: // tiny normal
        return packFields(f, rng.chance(0.5),
                          1 + static_cast<int>(rng.below(3)),
                          rng.below(f.manMask() + 1));
      default: // generic normal
        return packFields(
            f, rng.chance(0.5),
            1 + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(f.maxBiasedExp() - 1))),
            rng.below(f.manMask() + 1));
    }
}

constexpr int kRandomTrials = 200000;

// ---------------------------------------------------------------
// binary64 against native double
// ---------------------------------------------------------------

TEST(FpDouble, AddMatchesNative)
{
    Rng rng(1);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(u2d(a) + u2d(b)), fpAdd(kDouble, a, b),
                   "add");
    }
}

TEST(FpDouble, SubMatchesNative)
{
    Rng rng(2);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(u2d(a) - u2d(b)), fpSub(kDouble, a, b),
                   "sub");
    }
}

TEST(FpDouble, MulMatchesNative)
{
    Rng rng(3);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(u2d(a) * u2d(b)), fpMul(kDouble, a, b),
                   "mul");
    }
}

TEST(FpDouble, DivMatchesNative)
{
    Rng rng(4);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(u2d(a) / u2d(b)), fpDiv(kDouble, a, b),
                   "div");
    }
}

TEST(FpDouble, SqrtMatchesNative)
{
    Rng rng(5);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(std::sqrt(u2d(a))), fpSqrt(kDouble, a),
                   "sqrt");
    }
}

TEST(FpDouble, FmaMatchesNative)
{
    Rng rng(6);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        const std::uint64_t c = randomBits(rng, kDouble);
        expectSame(kDouble, d2u(std::fma(u2d(a), u2d(b), u2d(c))),
                   fpFma(kDouble, a, b, c), "fma");
    }
}

TEST(FpDouble, CancellationAndEdges)
{
    // Massive cancellation must be exact.
    const double x = 0x1.0000000000001p+10;
    const double y = 0x1.0p+10;
    expectSame(kDouble, d2u(x - y), fpSub(kDouble, d2u(x), d2u(y)),
               "cancel");
    // Smallest subnormal arithmetic.
    const double tiny = 0x1p-1074;
    expectSame(kDouble, d2u(tiny + tiny),
               fpAdd(kDouble, d2u(tiny), d2u(tiny)), "subnormal add");
    // Overflow rounds to infinity.
    const double big = std::numeric_limits<double>::max();
    expectSame(kDouble, d2u(big + big * 0x1p-1),
               fpAdd(kDouble, d2u(big), d2u(big * 0x1p-1)), "overflow");
    // Inf - Inf is NaN.
    EXPECT_TRUE(isNaN(kDouble,
                      fpSub(kDouble, infinity(kDouble, false),
                            infinity(kDouble, false))));
    // 0 * Inf is NaN.
    EXPECT_TRUE(isNaN(kDouble,
                      fpMul(kDouble, zero(kDouble, false),
                            infinity(kDouble, true))));
    // 0/0 and Inf/Inf are NaN; x/0 is inf.
    EXPECT_TRUE(isNaN(kDouble, fpDiv(kDouble, zero(kDouble, false),
                                     zero(kDouble, false))));
    EXPECT_TRUE(isNaN(kDouble, fpDiv(kDouble, infinity(kDouble, false),
                                     infinity(kDouble, false))));
    expectSame(kDouble, infinity(kDouble, true),
               fpDiv(kDouble, d2u(-3.0), zero(kDouble, false)),
               "div by zero");
    // sqrt of a negative is NaN.
    EXPECT_TRUE(isNaN(kDouble, fpSqrt(kDouble, d2u(-1.0))));
}

// ---------------------------------------------------------------
// binary32 against native float
// ---------------------------------------------------------------

TEST(FpSingle, AddSubMulDivMatchNative)
{
    Rng rng(7);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kSingle);
        const std::uint64_t b = randomBits(rng, kSingle);
        expectSame(kSingle, f2u(u2f(a) + u2f(b)), fpAdd(kSingle, a, b),
                   "add");
        expectSame(kSingle, f2u(u2f(a) - u2f(b)), fpSub(kSingle, a, b),
                   "sub");
        expectSame(kSingle, f2u(u2f(a) * u2f(b)), fpMul(kSingle, a, b),
                   "mul");
        expectSame(kSingle, f2u(u2f(a) / u2f(b)), fpDiv(kSingle, a, b),
                   "div");
    }
}

TEST(FpSingle, SqrtAndFmaMatchNative)
{
    Rng rng(8);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kSingle);
        const std::uint64_t b = randomBits(rng, kSingle);
        const std::uint64_t c = randomBits(rng, kSingle);
        expectSame(kSingle, f2u(std::sqrt(u2f(a))), fpSqrt(kSingle, a),
                   "sqrt");
        expectSame(kSingle, f2u(std::fmaf(u2f(a), u2f(b), u2f(c))),
                   fpFma(kSingle, a, b, c), "fma");
    }
}

// ---------------------------------------------------------------
// binary16 against double-then-round / exact integer reference
// ---------------------------------------------------------------

TEST(FpHalfOps, AddSubMulDivSqrtMatchReference)
{
    Rng rng(9);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kHalf);
        const std::uint64_t b = randomBits(rng, kHalf);
        const double da = fpToDouble(kHalf, a);
        const double db = fpToDouble(kHalf, b);
        expectSame(kHalf, refDoubleToHalf(da + db), fpAdd(kHalf, a, b),
                   "add");
        expectSame(kHalf, refDoubleToHalf(da - db), fpSub(kHalf, a, b),
                   "sub");
        expectSame(kHalf, refDoubleToHalf(da * db), fpMul(kHalf, a, b),
                   "mul");
        expectSame(kHalf, refDoubleToHalf(da / db), fpDiv(kHalf, a, b),
                   "div");
        expectSame(kHalf, refDoubleToHalf(std::sqrt(da)),
                   fpSqrt(kHalf, a), "sqrt");
    }
}

/**
 * Exact reference for half fma: every binary16 value is an integer
 * multiple of 2^-48 once a*b is formed, and |a*b + c| < 2^33, so the
 * exact sum fits in a signed 128-bit fixed-point value at scale 2^-48.
 */
std::uint64_t
refHalfFma(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    const double exact_scaled =
        fpToDouble(kHalf, a) * fpToDouble(kHalf, b);  // exact: 22 bits
    // a*b is exact in double (<= 22 significand bits). c is exact.
    // Their sum may not be exact in double, so build it in fixed
    // point: scale 2^-48 makes all three terms integers.
    const auto to_fixed = [](double v) {
        return static_cast<__int128>(std::ldexp(v, 48));
    };
    const __int128 sum =
        to_fixed(exact_scaled) + to_fixed(fpToDouble(kHalf, c));
    // Round the fixed-point sum once into binary16 via the softfloat
    // roundPack on the absolute value (independent of the add path
    // under test only in alignment, but exercised against the native
    // double path everywhere else).
    const bool neg = sum < 0;
    unsigned __int128 mag =
        neg ? static_cast<unsigned __int128>(-sum)
            : static_cast<unsigned __int128>(sum);
    if (mag == 0) {
        // IEEE signed-zero rules: a zero sum is -0 only when both the
        // product and the addend are (signed) zeros with sign bits
        // set; exact cancellation of non-zeros gives +0 under RNE.
        const bool prod_sign = signOf(kHalf, a) != signOf(kHalf, b);
        const bool prod_zero =
            isZero(kHalf, a) || isZero(kHalf, b);
        const bool neg_zero = prod_zero && isZero(kHalf, c) &&
                              prod_sign && signOf(kHalf, c);
        return zero(kHalf, neg_zero);
    }
    // Reduce to 64 bits; values are < 2^(33+48) = 2^81.
    int exp = -48;
    while (mag >> 64) {
        mag = shiftRightSticky128(mag, 1);
        ++exp;
    }
    return roundPack(kHalf,
                     {neg, exp, static_cast<std::uint64_t>(mag)},
                     OpCtx{}, OpKind::Fma);
}

TEST(FpHalfOps, FmaMatchesExactReference)
{
    Rng rng(10);
    for (int i = 0; i < kRandomTrials; ++i) {
        std::uint64_t a = randomBits(rng, kHalf);
        std::uint64_t b = randomBits(rng, kHalf);
        std::uint64_t c = randomBits(rng, kHalf);
        // The fixed-point reference only covers finite operands.
        if (!isFinite(kHalf, a) || !isFinite(kHalf, b) ||
            !isFinite(kHalf, c)) {
            continue;
        }
        expectSame(kHalf, refHalfFma(a, b, c), fpFma(kHalf, a, b, c),
                   "fma");
    }
}

// ---------------------------------------------------------------
// Comparisons and conversions
// ---------------------------------------------------------------

TEST(FpCompare, MatchesNativeDouble)
{
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        EXPECT_EQ(u2d(a) == u2d(b), fpEqual(kDouble, a, b));
        EXPECT_EQ(u2d(a) < u2d(b), fpLess(kDouble, a, b));
        EXPECT_EQ(u2d(a) <= u2d(b), fpLessEqual(kDouble, a, b));
    }
}

TEST(FpConvert, NarrowingMatchesNativeCast)
{
    Rng rng(12);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        expectSame(kSingle, f2u(static_cast<float>(u2d(a))),
                   fpConvertSilent(kSingle, kDouble, a), "d->s");
    }
}

TEST(FpConvert, WideningIsExactRoundTrip)
{
    Rng rng(13);
    for (int i = 0; i < kRandomTrials; ++i) {
        const std::uint64_t h = randomBits(rng, kHalf);
        const std::uint64_t s = fpConvertSilent(kSingle, kHalf, h);
        const std::uint64_t d = fpConvertSilent(kDouble, kHalf, h);
        expectSame(kHalf, h, fpConvertSilent(kHalf, kSingle, s),
                   "h->s->h");
        expectSame(kHalf, h, fpConvertSilent(kHalf, kDouble, d),
                   "h->d->h");
        const std::uint64_t f32 = randomBits(rng, kSingle);
        expectSame(kSingle, f32,
                   fpConvertSilent(
                       kSingle, kDouble,
                       fpConvertSilent(kDouble, kSingle, f32)),
                   "s->d->s");
    }
}

TEST(FpConvert, HalfOverflowAndUnderflow)
{
    // 65520.0 rounds up past max half (65504) -> inf.
    expectSame(kHalf, infinity(kHalf, false),
               fpFromDouble(kHalf, 65520.0), "overflow to inf");
    // 65519.99 rounds to 65504.
    expectSame(kHalf, maxFinite(kHalf, false),
               fpFromDouble(kHalf, 65519.99), "round to max");
    // Below half the smallest subnormal -> zero.
    expectSame(kHalf, zero(kHalf, false),
               fpFromDouble(kHalf, 0x1p-26), "underflow to zero");
    // Exactly representable subnormal survives.
    expectSame(kHalf, packFields(kHalf, false, 0, 1),
               fpFromDouble(kHalf, 0x1p-24), "min subnormal");
}

// ---------------------------------------------------------------
// exp()
// ---------------------------------------------------------------

TEST(FpExp, AccuracyPerPrecision)
{
    Rng rng(14);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform(-20.0, 20.0);
        // double: within a few ulps.
        {
            const double got =
                fpToDouble(kDouble, fpExp(kDouble, d2u(x)));
            const double want = std::exp(x);
            EXPECT_NEAR(got / want, 1.0, 1e-13) << "x=" << x;
        }
        // single: relative error ~1e-6.
        {
            const std::uint64_t xs = fpFromDouble(kSingle, x);
            const double got = fpToDouble(kSingle, fpExp(kSingle, xs));
            const double want = std::exp(fpToDouble(kSingle, xs));
            EXPECT_NEAR(got / want, 1.0, 1e-5) << "x=" << x;
        }
    }
    // half: relative error well under 1%.
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(-8.0, 8.0);
        const std::uint64_t xh = fpFromDouble(kHalf, x);
        const double got = fpToDouble(kHalf, fpExp(kHalf, xh));
        const double want = std::exp(fpToDouble(kHalf, xh));
        EXPECT_NEAR(got / want, 1.0, 5e-3) << "x=" << x;
    }
}

TEST(FpExp, SpecialValues)
{
    EXPECT_EQ(one(kDouble), fpExp(kDouble, zero(kDouble, false)));
    EXPECT_EQ(infinity(kDouble, false),
              fpExp(kDouble, infinity(kDouble, false)));
    EXPECT_EQ(zero(kDouble, false),
              fpExp(kDouble, infinity(kDouble, true)));
    EXPECT_TRUE(isNaN(kDouble, fpExp(kDouble, quietNaN(kDouble))));
    // Overflow and underflow saturate.
    EXPECT_EQ(infinity(kDouble, false), fpExp(kDouble, d2u(1000.0)));
    EXPECT_EQ(zero(kDouble, false), fpExp(kDouble, d2u(-1000.0)));
    EXPECT_EQ(infinity(kHalf, false),
              fpExp(kHalf, fpFromDouble(kHalf, 12.0)));
    EXPECT_EQ(zero(kHalf, false),
              fpExp(kHalf, fpFromDouble(kHalf, -18.0)));
}

} // namespace
} // namespace mparch::fp
