/**
 * @file
 * Register-file liveness AVF experiment (paper Figure 12).
 *
 * Reproduces the paper's GPU fault-injection protocol: "a single bit
 * flip on a randomly selected register in a random application
 * execution time". A micro thread's architectural context is four
 * 32-bit registers; a double value occupies two of them, a single
 * one, and half2 packs two live half values into one. The injection
 * picks a uniformly random (cycle, register bit); hits on live state
 * are replayed through the real softfloat chain to see whether the
 * final output changes. Double's AVF comes out ~2x single's because
 * twice as many of the allocated bits are live — the paper's
 * "more complex (and vulnerable)" double datapath, measured rather
 * than asserted.
 */

#ifndef MPARCH_ARCH_GPU_REGFILE_HH
#define MPARCH_ARCH_GPU_REGFILE_HH

#include <cstdint>

#include "common/stats.hh"
#include "workloads/micro.hh"

namespace mparch::gpu {

/** Result of a register-liveness injection campaign. */
struct RegFileAvf
{
    std::uint64_t trials = 0;
    std::uint64_t liveHits = 0;  ///< flips that landed on live bits
    std::uint64_t sdc = 0;

    /** P(SDC | uniform flip in the thread's register allocation). */
    double
    avfSdc() const
    {
        return trials ? static_cast<double>(sdc) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /** Wilson 95% interval. */
    Interval avf95() const { return wilson95(sdc, trials); }
};

/**
 * Run the campaign for one micro operation at one precision.
 *
 * @param op        Chain operation (ADD / MUL / FMA).
 * @param p         Data precision.
 * @param trials    Injections.
 * @param seed      Campaign seed.
 * @param chain_len Operations per chain (kept small; AVF converges
 *                  quickly in chain length).
 */
RegFileAvf measureRegFileAvf(workloads::MicroOp op, fp::Precision p,
                             std::uint64_t trials, std::uint64_t seed,
                             std::size_t chain_len = 256);

} // namespace mparch::gpu

#endif // MPARCH_ARCH_GPU_REGFILE_HH
