# Empty compiler generated dependencies file for mparch_nn.
# This may be replaced when dependencies are built.
