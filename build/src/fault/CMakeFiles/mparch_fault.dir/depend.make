# Empty dependencies file for mparch_fault.
# This may be replaced when dependencies are built.
