/**
 * @file
 * Work-stealing trial executor primitives.
 *
 * Three small pieces compose the parallel campaign engine
 * (fault/supervisor.cc) and any future data-parallel sweep:
 *
 *  - ThreadPool: a fixed set of worker threads that run one job
 *    function per dispatch generation (no per-task queue — workers
 *    pull their own work via IndexChunker, which is what makes the
 *    scheme work-stealing in effect: a fast worker simply claims
 *    more chunks);
 *  - IndexChunker: an atomic dispenser of contiguous index chunks
 *    with cooperative stop. Chunks are handed out in increasing
 *    order, so the set of claimed indices is always a prefix — the
 *    property the ordered reduction below relies on;
 *  - OrderedChannel<T>: a bounded reorder window through which
 *    workers hand results to a single consumer that pops them in
 *    index order. Combined with counter-based per-trial RNG, this
 *    makes the parallel campaign byte-identical to the serial one:
 *    trials execute out of order, but accumulation and journaling
 *    happen strictly in order.
 *
 * Everything here uses plain mutex/condvar synchronisation: trials
 * are milliseconds-scale, so lock overhead is noise, and the simple
 * discipline is easy to audit (and keeps TSan quiet by construction).
 */

#ifndef MPARCH_COMMON_PARALLEL_HH
#define MPARCH_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace mparch::parallel {

/** Hardware thread count, never less than 1. */
unsigned hardwareJobs();

/**
 * Resolve a --jobs request: 0 means "all hardware threads", anything
 * else is taken literally. Never returns 0.
 */
unsigned resolveJobs(unsigned requested);

/**
 * A fixed pool of worker threads.
 *
 * Threads are created once and reused across dispatch generations.
 * Each generation runs job(worker) on every worker, worker ids
 * 0..workers()-1. start() returns immediately so the calling thread
 * can act as a consumer while the pool produces; wait() blocks until
 * the generation completes.
 *
 * The job must not let exceptions escape (they would terminate the
 * process); catch and convert them to data.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Launch one generation of job(worker) on every worker. Must
     *  not be called again before wait() returns. */
    void start(std::function<void(unsigned)> job);

    /** Block until every worker finished the current generation. */
    void wait();

    /** start() + wait() for callers with nothing to consume. */
    void
    run(std::function<void(unsigned)> job)
    {
        start(std::move(job));
        wait();
    }

  private:
    void loop(unsigned worker);

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::function<void(unsigned)> job_;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Atomic dispenser of index chunks over [0, count).
 *
 * Workers loop on next() and process [begin, end) ranges; a fast
 * worker naturally claims more chunks. stop() is cooperative: no
 * further chunks are handed out, but chunks already claimed run to
 * completion — so the claimed set is always exactly [0, lastEnd),
 * a contiguous prefix.
 */
class IndexChunker
{
  public:
    IndexChunker(std::uint64_t count, std::uint64_t chunk)
        : count_(count), chunk_(chunk ? chunk : 1)
    {
    }

    /** Claim the next chunk; false when drained or stopped. */
    bool
    next(std::uint64_t &begin, std::uint64_t &end)
    {
        if (stop_.load(std::memory_order_acquire))
            return false;
        const std::uint64_t b =
            next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (b >= count_)
            return false;
        begin = b;
        end = std::min(count_, b + chunk_);
        return true;
    }

    /** Cooperatively stop handing out chunks. */
    void
    stop()
    {
        stop_.store(true, std::memory_order_release);
    }

    bool
    stopped() const
    {
        return stop_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint64_t> next_{0};
    std::atomic<bool> stop_{false};
    std::uint64_t count_;
    std::uint64_t chunk_;
};

/**
 * Bounded reorder window between N producers and one in-order
 * consumer.
 *
 * Producers put(slot, value) for globally unique, per-chunk ascending
 * slots; the consumer calls take() and receives slot 0, 1, 2... in
 * order. put() blocks while its slot is more than capacity ahead of
 * the consumer (backpressure bounds memory at capacity values).
 * take() blocks until the next slot arrives, or returns nullopt once
 * every producer called producerDone() and the next slot was never
 * filled — which, with IndexChunker's prefix property, happens
 * exactly at the end of the claimed prefix.
 *
 * Deadlock-freedom: the producer owning the consumer's next slot
 * fills its chunk in ascending order, and its next unfilled slot is
 * never ahead of the window, so it always makes progress.
 */
template <typename T>
class OrderedChannel
{
  public:
    OrderedChannel(std::size_t capacity, unsigned producers)
        : ring_(capacity ? capacity : 1), producers_(producers)
    {
    }

    void
    put(std::size_t slot, T value)
    {
        std::unique_lock<std::mutex> lock(mu_);
        canPut_.wait(lock, [&] {
            return slot < base_ + ring_.size();
        });
        ring_[slot % ring_.size()] = std::move(value);
        if (slot == base_)
            canTake_.notify_all();
    }

    /** Pop the next slot in order; nullopt at end of stream. */
    std::optional<T>
    take()
    {
        std::unique_lock<std::mutex> lock(mu_);
        auto &cell = ring_[base_ % ring_.size()];
        canTake_.wait(lock, [&] {
            return cell.has_value() || producers_ == 0;
        });
        if (!cell.has_value())
            return std::nullopt;
        std::optional<T> out = std::move(cell);
        cell.reset();
        ++base_;
        canPut_.notify_all();
        return out;
    }

    /** Each producer calls this once when it stops producing. */
    void
    producerDone()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (producers_ > 0 && --producers_ == 0)
            canTake_.notify_all();
    }

  private:
    std::mutex mu_;
    std::condition_variable canPut_;
    std::condition_variable canTake_;
    std::vector<std::optional<T>> ring_;
    std::size_t base_ = 0;
    unsigned producers_;
};

} // namespace mparch::parallel

#endif // MPARCH_COMMON_PARALLEL_HH
