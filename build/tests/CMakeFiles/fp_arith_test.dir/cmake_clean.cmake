file(REMOVE_RECURSE
  "CMakeFiles/fp_arith_test.dir/fp_arith_test.cc.o"
  "CMakeFiles/fp_arith_test.dir/fp_arith_test.cc.o.d"
  "fp_arith_test"
  "fp_arith_test.pdb"
  "fp_arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
