/**
 * @file
 * Minimal JSON emission and parsing.
 *
 * The writer is a streaming emitter with correct string escaping and
 * an explicit non-finite policy (JSON has no NaN/Inf, so they are
 * emitted as null); every structured artefact the tooling writes —
 * experiment result documents, study dumps — goes through it instead
 * of hand-rolled `os << "{\"x\": ..."` fragments. The parser is the
 * writer's round-trip counterpart: a small recursive-descent reader
 * used by tests and by tooling that re-ingests result documents.
 */

#ifndef MPARCH_COMMON_JSON_HH
#define MPARCH_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace mparch::json {

/** Escape @p text for inclusion inside a JSON string literal
 *  (quotes, backslashes, control characters). */
std::string escape(const std::string &text);

/**
 * Streaming JSON writer.
 *
 * Call sequence mirrors the document structure: beginObject()/key()/
 * value()/endObject(), beginArray()/value()/endArray(). Commas and
 * two-space indentation are managed automatically. Misuse (a value
 * in an object without a preceding key) trips an assertion.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Name the next member of the enclosing object. */
    Writer &key(const std::string &name);

    Writer &value(const std::string &text);
    Writer &value(const char *text);
    Writer &value(double number);  ///< NaN/Inf emitted as null
    Writer &value(std::int64_t number);
    Writer &value(std::uint64_t number);
    Writer &value(unsigned number);
    Writer &value(int number);
    Writer &value(bool flag);
    Writer &null();

    /** key() + value() in one call. */
    template <typename T>
    Writer &
    member(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

  private:
    void beforeValue();
    void newline();

    struct Level
    {
        bool isObject = false;
        bool first = true;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
    bool keyPending_ = false;
};

/** A parsed JSON value (test/tooling-grade document tree). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::Null; }

    /** Object member, or null if absent / not an object. */
    const Value *find(const std::string &name) const;
};

/**
 * Parse a complete JSON document.
 *
 * @param text  The document.
 * @param error Filled with a position-annotated message on failure.
 * @return Parsed tree, or std::nullopt-like failure signalled by a
 *         non-empty @p error (the returned value is Null then).
 */
bool parse(const std::string &text, Value &out, std::string *error);

} // namespace mparch::json

#endif // MPARCH_COMMON_JSON_HH
