/**
 * @file
 * Fixed-width text table and CSV emitters.
 *
 * Every bench binary reproduces one of the paper's tables or figures;
 * this class renders the rows in a uniform, diff-friendly layout and
 * can also dump CSV for external plotting.
 */

#ifndef MPARCH_COMMON_TABLE_HH
#define MPARCH_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mparch {

/**
 * A simple column-aligned table builder.
 *
 * Cells are strings; numeric convenience overloads format with a
 * fixed precision. Rendering pads each column to its widest cell.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Start a new row; subsequent cell() calls fill it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);

    /** Append a formatted numeric cell (fixed, @p digits decimals). */
    Table &cell(double value, int digits = 3);

    /** Append an integer cell. */
    Table &cell(std::int64_t value);

    /** Render the table, column-aligned. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mparch

#endif // MPARCH_COMMON_TABLE_HH
