/**
 * @file
 * NVIDIA Volta (Titan V) reliability model.
 *
 * FIT composes three exposure terms, following the paper's Section 6
 * analysis: (1) functional-unit datapath state — active cores times
 * the mix-weighted per-core bits (fewer but wider FP64 cores against
 * more FP32/half2 cores); (2) unprotected cache/memory residency,
 * scaled by the kernel's arithmetic intensity (why the non-tiled MxM
 * dwarfs LavaMD); (3) scheduler/control state whose upsets become
 * DUEs, scaled by branch density (why CNNs crash more). AVFs are
 * measured by injection, never assumed.
 */

#ifndef MPARCH_ARCH_GPU_GPU_HH
#define MPARCH_ARCH_GPU_GPU_HH

#include "arch/gpu/datapath.hh"
#include "arch/gpu/regfile.hh"
#include "beam/inventory.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "workloads/workload.hh"

namespace mparch::gpu {

/** Full reliability evaluation of one (workload, precision). */
struct GpuEvaluation
{
    /** Functional-unit strike campaign (AVF + TRE corpus). */
    fault::CampaignResult datapathCampaign;

    /** Cache/memory-resident data campaign. */
    fault::CampaignResult memoryCampaign;

    beam::ResourceInventory inventory;

    double fitSdc = 0.0;       ///< a.u. (Figures 10a/10b/10c)
    double fitDue = 0.0;       ///< a.u.
    double timeSeconds = 0.0;  ///< Table 3 model
    double mebf = 0.0;         ///< a.u. (Figure 13)

    /** Minimum completed fraction over the campaigns (1.0 unless a
     *  supervised run was interrupted or poisoned trials). */
    double coverage = 1.0;

    /** Trials abandoned by the supervisor across the campaigns. */
    std::uint64_t poisoned = 0;
};

/** Evaluation knobs. */
struct GpuOptions
{
    std::uint64_t datapathTrials = 500;
    std::uint64_t memoryTrials = 400;
    std::uint64_t seed = 31;

    /** Crash-safety knobs (journal dir, resume, batching). */
    fault::SupervisorConfig supervisor;
};

/** Execution-time model only (Table 3). */
double gpuTimeSeconds(workloads::Workload &w,
                      const fault::GoldenRun &golden);

/** Run campaigns and assemble FIT/MEBF. */
GpuEvaluation evaluateGpu(workloads::Workload &w,
                          const GpuOptions &options = {});

} // namespace mparch::gpu

#endif // MPARCH_ARCH_GPU_GPU_HH
