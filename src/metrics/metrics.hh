/**
 * @file
 * Reliability metrics: FIT normalisation, MEBF, TRE curves and
 * criticality splits — the quantities in every figure of the paper.
 */

#ifndef MPARCH_METRICS_METRICS_HH
#define MPARCH_METRICS_METRICS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "fault/campaign.hh"
#include "fault/supervisor.hh"

namespace mparch::metrics {

/**
 * Mean Executions Between Failures.
 *
 * MEBF = 1 / (FIT x execution time): the number of correct executions
 * completed before a failure (paper Section 3.2, [35]). Arbitrary
 * units, like FIT.
 */
inline double
mebf(double fit, double exec_time_s)
{
    if (fit <= 0.0 || exec_time_s <= 0.0)
        return 0.0;
    return 1.0 / (fit * exec_time_s);
}

/** Scale a series so its largest element is 1 (a.u. presentation). */
std::vector<double> normalizeToMax(const std::vector<double> &values);

/** TRE thresholds used across the paper's criticality figures. */
inline constexpr std::array<double, 8> kTreThresholds = {
    0.0, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
};

/** One FIT-reduction-vs-TRE curve (paper Figures 4, 8, 11a/11b). */
struct TreCurve
{
    /** Thresholds (fractions, 0.01 == 1%). */
    std::vector<double> thresholds;

    /**
     * Fraction of the TRE=0 SDC FIT that remains critical at each
     * threshold (1.0 at index 0 whenever any SDC occurred).
     */
    std::vector<double> remaining;
};

/** Build a TRE curve from a campaign's SDC corpus. */
TreCurve treCurve(const fault::CampaignResult &result);

/** Fractions of SDCs by semantic severity (CNN workloads). */
struct CriticalitySplit
{
    double tolerable = 0.0;
    double detectionChange = 0.0;
    double criticalChange = 0.0;
};

/** Compute the severity split of a campaign's corpus. */
CriticalitySplit criticalitySplit(const fault::CampaignResult &result);

/**
 * Completion summary of a supervised campaign (partial coverage).
 *
 * A degraded campaign still yields unbiased AVF point estimates —
 * the supervisor skips trials by index, never by outcome — but the
 * Wilson interval widens with the shrunken sample. Reporting both
 * keeps a partial run from being mistaken for a full one.
 */
struct CoverageReport
{
    std::uint64_t planned = 0;   ///< trials this run owned
    std::uint64_t completed = 0; ///< trials with a recorded outcome
    std::uint64_t poisoned = 0;  ///< abandoned after bounded retry
    double coverage = 1.0;       ///< completed / planned
    bool degraded = false;       ///< incomplete or any poisoned
    Interval avfSdc95;           ///< Wilson interval at achieved n
};

/** Summarise a supervised campaign's completion state. */
CoverageReport coverageReport(const fault::SupervisedCampaign &run);

/**
 * Effective SDC rate of a *persistent*-fault device (FPGA
 * configuration memory) under periodic scrubbing.
 *
 * Faults arrive as a Poisson process at @p raw_rate (a.u. per unit
 * time) and accumulate until the next scrub; each independently
 * corrupts the output with probability @p avf, so propagating
 * upsets form a thinned Poisson process of rate raw_rate * avf.
 * The observed error rate per unit time is
 * (1 - exp(-raw_rate * avf * interval)) / interval — approaching
 * the paper's reprogram-on-error figure raw_rate * avf as the
 * interval shrinks, and saturating towards 1/interval as faults
 * pile up (Section 4's scrubbing discussion [42]).
 */
double scrubbedErrorRate(double raw_rate, double avf,
                         double interval);

} // namespace mparch::metrics

#endif // MPARCH_METRICS_METRICS_HH
