file(REMOVE_RECURSE
  "CMakeFiles/mparch_workloads.dir/registry.cc.o"
  "CMakeFiles/mparch_workloads.dir/registry.cc.o.d"
  "libmparch_workloads.a"
  "libmparch_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
