/**
 * @file
 * Append-only trial journal for crash-safe injection campaigns.
 *
 * A journal is a plain-text file with a self-describing header
 * (campaign configuration, workload identity, golden-run fingerprint)
 * followed by one CSV record per completed trial. The writer buffers
 * records and flushes in configurable batches, so a killed process
 * loses at most one batch; the reader tolerates a torn final line
 * (the record being written when the process died is discarded).
 *
 * Because trials draw from a counter-based RNG (trialRng(seed, i)),
 * a journal plus its header is sufficient to re-execute any recorded
 * trial bit-identically — see fault/supervisor.hh for resume and
 * replay, and docs/campaigns.md for the format specification.
 */

#ifndef MPARCH_FAULT_JOURNAL_HH
#define MPARCH_FAULT_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hh"

namespace mparch::fault {

/** Which campaign kind a supervised run wraps. */
enum class CampaignKind { Memory, Datapath, Persistent };

/** Name of a CampaignKind ("memory" / "datapath" / "persistent"). */
const char *campaignKindName(CampaignKind kind);

/** Parse a CampaignKind name; nullopt on unknown text. */
std::optional<CampaignKind> parseCampaignKind(const std::string &text);

/**
 * Everything needed to validate a resume and to re-create the
 * campaign for replay: the full CampaignConfig, the workload's
 * identity, and a fingerprint of the golden run (so a journal can
 * never silently be resumed against different data).
 */
struct JournalHeader
{
    /** Format version; bumped on incompatible layout changes. */
    int version = 1;

    CampaignKind kind = CampaignKind::Memory;

    /** Workload identity: name / precision / factory scale knob. */
    std::string workload;
    fp::Precision precision = fp::Precision::Single;
    double scale = 1.0;

    CampaignConfig config;

    /** Datapath campaigns: restricted kind (NumKinds = any). */
    fp::OpKind kindFilter = fp::OpKind::NumKinds;

    /** Persistent campaigns: the engine allocations struck. */
    std::vector<EngineAllocation> engines;

    /** Shard this journal belongs to (trial i is owned by shard
     *  i % shardCount). */
    std::uint64_t shardCount = 1;
    std::uint64_t shardIndex = 0;

    /** FNV-1a fingerprint of the golden output bits and tick count. */
    std::uint64_t goldenFingerprint = 0;

    /**
     * Compare against another header (typically: file vs freshly
     * configured campaign). Returns an empty string when compatible,
     * otherwise a human-readable description of the first mismatch.
     */
    std::string mismatch(const JournalHeader &other) const;
};

/** Fingerprint a golden run (FNV-1a over output bits and ticks). */
std::uint64_t goldenFingerprint(const GoldenRun &golden);

/** One journaled trial. */
struct TrialRecord
{
    std::uint64_t index = 0;
    OutcomeKind outcome = OutcomeKind::Masked;

    /** SDC payload (zero unless outcome == Sdc). */
    double maxRel = 0.0;
    double corruptedFraction = 0.0;
    int severity = -1;  ///< workloads::SdcSeverity, -1 = none

    /** Anatomy payload (-1 = not recorded). */
    int bit = -1;
    int field = -1;

    /** Retries spent before this attempt succeeded. */
    int retries = 0;
};

/** Build the journal record for one completed trial. */
TrialRecord makeTrialRecord(std::uint64_t index,
                            const TrialOutcome &trial, int retries);

/** Fold a journaled record back into campaign tallies (resume). */
void accumulate(CampaignResult &result, const TrialRecord &record);

/**
 * Batched append-only journal writer.
 *
 * Create with `truncate = true` to start a fresh journal (writes the
 * header), or `truncate = false` to append to an existing one after
 * the caller validated its header. Records are buffered and written
 * + flushed every `batch` appends (and on close/destruction).
 *
 * All I/O errors are sticky: once ok() turns false every later
 * append is a no-op, so campaigns degrade to in-memory accounting
 * instead of crashing mid-run.
 */
class JournalWriter
{
  public:
    JournalWriter(const std::string &path,
                  const JournalHeader &header, std::uint64_t batch,
                  bool truncate);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Buffer one record; flushes when the batch fills. */
    void append(const TrialRecord &record);

    /** Write buffered records to disk and fsync-level flush. */
    void flush();

    /** False after any I/O error (journalling is then disabled). */
    bool ok() const { return ok_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::uint64_t batch_;
    std::uint64_t pending_ = 0;
    bool ok_ = true;
};

/** A fully parsed journal. */
struct Journal
{
    JournalHeader header;
    std::vector<TrialRecord> records;

    /** Byte length of the valid prefix (header + parsed records).
     *  Anything beyond it is a torn or corrupt tail; truncate to
     *  this length before appending more records. */
    std::uint64_t validBytes = 0;
};

/**
 * Read a journal from disk.
 *
 * A torn final line (crash mid-append) is silently discarded;
 * structurally invalid headers return nullopt with a description in
 * @p error.
 */
std::optional<Journal> readJournal(const std::string &path,
                                   std::string *error = nullptr);

/** Serialise a header to its textual journal form (testing aid). */
std::string formatJournalHeader(const JournalHeader &header);

} // namespace mparch::fault

#endif // MPARCH_FAULT_JOURNAL_HH
