file(REMOVE_RECURSE
  "CMakeFiles/fp_hooks_test.dir/fp_hooks_test.cc.o"
  "CMakeFiles/fp_hooks_test.dir/fp_hooks_test.cc.o.d"
  "fp_hooks_test"
  "fp_hooks_test.pdb"
  "fp_hooks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_hooks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
