# Empty compiler generated dependencies file for ablation_sm_sim.
# This may be replaced when dependencies are built.
