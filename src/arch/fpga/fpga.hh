/**
 * @file
 * Zynq-7000 reliability model.
 *
 * An accelerator is synthesised from a workload's dynamic operation
 * profile into a fixed set of pipelined physical operators plus BRAM
 * buffers. Reliability follows the paper's FPGA analysis (Section 4):
 * faults strike the configuration memory (persistent until the
 * bitstream is reloaded — modelled by PersistentDatapathHook
 * campaigns) and BRAM contents (transient data faults); the FIT rate
 * is exposure x sensitivity x measured AVF. No DUEs occur: the
 * design runs bare-metal with no scheduler to corrupt, matching the
 * paper's observation.
 */

#ifndef MPARCH_ARCH_FPGA_FPGA_HH
#define MPARCH_ARCH_FPGA_FPGA_HH

#include <map>

#include "arch/fpga/opcost.hh"
#include "beam/inventory.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "workloads/workload.hh"

namespace mparch::fpga {

/** Synthesis result: the circuit implementing one workload. */
struct CircuitReport
{
    /** Physical engines with their operator instance counts. */
    std::vector<fault::EngineAllocation> engines;

    double luts = 0.0;
    double dsps = 0.0;
    double brams = 0.0;      ///< RAMB18 blocks
    double bramBits = 0.0;   ///< used content bits
    double configBits = 0.0; ///< used configuration memory bits
    double cycles = 0.0;     ///< pipelined execution latency
};

/**
 * Map a workload onto the PE budget.
 *
 * The dominant operation kind receives the full budget; other kinds
 * get instances proportional to their dynamic share (at least one).
 * Execution cycles assume initiation-interval-1 pipelines.
 */
CircuitReport synthesize(workloads::Workload &w,
                         const fault::GoldenRun &golden);

/** Full reliability evaluation of one (workload, precision). */
struct FpgaEvaluation
{
    CircuitReport circuit;

    /** Persistent config-memory campaign (paper's dominant FPGA
     *  error source). */
    fault::CampaignResult configCampaign;

    /** BRAM content (transient data) campaign. */
    fault::CampaignResult bramCampaign;

    /** Exposure inventory with measured AVFs filled in. */
    beam::ResourceInventory inventory;

    double fitSdc = 0.0;        ///< a.u.
    double fitDue = 0.0;        ///< a.u. (expected 0)
    double timeSeconds = 0.0;   ///< modelled execution time
    double mebf = 0.0;          ///< a.u.

    /** Minimum completed fraction over the campaigns. */
    double coverage = 1.0;

    /** Trials abandoned by the supervisor across the campaigns. */
    std::uint64_t poisoned = 0;
};

/** Evaluation knobs. */
struct FpgaOptions
{
    std::uint64_t configTrials = 600;
    std::uint64_t bramTrials = 400;
    std::uint64_t seed = 11;

    /** Crash-safety knobs (journal dir, resume, batching). */
    fault::SupervisorConfig supervisor;
};

/** Run the synthesis, campaigns and FIT/MEBF assembly. */
FpgaEvaluation evaluateFpga(workloads::Workload &w,
                            const FpgaOptions &options = {});

} // namespace mparch::fpga

#endif // MPARCH_ARCH_FPGA_FPGA_HH
