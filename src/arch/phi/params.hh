/**
 * @file
 * Intel Xeon Phi 3120A (Knights Corner) model parameters.
 *
 * Structural constants follow the Xeon Phi System Software Developer's
 * Guide [22] as cited by the paper: 57 in-order cores, one 512-bit
 * VPU each (16 single / 8 double lanes), 32 vector registers, MCA
 * with SECDED ECC on the major memory structures. Calibration
 * constants are marked as such.
 */

#ifndef MPARCH_ARCH_PHI_PARAMS_HH
#define MPARCH_ARCH_PHI_PARAMS_HH

#include "fp/format.hh"

namespace mparch::phi {

/** Physical cores. */
inline constexpr int kCores = 57;

/** VPU width in bits. */
inline constexpr int kVpuBits = 512;

/** Architectural vector registers per core. */
inline constexpr int kVectorRegisters = 32;

/** Core clock in Hz (1.1 GHz nominal for the 3120A). */
inline constexpr double kClockHz = 1.1e9;

/** SIMD lanes at a given precision (half unsupported on KNC). */
constexpr int
lanes(fp::Precision p)
{
    return kVpuBits / fp::formatOf(p).totalBits;
}

/**
 * Unprotected state per instantiated vector register, in bits.
 *
 * MCA/ECC protects the register file itself; the paper reads the
 * compiler's register pressure as a *symptom* of functional-unit and
 * internal-queue usage, which is unprotected (Section 5). This
 * constant converts "registers instantiated" into "exposed latch
 * bits" — calibration, order of a pipeline stage per register.
 */
inline constexpr double kUnprotectedBitsPerReg = 96.0;

/** Control/sequencing bits per active SIMD lane (masks, µcode). */
inline constexpr double kControlBitsPerLane = 20.0;

/** Fixed per-core control exposure (decode, retire, TLB tags). */
inline constexpr double kControlBitsFixed = 220.0;

/**
 * Probability that a control-latch upset becomes a DUE rather than
 * being architecturally masked; scaled further by the kernel's
 * branch density. Calibration.
 */
inline constexpr double kControlDueFactor = 0.30;

/** Software-pipelining depth per precision (see CompilerModel). */
constexpr int
pipelineDepth(fp::Precision p)
{
    // The vectoriser covers the FMA latency with independent vector
    // iterations; double's half-rate issue needs half as many in
    // flight.
    return p == fp::Precision::Double ? 1 : 2;
}

/** Registers reserved when the transcendental unit is engaged. */
inline constexpr int kTranscendentalRegs = 6;

/** Streaming registers per input stream (load + prefetch shadow). */
inline constexpr int kRegsPerStream = 2;

/**
 * Per-benchmark memory efficiency for the timing model: fraction of
 * peak sustained when streaming at the given precision. The single-
 * precision GEMM penalty models the prefetcher covering fewer bytes
 * per element stream, the effect the paper's compiler reports blame
 * for single MxM running ~13% slower than double (Section 5.4).
 */
constexpr double
prefetchEfficiency(fp::Precision p, double arithmetic_intensity,
                   bool regular_access)
{
    if (!regular_access)
        return 0.6;
    if (arithmetic_intensity < 1.0) {
        // Memory-bound streaming: double's wider elements mean the
        // fixed prefetch distance (in elements) covers twice the
        // bytes, hiding more latency.
        return p == fp::Precision::Double ? 0.55 : 0.24;
    }
    return 0.85;
}

/** Fixed serial overhead per execution in seconds (offload, setup),
 *  scaled to the library's reduced problem sizes. */
inline constexpr double kSerialOverhead = 4e-6;

} // namespace mparch::phi

#endif // MPARCH_ARCH_PHI_PARAMS_HH
