file(REMOVE_RECURSE
  "CMakeFiles/ext_bit_anatomy.dir/ext_bit_anatomy.cpp.o"
  "CMakeFiles/ext_bit_anatomy.dir/ext_bit_anatomy.cpp.o.d"
  "ext_bit_anatomy"
  "ext_bit_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bit_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
