/**
 * @file
 * Per-operator FPGA resource cost model.
 *
 * Costs follow the structure of IEEE754 operator implementations
 * (loosely after the Xilinx Floating-Point Operator core): a
 * multiplier's DSP usage grows with the square of the significand
 * width (tiling the partial-product array onto 25x18 DSP slices),
 * while an adder's LUT usage is dominated by the two barrel shifters
 * (m log m) plus linear normalisation/rounding logic. These scaling
 * laws — quadratic multiply, quasi-linear add — produce the paper's
 * Figure 2 area ratios without per-benchmark tuning.
 */

#ifndef MPARCH_ARCH_FPGA_OPCOST_HH
#define MPARCH_ARCH_FPGA_OPCOST_HH

#include "fp/format.hh"
#include "fp/hooks.hh"

namespace mparch::fpga {

/** FPGA resources of one pipelined operator instance. */
struct OperatorCost
{
    double luts = 0.0;
    double dsps = 0.0;

    OperatorCost
    operator+(const OperatorCost &o) const
    {
        return {luts + o.luts, dsps + o.dsps};
    }

    OperatorCost
    operator*(double k) const
    {
        return {luts * k, dsps * k};
    }
};

/** Resource cost of one operator of @p kind at format @p f. */
OperatorCost operatorCost(fp::OpKind kind, fp::Format f);

} // namespace mparch::fpga

#endif // MPARCH_ARCH_FPGA_OPCOST_HH
