#include "arch/phi/phi.hh"

#include <algorithm>
#include <cmath>

#include "arch/phi/params.hh"
#include "metrics/metrics.hh"

namespace mparch::phi {

using workloads::Workload;

namespace {

/** Sustained stream bandwidth for one core's share, bytes/s. */
constexpr double kStreamBandwidth = 6e9;

/** Compute-pipe efficiency (issue stalls, in-order hazards). */
constexpr double kComputeEfficiency = 0.85;

} // namespace

double
phiTimeSeconds(Workload &w, const fault::GoldenRun &golden)
{
    const workloads::KernelDesc desc = w.desc();
    const fp::Precision p = w.precision();
    const auto ops = static_cast<double>(golden.ops.totalOps());
    const double elem_bytes = fp::formatOf(p).totalBits / 8.0;

    const double compute =
        ops / (lanes(p) * kClockHz * kComputeEfficiency);
    const double bytes = ops * elem_bytes /
                         std::max(desc.arithmeticIntensity, 1e-3);
    const double mem =
        bytes / (kStreamBandwidth *
                 prefetchEfficiency(p, desc.arithmeticIntensity,
                                    desc.regularAccess));
    return kSerialOverhead + compute + mem;
}

PhiEvaluation
evaluatePhi(Workload &w, const PhiOptions &options)
{
    MPARCH_ASSERT(w.precision() == fp::Precision::Double ||
                      w.precision() == fp::Precision::Single,
                  "KNC does not implement half precision");
    PhiEvaluation eval;
    eval.compiled = compileKernel(w.desc(), w.precision());

    const fault::GoldenRun golden(w, /*input_seed=*/99);

    // PVF: CAROL-FI protocol — single bit flip in a random program
    // variable at a random instant (Figure 7).
    fault::CampaignConfig pvf;
    pvf.trials = options.pvfTrials;
    pvf.seed = options.seed;
    const auto pvf_run =
        fault::runCampaign(w, fault::CampaignKind::Memory, pvf,
                           options.supervisor, "pvf");
    eval.pvfCampaign = pvf_run.result;

    // Functional-unit strikes: what the beam actually hits in the
    // unprotected datapath; its corpus also drives the TRE analysis
    // (Figure 8).
    fault::CampaignConfig dp;
    dp.trials = options.datapathTrials;
    dp.seed = options.seed + 1;
    const auto dp_run =
        fault::runCampaign(w, fault::CampaignKind::Datapath, dp,
                           options.supervisor, "datapath");
    eval.datapathCampaign = dp_run.result;
    eval.coverage = std::min(pvf_run.coverage(), dp_run.coverage());
    eval.poisoned = pvf_run.poisoned + dp_run.poisoned;

    // Exposure inventory. ECC-protected structures (register file,
    // caches) are absent: MCA corrects them (Section 3.1).
    const workloads::KernelDesc desc = w.desc();
    const double datapath_bits =
        static_cast<double>(kCores) * eval.compiled.vectorRegisters *
        kUnprotectedBitsPerReg;
    const double control_bits =
        static_cast<double>(kCores) *
        (eval.compiled.simdLanes * kControlBitsPerLane +
         kControlBitsFixed);
    const double due_prob =
        kControlDueFactor * (1.0 + 8.0 * desc.branchDensity);

    eval.inventory.node = beam::Node::Phi22nm;
    eval.inventory.entries = {
        {"vpu-datapath", beam::BitClass::DatapathLatch, datapath_bits,
         eval.datapathCampaign.avfSdc(),
         eval.datapathCampaign.avfDue()},
        {"lane-control", beam::BitClass::ControlLatch, control_bits,
         0.0, due_prob},
    };
    eval.fitSdc = eval.inventory.fitSdc();
    eval.fitDue = eval.inventory.fitDue();
    eval.timeSeconds = phiTimeSeconds(w, golden);
    eval.mebf =
        metrics::mebf(eval.fitSdc + eval.fitDue, eval.timeSeconds);
    return eval;
}

} // namespace mparch::phi
