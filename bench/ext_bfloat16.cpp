/**
 * @file
 * Extension (beyond the paper): project the study onto bfloat16, the
 * 16-bit format that has displaced binary16 in deep-learning
 * hardware since the paper was published.
 *
 * bfloat16 keeps single's 8-bit exponent and cuts the significand to
 * 7 bits, so the prediction from the paper's own reasoning is:
 * resource exposure like half's (16-bit storage, small multiplier),
 * but criticality *worse* than half's (relatively more exponent bits
 * for a flip to strike, and every surviving mantissa flip lands in a
 * significant position) — while the overflow-driven DUE/SDC cliffs
 * of half (its 15-max exponent) disappear.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 0.2);
    bench::banner("Extension: bfloat16 reliability projection (GPU)",
                  "exposure like half, criticality worse than half, "
                  "single-like range");

    const std::vector<fp::Precision> precisions = {
        fp::Precision::Double, fp::Precision::Single,
        fp::Precision::Half, fp::Precision::Bfloat16};

    for (const std::string name : {"mxm", "mnist"}) {
        const auto result = bench::study(core::Architecture::Gpu,
                                         name, args, precisions);
        Table table({"precision", "fit-sdc(a.u.)", "mebf(a.u.)",
                     "avf-dp", "remain@0.1%", "remain@1%",
                     "critical-frac"});
        table.setTitle(name);
        for (const auto &row : result.rows) {
            double remain_01 = 0.0, remain_1 = 0.0;
            for (std::size_t i = 0; i < row.tre.thresholds.size();
                 ++i) {
                if (row.tre.thresholds[i] == 1e-3)
                    remain_01 = row.tre.remaining[i];
                if (row.tre.thresholds[i] == 1e-2)
                    remain_1 = row.tre.remaining[i];
            }
            table.row()
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.fitSdc, 0)
                .cell(row.mebf, 4)
                .cell(row.avfDatapath, 3)
                .cell(remain_01, 3)
                .cell(remain_1, 3)
                .cell(row.severity.criticalChange +
                          row.severity.detectionChange,
                      3);
        }
        table.print(std::cout);
    }

    std::cout << "Note: the micro op chains are near-stationary in "
                 "bfloat16 (a 2^-10 increment is\nbelow its ulp), so "
                 "this extension reports the realistic kernels "
                 "only.\n";

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
