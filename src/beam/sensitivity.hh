/**
 * @file
 * Per-bit neutron sensitivities by resource class and process node.
 *
 * Real per-bit cross-sections are business-sensitive (the paper only
 * reports FIT in arbitrary units for exactly this reason); the values
 * below are order-of-magnitude placeholders in arbitrary units that
 * preserve the *relative* sensitivities that matter for the study:
 * SRAM configuration bits are the most sensitive FPGA resource,
 * latch/flip-flop datapath state is a few times less sensitive than
 * SRAM, and newer nodes (GPU 12nm) have somewhat smaller per-bit
 * cross sections than older ones (FPGA 28nm, Phi 22nm). All FIT
 * outputs derived from these are labelled a.u., as in the paper.
 */

#ifndef MPARCH_BEAM_SENSITIVITY_HH
#define MPARCH_BEAM_SENSITIVITY_HH

namespace mparch::beam {

/** Classes of physical state a neutron can upset. */
enum class BitClass
{
    SramConfig,   ///< FPGA configuration memory cell
    SramData,     ///< cache / BRAM / register-file SRAM cell
    DatapathLatch,///< pipeline latch inside a functional unit
    ControlLatch, ///< scheduler / sequencer / lane-control state
};

/** Name of a BitClass. */
constexpr const char *
bitClassName(BitClass c)
{
    switch (c) {
      case BitClass::SramConfig:    return "sram-config";
      case BitClass::SramData:      return "sram-data";
      case BitClass::DatapathLatch: return "datapath-latch";
      case BitClass::ControlLatch:  return "control-latch";
    }
    return "?";
}

/** Process node of a device under test. */
enum class Node { Fpga28nm, Phi22nm, Gpu12nm };

/**
 * Per-bit upset sensitivity in arbitrary units.
 *
 * Relative magnitudes follow the SRAM-vs-latch and node-scaling
 * relationships discussed in Baumann's survey [34] and the JEDEC
 * JESD89A methodology the paper's facility follows.
 */
constexpr double
bitSensitivity(Node node, BitClass c)
{
    // Node scale factors (a.u. per bit).
    const double node_scale =
        node == Node::Fpga28nm ? 1.0 :
        node == Node::Phi22nm  ? 0.85 : 0.6;
    const double class_scale =
        c == BitClass::SramConfig    ? 1.0 :
        c == BitClass::SramData      ? 0.9 :
        c == BitClass::DatapathLatch ? 0.35 : 0.45;
    return node_scale * class_scale;
}

} // namespace mparch::beam

#endif // MPARCH_BEAM_SENSITIVITY_HH
