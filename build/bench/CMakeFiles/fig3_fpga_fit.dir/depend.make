# Empty dependencies file for fig3_fpga_fit.
# This may be replaced when dependencies are built.
