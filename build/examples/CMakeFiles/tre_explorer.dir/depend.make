# Empty dependencies file for tre_explorer.
# This may be replaced when dependencies are built.
