file(REMOVE_RECURSE
  "CMakeFiles/fig11a_gpu_micro_tre.dir/fig11a_gpu_micro_tre.cpp.o"
  "CMakeFiles/fig11a_gpu_micro_tre.dir/fig11a_gpu_micro_tre.cpp.o.d"
  "fig11a_gpu_micro_tre"
  "fig11a_gpu_micro_tre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_gpu_micro_tre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
