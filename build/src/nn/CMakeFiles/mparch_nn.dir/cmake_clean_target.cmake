file(REMOVE_RECURSE
  "libmparch_nn.a"
)
