/**
 * @file
 * Software IEEE754-2008 arithmetic with injectable datapaths.
 *
 * All operations take bit patterns in the low @c totalBits of a
 * std::uint64_t, round to nearest-even (the only mode the studied
 * hardware uses for these workloads), and report their internal
 * datapath stages to the hook installed in the current FpContext
 * (see hooks.hh).
 *
 * Special values follow IEEE754: NaNs propagate as the canonical
 * quiet NaN, invalid operations (Inf-Inf, 0*Inf, 0/0, Inf/Inf,
 * sqrt of a negative) produce the canonical quiet NaN, overflow
 * produces infinity and underflow flushes gradually through
 * subnormals.
 */

#ifndef MPARCH_FP_SOFTFLOAT_HH
#define MPARCH_FP_SOFTFLOAT_HH

#include <cstdint>
#include <string>

#include "fp/format.hh"
#include "fp/hooks.hh"

namespace mparch::fp {

/** a + b, correctly rounded (RNE). */
std::uint64_t fpAdd(Format f, std::uint64_t a, std::uint64_t b);

/** a - b, correctly rounded (RNE). */
std::uint64_t fpSub(Format f, std::uint64_t a, std::uint64_t b);

/** a * b, correctly rounded (RNE). */
std::uint64_t fpMul(Format f, std::uint64_t a, std::uint64_t b);

/** a * b + c with a single rounding (fused multiply-add). */
std::uint64_t fpFma(Format f, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c);

/** a / b, correctly rounded (RNE). */
std::uint64_t fpDiv(Format f, std::uint64_t a, std::uint64_t b);

/** sqrt(a), correctly rounded (RNE). */
std::uint64_t fpSqrt(Format f, std::uint64_t a);

/**
 * exp(a), evaluated *in-format* by a Horner chain of softfloat FMAs
 * after a two-constant Cody-Waite range reduction.
 *
 * The polynomial degree grows with precision (4 / 6 / 13), mirroring
 * how software transcendental implementations spend more operations
 * for higher-precision targets — the effect behind the paper's
 * LavaMD criticality inversion on the Xeon Phi.
 */
std::uint64_t fpExp(Format f, std::uint64_t a);

/**
 * Natural logarithm, evaluated in-format like fpExp: the argument is
 * reduced to m in [sqrt(1/2), sqrt(2)) times 2^k, and ln(m) comes
 * from the atanh series 2t(1 + t^2/3 + ...), t = (m-1)/(m+1), with
 * a precision-dependent term count.
 */
std::uint64_t fpLog(Format f, std::uint64_t a);

/** -a (sign flip; NaN payload untouched). */
std::uint64_t fpNeg(Format f, std::uint64_t a);

/** |a|. */
std::uint64_t fpAbs(Format f, std::uint64_t a);

/** IEEE equality (NaN != anything, -0 == +0). */
bool fpEqual(Format f, std::uint64_t a, std::uint64_t b);

/** IEEE a < b (false when unordered). */
bool fpLess(Format f, std::uint64_t a, std::uint64_t b);

/** IEEE a <= b (false when unordered). */
bool fpLessEqual(Format f, std::uint64_t a, std::uint64_t b);

/**
 * Convert between formats (instrumented, counts as OpKind::Convert).
 *
 * Widening is exact; narrowing rounds to nearest-even with overflow
 * to infinity and gradual underflow.
 */
std::uint64_t fpConvert(Format dst, Format src, std::uint64_t a);

/**
 * Convert without instrumentation (no op counting, no hooks).
 *
 * Use for I/O with the host: loading inputs, reading outputs and
 * computing golden references must not perturb campaign op counts.
 */
std::uint64_t fpConvertSilent(Format dst, Format src, std::uint64_t a);

/** Encode a host double into format @p f (silent, RNE). */
std::uint64_t fpFromDouble(Format f, double v);

/** Decode format @p f bits into a host double (silent, exact). */
double fpToDouble(Format f, std::uint64_t a);

/**
 * Convert a signed integer into format @p f (instrumented, counts as
 * OpKind::Convert; rounds per the current context's mode).
 */
std::uint64_t fpFromInt(Format f, std::int64_t v);

/**
 * Convert format @p f bits to a signed integer, rounding to nearest
 * (ties to even) and saturating at the int64 range. NaN converts to
 * zero. Instrumented as OpKind::Convert.
 */
std::int64_t fpToInt(Format f, std::uint64_t a);

/**
 * Internal unrounded representation: value = (-1)^sign * sig * 2^exp
 * where @c exp scales the least significant bit of @c sig.
 *
 * Exposed in the public header for white-box unit tests of the
 * rounding path.
 */
struct RawFloat
{
    bool sign = false;
    int exp = 0;            ///< power-of-two scale of sig's LSB
    std::uint64_t sig = 0;  ///< unnormalised significand
};

/**
 * Round a RawFloat into format @p f (RNE) and run the PreRoundSig,
 * ExponentLogic and Result hooks for operation @p op.
 *
 * Sticky discipline: any inexactness in @p raw.sig must be confined
 * to bit 0 (OR-ed in by a prior right shift), and in that case the
 * significand's MSB must already be at or above the format's
 * normalisation point, so left-shifts inside roundPack never promote
 * a sticky bit into a value position.
 */
std::uint64_t roundPack(Format f, RawFloat raw, const OpCtx &ctx,
                        OpKind op);

/**
 * Render a bit pattern for humans: "-1.101p+3 (normal)",
 * "+0 (zero)", "nan", "+inf", "+0.01p-14 (subnormal)". The
 * significand is printed in binary with the hidden bit explicit —
 * the form fault-injection logs are easiest to read in.
 */
std::string fpDescribe(Format f, std::uint64_t bits);

/** Shift @p v right by @p n (>= 0), OR-ing lost bits into bit 0. */
std::uint64_t shiftRightSticky(std::uint64_t v, int n);

/** 128-bit variant of shiftRightSticky. */
unsigned __int128 shiftRightSticky128(unsigned __int128 v, int n);

} // namespace mparch::fp

#endif // MPARCH_FP_SOFTFLOAT_HH
