/**
 * @file
 * The structured result document every experiment produces.
 *
 * A ResultDoc is the machine-readable counterpart of what a bench
 * binary used to print: one or more named tables of typed cells,
 * free-text notes, and — once the registry's shape checks have run —
 * a list of pass/fail verdicts against the paper's qualitative
 * claims. Documents render to the classic column-aligned text
 * tables, to JSON (stable schema, one file per experiment) and to
 * CSV (one file per table).
 */

#ifndef MPARCH_REPORT_DOCUMENT_HH
#define MPARCH_REPORT_DOCUMENT_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace mparch::report {

/**
 * One table cell: text, real (with display precision) or integer.
 *
 * The display precision only affects text/CSV rendering; JSON always
 * carries the full double so downstream tooling never loses bits.
 */
struct Cell
{
    enum class Kind { Text, Real, Int };

    Cell(std::string text)  // NOLINT(google-explicit-constructor)
        : kind(Kind::Text), text(std::move(text))
    {
    }
    Cell(const char *text)  // NOLINT(google-explicit-constructor)
        : kind(Kind::Text), text(text)
    {
    }
    Cell(double value, int digits = 3)
        : kind(Kind::Real), real(value), digits(digits)
    {
    }
    Cell(std::int64_t value)  // NOLINT(google-explicit-constructor)
        : kind(Kind::Int), integer(value)
    {
    }

    Kind kind;
    std::string text;
    double real = 0.0;
    std::int64_t integer = 0;
    int digits = 3;

    /** Numeric view (Real/Int only). @p ok reports convertibility. */
    double asNumber(bool *ok = nullptr) const;

    /** Rendered form, as the text table/CSV shows it. */
    std::string formatted() const;
};

/** A named table of typed rows. */
class ResultTable
{
  public:
    ResultTable(std::string name, std::vector<std::string> columns)
        : name_(std::move(name)), columns_(std::move(columns))
    {
    }

    const std::string &name() const { return name_; }
    const std::vector<std::string> &columns() const
    {
        return columns_;
    }
    const std::vector<std::vector<Cell>> &rows() const
    {
        return rows_;
    }
    std::size_t rowCount() const { return rows_.size(); }

    /** Start a new row; subsequent cell() calls fill it. */
    ResultTable &row();

    /** Append a cell to the current row. */
    ResultTable &cell(Cell value);

    /** Column index by header name; -1 when absent. */
    int columnIndex(const std::string &column) const;

    /** Cell at (row, column name); null when out of range. */
    const Cell *at(std::size_t row, const std::string &column) const;

  private:
    std::string name_;
    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
};

/** Verdict of one shape check against one document. */
struct CheckVerdict
{
    std::string id;           ///< stable check identifier
    std::string description;  ///< the prose claim being tested
    std::string observed;     ///< what the data showed
    bool pass = false;
};

/** Everything one experiment run produced. */
struct ResultDoc
{
    /** Experiment identity (filled by the runner). */
    std::string experiment;
    std::string paperRef;
    std::string kind;
    std::string title;
    std::string shapeTarget;

    /** Effective knobs of the run. */
    std::uint64_t trials = 0;
    double scale = 0.0;
    unsigned jobs = 0;

    /** Deque, not vector: run closures hold references to earlier
     *  tables while appending later ones (e.g. a summary table
     *  filled alongside per-series curve tables), so addTable must
     *  never invalidate them. */
    std::deque<ResultTable> tables;
    std::vector<std::string> notes;
    std::vector<CheckVerdict> verdicts;

    /** Append a table and return a reference that stays valid across
     *  further addTable calls. */
    ResultTable &addTable(std::string name,
                          std::vector<std::string> columns);

    /** Table by name; null when absent. */
    const ResultTable *table(const std::string &name) const;

    /** True when every verdict passed (vacuously true if none). */
    bool allPassed() const;

    /** Render tables, notes and verdicts as the classic text
     *  report. */
    void print(std::ostream &os) const;

    /** Emit the stable JSON document. */
    void writeJson(std::ostream &os) const;

    /** Emit one table as CSV. */
    static void writeCsv(const ResultTable &table, std::ostream &os);
};

} // namespace mparch::report

#endif // MPARCH_REPORT_DOCUMENT_HH
