/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (a bug in mparch itself), fatal() for conditions caused
 * by the user (bad configuration, impossible parameters), warn() and
 * inform() for non-fatal status messages.
 */

#ifndef MPARCH_COMMON_LOGGING_HH
#define MPARCH_COMMON_LOGGING_HH

#include <sstream>
#include <string>
#include <string_view>

namespace mparch {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a log message to stderr.
 *
 * Fatal terminates the process with exit(1); Panic calls abort().
 *
 * @param level Message severity.
 * @param msg   Fully formatted message text.
 */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg);

/** Emit a non-fatal log message to stderr. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Use when something happens that should never happen regardless of
 * user input — i.e. an mparch bug.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logAndDie(LogLevel::Panic, detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use when the simulation cannot continue due to a condition that is
 * the user's fault (bad configuration, invalid arguments).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logAndDie(LogLevel::Fatal, detail::concat(std::forward<Args>(args)...));
}

/** Warn about behaviour that may be wrong but lets the run continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Inform, detail::concat(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant; panic with location info on failure.
 *
 * Kept as a macro (despite the style guides' general dislike of
 * macros) because it must capture __FILE__/__LINE__ at the call site.
 */
#define MPARCH_ASSERT(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mparch::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, ": ", msg);            \
        }                                                                   \
    } while (0)

} // namespace mparch

#endif // MPARCH_COMMON_LOGGING_HH
