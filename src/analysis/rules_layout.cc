/**
 * @file
 * registry-shim: bench binaries stay thin shims over the registry.
 *
 * PR 4 moved every experiment's tables, paper reference values and
 * shape checks into the declarative registry (src/report/), leaving
 * each bench .cpp file a three-line shim over mparch::bench::shimMain.
 * That convention is what makes the registry↔bench completeness
 * tests meaningful and keeps paper numbers out of ad-hoc mains. The
 * rule pins it: every bench .cpp file must call shimMain and stay at or
 * under the line budget — logic growing back into a shim is the
 * drift this catches.
 */

#include "analysis/rules.hh"

#include <algorithm>
#include <string>

namespace mparch::analysis {

namespace {

/** Doc header + include + a small main comfortably fit; anything
 *  beyond this is logic creeping back into the shim. */
constexpr std::size_t kShimMaxLines = 30;

class RegistryShimRule final : public Rule
{
  public:
    const char *name() const override { return "registry-shim"; }

    const char *
    summary() const override
    {
        return "every bench .cpp file is a <=30-line shimMain shim over "
               "the experiment registry";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        if (!file.isBenchShim())
            return;
        const bool callsShim = std::any_of(
            file.code.begin(), file.code.end(),
            [](const Token &t) { return t.isIdent("shimMain"); });
        if (!callsShim) {
            Finding f;
            f.rule = name();
            f.path = file.path;
            f.line = 1;
            f.col = 1;
            f.message =
                "bench binary does not route through "
                "mparch::bench::shimMain";
            f.hint = "register the experiment in src/report/ and "
                     "reduce this file to a shimMain call (see any "
                     "fig*.cpp)";
            out.push_back(std::move(f));
        }
        if (file.lineCount > kShimMaxLines) {
            Finding f;
            f.rule = name();
            f.path = file.path;
            f.line = static_cast<unsigned>(kShimMaxLines + 1);
            f.col = 1;
            f.message =
                "bench shim has grown to " +
                std::to_string(file.lineCount) + " lines (budget " +
                std::to_string(kShimMaxLines) + ")";
            f.hint = "move tables, reference values and checks into "
                     "the experiment registry entry";
            out.push_back(std::move(f));
        }
    }
};

} // namespace

const Rule &
registryShimRule()
{
    static const RegistryShimRule rule;
    return rule;
}

} // namespace mparch::analysis
