/**
 * @file
 * Datapath observation and perturbation hooks.
 *
 * The paper distinguishes faults in *data* (register/memory bits) from
 * faults in *operations* (the functional unit's internal state: aligned
 * significands, the multiplier's partial-product array, the pre-round
 * sum, the exponent logic). To reproduce criticality results such as
 * "ADD and FMA have a lower FIT reduction than MUL because operands
 * must be normalised before being added", the softfloat core exposes
 * every such internal stage through a hook that can flip bits there.
 *
 * A thread-local FpContext carries the installed hook and per-opcode
 * counters; workloads run inside an FpEnvGuard so the injector can
 * attach hooks without any plumbing through workload code.
 */

#ifndef MPARCH_FP_HOOKS_HH
#define MPARCH_FP_HOOKS_HH

#include <array>
#include <cstdint>

namespace mparch::fp {

/** Operation kinds instrumented by the softfloat core. */
enum class OpKind
{
    Add, Sub, Mul, Fma, Div, Sqrt, Exp, Convert,
    NumKinds,
};

/** Name of an OpKind ("add", "mul", ...). */
const char *opKindName(OpKind op);

/** Internal datapath stages at which a fault can strike. */
enum class Stage
{
    OperandA,     ///< first operand bit pattern, as read
    OperandB,     ///< second operand bit pattern, as read
    OperandC,     ///< third operand (FMA addend), as read
    AlignedSigA,  ///< significand A after exponent alignment
    AlignedSigB,  ///< significand B after exponent alignment
    ProductLo,    ///< low 64 bits of the exact product
    ProductHi,    ///< high 64 bits of the exact product
    PreRoundSig,  ///< normalised significand before rounding
    ExponentLogic,///< unbiased result exponent before packing
    Result,       ///< packed result bit pattern
    NumStages,
};

/** Name of a Stage ("operand-a", "product-lo", ...). */
const char *stageName(Stage stage);

/**
 * Perturbation callback invoked by the softfloat core at each stage.
 *
 * The default implementation is the identity; fault injectors derive
 * from this and flip bits when their trigger condition (op index,
 * stage, bit) is met.
 */
class FpHook
{
  public:
    virtual ~FpHook() = default;

    /**
     * Possibly perturb a datapath value.
     *
     * @param op     The operation being executed.
     * @param stage  Which internal stage @p value represents.
     * @param width  Number of meaningful low bits in @p value.
     * @param value  The fault-free datapath value.
     * @return The (possibly corrupted) value to continue with.
     */
    virtual std::uint64_t
    perturb(OpKind op, Stage stage, unsigned width, std::uint64_t value)
    {
        (void)op; (void)stage; (void)width;
        return value;
    }
};

/**
 * IEEE754-2008 rounding-direction attributes.
 *
 * The studied workloads all run round-to-nearest-even (hardware
 * default), but the library implements the full set so interval-style
 * and directed-rounding codes can be simulated too.
 */
enum class Rounding
{
    NearestEven,  ///< roundTiesToEven (default everywhere)
    TowardZero,   ///< roundTowardZero (truncate)
    Upward,       ///< roundTowardPositive
    Downward,     ///< roundTowardNegative
};

/** Name of a rounding mode ("nearest-even", ...). */
const char *roundingName(Rounding mode);

/**
 * Per-thread floating-point execution environment.
 *
 * Counts operations by kind (used by the architecture models to build
 * instruction mixes and resource inventories), owns an optional
 * perturbation hook, and carries the rounding mode — the software
 * analogue of an FPU control register.
 */
struct FpContext
{
    FpHook *hook = nullptr;
    Rounding rounding = Rounding::NearestEven;
    std::array<std::uint64_t, static_cast<std::size_t>(OpKind::NumKinds)>
        opCount{};

    /** Total number of FP operations executed in this context. */
    std::uint64_t
    totalOps() const
    {
        std::uint64_t sum = 0;
        for (auto c : opCount)
            sum += c;
        return sum;
    }

    /** Count for one opcode. */
    std::uint64_t
    count(OpKind op) const
    {
        return opCount[static_cast<std::size_t>(op)];
    }
};

/** Currently installed context, or nullptr (uninstrumented). */
FpContext *currentContext();

/**
 * RAII installer for an FpContext.
 *
 * Saves and restores the previous context so guards nest naturally.
 */
class FpEnvGuard
{
  public:
    explicit FpEnvGuard(FpContext &ctx);
    ~FpEnvGuard();

    FpEnvGuard(const FpEnvGuard &) = delete;
    FpEnvGuard &operator=(const FpEnvGuard &) = delete;

  private:
    FpContext *saved_;
};

/**
 * Per-operation dispatch state, captured once at op entry.
 *
 * The softfloat fast path: whether a hook is installed is decided by
 * a single branch in detail::enterOp() instead of one branch plus a
 * hook-pointer load at every datapath stage. Golden runs and the
 * un-struck majority of each trial's operations run with
 * hooked == nullptr, so every touch() reduces to a no-op compare.
 * `ctx` is kept separately because the rounding mode must be honoured
 * even when no hook is installed.
 */
struct OpCtx
{
    FpContext *ctx = nullptr;     ///< counters + rounding, or null
    FpContext *hooked = nullptr;  ///< == ctx iff a hook is installed

    Rounding
    rounding() const
    {
        return ctx ? ctx->rounding : Rounding::NearestEven;
    }
};

namespace detail {

/** Record one op in the current context and return it (or nullptr). */
FpContext *noteOp(OpKind op);

/** Count one op and capture the hook-dispatch state for its stages. */
inline OpCtx
enterOp(OpKind op)
{
    FpContext *ctx = noteOp(op);
    return {ctx, (ctx && ctx->hook) ? ctx : nullptr};
}

/** Run the context hook for @p stage, if any. */
inline std::uint64_t
touch(const OpCtx &oc, OpKind op, Stage stage, unsigned width,
      std::uint64_t value)
{
    if (oc.hooked == nullptr) [[likely]]
        return value;
    return oc.hooked->hook->perturb(op, stage, width, value);
}

} // namespace detail

} // namespace mparch::fp

#endif // MPARCH_FP_HOOKS_HH
