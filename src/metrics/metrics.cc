#include "metrics/metrics.hh"

#include <algorithm>
#include <cmath>

namespace mparch::metrics {

std::vector<double>
normalizeToMax(const std::vector<double> &values)
{
    double peak = 0.0;
    for (double v : values)
        peak = std::max(peak, v);
    std::vector<double> out(values.size(), 0.0);
    if (peak <= 0.0)
        return out;
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = values[i] / peak;
    return out;
}

TreCurve
treCurve(const fault::CampaignResult &result)
{
    TreCurve curve;
    curve.thresholds.assign(kTreThresholds.begin(),
                            kTreThresholds.end());
    curve.remaining.reserve(curve.thresholds.size());
    for (double t : curve.thresholds)
        curve.remaining.push_back(result.survivingFraction(t));
    return curve;
}

double
scrubbedErrorRate(double raw_rate, double avf, double interval)
{
    if (raw_rate <= 0.0 || avf <= 0.0 || interval <= 0.0)
        return 0.0;
    // Upsets arrive Poisson(raw_rate); each propagates independently
    // with probability avf, so propagating upsets are a thinned
    // Poisson process of rate raw_rate * avf and the interval stays
    // clean with probability exp(-raw_rate * avf * interval).
    const double p_clean = std::exp(-raw_rate * avf * interval);
    return (1.0 - p_clean) / interval;
}

CriticalitySplit
criticalitySplit(const fault::CampaignResult &result)
{
    using workloads::SdcSeverity;
    CriticalitySplit split;
    split.tolerable = result.severityFraction(SdcSeverity::Tolerable);
    split.detectionChange =
        result.severityFraction(SdcSeverity::DetectionChange);
    split.criticalChange =
        result.severityFraction(SdcSeverity::CriticalChange);
    return split;
}

CoverageReport
coverageReport(const fault::SupervisedCampaign &run)
{
    CoverageReport report;
    report.planned = run.planned;
    report.completed = run.result.trials;
    report.poisoned = run.poisoned;
    report.coverage = run.coverage();
    report.degraded = !run.complete() || run.poisoned > 0;
    report.avfSdc95 = run.result.avfSdc95();
    return report;
}

} // namespace mparch::metrics
