file(REMOVE_RECURSE
  "CMakeFiles/mparch_phi.dir/compiler_model.cc.o"
  "CMakeFiles/mparch_phi.dir/compiler_model.cc.o.d"
  "CMakeFiles/mparch_phi.dir/phi.cc.o"
  "CMakeFiles/mparch_phi.dir/phi.cc.o.d"
  "CMakeFiles/mparch_phi.dir/vpu_sim.cc.o"
  "CMakeFiles/mparch_phi.dir/vpu_sim.cc.o.d"
  "libmparch_phi.a"
  "libmparch_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
