/**
 * @file
 * Reproduces Figure 2: FPGA resource utilisation (LUT / DSP / BRAM)
 * for MxM and MNIST at the three precisions.
 *
 * Shape targets (paper Section 4.1): MxM loses ~45% of its area from
 * double to single and ~36% more to half; MNIST ~53% and ~26%; MNIST
 * occupies more fabric than MxM at every precision.
 */

#include "bench_util.hh"

#include "arch/fpga/fpga.hh"
#include "fault/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 0, 0.3);
    bench::banner("Figure 2: FPGA resource utilisation",
                  "MxM area -45% (D->S) then -36% (S->H); MNIST -53% "
                  "then -26%; MNIST > MxM");

    Table table({"benchmark", "precision", "LUTs", "DSPs", "BRAMs",
                 "config-bits", "area-drop-vs-prev"});
    for (const std::string name : {"mxm", "mnist"}) {
        double prev_luts = 0.0;
        for (auto p : fp::allPrecisions) {
            auto w = nn::makeAnyWorkload(name, p, args.scale);
            const fault::GoldenRun golden(*w, 99);
            const auto c = fpga::synthesize(*w, golden);
            std::string drop = "-";
            if (prev_luts > 0.0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.0f%%",
                              100.0 * (1.0 - c.luts / prev_luts));
                drop = buf;
            }
            prev_luts = c.luts;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(c.luts, 0)
                .cell(c.dsps, 0)
                .cell(c.brams, 0)
                .cell(c.configBits, 0)
                .cell(drop);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
