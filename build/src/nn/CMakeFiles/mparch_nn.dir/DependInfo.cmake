
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/digits.cc" "src/nn/CMakeFiles/mparch_nn.dir/digits.cc.o" "gcc" "src/nn/CMakeFiles/mparch_nn.dir/digits.cc.o.d"
  "/root/repo/src/nn/mnistnet.cc" "src/nn/CMakeFiles/mparch_nn.dir/mnistnet.cc.o" "gcc" "src/nn/CMakeFiles/mparch_nn.dir/mnistnet.cc.o.d"
  "/root/repo/src/nn/nn_workloads.cc" "src/nn/CMakeFiles/mparch_nn.dir/nn_workloads.cc.o" "gcc" "src/nn/CMakeFiles/mparch_nn.dir/nn_workloads.cc.o.d"
  "/root/repo/src/nn/yolite.cc" "src/nn/CMakeFiles/mparch_nn.dir/yolite.cc.o" "gcc" "src/nn/CMakeFiles/mparch_nn.dir/yolite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mparch_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mparch_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mparch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
