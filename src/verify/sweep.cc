/**
 * @file
 * Exhaustive and sampled operand-space sweeps.
 *
 * Sweeps fan out over the common/parallel ThreadPool with
 * IndexChunker's prefix-ordered chunk dispenser. Determinism in the
 * number of workers comes from two disciplines:
 *
 *  - every case is identified by a global index (operand pattern, or
 *    pair index a * 2^bits + b, or sampled-trial counter), and the
 *    work a chunk performs depends only on its index range — never on
 *    which worker claimed it or in what order;
 *  - each chunk keeps at most maxReport mismatches, so the merged,
 *    index-sorted sample is a deterministic prefix of the full
 *    mismatch list (a mismatch dropped inside a chunk is always
 *    preceded by maxReport kept ones with smaller indices).
 *
 * The unary/convert sweeps additionally check rounding monotonicity:
 * within each sign half, value order follows bit-pattern order, so a
 * correctly rounded monotone function must produce results that are
 * monotone on the same grid. Chunk-internal neighbours are checked
 * directly and the one cross-chunk boundary pair is re-derived by
 * evaluating the predecessor pattern — again independent of chunk
 * assignment.
 */

#include "verify/verify.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace mparch::verify {

using fp::Format;
using fp::isNaN;

namespace {

/** Keyed mismatch for deterministic cross-worker merging. */
struct Keyed
{
    std::uint64_t key;
    Mismatch m;
};

struct WorkerOut
{
    std::uint64_t cases = 0;
    std::uint64_t mismatches = 0;
    std::vector<Keyed> kept;
};

/** Sign-magnitude pattern -> signed line (as in ulpDistance). */
std::int64_t
valueLine(Format f, std::uint64_t bits)
{
    const auto mag =
        static_cast<std::int64_t>(bits & (f.valueMask() >> 1));
    return fp::signOf(f, bits) ? -mag : mag;
}

/**
 * Run the chunked loop over @p count units and merge the outcome.
 * @p body is called as body(unit, worker_out, chunk_kept_budget).
 */
template <typename Body>
SweepReport
runChunked(std::uint64_t count, const SweepConfig &cfg, Body body)
{
    const unsigned jobs = parallel::resolveJobs(cfg.jobs);
    std::vector<WorkerOut> outs(jobs);
    // Chunks sized so even a 2^16-unit sweep produces enough of them
    // to balance a fast/slow worker split.
    const std::uint64_t chunk = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(1024, count / (jobs * 8) + 1));
    parallel::IndexChunker chunker(count, chunk);

    parallel::ThreadPool pool(jobs);
    pool.run([&](unsigned worker) {
        WorkerOut &out = outs[worker];
        std::uint64_t begin, end;
        while (chunker.next(begin, end)) {
            std::size_t budget = cfg.maxReport;
            for (std::uint64_t unit = begin; unit < end; ++unit)
                body(unit, out, budget);
        }
    });

    SweepReport report;
    std::vector<Keyed> merged;
    for (WorkerOut &out : outs) {
        report.cases += out.cases;
        report.mismatches += out.mismatches;
        merged.insert(merged.end(),
                      std::make_move_iterator(out.kept.begin()),
                      std::make_move_iterator(out.kept.end()));
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Keyed &x, const Keyed &y) {
                         return x.key < y.key;
                     });
    if (merged.size() > cfg.maxReport)
        merged.resize(cfg.maxReport);
    report.sample.reserve(merged.size());
    for (Keyed &k : merged)
        report.sample.push_back(std::move(k.m));
    return report;
}

void
record(WorkerOut &out, std::size_t &budget, std::uint64_t key,
       std::vector<Mismatch> &found)
{
    out.mismatches += found.size();
    for (Mismatch &m : found) {
        if (budget == 0)
            break;
        --budget;
        out.kept.push_back({key, std::move(m)});
    }
    found.clear();
}

/** Evaluate the case for pattern @p bits of a unary/convert sweep. */
Case
unaryCase(VOp op, Format f, Format dst, std::uint64_t bits)
{
    Case c;
    c.op = op;
    c.fmt = f;
    c.dst = dst;
    c.a = bits;
    return c;
}

/**
 * Monotonicity between adjacent patterns @p prev and @p cur (same
 * sign half): result order must follow value order. NaN at either
 * end of either side exempts the pair.
 */
void
checkMonotonePair(VOp op, Format f, Format dst, std::uint64_t prev,
                  std::uint64_t cur, std::uint64_t key, WorkerOut &out,
                  std::size_t &budget)
{
    // Crossing the sign boundary breaks value adjacency.
    if (fp::signOf(f, prev) != fp::signOf(f, cur))
        return;
    if (isNaN(f, prev) || isNaN(f, cur))
        return;
    const Format rf = op == VOp::Convert ? dst : f;
    const std::uint64_t rp = runProduction(unaryCase(op, f, dst, prev));
    const std::uint64_t rc = runProduction(unaryCase(op, f, dst, cur));
    if (isNaN(rf, rp) || isNaN(rf, rc))
        return;

    // Patterns ascend in magnitude; on the negative half that means
    // values descend, so a monotone op's results must too.
    const bool ascending = !fp::signOf(f, cur);
    const std::int64_t lp = valueLine(rf, rp);
    const std::int64_t lc = valueLine(rf, rc);
    if (ascending ? lc >= lp : lc <= lp)
        return;

    std::vector<Mismatch> found;
    Mismatch m;
    m.c = unaryCase(op, f, dst, cur);
    m.got = rc;
    m.want = rp;
    m.oracle = "property";
    m.detail = "monotonicity: result order breaks input value order "
               "against neighbour pattern 0x";
    char hex[32];
    std::snprintf(hex, sizeof hex, "%llx",
                  static_cast<unsigned long long>(prev));
    m.detail += hex;
    found.push_back(std::move(m));
    record(out, budget, key, found);
}

SweepReport
sweepUnaryLike(VOp op, Format f, Format dst, const SweepConfig &cfg)
{
    const Format rf = op == VOp::Convert ? dst : f;
    (void)rf;

    if (cfg.samples == 0) {
        MPARCH_ASSERT(f.totalBits <= 16,
                      "exhaustive sweep needs a <= 16-bit format");
        const std::uint64_t space = 1ULL << f.totalBits;
        // Monotonicity is a theorem only for correctly rounded ops
        // (sqrt, convert): rounding a monotone function correctly
        // preserves grid order. The in-format transcendental chains
        // are *not* correctly rounded and do jitter by an ULP across
        // neighbours (observed for bfloat16 exp), so they are exempt.
        const bool monotone = cfg.checkMonotone &&
                              (op == VOp::Sqrt || op == VOp::Convert);
        return runChunked(
            space, cfg,
            [&](std::uint64_t unit, WorkerOut &out,
                std::size_t &budget) {
                const Case c = unaryCase(op, f, dst, unit);
                std::vector<Mismatch> found;
                ++out.cases;
                if (!checkCase(c, cfg.check, &found))
                    record(out, budget, unit, found);
                if (monotone && unit > 0)
                    checkMonotonePair(op, f, dst, unit - 1, unit,
                                      unit, out, budget);
            });
    }

    const std::uint64_t seed = Rng::mix(
        cfg.seed, (static_cast<std::uint64_t>(op) << 32) |
                      (static_cast<std::uint64_t>(f.totalBits) << 16) |
                      f.manBits);
    return runChunked(
        cfg.samples, cfg,
        [&](std::uint64_t unit, WorkerOut &out, std::size_t &budget) {
            Rng rng = trialRng(seed, unit);
            Case c = unaryCase(op, f, dst, genOperand(rng, f));
            std::vector<Mismatch> found;
            ++out.cases;
            if (!checkCase(c, cfg.check, &found))
                record(out, budget, unit, found);
        });
}

} // namespace

SweepReport
sweepPairs(VOp op, fp::Format f, const SweepConfig &cfg)
{
    MPARCH_ASSERT(vopArity(op) == 2, "sweepPairs needs a binary op");

    if (cfg.samples == 0) {
        MPARCH_ASSERT(f.totalBits <= 16,
                      "exhaustive sweep needs a <= 16-bit format");
        const std::uint64_t space = 1ULL << f.totalBits;
        // Chunk by first operand: each claimed range runs a full
        // inner loop over every second operand.
        const unsigned jobs = parallel::resolveJobs(cfg.jobs);
        std::vector<WorkerOut> outs(jobs);
        parallel::IndexChunker chunker(space, 4);
        parallel::ThreadPool pool(jobs);
        pool.run([&](unsigned worker) {
            WorkerOut &out = outs[worker];
            std::uint64_t begin, end;
            while (chunker.next(begin, end)) {
                std::size_t budget = cfg.maxReport;
                std::vector<Mismatch> found;
                for (std::uint64_t a = begin; a < end; ++a) {
                    for (std::uint64_t b = 0; b < space; ++b) {
                        Case c;
                        c.op = op;
                        c.fmt = f;
                        c.a = a;
                        c.b = b;
                        ++out.cases;
                        if (!checkCase(c, cfg.check, &found))
                            record(out, budget, (a << f.totalBits) | b,
                                   found);
                    }
                }
            }
        });

        SweepReport report;
        std::vector<Keyed> merged;
        for (WorkerOut &out : outs) {
            report.cases += out.cases;
            report.mismatches += out.mismatches;
            merged.insert(merged.end(),
                          std::make_move_iterator(out.kept.begin()),
                          std::make_move_iterator(out.kept.end()));
        }
        std::stable_sort(merged.begin(), merged.end(),
                         [](const Keyed &x, const Keyed &y) {
                             return x.key < y.key;
                         });
        if (merged.size() > cfg.maxReport)
            merged.resize(cfg.maxReport);
        for (Keyed &k : merged)
            report.sample.push_back(std::move(k.m));
        return report;
    }

    const std::uint64_t seed = Rng::mix(
        cfg.seed, (static_cast<std::uint64_t>(op) << 32) |
                      (static_cast<std::uint64_t>(f.totalBits) << 16) |
                      f.manBits);
    return runChunked(
        cfg.samples, cfg,
        [&](std::uint64_t unit, WorkerOut &out, std::size_t &budget) {
            Rng rng = trialRng(seed, unit);
            Case c;
            c.op = op;
            c.fmt = f;
            c.a = genOperand(rng, f);
            c.b = genOperand(rng, f);
            std::vector<Mismatch> found;
            ++out.cases;
            if (!checkCase(c, cfg.check, &found))
                record(out, budget, unit, found);
        });
}

SweepReport
sweepUnary(VOp op, fp::Format f, const SweepConfig &cfg)
{
    MPARCH_ASSERT(vopArity(op) == 1 && op != VOp::Convert,
                  "sweepUnary needs a unary arithmetic op");
    return sweepUnaryLike(op, f, f, cfg);
}

SweepReport
sweepConvert(fp::Format src, fp::Format dst, const SweepConfig &cfg)
{
    return sweepUnaryLike(VOp::Convert, src, dst, cfg);
}

} // namespace mparch::verify
