/**
 * @file
 * Extension (beyond the paper): what does it cost to buy back the
 * reliability that reduced precision gives away?
 *
 * The paper shows lower precisions suffer more *critical* SDCs
 * (Figures 4/8/11). This bench evaluates the three classic
 * mitigations on the GEMM kernel at every precision, under the same
 * CAROL-FI memory campaign:
 *
 *  - DWC:  2 replicas, compare      -> converts SDCs to detections
 *  - TMR:  3 replicas, vote         -> removes SDCs outright
 *  - ABFT: checksummed GEMM         -> locates & corrects in-place,
 *                                      with a rounding tolerance
 *                                      that loosens at low precision
 *
 * Reported: SDC AVF, critical-SDC AVF (deviation > 1%), detected
 * fraction, arithmetic overhead (ops vs unprotected), and a
 * protection efficiency score = critical-AVF reduction per unit of
 * overhead.
 */

#include "bench_util.hh"

#include "fault/campaign.hh"
#include "mitigation/abft.hh"
#include "mitigation/replicated.hh"

namespace {

using namespace mparch;

struct Variant
{
    std::string label;
    workloads::WorkloadPtr w;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.15);
    bench::banner("Extension: mitigation vs precision (GEMM, "
                  "CAROL-FI memory campaign)",
                  "TMR kills SDCs at 3x cost; DWC converts them to "
                  "detections at 2x; ABFT corrects at ~1.1x but its "
                  "tolerance loosens at low precision");

    Table table({"precision", "variant", "ops-overhead", "avf-sdc",
                 "avf-critical(>1%)", "avf-detected"});
    for (auto p : fp::allPrecisions) {
        // Unprotected baseline op count for the overhead column.
        auto plain = workloads::makeWorkload("mxm", p, args.scale);
        const double base_ops = static_cast<double>(
            fault::GoldenRun(*plain, 99).ops.totalOps());

        std::vector<Variant> variants;
        variants.push_back(
            {"plain", workloads::makeWorkload("mxm", p, args.scale)});
        variants.push_back(
            {"dwc", mitigation::makeReplicated(
                        mitigation::Redundancy::Dwc, "mxm", p,
                        args.scale)});
        variants.push_back(
            {"tmr", mitigation::makeReplicated(
                        mitigation::Redundancy::Tmr, "mxm", p,
                        args.scale)});
        variants.push_back(
            {"abft", mitigation::makeAbftMxM(p, args.scale)});

        for (auto &variant : variants) {
            const double ops = static_cast<double>(
                fault::GoldenRun(*variant.w, 99).ops.totalOps());
            fault::CampaignConfig config;
            config.trials = args.trials;
            const auto r =
                fault::runMemoryCampaign(*variant.w, config);
            const double critical =
                r.avfSdc() * r.survivingFraction(0.01);
            table.row()
                .cell(std::string(fp::precisionName(p)))
                .cell(variant.label)
                .cell(ops / base_ops, 2)
                .cell(r.avfSdc(), 3)
                .cell(critical, 3)
                .cell(r.avfDetected(), 3);
        }
    }
    table.print(std::cout);
    std::cout << "(avf-critical: probability a fault silently "
                 "perturbs the output by more than 1%)\n";

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
