/**
 * @file
 * Tests for the mitigation substrate: DWC detection, TMR voting,
 * ABFT checksum correction, and their behaviour under the standard
 * injection campaigns.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "mitigation/abft.hh"
#include "mitigation/replicated.hh"
#include "workloads/mxm.hh"

namespace mparch::mitigation {
namespace {

using fp::Precision;
using workloads::ExecutionEnv;

TEST(Replicated, NameAndStructure)
{
    auto dwc = makeReplicated(Redundancy::Dwc, "mxm",
                              Precision::Single, 0.1);
    auto tmr = makeReplicated(Redundancy::Tmr, "mxm",
                              Precision::Single, 0.1);
    EXPECT_EQ(dwc->name(), "mxm-dwc");
    EXPECT_EQ(tmr->name(), "mxm-tmr");
    dwc->reset(1);
    tmr->reset(1);
    // DWC exposes 2x the buffers, TMR 3x.
    EXPECT_EQ(dwc->buffers().size(), 2 * 3u);
    EXPECT_EQ(tmr->buffers().size(), 3 * 3u);
}

TEST(Replicated, CleanRunMatchesUnprotected)
{
    auto plain = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    auto tmr =
        makeReplicated(Redundancy::Tmr, "mxm", Precision::Half, 0.1);
    const fault::GoldenRun g_plain(*plain, 42);
    const fault::GoldenRun g_tmr(*tmr, 42);
    EXPECT_EQ(g_plain.outputBits, g_tmr.outputBits);
    EXPECT_FALSE(tmr->detectedError());
}

TEST(Replicated, DwcDetectsSingleReplicaCorruption)
{
    auto dwc = makeReplicated(Redundancy::Dwc, "mxm",
                              Precision::Single, 0.1);
    dwc->reset(7);
    // Corrupt one element of replica 0's input before running.
    auto views = dwc->buffers();
    ASSERT_EQ(views[0].name, "r0/A");
    views[0].set(3, views[0].get(3) ^ (1ULL << 30));
    ExecutionEnv env;
    dwc->execute(env);
    EXPECT_TRUE(dwc->detectedError());
}

TEST(Replicated, TmrVotesOutSingleReplicaCorruption)
{
    auto wrapped = makeReplicated(Redundancy::Tmr, "mxm",
                                  Precision::Single, 0.1);
    auto *tmr = dynamic_cast<ReplicatedWorkload *>(wrapped.get());
    ASSERT_NE(tmr, nullptr);
    const fault::GoldenRun golden(*wrapped, 7);

    wrapped->reset(7);
    auto views = wrapped->buffers();
    ASSERT_EQ(views[3].name, "r1/A");
    views[3].set(5, views[3].get(5) ^ (1ULL << 30));
    ExecutionEnv env;
    wrapped->execute(env);
    EXPECT_FALSE(wrapped->detectedError());
    EXPECT_GT(tmr->corrections(), 0u);
    // Voted output equals golden despite the corrupted replica.
    const auto out = wrapped->output();
    for (std::size_t i = 0; i < out.count; ++i)
        ASSERT_EQ(out.get(i), golden.outputBits[i]);
}

TEST(Replicated, CampaignSdcCollapsesUnderTmr)
{
    fault::CampaignConfig config;
    config.trials = 200;
    auto plain =
        workloads::makeWorkload("mxm", Precision::Single, 0.1);
    auto tmr = makeReplicated(Redundancy::Tmr, "mxm",
                              Precision::Single, 0.1);
    const auto r_plain = fault::runMemoryCampaign(*plain, config);
    const auto r_tmr = fault::runMemoryCampaign(*tmr, config);
    EXPECT_GT(r_plain.avfSdc(), 0.3);
    // A single memory fault hits one replica; the voter removes it.
    EXPECT_LT(r_tmr.avfSdc(), 0.02);
    EXPECT_EQ(r_tmr.masked + r_tmr.sdc + r_tmr.due + r_tmr.detected,
              r_tmr.trials);
}

TEST(Replicated, CampaignSdcBecomesDetectedUnderDwc)
{
    fault::CampaignConfig config;
    config.trials = 200;
    auto dwc = makeReplicated(Redundancy::Dwc, "mxm",
                              Precision::Single, 0.1);
    const auto r = fault::runMemoryCampaign(*dwc, config);
    // Mismatches are caught, not silently consumed.
    EXPECT_LT(r.avfSdc(), 0.02);
    EXPECT_GT(r.avfDetected(), 0.3);
}

TEST(Abft, CleanRunProducesNoCorrections)
{
    AbftMxMWorkload<Precision::Single> w(0.1);
    w.reset(3);
    ExecutionEnv env;
    w.execute(env);
    EXPECT_EQ(w.corrections(), 0u);
    EXPECT_FALSE(w.detectedError());
}

TEST(Abft, MatchesPlainMxmProduct)
{
    AbftMxMWorkload<Precision::Double> abft(0.1);
    workloads::MxMWorkload<Precision::Double> plain(0.1);
    const fault::GoldenRun ga(abft, 11);
    const fault::GoldenRun gp(plain, 11);
    EXPECT_EQ(ga.outputBits, gp.outputBits);
}

TEST(Abft, CorrectsSingleCorruptedElement)
{
    AbftMxMWorkload<Precision::Double> w(0.1);
    const fault::GoldenRun golden(w, 5);
    const std::size_t n = w.dim();

    // Flip a high mantissa bit of one C element after the compute
    // phase (tick n) but before verification: ABFT must locate and
    // repair it so the output matches golden to within the checksum
    // tolerance.
    w.reset(5);
    ExecutionEnv env;
    env.onTick = [&w, n](std::uint64_t tick) {
        if (tick == n) {
            auto c = w.buffers()[2];
            ASSERT_EQ(c.name, "C");
            c.set(n + 2, c.get(n + 2) ^ (1ULL << 50));
        }
    };
    w.execute(env);
    EXPECT_EQ(w.corrections(), 1u);
    EXPECT_FALSE(w.detectedError());
    const auto out = w.output();
    for (std::size_t i = 0; i < out.count; ++i) {
        const double got = fp::fpToDouble(fp::kDouble, out.get(i));
        const double want =
            fp::fpToDouble(fp::kDouble, golden.outputBits[i]);
        ASSERT_NEAR(got, want, 1e-9) << i;
    }
}

TEST(Abft, CampaignReducesCriticalSdcs)
{
    fault::CampaignConfig config;
    config.trials = 250;
    auto plain =
        workloads::makeWorkload("mxm", Precision::Single, 0.1);
    AbftMxMWorkload<Precision::Single> abft(0.1);
    const auto r_plain = fault::runMemoryCampaign(*plain, config);
    const auto r_abft = fault::runMemoryCampaign(abft, config);
    // ABFT converts large silent corruptions into corrections,
    // detections, or sub-tolerance residuals: the share of SDCs
    // exceeding 1% deviation must drop sharply.
    const double plain_critical =
        r_plain.avfSdc() * r_plain.survivingFraction(0.01);
    const double abft_critical =
        r_abft.avfSdc() * r_abft.survivingFraction(0.01);
    EXPECT_LT(abft_critical, 0.5 * plain_critical);
    EXPECT_GT(r_abft.detected + r_abft.masked, 0u);
}

TEST(Abft, HalfPrecisionToleranceIsLooser)
{
    // The checksum slack scales with the unit roundoff, so half
    // precision must accept (mask) more sub-tolerance corruption
    // than double: its detector fires less often per fault.
    fault::CampaignConfig config;
    config.trials = 250;
    AbftMxMWorkload<Precision::Double> wd(0.1);
    AbftMxMWorkload<Precision::Half> wh(0.1);
    const auto rd = fault::runMemoryCampaign(wd, config);
    const auto rh = fault::runMemoryCampaign(wh, config);
    const double caught_d = rd.avfDetected();
    const double caught_h = rh.avfDetected();
    // Both detectors work, but half's no better than double's.
    EXPECT_LE(caught_h, caught_d + 0.1);
}

} // namespace
} // namespace mparch::mitigation
