/**
 * @file
 * Shared internals of the verification oracles.
 *
 * Not part of the public API; included by the verify .cc files and by
 * white-box unit tests of the reference rounding step.
 */

#ifndef MPARCH_VERIFY_INTERNAL_HH
#define MPARCH_VERIFY_INTERNAL_HH

#include "verify/verify.hh"

namespace mparch::verify::detail {

using U128 = unsigned __int128;

/**
 * A finite operand decoded per the IEEE754 interchange encoding:
 * value = (-1)^sign * mag * 2^exp, mag < 2^(manBits+1).
 *
 * This is the *definition* of the encoding, not an implementation
 * choice shared with src/fp.
 */
struct Dec
{
    bool sign;
    int exp;
    std::uint64_t mag;
};

/** Decode a finite (zero/subnormal/normal) bit pattern. */
Dec decodeBits(fp::Format f, std::uint64_t bits);

/**
 * The reference rounding step: round
 *
 *     value = (-1)^sign * (mag + r) * 2^exp
 *
 * to format @p f under round-to-nearest-even, where @p mag is an
 * exact 128-bit integer and r is a remainder in [0, 1) known only to
 * be zero (@p rest == false) or strictly positive (@p rest == true).
 *
 * Unlike the production roundPack there is no sticky jamming: the
 * dropped bits are compared against the exact halfway point, and the
 * sub-LSB remainder only ever breaks would-be ties. Callers must
 * guarantee that when @p rest is set, at least one bit of @p mag is
 * dropped (every oracle arranges its scaling so the rounded
 * significand keeps >= 7 spare low bits).
 */
std::uint64_t roundExactRNE(fp::Format f, bool sign, U128 mag, int exp,
                            bool rest);

/** Index of the most significant set bit of a U128, or -1 for 0. */
int highestSetBit128(U128 v);

} // namespace mparch::verify::detail

#endif // MPARCH_VERIFY_INTERNAL_HH
