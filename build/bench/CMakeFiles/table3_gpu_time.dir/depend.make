# Empty dependencies file for table3_gpu_time.
# This may be replaced when dependencies are built.
