#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace mparch::json {

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char ch : text) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += static_cast<char>(ch);
            }
        }
    }
    return out;
}

void
Writer::newline()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
Writer::beforeValue()
{
    if (stack_.empty())
        return;
    Level &level = stack_.back();
    if (level.isObject) {
        MPARCH_ASSERT(keyPending_,
                      "json: object member needs a key()");
        keyPending_ = false;
        return;
    }
    if (!level.first)
        os_ << ',';
    level.first = false;
    newline();
}

Writer &
Writer::key(const std::string &name)
{
    MPARCH_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "json: key() outside an object");
    MPARCH_ASSERT(!keyPending_, "json: key() after key()");
    Level &level = stack_.back();
    if (!level.first)
        os_ << ',';
    level.first = false;
    newline();
    os_ << '"' << escape(name) << "\": ";
    keyPending_ = true;
    return *this;
}

Writer &
Writer::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back({true, true});
    return *this;
}

Writer &
Writer::endObject()
{
    MPARCH_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "json: endObject() without beginObject()");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << '}';
    return *this;
}

Writer &
Writer::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back({false, true});
    return *this;
}

Writer &
Writer::endArray()
{
    MPARCH_ASSERT(!stack_.empty() && !stack_.back().isObject,
                  "json: endArray() without beginArray()");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << ']';
    return *this;
}

Writer &
Writer::value(const std::string &text)
{
    beforeValue();
    os_ << '"' << escape(text) << '"';
    return *this;
}

Writer &
Writer::value(const char *text)
{
    return value(std::string(text));
}

Writer &
Writer::value(double number)
{
    if (!std::isfinite(number))
        return null();
    beforeValue();
    // Shortest representation that round-trips a double.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    double back = std::strtod(buf, nullptr);
    if (back == number) {
        for (int prec = 1; prec < 17; ++prec) {
            char tight[32];
            std::snprintf(tight, sizeof(tight), "%.*g", prec,
                          number);
            if (std::strtod(tight, nullptr) == number) {
                std::snprintf(buf, sizeof(buf), "%s", tight);
                break;
            }
        }
    }
    os_ << buf;
    return *this;
}

Writer &
Writer::value(std::int64_t number)
{
    beforeValue();
    os_ << number;
    return *this;
}

Writer &
Writer::value(std::uint64_t number)
{
    beforeValue();
    os_ << number;
    return *this;
}

Writer &
Writer::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

Writer &
Writer::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

Writer &
Writer::value(bool flag)
{
    beforeValue();
    os_ << (flag ? "true" : "false");
    return *this;
}

Writer &
Writer::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

const Value *
Value::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over a char range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty()) {
            *error_ = "json parse error at offset " +
                      std::to_string(pos_) + ": " + what;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char ch = text_[pos_];
        switch (ch) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.string);
          case 't':
            if (!literal("true", 4))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false", 5))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null", 4))
                return fail("bad literal");
            out.kind = Value::Kind::Null;
            return true;
          default:  return parseNumber(out);
        }
    }

    bool
    parseNumber(Value &out)
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected a value");
        pos_ += static_cast<std::size_t>(end - begin);
        out.kind = Value::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char ch = text_[pos_++];
            if (ch == '"')
                return true;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the code point (BMP only; escape
                // writers only emit control characters here).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseObject(Value &out)
    {
        ++pos_;  // '{'
        out.kind = Value::Kind::Object;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string name;
            if (!parseString(name))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after key");
            skipSpace();
            Value member;
            if (!parseValue(member))
                return false;
            out.object.emplace(std::move(name), std::move(member));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char next = text_[pos_++];
            if (next == '}')
                return true;
            if (next != ',')
                return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        ++pos_;  // '['
        out.kind = Value::Kind::Array;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            Value element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char next = text_[pos_++];
            if (next == ']')
                return true;
            if (next != ',')
                return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    if (error)
        error->clear();
    out = Value{};
    Parser parser(text, error);
    return parser.run(out);
}

} // namespace mparch::json
