# Empty dependencies file for mparch_common.
# This may be replaced when dependencies are built.
