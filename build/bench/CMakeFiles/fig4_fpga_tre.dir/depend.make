# Empty dependencies file for fig4_fpga_tre.
# This may be replaced when dependencies are built.
