# Empty dependencies file for fp_hooks_test.
# This may be replaced when dependencies are built.
