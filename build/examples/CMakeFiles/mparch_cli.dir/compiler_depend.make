# Empty compiler generated dependencies file for mparch_cli.
# This may be replaced when dependencies are built.
