/**
 * @file
 * mparch_repro — the registry-driven reproduction driver.
 *
 * One binary that enumerates, runs and judges every experiment in
 * the declarative registry (all paper tables/figures, the ablations,
 * the extensions and the engine bench), replacing "run 33 binaries
 * and eyeball the tables" with a machine-checked scorecard.
 *
 * Usage: mparch_repro [options]
 *   --list            list registered experiments and exit
 *   --filter <regex>  run only experiments whose id matches
 *   --trials N        override injection trials (0 = per-experiment
 *                     default)
 *   --scale X         override workload scale (0 = default)
 *   --jobs N          campaign worker threads (0 = all hardware
 *                     threads; results identical for every N)
 *   --quick           only experiments flagged quick (the fast,
 *                     deterministic subset)
 *   --json <dir>      write one JSON document per experiment
 *   --csv <dir>       write one CSV file per result table
 *   --scorecard       print the aggregate shape-check scorecard and
 *                     exit non-zero if any check failed
 *   --no-progress     suppress campaign progress on stderr
 *
 * Options accept both "--opt value" and "--opt=value". Malformed
 * input is an error (usage, exit 2), never a silent default.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "report/registry.hh"

namespace {

using namespace mparch;

struct DriverArgs
{
    bool list = false;
    bool quick = false;
    bool scorecard = false;
    std::string filter;
    std::string jsonDir;
    std::string csvDir;
    report::RunContext ctx;
};

void
printUsage(const char *prog, std::ostream &os)
{
    os << "usage: " << prog
       << " [--list] [--filter <regex>] [--quick]\n"
          "       [--trials N] [--scale X] [--jobs N]\n"
          "       [--json <dir>] [--csv <dir>] [--scorecard]"
          " [--no-progress]\n"
          "\n"
          "  --list       list registered experiments and exit\n"
          "  --filter     run only experiments whose id matches the"
          " regex\n"
          "  --quick      only experiments flagged quick\n"
          "  --trials N   override injection trials (0 ="
          " per-experiment default)\n"
          "  --scale X    override workload scale (0 = default)\n"
          "  --jobs N     campaign worker threads (0 = all hardware"
          " threads)\n"
          "  --json DIR   write one JSON document per experiment\n"
          "  --csv DIR    write one CSV file per result table\n"
          "  --scorecard  print the aggregate shape-check scorecard;"
          " exit non-zero\n"
          "               if any check failed\n"
          "  --no-progress  suppress campaign progress on stderr\n";
}

[[noreturn]] void
fail(const char *prog, const std::string &why)
{
    std::cerr << prog << ": error: " << why << "\n";
    printUsage(prog, std::cerr);
    std::exit(2);
}

bool
parseCount(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text.find_first_not_of("0123456789") !=
                            std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

bool
parseReal(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size() || v < 0.0)
        return false;
    *out = v;
    return true;
}

DriverArgs
parseArgs(int argc, char **argv)
{
    DriverArgs args;
    const auto value_of = [&](const std::string &arg, int *i) {
        const auto eq = arg.find('=');
        if (eq != std::string::npos)
            return arg.substr(eq + 1);
        if (*i + 1 >= argc)
            fail(argv[0], arg + " needs a value");
        return std::string(argv[++*i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto is = [&](const char *name) {
            return arg == name ||
                   arg.rfind(std::string(name) + "=", 0) == 0;
        };
        if (arg == "--list") {
            args.list = true;
        } else if (arg == "--quick") {
            args.quick = true;
        } else if (arg == "--scorecard") {
            args.scorecard = true;
        } else if (arg == "--no-progress") {
            args.ctx.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0], std::cout);
            std::exit(0);
        } else if (is("--filter")) {
            args.filter = value_of(arg, &i);
        } else if (is("--json")) {
            args.jsonDir = value_of(arg, &i);
        } else if (is("--csv")) {
            args.csvDir = value_of(arg, &i);
        } else if (is("--trials")) {
            const std::string v = value_of(arg, &i);
            if (!parseCount(v, &args.ctx.trials))
                fail(argv[0], "bad --trials value '" + v + "'");
        } else if (is("--scale")) {
            const std::string v = value_of(arg, &i);
            if (!parseReal(v, &args.ctx.scale))
                fail(argv[0], "bad --scale value '" + v + "'");
        } else if (is("--jobs")) {
            const std::string v = value_of(arg, &i);
            std::uint64_t jobs = 0;
            if (!parseCount(v, &jobs))
                fail(argv[0], "bad --jobs value '" + v + "'");
            args.ctx.jobs = static_cast<unsigned>(jobs);
        } else {
            fail(argv[0], "unknown argument '" + arg + "'");
        }
    }
    return args;
}

/** Experiments selected by --filter/--quick, in registry order. */
std::vector<const report::Experiment *>
selectExperiments(const DriverArgs &args, const char *prog)
{
    std::regex filter;
    if (!args.filter.empty()) {
        try {
            filter = std::regex(args.filter);
        } catch (const std::regex_error &e) {
            fail(prog, "bad --filter regex '" + args.filter +
                           "': " + e.what());
        }
    }
    std::vector<const report::Experiment *> selected;
    for (const auto &e : report::experiments()) {
        if (args.quick && !e.quick)
            continue;
        if (!args.filter.empty() &&
            !std::regex_search(e.id, filter))
            continue;
        selected.push_back(&e);
    }
    return selected;
}

void
listExperiments(const std::vector<const report::Experiment *> &sel)
{
    std::size_t id_width = 0;
    for (const auto *e : sel)
        id_width = std::max(id_width, e->id.size());
    for (const auto *e : sel) {
        std::cout << e->id
                  << std::string(id_width - e->id.size() + 2, ' ')
                  << "[" << report::experimentKindName(e->kind)
                  << (e->quick ? ", quick" : "") << "] "
                  << e->title << "\n"
                  << std::string(id_width + 2, ' ')
                  << "shape: " << e->shapeTarget << " ("
                  << e->checks.size() << " checks)\n";
    }
    std::cout << sel.size() << " experiments registered\n";
}

/** mkdir -p equivalent for the single-level output directories. */
bool
ensureDir(const std::string &path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0)
        return S_ISDIR(st.st_mode);
    return ::mkdir(path.c_str(), 0755) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const DriverArgs args = parseArgs(argc, argv);
    const auto selected = selectExperiments(args, argv[0]);

    if (args.list) {
        listExperiments(selected);
        return 0;
    }
    if (selected.empty()) {
        std::cerr << argv[0] << ": no experiment matches filter '"
                  << args.filter << "'\n";
        return 2;
    }
    for (const std::string &dir : {args.jsonDir, args.csvDir}) {
        if (!dir.empty() && !ensureDir(dir)) {
            std::cerr << argv[0] << ": cannot create directory '"
                      << dir << "'\n";
            return 2;
        }
    }

    std::vector<report::ResultDoc> docs;
    for (const auto *e : selected) {
        std::cout << "\n=== " << e->id << " — " << e->title
                  << " ===\n"
                  << "shape target: " << e->shapeTarget << "\n";
        docs.push_back(report::runExperiment(*e, args.ctx));
        const auto &doc = docs.back();
        doc.print(std::cout);

        if (!args.jsonDir.empty()) {
            const std::string path =
                args.jsonDir + "/" + e->id + ".json";
            std::ofstream out(path);
            doc.writeJson(out);
            if (!out)
                std::cerr << argv[0] << ": failed writing " << path
                          << "\n";
        }
        if (!args.csvDir.empty()) {
            for (const auto &table : doc.tables) {
                const std::string path = args.csvDir + "/" + e->id +
                                         "." + table.name() + ".csv";
                std::ofstream out(path);
                report::ResultDoc::writeCsv(table, out);
                if (!out)
                    std::cerr << argv[0] << ": failed writing "
                              << path << "\n";
            }
        }
    }

    if (args.scorecard) {
        std::cout << "\n";
        const auto card = report::printScorecard(docs, std::cout);
        return card.allPassed() ? 0 : 1;
    }
    return 0;
}
