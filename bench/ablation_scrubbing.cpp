/**
 * @file
 * Ablation: FPGA configuration-memory scrubbing.
 *
 * The paper reprograms the FPGA after every observed error and notes
 * that real deployments use scrubbing to stop persistent faults from
 * accumulating (Section 4, [42]). This bench sweeps the scrub
 * interval: as it grows, upsets pile up between scrubs and the
 * effective error rate saturates towards one error per interval,
 * erasing the reliability advantage of reduced precision (a smaller
 * circuit buys less once any fault in it persists long enough).
 */

#include "bench_util.hh"

#include "arch/fpga/fpga.hh"
#include "metrics/metrics.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Ablation: FPGA scrubbing interval sweep",
                  "error rate ~ raw*avf at short intervals, "
                  "saturates at 1/interval; precision advantage "
                  "shrinks with the interval");

    // Per-precision raw upset rate and measured config AVF for MxM.
    struct Row
    {
        fp::Precision p;
        double rawRate;
        double avf;
    };
    std::vector<Row> rows;
    for (auto p : fp::allPrecisions) {
        auto w = workloads::makeWorkload("mxm", p, args.scale);
        fpga::FpgaOptions opt;
        opt.configTrials = args.trials;
        opt.bramTrials = args.trials / 2;
        const auto eval = fpga::evaluateFpga(*w, opt);
        // Scrubbing only concerns the persistent mechanism: the
        // configuration-memory entry's raw upset rate and AVF.
        const double config_rate =
            eval.circuit.configBits *
            beam::bitSensitivity(beam::Node::Fpga28nm,
                                 beam::BitClass::SramConfig);
        rows.push_back({p, config_rate,
                        eval.configCampaign.avfSdc()});
    }

    Table table({"scrub-interval(a.u.)", "double", "single", "half",
                 "double/half advantage"});
    for (const double interval :
         {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4}) {
        std::array<double, 3> rate{};
        for (std::size_t i = 0; i < rows.size(); ++i) {
            rate[i] = metrics::scrubbedErrorRate(
                rows[i].rawRate, rows[i].avf, interval);
        }
        table.row()
            .cell(interval, 10)
            .cell(rate[0], 0)
            .cell(rate[1], 0)
            .cell(rate[2], 0)
            .cell(rate[0] / rate[2], 2);
    }
    table.print(std::cout);
    std::cout << "(advantage column: how much more often the double "
                 "design fails than the half design;\n it decays "
                 "towards 1.0 as the scrub interval grows)\n";

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
