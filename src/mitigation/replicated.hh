/**
 * @file
 * Modular-redundancy wrappers: DWC and TMR.
 *
 * The paper's discussion (Section 7) motivates mitigation for the
 * precisions whose faults are most critical; this module implements
 * the two classic spatial-redundancy schemes the group studies in
 * companion work:
 *
 *  - DWC (duplication with comparison): two replicas, mismatch =>
 *    detected error (recoverable by re-execution; counted by the
 *    campaigns as Detected, not SDC).
 *  - TMR (triple modular redundancy): three replicas, element-wise
 *    majority vote repairs single-replica corruption; a three-way
 *    disagreement falls back to replica 0 and raises detection.
 *
 * A ReplicatedWorkload is itself a Workload, so every existing
 * campaign runs on it unchanged: an injected fault lands in exactly
 * one replica's buffers or one replica's dynamic operations, exactly
 * like a transient fault in one of N hardware copies.
 */

#ifndef MPARCH_MITIGATION_REPLICATED_HH
#define MPARCH_MITIGATION_REPLICATED_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace mparch::mitigation {

/** Redundancy scheme. */
enum class Redundancy
{
    Dwc,  ///< two replicas, detect on mismatch
    Tmr,  ///< three replicas, majority vote
};

/** Name of a Redundancy ("dwc" / "tmr"). */
constexpr const char *
redundancyName(Redundancy r)
{
    return r == Redundancy::Dwc ? "dwc" : "tmr";
}

/**
 * N-modular-redundant wrapper around identical workload replicas.
 */
class ReplicatedWorkload : public workloads::Workload
{
  public:
    /**
     * @param scheme   DWC (2 replicas) or TMR (3).
     * @param replicas Independently allocated instances of the same
     *                 benchmark (same name, precision, scale).
     */
    ReplicatedWorkload(Redundancy scheme,
                       std::vector<workloads::WorkloadPtr> replicas);

    std::string name() const override;
    std::unique_ptr<workloads::Workload> clone() const override;
    fp::Precision precision() const override;
    void reset(std::uint64_t input_seed) override;
    void execute(workloads::ExecutionEnv &env) override;
    std::vector<workloads::BufferView> buffers() override;
    workloads::BufferView output() override;
    workloads::KernelDesc desc() const override;
    bool detectedError() const override { return detected_; }

    /** Votes that repaired a corrupted element (TMR only). */
    std::uint64_t corrections() const { return corrections_; }

  private:
    Redundancy scheme_;
    std::vector<workloads::WorkloadPtr> replicas_;
    std::vector<std::uint64_t> voted_;
    bool detected_ = false;
    std::uint64_t corrections_ = 0;
};

/**
 * Convenience factory: wrap @p name at @p p with the given scheme.
 * Only numeric kernels are supported (CNN severity classification
 * does not compose with voting).
 */
workloads::WorkloadPtr makeReplicated(Redundancy scheme,
                                      const std::string &name,
                                      fp::Precision p,
                                      double scale = 1.0);

} // namespace mparch::mitigation

#endif // MPARCH_MITIGATION_REPLICATED_HH
