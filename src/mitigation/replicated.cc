#include "mitigation/replicated.hh"

#include "workloads/workload.hh"

namespace mparch::mitigation {

using workloads::BufferView;
using workloads::ExecutionEnv;
using workloads::KernelDesc;
using workloads::Workload;
using workloads::WorkloadPtr;

ReplicatedWorkload::ReplicatedWorkload(Redundancy scheme,
                                       std::vector<WorkloadPtr>
                                           replicas)
    : scheme_(scheme), replicas_(std::move(replicas))
{
    const std::size_t want = scheme == Redundancy::Dwc ? 2 : 3;
    MPARCH_ASSERT(replicas_.size() == want,
                  "replica count must match the redundancy scheme");
    for (const auto &r : replicas_) {
        MPARCH_ASSERT(r->name() == replicas_[0]->name() &&
                          r->precision() == replicas_[0]->precision(),
                      "replicas must be identical benchmarks");
    }
}

std::string
ReplicatedWorkload::name() const
{
    return replicas_[0]->name() + "-" + redundancyName(scheme_);
}

std::unique_ptr<Workload>
ReplicatedWorkload::clone() const
{
    std::vector<WorkloadPtr> copies;
    copies.reserve(replicas_.size());
    for (const auto &r : replicas_)
        copies.push_back(r->clone());
    auto copy = std::make_unique<ReplicatedWorkload>(scheme_,
                                                     std::move(copies));
    copy->voted_ = voted_;
    copy->detected_ = detected_;
    copy->corrections_ = corrections_;
    return copy;
}

fp::Precision
ReplicatedWorkload::precision() const
{
    return replicas_[0]->precision();
}

void
ReplicatedWorkload::reset(std::uint64_t input_seed)
{
    for (auto &r : replicas_)
        r->reset(input_seed);
    voted_.clear();
    detected_ = false;
    corrections_ = 0;
}

void
ReplicatedWorkload::execute(ExecutionEnv &env)
{
    for (auto &r : replicas_) {
        r->execute(env);
        if (env.aborted())
            return;
    }

    // Vote / compare on exact bit patterns, as a hardware voter on
    // the output bus would.
    const BufferView out0 = replicas_[0]->output();
    const BufferView out1 = replicas_[1]->output();
    voted_.resize(out0.count);
    if (scheme_ == Redundancy::Dwc) {
        for (std::size_t i = 0; i < out0.count; ++i) {
            const std::uint64_t a = out0.get(i);
            if (a != out1.get(i))
                detected_ = true;
            voted_[i] = a;
        }
        return;
    }
    const BufferView out2 = replicas_[2]->output();
    for (std::size_t i = 0; i < out0.count; ++i) {
        const std::uint64_t a = out0.get(i);
        const std::uint64_t b = out1.get(i);
        const std::uint64_t c = out2.get(i);
        if (a == b || a == c) {
            voted_[i] = a;
            if (b != a || c != a)
                ++corrections_;
        } else if (b == c) {
            voted_[i] = b;
            ++corrections_;
        } else {
            // Three-way disagreement: unrecoverable, flag it.
            voted_[i] = a;
            detected_ = true;
        }
    }
}

std::vector<BufferView>
ReplicatedWorkload::buffers()
{
    std::vector<BufferView> all;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        for (auto &view : replicas_[r]->buffers()) {
            view.name = "r" + std::to_string(r) + "/" + view.name;
            all.push_back(std::move(view));
        }
    }
    return all;
}

BufferView
ReplicatedWorkload::output()
{
    BufferView view;
    view.name = "voted";
    view.precision = replicas_[0]->output().precision;
    view.count = voted_.size();
    view.get = [this](std::size_t i) { return voted_[i]; };
    view.set = [this](std::size_t i, std::uint64_t bits) {
        voted_[i] = bits;
    };
    return view;
}

KernelDesc
ReplicatedWorkload::desc() const
{
    return replicas_[0]->desc();
}

WorkloadPtr
makeReplicated(Redundancy scheme, const std::string &name,
               fp::Precision p, double scale)
{
    std::vector<WorkloadPtr> replicas;
    const std::size_t count = scheme == Redundancy::Dwc ? 2 : 3;
    for (std::size_t i = 0; i < count; ++i)
        replicas.push_back(workloads::makeWorkload(name, p, scale));
    return std::make_unique<ReplicatedWorkload>(scheme,
                                                std::move(replicas));
}

} // namespace mparch::mitigation
