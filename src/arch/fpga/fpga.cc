#include "arch/fpga/fpga.hh"

#include <algorithm>
#include <cmath>

#include "arch/fpga/params.hh"
#include "metrics/metrics.hh"

namespace mparch::fpga {

using fp::OpKind;
using workloads::Workload;

CircuitReport
synthesize(Workload &w, const fault::GoldenRun &golden)
{
    CircuitReport circuit;
    const fp::Format f = fp::formatOf(w.precision());

    // Engines declared by the workload (per-kind by default; CNNs
    // separate per-layer engines). Dynamic ops per engine determine
    // its share of the PE budget.
    const auto engine_list = w.engines(golden.ops);
    MPARCH_ASSERT(!engine_list.empty(), "workload has no engines");
    std::vector<double> engine_ops;
    double dominant = 0.0;
    for (const auto &engine : engine_list) {
        const double ops =
            static_cast<double>(golden.ops.count(engine.kind)) *
            engine.share();
        engine_ops.push_back(ops);
        dominant = std::max(dominant, ops);
    }
    MPARCH_ASSERT(dominant > 0, "workload executes no FP operations");

    OperatorCost logic;
    double cycles = kFixedCycles;
    for (std::size_t i = 0; i < engine_list.size(); ++i) {
        if (engine_ops[i] <= 0.0)
            continue;
        const auto units = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   static_cast<double>(kPeBudget) * engine_ops[i] /
                   dominant)));
        circuit.engines.push_back({engine_list[i], units});
        logic = logic + operatorCost(engine_list[i].kind, f) *
                            static_cast<double>(units);
        cycles += engine_ops[i] / static_cast<double>(units);
    }

    // On-chip buffers: double-buffered copies of every live array.
    double data_bits = 0.0;
    for (const auto &view : w.buffers())
        data_bits += static_cast<double>(view.bits());
    circuit.bramBits = 2.0 * data_bits;
    circuit.brams = std::ceil(circuit.bramBits / kBramBits);

    circuit.luts = logic.luts + kControlLuts;
    circuit.dsps = logic.dsps;
    circuit.configBits = circuit.luts * kConfigBitsPerLut +
                         circuit.dsps * kConfigBitsPerDsp +
                         circuit.bramBits * kConfigPerBramBit;
    circuit.cycles = cycles;
    return circuit;
}

FpgaEvaluation
evaluateFpga(Workload &w, const FpgaOptions &options)
{
    FpgaEvaluation eval;
    const fault::GoldenRun golden(w, /*input_seed=*/99);
    eval.circuit = synthesize(w, golden);

    // Persistent configuration-memory campaign: a config upset breaks
    // one physical operator for the rest of the execution (the run
    // policy reprograms the FPGA after each observed error, so faults
    // never accumulate — matching the paper's procedure).
    fault::CampaignConfig config_campaign;
    config_campaign.trials = options.configTrials;
    config_campaign.seed = options.seed;
    const auto config_run = fault::runCampaign(
        w, fault::CampaignKind::Persistent, config_campaign,
        options.supervisor, "config", fp::OpKind::NumKinds,
        eval.circuit.engines);
    eval.configCampaign = config_run.result;

    // BRAM content campaign: transient single-bit data flips.
    fault::CampaignConfig bram_campaign;
    bram_campaign.trials = options.bramTrials;
    bram_campaign.seed = options.seed + 1;
    const auto bram_run =
        fault::runCampaign(w, fault::CampaignKind::Memory,
                           bram_campaign, options.supervisor, "bram");
    eval.bramCampaign = bram_run.result;
    eval.coverage =
        std::min(config_run.coverage(), bram_run.coverage());
    eval.poisoned = config_run.poisoned + bram_run.poisoned;

    // Exposure inventory. Only config bits over *logic actually
    // toggling* matter for the persistent mechanism; BRAM content is
    // plain SRAM data.
    eval.inventory.node = beam::Node::Fpga28nm;
    eval.inventory.entries = {
        {"config-memory", beam::BitClass::SramConfig,
         eval.circuit.configBits, eval.configCampaign.avfSdc(),
         eval.configCampaign.avfDue()},
        {"bram-content", beam::BitClass::SramData,
         eval.circuit.bramBits, eval.bramCampaign.avfSdc(),
         eval.bramCampaign.avfDue()},
    };
    eval.fitSdc = eval.inventory.fitSdc();
    eval.fitDue = eval.inventory.fitDue();
    eval.timeSeconds =
        eval.circuit.cycles / clockHz(w.precision());
    eval.mebf = metrics::mebf(eval.fitSdc, eval.timeSeconds);
    return eval;
}

} // namespace mparch::fpga
