file(REMOVE_RECURSE
  "CMakeFiles/ablation_vpu_sim.dir/ablation_vpu_sim.cpp.o"
  "CMakeFiles/ablation_vpu_sim.dir/ablation_vpu_sim.cpp.o.d"
  "ablation_vpu_sim"
  "ablation_vpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
