file(REMOVE_RECURSE
  "CMakeFiles/fig8_phi_tre.dir/fig8_phi_tre.cpp.o"
  "CMakeFiles/fig8_phi_tre.dir/fig8_phi_tre.cpp.o.d"
  "fig8_phi_tre"
  "fig8_phi_tre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_phi_tre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
