/**
 * @file
 * Division and square root via exact integer algorithms.
 */

#include "fp/softfloat.hh"

#include "fp/internal.hh"

namespace mparch::fp {

using detail::U128;
using detail::Unpacked;
using detail::normalize;
using detail::unpackFinite;

std::uint64_t
fpDiv(Format f, std::uint64_t a, std::uint64_t b)
{
    const OpKind op = OpKind::Div;
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();
    b = detail::touch(ctx, op, Stage::OperandB, f.totalBits, b) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const bool sign = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::NaN || cb == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return cb == FpClass::Inf ? quietNaN(f) : infinity(f, sign);
    if (cb == FpClass::Inf)
        return zero(f, sign);
    if (cb == FpClass::Zero)
        return ca == FpClass::Zero ? quietNaN(f) : infinity(f, sign);
    if (ca == FpClass::Zero)
        return zero(f, sign);

    const Unpacked ua = normalize(f, unpackFinite(f, a));
    const Unpacked ub = normalize(f, unpackFinite(f, b));

    // Quotient of two (manBits+1)-bit significands, with manBits+4
    // extra fraction bits so roundPack has guard/round plus margin.
    const int extra = static_cast<int>(f.manBits) + 4;
    const U128 num = static_cast<U128>(ua.sig) << extra;
    const std::uint64_t q = static_cast<std::uint64_t>(num / ub.sig);
    const bool rem = static_cast<std::uint64_t>(num % ub.sig) != 0;

    const int exp = ua.exp - ub.exp - extra;
    return roundPack(f, {sign, exp, q | (rem ? 1 : 0)}, ctx, op);
}

namespace {

/** Integer square root of a 128-bit value (restoring, bitwise). */
U128
isqrt128(U128 value)
{
    U128 result = 0;
    U128 bit = U128{1} << 126;
    while (bit > value)
        bit >>= 2;
    while (bit != 0) {
        if (value >= result + bit) {
            value -= result + bit;
            result = (result >> 1) + bit;
        } else {
            result >>= 1;
        }
        bit >>= 2;
    }
    return result;
}

} // namespace

std::uint64_t
fpSqrt(Format f, std::uint64_t a)
{
    const OpKind op = OpKind::Sqrt;
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Zero)
        return a;  // sqrt(+/-0) = +/-0
    if (signOf(f, a))
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return a;

    Unpacked ua = normalize(f, unpackFinite(f, a));

    // value = sig * 2^exp; make exp even so sqrt(2^exp) is exact,
    // and widen sig so the integer root keeps at least manBits+4
    // fraction bits: root(sig << pre) has ~(manBits+1+pre)/2 bits,
    // so pre = manBits+10 gives manBits+5 and stays within 128 bits
    // even for binary64 (53 + 63 = 116).
    int pre = static_cast<int>(f.manBits) + 10;
    if ((ua.exp - pre) & 1)
        ++pre;
    const U128 wide = static_cast<U128>(ua.sig) << pre;
    const U128 root = isqrt128(wide);
    const bool inexact = root * root != wide;
    const int exp = (ua.exp - pre) / 2;

    return roundPack(f,
                     {false, exp,
                      static_cast<std::uint64_t>(root) |
                          (inexact ? 1 : 0)},
                     ctx, op);
}

} // namespace mparch::fp
