/**
 * @file
 * Ablation: KNC core pipeline simulation vs the Phi analytic model.
 *
 * Grounds three things the Phi model otherwise assumes: (a) the
 * vectoriser's software-pipelining depth (the register-costly unroll
 * the compiler model predicts) is what keeps the in-order VPU fed —
 * visible as the issue-utilisation gap between depth 1 and depth 2
 * at low thread counts; (b) KNC's no-back-to-back-issue rule caps a
 * single thread at half rate (why real KNC codes run >= 2 threads
 * per core); (c) control-state upsets split into hangs and silent
 * corruptions at a measurable, per-bit rate, with single precision's
 * wider lane mask giving control faults more data-corrupting
 * landing spots.
 */

#include "bench_util.hh"

#include "arch/phi/params.hh"
#include "arch/phi/vpu_sim.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 2500, 1.0);
    bench::banner("Ablation: KNC VPU pipeline simulation",
                  "unroll-2 feeds the pipe where unroll-1 stalls; "
                  "lane-mask width shifts control faults into SDCs");

    phi::VpuProgram prog;
    prog.instructions = 256;

    Table timing({"threads", "unroll", "cycles", "issue-util"});
    for (int threads : {1, 2, 4}) {
        for (int unroll : {1, 2, 4}) {
            phi::VpuConfig config;
            config.threads = threads;
            prog.unroll = unroll;
            const auto s = phi::simulateVpu(config, prog);
            timing.row()
                .cell(static_cast<std::int64_t>(threads))
                .cell(static_cast<std::int64_t>(unroll))
                .cell(static_cast<std::int64_t>(s.cycles))
                .cell(s.issueUtilization, 3);
        }
    }
    timing.setTitle("fault-free schedule (double precision)");
    timing.print(std::cout);

    Table control({"precision", "lane-mask-bits", "masked", "sdc",
                   "due", "avf-sdc", "avf-due"});
    prog.unroll = 2;
    for (auto p : {fp::Precision::Double, fp::Precision::Single}) {
        phi::VpuConfig config;
        config.precision = p;
        const auto r =
            phi::measureVpuControlAvf(config, prog, args.trials, 9);
        control.row()
            .cell(std::string(fp::precisionName(p)))
            .cell(static_cast<std::int64_t>(phi::lanes(p)))
            .cell(static_cast<std::int64_t>(r.masked))
            .cell(static_cast<std::int64_t>(r.sdc))
            .cell(static_cast<std::int64_t>(r.due))
            .cell(r.avfSdc(), 3)
            .cell(r.avfDue(), 3);
    }
    control.setTitle("control-state injection");
    control.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
