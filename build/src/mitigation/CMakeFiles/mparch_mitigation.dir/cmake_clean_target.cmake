file(REMOVE_RECURSE
  "libmparch_mitigation.a"
)
