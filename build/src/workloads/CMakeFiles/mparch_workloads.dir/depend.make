# Empty dependencies file for mparch_workloads.
# This may be replaced when dependencies are built.
