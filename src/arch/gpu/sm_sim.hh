/**
 * @file
 * Cycle-level model of one Volta SM scheduler partition.
 *
 * The analytic GPU model (gpu.cc) reasons about occupancy and control
 * exposure with closed-form factors; this simulator grounds those
 * factors: a round-robin warp scheduler with a scoreboard issues the
 * micro kernels' dependent chains at the real per-precision latencies
 * (8 / 4 / 6-per-pair cycles), yielding cycle counts, issue
 * utilisation and in-flight occupancy. Its architectural control
 * state (per-warp program counters, scoreboard timers, active mask)
 * is also a fault-injection target: flipping a random control bit at
 * a random cycle and re-simulating measures how often scheduler
 * corruption ends as a hang (DUE), a truncated/extended execution
 * (SDC at the program level) or nothing — the control-AVF the
 * inventory otherwise had to assume.
 */

#ifndef MPARCH_ARCH_GPU_SM_SIM_HH
#define MPARCH_ARCH_GPU_SM_SIM_HH

#include <cstdint>

#include "common/stats.hh"
#include "fp/format.hh"

namespace mparch::gpu {

/** A homogeneous warp instruction stream. */
struct WarpProgram
{
    /** Instructions each warp executes. */
    std::uint64_t instructions = 256;

    /** RAW-dependent chain (micro kernels) vs independent stream. */
    bool dependentChain = true;

    /** Maximum in-flight instructions per warp when independent. */
    int maxInFlight = 4;
};

/** Scheduler-partition configuration. */
struct SmConfig
{
    fp::Precision precision = fp::Precision::Single;

    /** Resident warps on the partition (256 threads / 32 = 8 for
     *  the paper's deliberately low-occupancy micro setup). */
    int warps = 8;

    /** Instructions issued per cycle by the scheduler. */
    int issueSlots = 1;
};

/** Results of a fault-free simulation. */
struct SmStats
{
    std::uint64_t cycles = 0;

    /** Fraction of cycles on which an instruction issued. */
    double issueUtilization = 0.0;

    /** Mean operations resident in execution pipelines per cycle. */
    double avgInFlight = 0.0;

    /** Architectural control bits the scheduler carries. */
    double controlBits = 0.0;
};

/** Run the scheduler fault-free. */
SmStats simulateSm(const SmConfig &config, const WarpProgram &program);

/** Outcome tally of a control-state injection campaign. */
struct ControlAvf
{
    std::uint64_t trials = 0;
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;   ///< wrong instruction count completed
    std::uint64_t due = 0;   ///< hang (watchdog) or lost warp

    /** P(control-bit flip -> DUE). */
    double
    avfDue() const
    {
        return trials ? static_cast<double>(due) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /** P(control-bit flip -> program-level SDC). */
    double
    avfSdc() const
    {
        return trials ? static_cast<double>(sdc) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /** Wilson 95% interval on avfDue(). */
    Interval due95() const { return wilson95(due, trials); }
};

/**
 * Inject single bit flips into the scheduler's architectural state
 * (remaining-instruction counters, scoreboard timers, active-warp
 * mask) at uniformly random cycles, re-simulating each time.
 *
 * @param watchdog_factor Hang threshold as a multiple of the
 *                        fault-free cycle count.
 */
ControlAvf measureControlAvf(const SmConfig &config,
                             const WarpProgram &program,
                             std::uint64_t trials, std::uint64_t seed,
                             double watchdog_factor = 4.0);

} // namespace mparch::gpu

#endif // MPARCH_ARCH_GPU_SM_SIM_HH
