/**
 * @file
 * Format conversions and host-double interchange.
 */

#include "fp/softfloat.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "fp/internal.hh"

namespace mparch::fp {

using detail::Unpacked;
using detail::unpackFinite;

namespace {

/** Conversion body shared by the instrumented and silent variants. */
std::uint64_t
convertCore(Format dst, Format src, std::uint64_t a, const OpCtx &ctx,
            bool instrumented)
{
    if (instrumented) {
        a = detail::touch(ctx, OpKind::Convert, Stage::OperandA,
                          src.totalBits, a) & src.valueMask();
    }
    const FpClass ca = classify(src, a);
    const bool sign = signOf(src, a);
    if (ca == FpClass::NaN)
        return quietNaN(dst);
    if (ca == FpClass::Inf)
        return infinity(dst, sign);
    if (ca == FpClass::Zero)
        return zero(dst, sign);

    const Unpacked ua = unpackFinite(src, a);
    // Keep three guard bits so narrowing rounds correctly; widening
    // is exact and the guards stay zero.
    return roundPack(dst, {ua.sign, ua.exp - 3, ua.sig << 3},
                     instrumented ? ctx : OpCtx{}, OpKind::Convert);
}

} // namespace

std::uint64_t
fpConvert(Format dst, Format src, std::uint64_t a)
{
    const OpCtx ctx = detail::enterOp(OpKind::Convert);
    return convertCore(dst, src, a, ctx, true);
}

std::uint64_t
fpConvertSilent(Format dst, Format src, std::uint64_t a)
{
    return convertCore(dst, src, a, OpCtx{}, false);
}

std::uint64_t
fpFromInt(Format f, std::int64_t v)
{
    const OpCtx ctx = detail::enterOp(OpKind::Convert);
    if (v == 0)
        return zero(f, false);
    const bool sign = v < 0;
    // Two's-complement safe magnitude (INT64_MIN included).
    const std::uint64_t mag =
        sign ? ~static_cast<std::uint64_t>(v) + 1
             : static_cast<std::uint64_t>(v);
    // Reserve three guard bits; a magnitude using the top bits needs
    // a pre-shift instead, folding lost bits into sticky.
    std::uint64_t sig;
    int exp;
    if (mag >> 61) {
        sig = shiftRightSticky(mag, 3);
        exp = 3;
    } else {
        sig = mag << 3;
        exp = -3;
    }
    return roundPack(f, {sign, exp, sig}, ctx, OpKind::Convert);
}

std::int64_t
fpToInt(Format f, std::uint64_t a)
{
    (void)detail::noteOp(OpKind::Convert);
    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return 0;
    if (ca == FpClass::Zero)
        return 0;
    const bool sign = signOf(f, a);
    if (ca == FpClass::Inf) {
        return sign ? std::numeric_limits<std::int64_t>::min()
                    : std::numeric_limits<std::int64_t>::max();
    }
    const Unpacked u = unpackFinite(f, a);
    // value = u.sig * 2^u.exp; round to integer (RNE).
    if (u.exp >= 0) {
        if (u.exp >= 63 ||
            (highestSetBit(u.sig) + u.exp) >= 63) {
            return sign
                       ? std::numeric_limits<std::int64_t>::min()
                       : std::numeric_limits<std::int64_t>::max();
        }
        const std::uint64_t mag = u.sig << u.exp;
        return sign ? -static_cast<std::int64_t>(mag)
                    : static_cast<std::int64_t>(mag);
    }
    const int shift = -u.exp;
    std::uint64_t kept =
        shift >= 64 ? 0 : u.sig >> shift;
    // Round-to-nearest-even on the dropped fraction.
    const std::uint64_t half_bit =
        shift >= 1 && shift <= 64
            ? (shift == 64 ? 0 : (u.sig >> (shift - 1)) & 1)
            : 0;
    bool sticky = false;
    if (shift >= 2) {
        const unsigned low = std::min(shift - 1, 63);
        sticky = (u.sig & maskBits(low)) != 0;
    }
    if (shift >= 65)
        sticky = u.sig != 0;
    if (half_bit && (sticky || (kept & 1)))
        ++kept;
    return sign ? -static_cast<std::int64_t>(kept)
                : static_cast<std::int64_t>(kept);
}

std::uint64_t
fpFromDouble(Format f, double v)
{
    const auto bits = std::bit_cast<std::uint64_t>(v);
    if (f == kDouble)
        return bits;
    return fpConvertSilent(f, kDouble, bits);
}

double
fpToDouble(Format f, std::uint64_t a)
{
    if (f == kDouble)
        return std::bit_cast<double>(a);
    // Widening to binary64 is exact for binary16/32.
    return std::bit_cast<double>(fpConvertSilent(kDouble, f, a));
}

std::string
fpDescribe(Format f, std::uint64_t bits)
{
    const FpClass cls = classify(f, bits);
    const char sign = signOf(f, bits) ? '-' : '+';
    switch (cls) {
      case FpClass::NaN:
        return "nan";
      case FpClass::Inf:
        return std::string(1, sign) + "inf";
      case FpClass::Zero:
        return std::string(1, sign) + "0 (zero)";
      default:
        break;
    }
    const bool subnormal = cls == FpClass::Subnormal;
    const std::uint64_t man = mantissaOf(f, bits);
    const int exp =
        subnormal ? f.minExp() : biasedExpOf(f, bits) - f.bias();
    std::string out(1, sign);
    out += subnormal ? "0." : "1.";
    for (int b = static_cast<int>(f.manBits) - 1; b >= 0; --b)
        out += testBit(man, static_cast<unsigned>(b)) ? '1' : '0';
    // Trim trailing zeros but keep at least one fraction digit.
    while (out.back() == '0' && out[out.size() - 2] != '.')
        out.pop_back();
    out += "p";
    out += exp >= 0 ? "+" : "";
    out += std::to_string(exp);
    out += subnormal ? " (subnormal)" : " (normal)";
    return out;
}

} // namespace mparch::fp
