# Empty compiler generated dependencies file for mparch_phi.
# This may be replaced when dependencies are built.
