# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/fp_arith_test[1]_include.cmake")
include("/root/repo/build/tests/fp_hooks_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/beam_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fp_extended_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mitigation_test[1]_include.cmake")
include("/root/repo/build/tests/sm_sim_test[1]_include.cmake")
include("/root/repo/build/tests/vpu_sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_properties_test[1]_include.cmake")
include("/root/repo/build/tests/fp_random_formats_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
