/**
 * @file
 * Reproduces Figure 4: FIT rate reduction of MxM on the FPGA as the
 * Tolerated Relative Error grows.
 *
 * Shape targets: double's FIT collapses fastest (paper: 63% of its
 * errors already tolerable at TRE = 0.1%), single reduces less, and
 * half stays nearly flat — because a flip in a narrower format is
 * more likely to strike a significant bit.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 0.3);
    bench::banner(
        "Figure 4: FPGA MxM FIT reduction vs TRE",
        "double drops fastest (~37% of FIT left at 0.1% TRE), single "
        "less, half nearly flat");

    const auto result =
        bench::study(core::Architecture::Fpga, "mxm", args);

    Table table({"tre", "double", "single", "half"});
    table.setTitle("fraction of TRE=0 FIT remaining");
    const auto *d = result.find(fp::Precision::Double);
    const auto *s = result.find(fp::Precision::Single);
    const auto *h = result.find(fp::Precision::Half);
    for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
        table.row()
            .cell(d->tre.thresholds[i], 4)
            .cell(d->tre.remaining[i], 3)
            .cell(s->tre.remaining[i], 3)
            .cell(h->tre.remaining[i], 3);
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
