
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fp/arith.cc" "src/fp/CMakeFiles/mparch_fp.dir/arith.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/arith.cc.o.d"
  "/root/repo/src/fp/convert.cc" "src/fp/CMakeFiles/mparch_fp.dir/convert.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/convert.cc.o.d"
  "/root/repo/src/fp/div_sqrt.cc" "src/fp/CMakeFiles/mparch_fp.dir/div_sqrt.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/div_sqrt.cc.o.d"
  "/root/repo/src/fp/fma.cc" "src/fp/CMakeFiles/mparch_fp.dir/fma.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/fma.cc.o.d"
  "/root/repo/src/fp/hooks.cc" "src/fp/CMakeFiles/mparch_fp.dir/hooks.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/hooks.cc.o.d"
  "/root/repo/src/fp/transcendental.cc" "src/fp/CMakeFiles/mparch_fp.dir/transcendental.cc.o" "gcc" "src/fp/CMakeFiles/mparch_fp.dir/transcendental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mparch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
