/**
 * @file
 * Cycle-level model of one KNC core's vector pipe.
 *
 * Knights Corner cores are in-order and cannot issue from the same
 * hardware thread on consecutive cycles, which is why real KNC codes
 * need >= 2 resident threads per core and why the vectoriser's
 * software-pipelining depth (CompiledKernel::pipelineDepth) matters:
 * a depth-u unrolled loop exposes u independent vector FMAs per
 * thread to hide the 4-cycle VPU latency. This simulator grounds
 * both effects, and its architectural control state — per-thread
 * remaining-instruction counters, the round-robin pointer, and the
 * per-lane write masks whose width doubles from double (8 lanes) to
 * single (16) — doubles as a fault-injection target for measuring
 * the control AVF the Phi inventory otherwise assumes.
 */

#ifndef MPARCH_ARCH_PHI_VPU_SIM_HH
#define MPARCH_ARCH_PHI_VPU_SIM_HH

#include <cstdint>

#include "common/stats.hh"
#include "fp/format.hh"

namespace mparch::phi {

/** One thread's vector instruction stream. */
struct VpuProgram
{
    /** Vector instructions per thread. */
    std::uint64_t instructions = 256;

    /** Independent instructions per unrolled iteration (the
     *  compiler model's pipelineDepth). */
    int unroll = 1;
};

/** Core configuration. */
struct VpuConfig
{
    fp::Precision precision = fp::Precision::Double;

    /** Resident hardware threads (KNC has 4 contexts/core). */
    int threads = 4;

    /** VPU latency in cycles. */
    int latency = 4;
};

/** Fault-free simulation results. */
struct VpuStats
{
    std::uint64_t cycles = 0;
    double issueUtilization = 0.0;
    double controlBits = 0.0;  ///< counters + RR pointer + lane masks
};

/** Run the core fault-free. */
VpuStats simulateVpu(const VpuConfig &config,
                     const VpuProgram &program);

/** Control-state injection tally. */
struct VpuControlAvf
{
    std::uint64_t trials = 0;
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;   ///< lane-mask or count corruption
    std::uint64_t due = 0;   ///< hang

    double
    avfDue() const
    {
        return trials ? static_cast<double>(due) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    double
    avfSdc() const
    {
        return trials ? static_cast<double>(sdc) /
                            static_cast<double>(trials)
                      : 0.0;
    }
};

/**
 * Flip one random control bit (instruction counter, round-robin
 * pointer, or an active lane-mask bit) at a random cycle and
 * re-simulate. Lane-mask corruption silently drops or duplicates
 * lane results (SDC); counter corruption truncates or overruns the
 * program (SDC or watchdog DUE).
 */
VpuControlAvf measureVpuControlAvf(const VpuConfig &config,
                                   const VpuProgram &program,
                                   std::uint64_t trials,
                                   std::uint64_t seed,
                                   double watchdog_factor = 4.0);

} // namespace mparch::phi

#endif // MPARCH_ARCH_PHI_VPU_SIM_HH
