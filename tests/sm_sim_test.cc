/**
 * @file
 * Tests for the SM warp-scheduler simulator: cycle counts against
 * closed-form expectations, occupancy behaviour, and the
 * control-state injection campaign.
 */

#include <gtest/gtest.h>

#include "arch/gpu/params.hh"
#include "arch/gpu/sm_sim.hh"

namespace mparch::gpu {
namespace {

using fp::Precision;

SmConfig
config(Precision p, int warps = 8)
{
    SmConfig c;
    c.precision = p;
    c.warps = warps;
    return c;
}

TEST(SmSim, SingleWarpDependentChainIsLatencyBound)
{
    // One warp, RAW chain: cycles ~ instructions x latency.
    WarpProgram prog;
    prog.instructions = 100;
    for (auto p : fp::allPrecisions) {
        const SmStats s = simulateSm(config(p, 1), prog);
        const double latency =
            opLatencyCycles(p) * packFactor(p);
        EXPECT_NEAR(static_cast<double>(s.cycles),
                    100.0 * latency, latency + 2)
            << fp::precisionName(p);
    }
}

TEST(SmSim, EnoughWarpsHideLatency)
{
    // 8 dependent-chain warps at latency 8 keep the issue slot
    // saturated: ~1 instruction per cycle overall.
    WarpProgram prog;
    prog.instructions = 256;
    const SmStats s =
        simulateSm(config(Precision::Double, 8), prog);
    EXPECT_GT(s.issueUtilization, 0.95);
    EXPECT_NEAR(static_cast<double>(s.cycles), 8.0 * 256.0,
                8.0 * 256.0 * 0.05);
    // In-flight ops approach the warp count.
    EXPECT_GT(s.avgInFlight, 6.0);
}

TEST(SmSim, TooFewWarpsStallTheScheduler)
{
    WarpProgram prog;
    prog.instructions = 256;
    const SmStats few =
        simulateSm(config(Precision::Double, 2), prog);
    const SmStats many =
        simulateSm(config(Precision::Double, 8), prog);
    EXPECT_LT(few.issueUtilization, 0.3);
    EXPECT_GT(many.issueUtilization, few.issueUtilization);
}

TEST(SmSim, IndependentStreamsIssueEveryCycle)
{
    WarpProgram prog;
    prog.instructions = 256;
    prog.dependentChain = false;
    const SmStats s =
        simulateSm(config(Precision::Double, 1), prog);
    // One warp with 4 in-flight slots at latency 8 can cover half
    // the latency: utilisation well above the dependent case's 1/8.
    EXPECT_GT(s.issueUtilization, 0.4);
}

TEST(SmSim, HalfPairedLatencyMatchesTimingModel)
{
    // The closed-form micro timing model (gpuTimeSeconds) assumes
    // 8 : 4 : 6-per-pair latency ratios; the simulator must agree.
    WarpProgram prog;
    prog.instructions = 512;
    const auto cycles = [&](Precision p) {
        return static_cast<double>(
            simulateSm(config(p, 1), prog).cycles);
    };
    EXPECT_NEAR(cycles(Precision::Double) /
                    cycles(Precision::Single),
                2.0, 0.05);
    // Half: 512 instructions are 1024 packed ops; per *op* the chain
    // costs 3 cycles, per instruction 6.
    EXPECT_NEAR(cycles(Precision::Half) / cycles(Precision::Single),
                1.5, 0.05);
}

TEST(SmSim, ControlAvfAccountingAndDeterminism)
{
    WarpProgram prog;
    prog.instructions = 128;
    const auto r1 = measureControlAvf(
        config(Precision::Single), prog, 500, 11);
    const auto r2 = measureControlAvf(
        config(Precision::Single), prog, 500, 11);
    EXPECT_EQ(r1.trials, 500u);
    EXPECT_EQ(r1.masked + r1.sdc + r1.due, r1.trials);
    EXPECT_EQ(r1.due, r2.due);
    EXPECT_EQ(r1.sdc, r2.sdc);
}

TEST(SmSim, ControlFaultsProduceBothDueAndSdc)
{
    WarpProgram prog;
    prog.instructions = 128;
    const auto r = measureControlAvf(
        config(Precision::Single), prog, 1500, 13);
    // High counter bits -> runaway warps -> hangs; low bits -> a few
    // instructions more/fewer -> SDC; many flips land on dead state.
    EXPECT_GT(r.avfDue(), 0.05);
    EXPECT_GT(r.avfSdc(), 0.05);
    EXPECT_GT(r.masked, 0u);
    EXPECT_TRUE(r.due95().contains(r.avfDue()));
}

TEST(SmSim, DuePropensitySimilarAcrossPrecisions)
{
    // The paper: DUE rates vary little with the data type (control
    // state is precision-independent); the simulator must agree
    // within campaign noise.
    WarpProgram prog;
    prog.instructions = 128;
    const double d = measureControlAvf(
                         config(Precision::Double), prog, 1500, 17)
                         .avfDue();
    const double h = measureControlAvf(
                         config(Precision::Half), prog, 1500, 17)
                         .avfDue();
    EXPECT_NEAR(d / h, 1.0, 0.35);
}

} // namespace
} // namespace mparch::gpu
