// Fixture: trial machinery seeding an Rng ad hoc instead of deriving
// the per-trial stream from trialRng(seed, index). Lives under a
// fake src/fault/ path so the tree-scoped check applies.

#include "common/rng.hh"

namespace fixture {

double
runTrial(unsigned long long seed, unsigned long long index)
{
    mparch::Rng rng(seed + index);  // ad hoc: order-dependent streams
    return rng.uniform();
}

} // namespace fixture
