/**
 * @file
 * Regression-corpus file handling.
 *
 * The corpus under tests/data/fp_corpus/ is the fuzzer's long-term
 * memory: every counterexample ever found (plus hand-picked hard
 * cases) is stored as one text line and replayed at the start of
 * every verify_quick run, so a fixed bug can never regress silently.
 *
 * Grammar, one case per line, '#' starts a comment:
 *
 *   <op> <format> <hex operand>...          add half 0x3c00 0x3c01
 *   convert <src> <dst> <hex operand>       convert single half 0x3f801000
 */

#include "verify/verify.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mparch::verify {

namespace {

bool
parseHex(const std::string &token, fp::Format f, std::uint64_t &out,
         std::string *error)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 16);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
        if (error)
            *error = "bad hex operand '" + token + "'";
        return false;
    }
    if ((v & ~f.valueMask()) != 0) {
        if (error)
            *error = "operand '" + token + "' exceeds the " +
                     formatName(f) + " value mask";
        return false;
    }
    out = v;
    return true;
}

} // namespace

std::optional<Case>
parseCorpusLine(std::string_view line, std::string *error)
{
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos)
        line = line.substr(0, hash);

    std::istringstream in{std::string(line)};
    std::string op_name;
    if (!(in >> op_name))
        return std::nullopt;  // blank/comment line: no case, no error

    const std::optional<VOp> op = parseVOp(op_name);
    if (!op) {
        if (error)
            *error = "unknown op '" + op_name + "'";
        return std::nullopt;
    }

    Case c;
    c.op = *op;
    std::string fmt_name;
    if (!(in >> fmt_name)) {
        if (error)
            *error = "missing format";
        return std::nullopt;
    }
    const std::optional<fp::Format> fmt = parseFormat(fmt_name);
    if (!fmt) {
        if (error)
            *error = "unknown format '" + fmt_name + "'";
        return std::nullopt;
    }
    c.fmt = *fmt;

    if (c.op == VOp::Convert) {
        std::string dst_name;
        if (!(in >> dst_name)) {
            if (error)
                *error = "convert needs a destination format";
            return std::nullopt;
        }
        const std::optional<fp::Format> dst = parseFormat(dst_name);
        if (!dst) {
            if (error)
                *error = "unknown format '" + dst_name + "'";
            return std::nullopt;
        }
        c.dst = *dst;
    }

    const unsigned arity = vopArity(c.op);
    for (unsigned i = 0; i < arity; ++i) {
        std::string token;
        if (!(in >> token)) {
            if (error)
                *error = std::string(vopName(c.op)) + " needs " +
                         std::to_string(arity) + " operand(s)";
            return std::nullopt;
        }
        std::uint64_t v = 0;
        if (!parseHex(token, c.fmt, v, error))
            return std::nullopt;
        (i == 0 ? c.a : i == 1 ? c.b : c.c) = v;
    }

    std::string extra;
    if (in >> extra) {
        if (error)
            *error = "trailing token '" + extra + "'";
        return std::nullopt;
    }
    return c;
}

std::vector<Case>
loadCorpusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        fatal("cannot open corpus file: ", path);
    std::vector<Case> cases;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string error;
        const std::optional<Case> c = parseCorpusLine(line, &error);
        if (c)
            cases.push_back(*c);
        else if (!error.empty())
            fatal(path, ":", lineno, ": ", error);
    }
    return cases;
}

std::vector<Case>
loadCorpusDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir))
        fatal("corpus directory missing: ", dir);
    std::vector<fs::path> files;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".txt")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    std::vector<Case> cases;
    for (const fs::path &file : files) {
        std::vector<Case> chunk = loadCorpusFile(file.string());
        cases.insert(cases.end(), chunk.begin(), chunk.end());
    }
    return cases;
}

} // namespace mparch::verify
