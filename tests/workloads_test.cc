/**
 * @file
 * Tests for the benchmark implementations: determinism, op mixes,
 * numeric sanity across precisions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workloads/lavamd.hh"
#include "workloads/lud.hh"
#include "workloads/micro.hh"
#include <bit>

#include "workloads/mxm.hh"
#include "workloads/mxm_mixed.hh"
#include "workloads/workload.hh"

namespace mparch::workloads {
namespace {

using fp::OpKind;
using fp::Precision;

/** Run a workload fault-free and return its output bits. */
std::vector<std::uint64_t>
runOnce(Workload &w, std::uint64_t seed, fp::FpContext *ctx = nullptr)
{
    w.reset(seed);
    ExecutionEnv env;
    if (ctx) {
        fp::FpEnvGuard guard(*ctx);
        w.execute(env);
    } else {
        w.execute(env);
    }
    const BufferView out = w.output();
    std::vector<std::uint64_t> bits(out.count);
    for (std::size_t i = 0; i < out.count; ++i)
        bits[i] = out.get(i);
    return bits;
}

class AllWorkloads
    : public ::testing::TestWithParam<std::tuple<std::string, Precision>>
{};

TEST_P(AllWorkloads, DeterministicAcrossRuns)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    const auto first = runOnce(*w, 7);
    const auto second = runOnce(*w, 7);
    EXPECT_EQ(first, second);
}

TEST_P(AllWorkloads, SeedChangesOutput)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    EXPECT_NE(runOnce(*w, 7), runOnce(*w, 8));
}

TEST_P(AllWorkloads, OutputIsFinite)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    const auto bits = runOnce(*w, 7);
    const fp::Format f = fp::formatOf(prec);
    for (std::uint64_t b : bits)
        EXPECT_TRUE(fp::isFinite(f, b)) << name;
}

TEST_P(AllWorkloads, BuffersIncludeOutputAndAreMutable)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    w->reset(1);
    auto views = w->buffers();
    ASSERT_FALSE(views.empty());
    const std::string out_name = w->output().name;
    bool found = false;
    for (auto &view : views) {
        ASSERT_GT(view.count, 0u) << view.name;
        found = found || view.name == out_name;
        // get/set roundtrip and mutation.
        const std::uint64_t orig = view.get(0);
        view.set(0, orig ^ 1);
        EXPECT_EQ(view.get(0), orig ^ 1);
        view.set(0, orig);
    }
    EXPECT_TRUE(found) << "output buffer missing from buffers()";
}

TEST_P(AllWorkloads, TicksAreCounted)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    w->reset(3);
    ExecutionEnv env;
    w->execute(env);
    EXPECT_GT(env.ticks(), 0u);
}

TEST_P(AllWorkloads, WatchdogAbortsExecution)
{
    const auto &[name, prec] = GetParam();
    auto w = makeWorkload(name, prec, 0.2);
    w->reset(3);
    ExecutionEnv env;
    env.tickBudget = 1;
    w->execute(env);
    EXPECT_TRUE(env.aborted());
    EXPECT_LE(env.ticks(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllWorkloads,
    ::testing::Combine(
        ::testing::Values("mxm", "lavamd", "lud", "hotspot",
                          "micro-add", "micro-mul", "micro-fma"),
        ::testing::Values(Precision::Double, Precision::Single,
                          Precision::Half)),
    [](const auto &info) {
        std::string tag =
            std::get<0>(info.param) + "_" +
            std::string(fp::precisionName(std::get<1>(info.param)));
        for (auto &ch : tag)
            if (ch == '-')
                ch = '_';
        return tag;
    });

TEST(MxM, MatchesHostDoubleReference)
{
    MxMWorkload<Precision::Double> w(0.2);
    const auto bits = runOnce(w, 11);
    // Recompute one output element on the host.
    w.reset(11);
    auto views = w.buffers();
    const auto &a = views[0];
    const auto &b = views[1];
    const std::size_t n = w.dim();
    for (std::size_t probe : {std::size_t{0}, n * n / 2, n * n - 1}) {
        const std::size_t i = probe / n, j = probe % n;
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            acc = std::fma(
                fp::fpToDouble(fp::kDouble, a.get(i * n + k)),
                fp::fpToDouble(fp::kDouble, b.get(k * n + j)), acc);
        }
        EXPECT_DOUBLE_EQ(acc, fp::fpToDouble(fp::kDouble, bits[probe]));
    }
}

TEST(MxM, OpMixIsPureFma)
{
    MxMWorkload<Precision::Single> w(0.2);
    fp::FpContext ctx;
    runOnce(w, 1, &ctx);
    const std::size_t n = w.dim();
    EXPECT_EQ(ctx.count(OpKind::Fma), n * n * n);
    EXPECT_EQ(ctx.count(OpKind::Mul), 0u);
    EXPECT_EQ(ctx.count(OpKind::Add), 0u);
}

TEST(LavaMD, MulDominatesNonFmaMix)
{
    // The paper attributes LavaMD's GPU FIT trend to its MUL-heavy
    // instruction mix (Section 6.1).
    LavaMDWorkload<Precision::Single> w(0.5);
    fp::FpContext ctx;
    runOnce(w, 1, &ctx);
    const auto mul = ctx.count(OpKind::Mul);
    EXPECT_GT(mul, ctx.count(OpKind::Add));
    EXPECT_GT(mul, ctx.count(OpKind::Sub));
    EXPECT_GT(ctx.count(OpKind::Exp), 0u);
}

TEST(LavaMD, HigherPrecisionRunsLongerExpChains)
{
    LavaMDWorkload<Precision::Double> wd(0.3);
    LavaMDWorkload<Precision::Half> wh(0.3);
    fp::FpContext cd, ch;
    runOnce(wd, 1, &cd);
    runOnce(wh, 1, &ch);
    // Same exp() call count, but double's polynomial is longer, so
    // its total FMA count must exceed half's.
    EXPECT_EQ(cd.count(OpKind::Exp), ch.count(OpKind::Exp));
    EXPECT_GT(cd.count(OpKind::Fma), ch.count(OpKind::Fma));
}

TEST(Lud, FactorisationReconstructsMatrix)
{
    LudWorkload<Precision::Double> w(0.2);
    w.reset(5);
    // Capture the input matrix before factorisation.
    auto before = w.buffers()[0];
    const std::size_t n = w.dim();
    std::vector<double> a(n * n);
    for (std::size_t i = 0; i < n * n; ++i)
        a[i] = fp::fpToDouble(fp::kDouble, before.get(i));
    ExecutionEnv env;
    w.execute(env);
    auto after = w.output();
    // Check A ~= L*U on a few probes.
    for (std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
        for (std::size_t j : {std::size_t{1}, n / 2, n - 1}) {
            double sum = 0.0;
            const std::size_t kmax = std::min(i, j);
            for (std::size_t k = 0; k <= kmax; ++k) {
                const double l =
                    k == i ? 1.0
                           : fp::fpToDouble(fp::kDouble,
                                            after.get(i * n + k));
                const double u = fp::fpToDouble(fp::kDouble,
                                                after.get(k * n + j));
                sum += l * u;
            }
            EXPECT_NEAR(sum, a[i * n + j], 1e-9);
        }
    }
}

TEST(Lud, LowerPrecisionStillConditioned)
{
    // Diagonal dominance keeps half-precision LUD finite and roughly
    // correct relative to a double factorisation.
    LudWorkload<Precision::Half> wh(0.2);
    LudWorkload<Precision::Double> wd(0.2);
    const auto bh = runOnce(wh, 5);
    const auto bd = runOnce(wd, 5);
    ASSERT_EQ(bh.size(), bd.size());
    double max_rel = 0.0;
    for (std::size_t i = 0; i < bh.size(); ++i) {
        const double h = fp::fpToDouble(fp::kHalf, bh[i]);
        const double d = fp::fpToDouble(fp::kDouble, bd[i]);
        if (std::abs(d) > 0.5)
            max_rel = std::max(max_rel, std::abs((h - d) / d));
    }
    EXPECT_LT(max_rel, 0.05);
}

TEST(Micro, OpMixIsPure)
{
    for (auto [name, kind] :
         {std::pair{"micro-add", OpKind::Add},
          std::pair{"micro-mul", OpKind::Mul},
          std::pair{"micro-fma", OpKind::Fma}}) {
        auto w = makeWorkload(name, Precision::Half, 0.2);
        fp::FpContext ctx;
        runOnce(*w, 1, &ctx);
        EXPECT_EQ(ctx.totalOps(), ctx.count(kind)) << name;
        EXPECT_GT(ctx.count(kind), 0u) << name;
    }
}

TEST(Micro, ChainStaysInHalfRange)
{
    MicroWorkload<Precision::Half> w(MicroOp::Mul, 1.0);
    const auto bits = runOnce(w, 3);
    for (std::uint64_t b : bits) {
        const double v = fp::fpToDouble(fp::kHalf, b);
        EXPECT_GT(v, 1.0);
        EXPECT_LT(v, 64.0);
    }
}

TEST(Micro, PrecisionsAgreeApproximately)
{
    // Single tracks double closely; half drifts visibly because the
    // fixed-point recurrence amplifies per-step rounding by 1/(1-m)
    // (the "accuracy loss of reduced precision" the paper bounds at
    // a few percent for its workloads, and more for long chains).
    MicroWorkload<Precision::Double> wd(MicroOp::Fma, 0.5);
    MicroWorkload<Precision::Single> ws(MicroOp::Fma, 0.5);
    MicroWorkload<Precision::Half> wh(MicroOp::Fma, 0.5);
    const auto bd = runOnce(wd, 9);
    const auto bs = runOnce(ws, 9);
    const auto bh = runOnce(wh, 9);
    for (std::size_t i = 0; i < bd.size(); ++i) {
        const double d = fp::fpToDouble(fp::kDouble, bd[i]);
        const double s = fp::fpToDouble(fp::kSingle, bs[i]);
        const double h = fp::fpToDouble(fp::kHalf, bh[i]);
        EXPECT_NEAR(s / d, 1.0, 1e-2);
        EXPECT_NEAR(h / d, 1.0, 0.5);
    }
}

TEST(Hotspot, AddDominatedMixAndRelaxation)
{
    // The stencil's mix is ADD/SUB-dominated (the extension
    // prediction: its GPU FIT trend should follow Micro-ADD).
    auto w = makeWorkload("hotspot", Precision::Single, 0.5);
    fp::FpContext ctx;
    const auto bits = runOnce(*w, 3, &ctx);
    EXPECT_GT(ctx.count(OpKind::Add) + ctx.count(OpKind::Sub),
              2 * ctx.count(OpKind::Mul));
    EXPECT_EQ(ctx.count(OpKind::Fma), 0u);
    // Relaxation keeps temperatures near the ambient band.
    for (std::uint64_t b : bits) {
        const double v = fp::fpToDouble(fp::kSingle, b);
        EXPECT_GT(v, 0.3);
        EXPECT_LT(v, 1.2);
    }
}

TEST(Registry, UnknownNameDies)
{
    EXPECT_EXIT(
        { (void)makeWorkload("nope", Precision::Double); },
        ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Registry, ScaleShrinksProblem)
{
    MxMWorkload<Precision::Single> big(1.0), small(0.1);
    EXPECT_GT(big.dim(), small.dim());
}

} // namespace
} // namespace mparch::workloads

namespace mparch::workloads {
namespace {

TEST(MxMMixed, MatchesTensorCoreSemantics)
{
    // Same seed: the mixed GEMM's output equals computing with half
    // inputs widened to single and accumulated in single on the host.
    auto w = makeWorkload("mxm-mixed", fp::Precision::Single, 0.1);
    w->reset(11);
    auto views = w->buffers();
    const auto &a = views[0];
    const auto &b = views[1];
    const auto *mixed = dynamic_cast<MxMMixedWorkload *>(w.get());
    ASSERT_NE(mixed, nullptr);
    const std::size_t n = mixed->dim();
    std::vector<float> ha(n * n), hb(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        ha[i] = static_cast<float>(
            fp::fpToDouble(fp::kHalf, a.get(i)));
        hb[i] = static_cast<float>(
            fp::fpToDouble(fp::kHalf, b.get(i)));
    }
    ExecutionEnv env;
    w->execute(env);
    const auto out = w->output();
    EXPECT_EQ(out.precision, fp::Precision::Single);
    for (std::size_t probe : {std::size_t{0}, n * n / 2,
                              n * n - 1}) {
        const std::size_t i = probe / n, j = probe % n;
        float acc = 0.0f;
        for (std::size_t k = 0; k < n; ++k)
            acc = std::fmaf(ha[i * n + k], hb[k * n + j], acc);
        EXPECT_EQ(std::bit_cast<std::uint32_t>(acc),
                  static_cast<std::uint32_t>(out.get(probe)))
            << probe;
    }
}

TEST(MxMMixed, DeterministicAndCountsConversions)
{
    auto w = makeWorkload("mxm-mixed", fp::Precision::Single, 0.1);
    fp::FpContext ctx;
    w->reset(3);
    ExecutionEnv env;
    {
        fp::FpEnvGuard guard(ctx);
        w->execute(env);
    }
    const auto *mixed = dynamic_cast<MxMMixedWorkload *>(w.get());
    const std::size_t n = mixed->dim();
    // Two widening conversions and one FMA per inner-loop step.
    EXPECT_EQ(ctx.count(fp::OpKind::Fma), n * n * n);
    EXPECT_EQ(ctx.count(fp::OpKind::Convert), 2 * n * n * n);
}

} // namespace
} // namespace mparch::workloads
