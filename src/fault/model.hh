/**
 * @file
 * Fault models, after CAROL-FI (Oliveira et al., CF'17).
 *
 * CAROL-FI corrupts a live program variable at a random execution
 * instant using one of four models; the paper's PVF experiments use
 * the single-bit-flip model (Section 5.2).
 */

#ifndef MPARCH_FAULT_MODEL_HH
#define MPARCH_FAULT_MODEL_HH

#include <cstdint>

#include "common/bits.hh"
#include "common/rng.hh"

namespace mparch::fault {

/** How a fault perturbs a word. */
enum class FaultModel
{
    SingleBitFlip,  ///< flip one uniformly random bit
    DoubleBitFlip,  ///< flip two adjacent bits (MBU model)
    RandomByte,     ///< replace one byte with random bits
    RandomValue,    ///< replace the whole word with random bits
    WordBurst,      ///< one bit flipped in 4 adjacent words (MBU row)
};

/** Name of a FaultModel ("single-bit-flip", ...). */
constexpr const char *
faultModelName(FaultModel model)
{
    switch (model) {
      case FaultModel::SingleBitFlip: return "single-bit-flip";
      case FaultModel::DoubleBitFlip: return "double-bit-flip";
      case FaultModel::RandomByte:    return "random-byte";
      case FaultModel::RandomValue:   return "random-value";
      case FaultModel::WordBurst:     return "word-burst";
    }
    return "?";
}

/**
 * Apply a fault model to the low @p width bits of @p value.
 *
 * @param model Corruption pattern.
 * @param rng   Randomness source (position/payload draws).
 * @param width Number of meaningful bits in @p value (1..64).
 * @param value The fault-free word.
 * @return The corrupted word, still confined to @p width bits.
 */
inline std::uint64_t
applyFault(FaultModel model, Rng &rng, unsigned width,
           std::uint64_t value)
{
    MPARCH_ASSERT(width >= 1 && width <= 64, "bad fault width");
    switch (model) {
      case FaultModel::SingleBitFlip:
        return flipBit(value, static_cast<unsigned>(rng.below(width)));
      case FaultModel::DoubleBitFlip: {
        const auto pos = static_cast<unsigned>(
            rng.below(width > 1 ? width - 1 : 1));
        value = flipBit(value, pos);
        if (pos + 1 < width)
            value = flipBit(value, pos + 1);
        return value;
      }
      case FaultModel::RandomByte: {
        const unsigned bytes = (width + 7) / 8;
        const auto byte = static_cast<unsigned>(rng.below(bytes));
        const std::uint64_t payload = rng.below(256) << (8 * byte);
        const std::uint64_t mask = 0xffULL << (8 * byte);
        return ((value & ~mask) | payload) & maskBits(width);
      }
      case FaultModel::RandomValue:
        return rng.next() & maskBits(width);
      case FaultModel::WordBurst:
        // Per-word effect of a row burst: a single flip; the memory
        // campaign applies it to the adjacent words too.
        return flipBit(value,
                       static_cast<unsigned>(rng.below(width)));
    }
    return value;
}

} // namespace mparch::fault

#endif // MPARCH_FAULT_MODEL_HH
