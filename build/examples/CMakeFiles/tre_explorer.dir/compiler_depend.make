# Empty compiler generated dependencies file for tre_explorer.
# This may be replaced when dependencies are built.
