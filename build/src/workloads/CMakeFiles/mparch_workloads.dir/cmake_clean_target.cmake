file(REMOVE_RECURSE
  "libmparch_workloads.a"
)
