/**
 * @file
 * Drive the fault-injection layer directly, below the study API:
 * run CAROL-FI-style memory campaigns and functional-unit datapath
 * campaigns against one workload, print the Masked/SDC/DUE
 * accounting with confidence intervals, and show how the SDC corpus
 * feeds the TRE analysis.
 *
 *   $ ./injection_campaign [workload] [precision] [trials]
 *                          [--journal DIR] [--resume] [--batch N]
 *
 * With --journal each campaign appends its trials to a crash-safe
 * journal under DIR; --resume continues interrupted campaigns from
 * those journals (see docs/campaigns.md).
 *
 * This is the level to work at when adding a new fault model or a
 * new injection site class.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "metrics/metrics.hh"
#include "nn/nn_workloads.hh"

namespace {

using namespace mparch;

void
printCampaign(const char *title, const fault::CampaignResult &r)
{
    const Interval ci = r.avfSdc95();
    std::cout << title << ":\n"
              << "  trials " << r.trials << " | masked " << r.masked
              << " | sdc " << r.sdc << " | due " << r.due << "\n"
              << "  AVF(SDC) = " << r.avfSdc() << "  [" << ci.lo
              << ", " << ci.hi << "] (Wilson 95%)\n";
    std::cout << "  FIT remaining at TRE = {0, 0.1%, 1%, 10%}: ";
    for (double tre : {0.0, 1e-3, 1e-2, 1e-1})
        std::cout << r.survivingFraction(tre) << " ";
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;

    // Positional arguments first, then optional --flags.
    int positional = argc;
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--", 2)) {
            positional = i;
            break;
        }
    }
    const std::string workload = positional > 1 ? argv[1] : "mxm";
    fp::Precision precision = fp::Precision::Single;
    if (positional > 2) {
        if (!std::strcmp(argv[2], "double"))
            precision = fp::Precision::Double;
        else if (!std::strcmp(argv[2], "half"))
            precision = fp::Precision::Half;
    }
    fault::CampaignConfig config;
    config.trials = positional > 3
                        ? std::strtoull(argv[3], nullptr, 10)
                        : 500;

    fault::SupervisorConfig supervisor;
    supervisor.scale = 0.2;
    supervisor.handleSignals = true;
    for (int i = positional; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--journal") && i + 1 < argc)
            supervisor.journalDir = argv[++i];
        else if (!std::strcmp(argv[i], "--resume"))
            supervisor.resume = true;
        else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc)
            supervisor.batchSize =
                std::strtoull(argv[++i], nullptr, 10);
        else
            fatal("unknown flag '", argv[i], "'");
    }

    auto w = nn::makeAnyWorkload(workload, precision, 0.2);
    std::cout << "Workload " << w->name() << " at "
              << fp::precisionName(precision) << ", "
              << config.trials << " trials per campaign.\n\n";

    // A fault-free golden run also profiles the instruction mix.
    const fault::GoldenRun golden(*w, config.inputSeed);
    std::cout << "Golden run: " << golden.ops.totalOps()
              << " FP operations (";
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(fp::OpKind::NumKinds); ++k) {
        const auto kind = static_cast<fp::OpKind>(k);
        if (golden.ops.count(kind))
            std::cout << fp::opKindName(kind) << "="
                      << golden.ops.count(kind) << " ";
    }
    std::cout << "), " << golden.outputBits.size()
              << " output values.\n\n";

    // CAROL-FI protocol: corrupt a live variable at a random tick.
    printCampaign(
        "Memory campaign (CAROL-FI single bit flip)",
        fault::runCampaign(*w, fault::CampaignKind::Memory, config,
                           supervisor, "memory")
            .result);
    std::cout << "\n";

    // Beam-like: corrupt one datapath stage of one dynamic op.
    printCampaign(
        "Datapath campaign (functional-unit strike)",
        fault::runCampaign(*w, fault::CampaignKind::Datapath, config,
                           supervisor, "datapath")
            .result);
    std::cout << "\n";

    // Same, with the coarser CAROL-FI fault models.
    for (auto model :
         {fault::FaultModel::DoubleBitFlip,
          fault::FaultModel::RandomByte,
          fault::FaultModel::RandomValue}) {
        fault::CampaignConfig alt = config;
        alt.model = model;
        const std::string title =
            std::string("Memory campaign (") +
            fault::faultModelName(model) + ")";
        printCampaign(
            title.c_str(),
            fault::runCampaign(*w, fault::CampaignKind::Memory, alt,
                               supervisor,
                               std::string("memory-") +
                                   fault::faultModelName(model))
                .result);
        std::cout << "\n";
    }
    return 0;
}
