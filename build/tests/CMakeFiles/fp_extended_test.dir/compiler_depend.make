# Empty compiler generated dependencies file for fp_extended_test.
# This may be replaced when dependencies are built.
