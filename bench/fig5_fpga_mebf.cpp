/**
 * @file
 * Reproduces Figure 5: Mean Executions Between Failures on the FPGA.
 *
 * Shape targets: MEBF grows monotonically as precision shrinks;
 * paper quotes half-precision MxM completing ~33% more executions
 * between errors than single, and MNIST ~26% more.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 5: FPGA MEBF (a.u.)",
                  "MEBF rises as precision drops; half/single gain "
                  "~33% (MxM) and ~26% (MNIST)");

    Table table({"benchmark", "precision", "mebf(a.u.)",
                 "norm-to-double", "gain-vs-prev"});
    for (const std::string name : {"mxm", "mnist"}) {
        const auto result =
            bench::study(core::Architecture::Fpga, name, args);
        double base = 0.0, prev = 0.0;
        for (const auto &row : result.rows) {
            if (row.precision == fp::Precision::Double)
                base = row.mebf;
            std::string gain = "-";
            if (prev > 0.0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "+%.0f%%",
                              100.0 * (row.mebf / prev - 1.0));
                gain = buf;
            }
            prev = row.mebf;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.mebf, 5)
                .cell(row.mebf / base, 2)
                .cell(gain);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
