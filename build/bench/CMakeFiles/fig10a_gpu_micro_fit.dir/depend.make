# Empty dependencies file for fig10a_gpu_micro_fit.
# This may be replaced when dependencies are built.
