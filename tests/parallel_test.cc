/**
 * @file
 * Tests for the parallel campaign engine: the executor primitives
 * (thread pool, index chunker, ordered channel), clone isolation for
 * every registered workload, parallel-vs-serial bit-exactness for
 * all three campaign kinds, the golden-run cache, and
 * kill-and-resume under a multi-threaded run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/fpga/fpga.hh"
#include "common/parallel.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "mitigation/abft.hh"
#include "mitigation/replicated.hh"
#include "nn/nn_workloads.hh"
#include "workloads/workload.hh"

namespace mparch {
namespace {

using fault::CampaignConfig;
using fault::CampaignKind;
using fault::EngineAllocation;
using fault::GoldenRun;
using fault::runSupervisedCampaign;
using fault::SupervisedCampaign;
using fault::SupervisorConfig;
using fp::Precision;
using workloads::makeWorkload;
using workloads::Workload;

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::path(::testing::TempDir()) / name)
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Tally-level equality (corpus and anatomy compared element-wise). */
void
expectSameResult(const fault::CampaignResult &a,
                 const fault::CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.detected, b.detected);
    ASSERT_EQ(a.corpus.size(), b.corpus.size());
    for (std::size_t i = 0; i < a.corpus.size(); ++i) {
        EXPECT_EQ(a.corpus[i].maxRel, b.corpus[i].maxRel);
        EXPECT_EQ(a.corpus[i].corruptedFraction,
                  b.corpus[i].corruptedFraction);
        EXPECT_EQ(a.corpus[i].severity, b.corpus[i].severity);
    }
    ASSERT_EQ(a.anatomy.size(), b.anatomy.size());
    for (std::size_t i = 0; i < a.anatomy.size(); ++i) {
        EXPECT_EQ(a.anatomy[i].bit, b.anatomy[i].bit);
        EXPECT_EQ(a.anatomy[i].field, b.anatomy[i].field);
        EXPECT_EQ(a.anatomy[i].outcome, b.anatomy[i].outcome);
    }
}

// ---------------------------------------------------------------
// Executor primitives.
// ---------------------------------------------------------------

TEST(ThreadPoolTest, EveryWorkerRunsEachGeneration)
{
    parallel::ThreadPool pool(4);
    ASSERT_EQ(pool.workers(), 4u);
    std::atomic<int> ran{0};
    pool.run([&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 4);
    // The pool is reusable: a second generation runs on the same
    // threads.
    pool.run([&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, StartReturnsBeforeCompletion)
{
    // start() must not block the caller: the calling thread acts as
    // the consumer while workers produce. The workers here wait for
    // a token only the caller can provide after start() returned.
    parallel::ThreadPool pool(2);
    std::atomic<bool> go{false};
    std::atomic<int> ran{0};
    pool.start([&](unsigned) {
        while (!go.load())
            std::this_thread::yield();
        ++ran;
    });
    go.store(true);
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(IndexChunkerTest, CoversRangeExactlyOnceAcrossThreads)
{
    constexpr std::uint64_t kCount = 1000;
    parallel::IndexChunker chunker(kCount, 7);
    std::vector<std::atomic<int>> hits(kCount);
    parallel::ThreadPool pool(4);
    pool.run([&](unsigned) {
        std::uint64_t begin = 0, end = 0;
        while (chunker.next(begin, end))
            for (std::uint64_t i = begin; i < end; ++i)
                ++hits[i];
    });
    for (std::uint64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(IndexChunkerTest, StopLeavesContiguousPrefix)
{
    parallel::IndexChunker chunker(100, 8);
    std::uint64_t begin = 0, end = 0;
    std::uint64_t last_end = 0;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(chunker.next(begin, end));
        EXPECT_EQ(begin, last_end);  // chunks in increasing order
        last_end = end;
    }
    chunker.stop();
    EXPECT_TRUE(chunker.stopped());
    EXPECT_FALSE(chunker.next(begin, end));
    EXPECT_EQ(last_end, 24u);  // claimed set is exactly [0, 24)
}

TEST(OrderedChannelTest, DeliversInOrderUnderConcurrentProducers)
{
    constexpr std::uint64_t kCount = 500;
    parallel::IndexChunker chunker(kCount, 3);
    parallel::OrderedChannel<std::uint64_t> channel(/*capacity=*/32,
                                                    /*producers=*/4);
    parallel::ThreadPool pool(4);
    pool.start([&](unsigned) {
        std::uint64_t begin = 0, end = 0;
        while (chunker.next(begin, end))
            for (std::uint64_t i = begin; i < end; ++i)
                channel.put(i, i * 2 + 1);
        channel.producerDone();
    });
    std::uint64_t expected = 0;
    while (auto value = channel.take()) {
        EXPECT_EQ(*value, expected * 2 + 1);
        ++expected;
    }
    pool.wait();
    EXPECT_EQ(expected, kCount);
    // The stream stays closed.
    EXPECT_FALSE(channel.take().has_value());
}

TEST(ResolveJobsTest, ZeroMeansAllHardwareThreads)
{
    EXPECT_GE(parallel::hardwareJobs(), 1u);
    EXPECT_EQ(parallel::resolveJobs(0), parallel::hardwareJobs());
    EXPECT_EQ(parallel::resolveJobs(1), 1u);
    EXPECT_EQ(parallel::resolveJobs(5), 5u);
}

// ---------------------------------------------------------------
// Workload cloning.
// ---------------------------------------------------------------

std::vector<std::uint64_t>
snapshotOutput(Workload &w)
{
    auto view = w.output();
    std::vector<std::uint64_t> bits(view.count);
    for (std::size_t i = 0; i < view.count; ++i)
        bits[i] = view.get(i);
    return bits;
}

/**
 * A clone must deep-copy: it reproduces the original's behavior
 * bit-for-bit, and running the original afterwards must not disturb
 * the clone's state (no shared storage).
 */
void
expectCloneIsolated(Workload &w)
{
    SCOPED_TRACE(w.name());
    const GoldenRun golden(w, /*input_seed=*/42);
    auto clone = w.clone();
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(clone->name(), w.name());
    EXPECT_EQ(clone->precision(), w.precision());
    // The clone carries the original's post-execution state.
    const auto before = snapshotOutput(*clone);
    EXPECT_EQ(before, snapshotOutput(w));
    // Mutating the original leaves the clone untouched.
    const GoldenRun perturbed(w, /*input_seed=*/43);
    EXPECT_EQ(snapshotOutput(*clone), before);
    // The clone replays the original's run bit-identically.
    const GoldenRun replay(*clone, /*input_seed=*/42);
    EXPECT_EQ(replay.outputBits, golden.outputBits);
    EXPECT_EQ(replay.ticks, golden.ticks);
}

TEST(CloneTest, EveryFactoryWorkloadClonesIsolated)
{
    const char *names[] = {"mxm",       "mxm-mixed", "lavamd",
                           "hotspot",   "lud",       "micro-add",
                           "micro-mul", "micro-fma", "mnist",
                           "yolite"};
    for (const char *name : names) {
        auto w = nn::makeAnyWorkload(name, Precision::Single, 0.05);
        expectCloneIsolated(*w);
    }
}

TEST(CloneTest, MitigationWorkloadsCloneIsolated)
{
    using mitigation::Redundancy;
    for (Redundancy scheme : {Redundancy::Dwc, Redundancy::Tmr}) {
        std::vector<workloads::WorkloadPtr> replicas;
        const std::size_t n =
            scheme == Redundancy::Dwc ? 2 : 3;
        for (std::size_t i = 0; i < n; ++i)
            replicas.push_back(
                makeWorkload("micro-add", Precision::Single, 0.1));
        mitigation::ReplicatedWorkload w(scheme,
                                         std::move(replicas));
        expectCloneIsolated(w);
    }
    mitigation::AbftMxMWorkload<Precision::Single> abft(0.05);
    expectCloneIsolated(abft);
}

// ---------------------------------------------------------------
// Parallel campaigns: bit-exactness against the serial loop.
// ---------------------------------------------------------------

SupervisedCampaign
runWithJobs(Workload &w, CampaignKind kind,
            const CampaignConfig &config, unsigned jobs,
            const std::string &journal,
            const std::vector<EngineAllocation> &engines = {})
{
    SupervisorConfig supervisor;
    supervisor.jobs = jobs;
    supervisor.journalPath = journal;
    return runSupervisedCampaign(w, kind, config, supervisor,
                                 fp::OpKind::NumKinds, engines);
}

void
expectParallelMatchesSerial(Workload &w, CampaignKind kind,
                            const CampaignConfig &config,
                            const std::vector<EngineAllocation>
                                &engines = {})
{
    const std::string serial_path = tempPath("par-serial.mpj");
    const std::string parallel_path = tempPath("par-jobs4.mpj");
    const auto serial =
        runWithJobs(w, kind, config, 1, serial_path, engines);
    const auto parallel =
        runWithJobs(w, kind, config, 4, parallel_path, engines);
    ASSERT_TRUE(serial.error.empty()) << serial.error;
    ASSERT_TRUE(parallel.error.empty()) << parallel.error;
    EXPECT_FALSE(parallel.interrupted);
    EXPECT_EQ(parallel.planned, serial.planned);
    EXPECT_EQ(parallel.retried, serial.retried);
    EXPECT_EQ(parallel.poisoned, serial.poisoned);
    expectSameResult(parallel.result, serial.result);
    // The strongest statement: the journals agree byte for byte.
    EXPECT_EQ(slurp(parallel_path), slurp(serial_path));
}

TEST(ParallelCampaignTest, MemoryCampaignMatchesSerialBitExactly)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 80;
    config.seed = 3;
    config.recordAnatomy = true;
    expectParallelMatchesSerial(*w, CampaignKind::Memory, config);
}

TEST(ParallelCampaignTest, DatapathCampaignMatchesSerialBitExactly)
{
    auto w = makeWorkload("lud", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 60;
    config.seed = 11;
    expectParallelMatchesSerial(*w, CampaignKind::Datapath, config);
}

TEST(ParallelCampaignTest, PersistentCampaignMatchesSerialBitExactly)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 50;
    config.seed = 17;
    // Realistic engine allocations from the FPGA synthesis model.
    const GoldenRun golden(*w, config.inputSeed);
    const auto circuit = fpga::synthesize(*w, golden);
    ASSERT_FALSE(circuit.engines.empty());
    expectParallelMatchesSerial(*w, CampaignKind::Persistent, config,
                                circuit.engines);
}

TEST(ParallelCampaignTest, ManyWorkersOnTinyCampaign)
{
    // More workers than trials: the executor must not deadlock or
    // duplicate work when most workers find the chunker drained.
    auto w = makeWorkload("micro-add", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 3;
    config.seed = 2;
    const auto serial = runWithJobs(*w, CampaignKind::Memory, config,
                                    1, tempPath("tiny-serial.mpj"));
    const auto wide = runWithJobs(*w, CampaignKind::Memory, config,
                                  8, tempPath("tiny-wide.mpj"));
    ASSERT_TRUE(wide.error.empty()) << wide.error;
    expectSameResult(wide.result, serial.result);
}

// ---------------------------------------------------------------
// Golden-run cache.
// ---------------------------------------------------------------

TEST(GoldenCacheTest, SharedByKeyAndDistinctAcrossKeys)
{
    fault::clearGoldenRunCache();
    auto w = makeWorkload("micro-add", Precision::Single, 0.1);
    const auto a = fault::cachedGoldenRun(*w, 99, 0.1);
    const auto b = fault::cachedGoldenRun(*w, 99, 0.1);
    EXPECT_EQ(a.get(), b.get());  // one reference execution
    const auto other_seed = fault::cachedGoldenRun(*w, 100, 0.1);
    EXPECT_NE(a.get(), other_seed.get());
    const auto other_scale = fault::cachedGoldenRun(*w, 99, 0.2);
    EXPECT_NE(a.get(), other_scale.get());
    // The cached run equals a fresh one (the cache only spares the
    // recomputation, never changes the reference).
    const GoldenRun fresh(*w, 99);
    EXPECT_EQ(a->outputBits, fresh.outputBits);
    EXPECT_EQ(a->ticks, fresh.ticks);
    fault::clearGoldenRunCache();
}

TEST(GoldenCacheTest, CachedCampaignMatchesUncached)
{
    fault::clearGoldenRunCache();
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 40;
    config.seed = 5;
    SupervisorConfig plain;
    plain.scale = 0.1;
    SupervisorConfig cached = plain;
    cached.useGoldenCache = true;
    const auto a = runSupervisedCampaign(*w, CampaignKind::Memory,
                                         config, plain);
    const auto b = runSupervisedCampaign(*w, CampaignKind::Memory,
                                         config, cached);
    const auto c = runSupervisedCampaign(*w, CampaignKind::Memory,
                                         config, cached);
    expectSameResult(b.result, a.result);
    expectSameResult(c.result, a.result);
    fault::clearGoldenRunCache();
}

// ---------------------------------------------------------------
// Trial descriptions stay off the hot path.
// ---------------------------------------------------------------

TEST(ParallelCampaignTest, DescriptionsOnlyWhenRequested)
{
    auto w = makeWorkload("micro-add", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 4;
    auto runner =
        fault::makeTrialRunner(*w, CampaignKind::Memory, config);
    EXPECT_TRUE(runner->runTrial(0, false).description.empty());
    EXPECT_FALSE(runner->runTrial(0, true).description.empty());
}

// ---------------------------------------------------------------
// Cooperative stop and resume under a parallel run.
// ---------------------------------------------------------------

TEST(ParallelCampaignTest, StopAndResumeUnderJobs4MatchesOneShot)
{
    auto w = makeWorkload("micro-add", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 1500;
    config.seed = 5;
    config.recordAnatomy = true;

    const std::string oneshot_path = tempPath("par-oneshot.mpj");
    const auto whole = runWithJobs(*w, CampaignKind::Memory, config,
                                   1, oneshot_path);
    ASSERT_TRUE(whole.error.empty()) << whole.error;

    // First run: stop after a few supervisor polls. The executor
    // drains in-flight trials, journals the contiguous prefix and
    // reports the run as interrupted.
    const std::string path = tempPath("par-resume.mpj");
    SupervisorConfig first;
    first.journalPath = path;
    first.jobs = 4;
    std::atomic<int> polls{0};
    first.shouldStop = [&polls] { return ++polls > 2; };
    const auto partial = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, first);
    ASSERT_TRUE(partial.error.empty()) << partial.error;
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.result.trials, config.trials);

    // Second run resumes the journal, still with 4 workers, and must
    // land exactly on the one-shot result and journal bytes.
    SupervisorConfig second;
    second.journalPath = path;
    second.jobs = 4;
    second.resume = true;
    const auto resumed = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, second);
    ASSERT_TRUE(resumed.error.empty()) << resumed.error;
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.resumed, partial.result.trials);
    EXPECT_EQ(resumed.result.trials, config.trials);
    expectSameResult(resumed.result, whole.result);
    EXPECT_EQ(slurp(path), slurp(oneshot_path));
}

} // namespace
} // namespace mparch
