# Empty compiler generated dependencies file for ablation_injection_sites.
# This may be replaced when dependencies are built.
