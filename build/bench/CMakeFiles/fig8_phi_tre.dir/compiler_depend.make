# Empty compiler generated dependencies file for fig8_phi_tre.
# This may be replaced when dependencies are built.
