/**
 * @file
 * Seeded property-based fuzzer with counterexample shrinking.
 *
 * Every trial is a counter-based RNG stream (trialRng(seed, index)),
 * so any failing trial replays standalone from (seed, index) and the
 * report is bit-identical for any --jobs value. The operand generator
 * is heavily biased toward the values where rounding bugs live:
 * signed zeros, infinities, NaN, exact powers of two, all-ones and
 * lone-bit significands, subnormals, and operand pairs correlated to
 * within a few ULPs (catastrophic cancellation) or mirrored in sign.
 *
 * A failing case is greedily shrunk before reporting: operands are
 * replaced by simpler ones (zero, one, cleared sign, bias exponent,
 * dropped significand bits) while the failure persists, yielding a
 * minimal, copy-pasteable bit-pattern repro.
 */

#include "verify/verify.hh"

#include <algorithm>
#include <bit>
#include <iterator>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "fp/softfloat.hh"

namespace mparch::verify {

using fp::Format;

std::uint64_t
genOperand(Rng &rng, fp::Format f)
{
    const std::uint64_t roll = rng.below(100);
    const std::uint64_t sign =
        rng.chance(0.5) ? 1ULL << f.signPos() : 0;

    if (roll < 18) {
        // Hand-picked specials.
        const std::uint64_t specials[] = {
            fp::zero(f, false),
            fp::infinity(f, false),
            fp::quietNaN(f),
            fp::one(f),
            fp::maxFinite(f, false),
            fp::packFields(f, false, 0, 1),           // min subnormal
            fp::packFields(f, false, 0, f.manMask()), // max subnormal
            fp::packFields(f, false, 1, 0),           // min normal
            fp::packFields(f, false, f.bias() - 1, 0),       // 0.5
            fp::packFields(f, false, f.bias() + 1, 0),       // 2
        };
        const std::uint64_t v =
            specials[rng.below(std::size(specials))];
        return fp::isNaN(f, v) ? v : v | sign;
    }

    if (roll < 45) {
        // Boundary significands on a uniformly random exponent —
        // carries, ties and sticky bits concentrate here.
        const std::uint64_t man_patterns[] = {
            0,
            1,
            f.manMask(),
            f.manMask() - 1,
            f.manMask() >> 1,
            1ULL << (f.manBits - 1),
            (1ULL << (f.manBits - 1)) - 1,
            rng.next() & f.manMask(),
        };
        const int be = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(f.maxBiasedExp())));
        return fp::packFields(
                   f, false, be,
                   man_patterns[rng.below(std::size(man_patterns))]) |
               sign;
    }

    if (roll < 70) {
        // Exponent near the bias: the region where sums and products
        // neither overflow nor flush, so rounding paths dominate.
        const int spread = static_cast<int>(f.manBits) + 3;
        const int be = std::clamp<int>(
            f.bias() + static_cast<int>(rng.between(-spread, spread)),
            0, f.maxBiasedExp() - 1);
        return fp::packFields(f, false, be, rng.next() & f.manMask()) |
               sign;
    }

    // Fully random pattern (covers NaN payloads and everything else).
    return rng.next() & f.valueMask();
}

namespace {

/** A second operand correlated with @p a often enough to provoke
 *  cancellation, near-ties, and sign-mirror paths. */
std::uint64_t
genPartner(Rng &rng, Format f, std::uint64_t a)
{
    const std::uint64_t roll = rng.below(100);
    if (roll < 25 && fp::isFinite(f, a) && !fp::isZero(f, a)) {
        // Within a few grid steps of a (same sign half).
        const std::int64_t delta = rng.between(-4, 4);
        const std::uint64_t mag = a & (f.valueMask() >> 1);
        const auto moved = static_cast<std::int64_t>(mag) + delta;
        if (moved >= 0 &&
            moved <= static_cast<std::int64_t>(f.valueMask() >> 1))
            return (a & (1ULL << f.signPos())) |
                   static_cast<std::uint64_t>(moved);
    }
    if (roll < 40)
        return a ^ (1ULL << f.signPos());  // exact sign mirror
    return genOperand(rng, f);
}

const Format kFuzzFormats[] = {fp::kHalf, fp::kSingle, fp::kDouble,
                               fp::kBfloat16, fp::kTf32};

} // namespace

Case
genCase(Rng &rng, fp::Format f, const std::vector<VOp> &ops)
{
    Case c;
    c.fmt = f;
    c.op = ops.empty()
               ? allVOps[rng.below(std::size(allVOps))]
               : ops[rng.below(ops.size())];
    c.a = genOperand(rng, f);
    if (c.op == VOp::Convert) {
        // Any destination, self-conversion included.
        c.dst = kFuzzFormats[rng.below(std::size(kFuzzFormats))];
        return c;
    }
    const unsigned arity = vopArity(c.op);
    if (arity >= 2)
        c.b = genPartner(rng, f, c.a);
    if (arity >= 3) {
        if (rng.chance(0.3)) {
            // c near -(a*b): the FMA path where the product and the
            // addend annihilate and the sticky discipline is honest.
            const std::uint64_t p = fp::fpMul(f, c.a, c.b);
            c.c = fp::isNaN(f, p) ? genOperand(rng, f)
                                  : fp::fpNeg(f, p);
        } else {
            c.c = genPartner(rng, f, c.a);
        }
    }
    return c;
}

namespace {

/**
 * Simplicity order for shrink candidates. Every candidate kind below
 * strictly decreases this measure, so the greedy loop terminates on
 * its own instead of cycling (e.g. 0 -> one -> 0 -> ...) until the
 * eval budget runs dry.
 */
std::uint64_t
shrinkRank(Format f, std::uint64_t v)
{
    if (v == 0)
        return 0;
    if (v == fp::one(f))
        return 1;
    const std::uint64_t be = fp::biasedExpOf(f, v);
    const std::uint64_t bias = f.bias();
    const std::uint64_t exp_dist = be > bias ? be - bias : bias - be;
    const auto pop = static_cast<std::uint64_t>(
        std::popcount(fp::mantissaOf(f, v)));
    // sign > exponent distance > mantissa weight, lexicographically.
    return 2 + (std::uint64_t{fp::signOf(f, v)} << 40) +
           (exp_dist << 20) + pop;
}

} // namespace

Case
shrinkCase(Case c, const std::function<bool(const Case &)> &fails,
           int budget)
{
    int evals = 0;
    const auto stillFails = [&](const Case &cand) {
        if (evals >= budget)
            return false;
        ++evals;
        return fails(cand);
    };

    const unsigned arity =
        c.op == VOp::Convert ? 1 : vopArity(c.op);
    const Format f = c.fmt;

    bool improved = true;
    while (improved && evals < budget) {
        improved = false;
        for (unsigned idx = 0; idx < arity && !improved; ++idx) {
            const std::uint64_t orig =
                idx == 0 ? c.a : idx == 1 ? c.b : c.c;
            const auto apply = [&](std::uint64_t v) {
                Case cand = c;
                (idx == 0 ? cand.a : idx == 1 ? cand.b : cand.c) = v;
                return cand;
            };

            std::vector<std::uint64_t> cands;
            if (orig != 0)
                cands.push_back(0);  // +0: the simplest operand
            if (orig != fp::one(f))
                cands.push_back(fp::one(f));
            if (fp::signOf(f, orig))
                cands.push_back(orig & ~(1ULL << f.signPos()));
            // Pull the exponent toward the bias (value toward [1,2)),
            // halving the distance each round.
            const int be = fp::biasedExpOf(f, orig);
            if (be != 0 && be != f.maxBiasedExp() && be != f.bias()) {
                const int half_way = (be + f.bias()) / 2;
                if (half_way != be)
                    cands.push_back(fp::packFields(
                        f, fp::signOf(f, orig), half_way,
                        fp::mantissaOf(f, orig)));
            }
            // Drop significand bits, highest first.
            for (int bit = static_cast<int>(f.manBits) - 1; bit >= 0;
                 --bit) {
                if (orig & (1ULL << bit))
                    cands.push_back(orig & ~(1ULL << bit));
            }

            const std::uint64_t rank = shrinkRank(f, orig);
            for (std::uint64_t v : cands) {
                if (shrinkRank(f, v) >= rank)
                    continue;
                const Case cand = apply(v);
                if (stillFails(cand)) {
                    c = cand;
                    improved = true;
                    break;
                }
            }
        }
    }
    return c;
}

FuzzReport
fuzzFormat(fp::Format f, const FuzzConfig &cfg)
{
    const unsigned jobs = parallel::resolveJobs(cfg.jobs);
    const std::uint64_t seed = Rng::mix(
        cfg.seed, (static_cast<std::uint64_t>(f.totalBits) << 16) |
                      f.manBits);

    struct WorkerOut
    {
        std::uint64_t failures = 0;
        std::vector<FuzzFailure> kept;
    };
    std::vector<WorkerOut> outs(jobs);
    parallel::IndexChunker chunker(
        cfg.trials,
        std::max<std::uint64_t>(1, cfg.trials / (jobs * 32) + 1));

    parallel::ThreadPool pool(jobs);
    pool.run([&](unsigned worker) {
        WorkerOut &out = outs[worker];
        std::uint64_t begin, end;
        while (chunker.next(begin, end)) {
            std::size_t budget = cfg.maxFailures;
            for (std::uint64_t trial = begin; trial < end; ++trial) {
                Rng rng = trialRng(seed, trial);
                const Case c = genCase(rng, f, cfg.ops);
                std::vector<Mismatch> found;
                if (checkCase(c, cfg.check, &found))
                    continue;
                ++out.failures;
                if (budget == 0)
                    continue;
                --budget;
                FuzzFailure failure;
                failure.trial = trial;
                failure.original = c;
                failure.shrunk =
                    cfg.shrink
                        ? shrinkCase(c,
                                     [&](const Case &cand) {
                                         return !checkCase(
                                             cand, cfg.check, nullptr);
                                     })
                        : c;
                checkCase(failure.shrunk, cfg.check,
                          &failure.mismatches);
                out.kept.push_back(std::move(failure));
            }
        }
    });

    FuzzReport report;
    report.trials = cfg.trials;
    std::vector<FuzzFailure> merged;
    for (WorkerOut &out : outs) {
        report.failures += out.failures;
        merged.insert(merged.end(),
                      std::make_move_iterator(out.kept.begin()),
                      std::make_move_iterator(out.kept.end()));
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const FuzzFailure &x, const FuzzFailure &y) {
                         return x.trial < y.trial;
                     });
    if (merged.size() > cfg.maxFailures)
        merged.resize(cfg.maxFailures);
    report.sample = std::move(merged);
    return report;
}

} // namespace mparch::verify
