#include "hooks.hh"

namespace mparch::fp {

namespace {

thread_local FpContext *tlsContext = nullptr;

} // namespace

const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::Add:     return "add";
      case OpKind::Sub:     return "sub";
      case OpKind::Mul:     return "mul";
      case OpKind::Fma:     return "fma";
      case OpKind::Div:     return "div";
      case OpKind::Sqrt:    return "sqrt";
      case OpKind::Exp:     return "exp";
      case OpKind::Convert: return "convert";
      default:              return "?";
    }
}

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::OperandA:      return "operand-a";
      case Stage::OperandB:      return "operand-b";
      case Stage::OperandC:      return "operand-c";
      case Stage::AlignedSigA:   return "aligned-sig-a";
      case Stage::AlignedSigB:   return "aligned-sig-b";
      case Stage::ProductLo:     return "product-lo";
      case Stage::ProductHi:     return "product-hi";
      case Stage::PreRoundSig:   return "pre-round-sig";
      case Stage::ExponentLogic: return "exponent-logic";
      case Stage::Result:        return "result";
      default:                   return "?";
    }
}

const char *
roundingName(Rounding mode)
{
    switch (mode) {
      case Rounding::NearestEven: return "nearest-even";
      case Rounding::TowardZero:  return "toward-zero";
      case Rounding::Upward:      return "upward";
      case Rounding::Downward:    return "downward";
    }
    return "?";
}

FpContext *
currentContext()
{
    return tlsContext;
}

FpEnvGuard::FpEnvGuard(FpContext &ctx)
    : saved_(tlsContext)
{
    tlsContext = &ctx;
}

FpEnvGuard::~FpEnvGuard()
{
    tlsContext = saved_;
}

namespace detail {

FpContext *
noteOp(OpKind op)
{
    FpContext *ctx = tlsContext;
    if (ctx)
        ++ctx->opCount[static_cast<std::size_t>(op)];
    return ctx;
}

} // namespace detail

} // namespace mparch::fp
