#include "analysis/lexer.hh"

#include <cctype>
#include <cstddef>

namespace mparch::analysis {

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Identifier: return "identifier";
      case TokKind::Number:     return "number";
      case TokKind::String:     return "string";
      case TokKind::CharLit:    return "char";
      case TokKind::Punct:      return "punct";
      case TokKind::Comment:    return "comment";
      case TokKind::Directive:  return "directive";
      case TokKind::HeaderName: return "header-name";
    }
    return "?";
}

namespace {

/** Cursor over the source with line/column tracking and splice
 *  (backslash-newline) removal. */
class Cursor
{
  public:
    explicit Cursor(const std::string &src) : src_(src) {}

    bool atEnd() const { return pos_ >= src_.size(); }

    /** Current character, skipping over backslash-newline splices. */
    char
    peek() const
    {
        std::size_t p = pos_;
        while (p + 1 < src_.size() && src_[p] == '\\' &&
               (src_[p + 1] == '\n' ||
                (src_[p + 1] == '\r' && p + 2 < src_.size() &&
                 src_[p + 2] == '\n')))
            p += src_[p + 1] == '\r' ? 3 : 2;
        return p < src_.size() ? src_[p] : '\0';
    }

    char
    peek2() const
    {
        Cursor c = *this;
        c.advance();
        return c.peek();
    }

    void
    advance()
    {
        // Consume any splice(s) sitting at the cursor first.
        while (pos_ + 1 < src_.size() && src_[pos_] == '\\' &&
               (src_[pos_ + 1] == '\n' ||
                (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
                 src_[pos_ + 2] == '\n'))) {
            pos_ += src_[pos_ + 1] == '\r' ? 3 : 2;
            ++line_;
            col_ = 1;
        }
        if (pos_ >= src_.size())
            return;
        if (src_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

    unsigned line() const { return line_; }
    unsigned col() const { return col_; }

    /** Raw (splice-blind) slice access for raw-string bodies. */
    const std::string &raw() const { return src_; }
    std::size_t rawPos() const { return pos_; }

  private:
    const std::string &src_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
    unsigned col_ = 1;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first per leading char. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "##",
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : cur_(src) {}

    std::vector<Token>
    run()
    {
        while (!cur_.atEnd()) {
            const char c = cur_.peek();
            if (c == '\n') {
                atLineStart_ = true;
                expectHeaderName_ = false;
                cur_.advance();
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
                c == '\f' || c == '\0') {
                cur_.advance();
                continue;
            }
            if (c == '/' && cur_.peek2() == '/') {
                lexLineComment();
                continue;
            }
            if (c == '/' && cur_.peek2() == '*') {
                lexBlockComment();
                continue;
            }
            if (c == '#' && atLineStart_) {
                lexDirective();
                continue;
            }
            atLineStart_ = false;
            if (c == '<' && expectHeaderName_) {
                lexHeaderName();
                continue;
            }
            if (isIdentStart(c)) {
                lexIdentifierOrLiteral();
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                (c == '.' &&
                 std::isdigit(static_cast<unsigned char>(cur_.peek2())))) {
                lexNumber();
                continue;
            }
            if (c == '"') {
                lexString(/*raw=*/false);
                continue;
            }
            if (c == '\'') {
                lexCharLit();
                continue;
            }
            lexPunct();
        }
        return std::move(out_);
    }

  private:
    Token
    begin(TokKind kind)
    {
        Token t;
        t.kind = kind;
        t.line = cur_.line();
        t.col = cur_.col();
        return t;
    }

    void
    push(Token t)
    {
        // A header name is only expected immediately after #include.
        if (!(t.kind == TokKind::Directive && t.text == "include"))
            expectHeaderName_ = false;
        out_.push_back(std::move(t));
    }

    void
    lexLineComment()
    {
        Token t = begin(TokKind::Comment);
        while (!cur_.atEnd() && cur_.peek() != '\n') {
            t.text += cur_.peek();
            cur_.advance();
        }
        push(std::move(t));
    }

    void
    lexBlockComment()
    {
        Token t = begin(TokKind::Comment);
        t.text += cur_.peek(); cur_.advance();  // '/'
        t.text += cur_.peek(); cur_.advance();  // '*'
        while (!cur_.atEnd()) {
            const char c = cur_.peek();
            if (c == '*' && cur_.peek2() == '/') {
                t.text += "*/";
                cur_.advance();
                cur_.advance();
                break;
            }
            t.text += c;
            cur_.advance();
        }
        push(std::move(t));
    }

    void
    lexDirective()
    {
        Token t = begin(TokKind::Directive);
        cur_.advance();  // '#'
        while (!cur_.atEnd() &&
               (cur_.peek() == ' ' || cur_.peek() == '\t'))
            cur_.advance();
        while (!cur_.atEnd() && isIdentCont(cur_.peek())) {
            t.text += cur_.peek();
            cur_.advance();
        }
        atLineStart_ = false;
        const bool isInclude = t.text == "include";
        push(std::move(t));
        expectHeaderName_ = isInclude;
    }

    void
    lexHeaderName()
    {
        Token t = begin(TokKind::HeaderName);
        cur_.advance();  // '<'
        while (!cur_.atEnd() && cur_.peek() != '>' &&
               cur_.peek() != '\n') {
            t.text += cur_.peek();
            cur_.advance();
        }
        if (!cur_.atEnd() && cur_.peek() == '>')
            cur_.advance();
        push(std::move(t));
    }

    void
    lexIdentifierOrLiteral()
    {
        Token t = begin(TokKind::Identifier);
        while (!cur_.atEnd() && isIdentCont(cur_.peek())) {
            t.text += cur_.peek();
            cur_.advance();
        }
        // Literal prefixes: R"..", u8"..", L'x', etc.
        if (!cur_.atEnd() && cur_.peek() == '"' && isStringPrefix(t.text)) {
            const bool raw = t.text.back() == 'R';
            Token lit = lexStringAt(t.line, t.col, raw, t.text);
            push(std::move(lit));
            return;
        }
        if (!cur_.atEnd() && cur_.peek() == '\'' &&
            (t.text == "u" || t.text == "U" || t.text == "L" ||
             t.text == "u8")) {
            Token lit = lexCharAt(t.line, t.col, t.text);
            push(std::move(lit));
            return;
        }
        push(std::move(t));
    }

    static bool
    isStringPrefix(const std::string &s)
    {
        return s == "R" || s == "L" || s == "u" || s == "U" ||
               s == "u8" || s == "LR" || s == "uR" || s == "UR" ||
               s == "u8R";
    }

    void
    lexString(bool raw)
    {
        Token t = lexStringAt(cur_.line(), cur_.col(), raw, "");
        push(std::move(t));
    }

    Token
    lexStringAt(unsigned line, unsigned col, bool raw, std::string prefix)
    {
        Token t;
        t.kind = TokKind::String;
        t.line = line;
        t.col = col;
        t.text = std::move(prefix);
        t.text += cur_.peek();
        cur_.advance();  // opening quote
        if (raw) {
            // R"delim( ... )delim" — no escapes, no splices inside.
            std::string delim;
            while (!cur_.atEnd() && cur_.peek() != '(') {
                delim += cur_.peek();
                t.text += cur_.peek();
                cur_.advance();
            }
            if (!cur_.atEnd()) {
                t.text += cur_.peek();
                cur_.advance();  // '('
            }
            const std::string close = ")" + delim + "\"";
            std::string tail;
            while (!cur_.atEnd()) {
                tail += cur_.peek();
                t.text += cur_.peek();
                cur_.advance();
                if (tail.size() >= close.size() &&
                    tail.compare(tail.size() - close.size(),
                                 close.size(), close) == 0)
                    break;
            }
            return t;
        }
        while (!cur_.atEnd()) {
            const char c = cur_.peek();
            if (c == '\\') {
                t.text += c;
                cur_.advance();
                if (!cur_.atEnd()) {
                    t.text += cur_.peek();
                    cur_.advance();
                }
                continue;
            }
            if (c == '\n')
                break;  // unterminated; degrade gracefully
            t.text += c;
            cur_.advance();
            if (c == '"')
                break;
        }
        return t;
    }

    void
    lexCharLit()
    {
        Token t = lexCharAt(cur_.line(), cur_.col(), "");
        push(std::move(t));
    }

    Token
    lexCharAt(unsigned line, unsigned col, std::string prefix)
    {
        Token t;
        t.kind = TokKind::CharLit;
        t.line = line;
        t.col = col;
        t.text = std::move(prefix);
        t.text += cur_.peek();
        cur_.advance();  // opening quote
        while (!cur_.atEnd()) {
            const char c = cur_.peek();
            if (c == '\\') {
                t.text += c;
                cur_.advance();
                if (!cur_.atEnd()) {
                    t.text += cur_.peek();
                    cur_.advance();
                }
                continue;
            }
            if (c == '\n')
                break;
            t.text += c;
            cur_.advance();
            if (c == '\'')
                break;
        }
        return t;
    }

    void
    lexNumber()
    {
        Token t = begin(TokKind::Number);
        // pp-number: digits, idents, dots, digit separators, and
        // exponent signs after e/E/p/P.
        while (!cur_.atEnd()) {
            const char c = cur_.peek();
            if (isIdentCont(c) || c == '.' || c == '\'') {
                t.text += c;
                cur_.advance();
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    !cur_.atEnd() &&
                    (cur_.peek() == '+' || cur_.peek() == '-')) {
                    t.text += cur_.peek();
                    cur_.advance();
                }
                continue;
            }
            break;
        }
        push(std::move(t));
    }

    void
    lexPunct()
    {
        Token t = begin(TokKind::Punct);
        const char c = cur_.peek();
        for (const char *p : kPuncts) {
            if (p[0] != c)
                continue;
            bool match = true;
            Cursor probe = cur_;
            for (const char *q = p; *q; ++q) {
                if (probe.atEnd() || probe.peek() != *q) {
                    match = false;
                    break;
                }
                probe.advance();
            }
            if (match) {
                t.text = p;
                while (t.text.size() > 0 && cur_.rawPos() < probe.rawPos())
                    cur_.advance();
                push(std::move(t));
                return;
            }
        }
        t.text += c;
        cur_.advance();
        push(std::move(t));
    }

    Cursor cur_;
    std::vector<Token> out_;
    bool atLineStart_ = true;
    bool expectHeaderName_ = false;
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace mparch::analysis
