/**
 * @file
 * Xeon Phi (KNC) reliability model.
 *
 * The paper's Phi analysis (Section 5) rests on three mechanisms,
 * all modelled here: (1) the compiler instantiates more vector
 * registers for single precision, a symptom of higher unprotected
 * functional-unit/queue usage, so single's raw fault rate is higher;
 * (2) the probability of propagation (PVF, CAROL-FI single-bit flips
 * in program variables) is precision-independent; (3) 16 single
 * lanes carry twice the control state of 8 double lanes, raising the
 * single-precision DUE rate for every code.
 */

#ifndef MPARCH_ARCH_PHI_PHI_HH
#define MPARCH_ARCH_PHI_PHI_HH

#include "arch/phi/compiler_model.hh"
#include "beam/inventory.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "workloads/workload.hh"

namespace mparch::phi {

/** Full reliability evaluation of one (workload, precision). */
struct PhiEvaluation
{
    CompiledKernel compiled;

    /** CAROL-FI-style variable injection (PVF, Figure 7). */
    fault::CampaignResult pvfCampaign;

    /** Functional-unit injection (beam-like AVF + TRE corpus). */
    fault::CampaignResult datapathCampaign;

    beam::ResourceInventory inventory;

    double fitSdc = 0.0;       ///< a.u. (Figure 6)
    double fitDue = 0.0;       ///< a.u. (Figure 6)
    double timeSeconds = 0.0;  ///< Table 2 model
    double mebf = 0.0;         ///< a.u. (Figure 9)

    /** Minimum completed fraction over the campaigns. */
    double coverage = 1.0;

    /** Trials abandoned by the supervisor across the campaigns. */
    std::uint64_t poisoned = 0;
};

/** Evaluation knobs. */
struct PhiOptions
{
    std::uint64_t pvfTrials = 500;
    std::uint64_t datapathTrials = 500;
    std::uint64_t seed = 23;

    /** Crash-safety knobs (journal dir, resume, batching). */
    fault::SupervisorConfig supervisor;
};

/** Execution-time model only (Table 2). */
double phiTimeSeconds(workloads::Workload &w,
                      const fault::GoldenRun &golden);

/** Run campaigns and assemble FIT/PVF/MEBF. */
PhiEvaluation evaluatePhi(workloads::Workload &w,
                          const PhiOptions &options = {});

} // namespace mparch::phi

#endif // MPARCH_ARCH_PHI_PHI_HH
