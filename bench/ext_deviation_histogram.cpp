/**
 * @file
 * Extension: the full SDC deviation distribution, not just its TRE
 * integral.
 *
 * The paper's criticality figures integrate the deviation
 * distribution from each TRE threshold upward; this bench prints the
 * distribution itself (decade-bucketed relative deviations of every
 * SDC from the GEMM datapath campaign). The shapes make the
 * integrals obvious at a glance: double's mass piles up below 1e-6
 * (mantissa tail flips), half's masses in the 1e-2..1e0 decades, and
 * every precision keeps a spike of catastrophic (>= 1e2 and
 * non-finite) outcomes from exponent strikes.
 */

#include "bench_util.hh"

#include "common/histogram.hh"
#include "fault/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 800, 0.15);
    bench::banner("Extension: SDC deviation histograms (GEMM, "
                  "functional-unit faults)",
                  "double's mass in the sub-1e-6 decades, half's in "
                  "1e-2..1e0; exponent spikes everywhere");

    for (auto p : fp::allPrecisions) {
        auto w = workloads::makeWorkload("mxm", p, args.scale);
        fault::CampaignConfig config;
        config.trials = args.trials;
        const auto r = fault::runDatapathCampaign(*w, config);

        LogHistogram histogram(-10, 13);  // 1e-10 .. 1e3
        for (const auto &rec : r.corpus)
            histogram.add(rec.maxRel);
        std::cout << "--- " << fp::precisionName(p) << " ("
                  << r.sdc << " SDCs / " << r.trials
                  << " trials) ---\n"
                  << histogram.render() << "\n";
    }

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
