file(REMOVE_RECURSE
  "libmparch_metrics.a"
)
