/**
 * @file
 * Reproduces Figure 11b: FIT reduction vs TRE for LavaMD and MxM on
 * the Titan V.
 *
 * Shape targets: half is the most critical data type (its remaining
 * fraction stays highest), then single, then double; LavaMD's curves
 * track Micro-MUL's (its instruction mix), and its reduction is
 * steeper than on the Xeon Phi (the GPU evaluates exp() in software
 * and has no ECC, paper Section 6.3).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 500, 0.3);
    bench::banner("Figure 11b: Volta LavaMD/MxM FIT reduction vs TRE",
                  "remaining fraction: half > single > double");

    for (const std::string name : {"lavamd", "mxm"}) {
        const auto result =
            bench::study(core::Architecture::Gpu, name, args);
        const auto *d = result.find(fp::Precision::Double);
        const auto *s = result.find(fp::Precision::Single);
        const auto *h = result.find(fp::Precision::Half);
        Table table({"tre", "double", "single", "half"});
        table.setTitle(name + " (fraction of FIT remaining)");
        for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
            table.row()
                .cell(d->tre.thresholds[i], 4)
                .cell(d->tre.remaining[i], 3)
                .cell(s->tre.remaining[i], 3)
                .cell(h->tre.remaining[i], 3);
        }
        table.print(std::cout);
    }

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
