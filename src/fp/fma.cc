/**
 * @file
 * Fused multiply-add: a * b + c with a single rounding.
 *
 * The exact 2*(manBits+1)-bit product is aligned against the addend
 * on a common LSB scale in 128-bit arithmetic; whichever side falls
 * off the low end collapses into a sticky bit, so the final
 * roundPack sees a correctly-rounded-representable sum.
 */

#include "fp/softfloat.hh"

#include <algorithm>

#include "fp/internal.hh"

namespace mparch::fp {

using detail::U128;
using detail::Unpacked;
using detail::unpackFinite;

std::uint64_t
fpFma(Format f, std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    const OpKind op = OpKind::Fma;
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();
    b = detail::touch(ctx, op, Stage::OperandB, f.totalBits, b) &
        f.valueMask();
    c = detail::touch(ctx, op, Stage::OperandC, f.totalBits, c) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    const FpClass cb = classify(f, b);
    const FpClass cc = classify(f, c);
    if (ca == FpClass::NaN || cb == FpClass::NaN || cc == FpClass::NaN)
        return quietNaN(f);

    const bool prod_sign = signOf(f, a) != signOf(f, b);
    if (ca == FpClass::Inf || cb == FpClass::Inf) {
        if (ca == FpClass::Zero || cb == FpClass::Zero)
            return quietNaN(f);
        if (cc == FpClass::Inf && signOf(f, c) != prod_sign)
            return quietNaN(f);
        return infinity(f, prod_sign);
    }
    if (cc == FpClass::Inf)
        return c;

    const Unpacked ua = unpackFinite(f, a);
    const Unpacked ub = unpackFinite(f, b);
    const Unpacked uc = unpackFinite(f, c);

    U128 prod = static_cast<U128>(ua.sig) * ub.sig;
    int prod_exp = ua.exp + ub.exp;

    std::uint64_t lo = static_cast<std::uint64_t>(prod);
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 64);
    lo = detail::touch(ctx, op, Stage::ProductLo, 64, lo);
    hi = detail::touch(ctx, op, Stage::ProductHi,
                       2u * (f.manBits + 1u) > 64u
                           ? 2u * (f.manBits + 1u) - 64u : 1u, hi);
    prod = (static_cast<U128>(hi) << 64) | lo;

    const Rounding mode = ctx.rounding();
    if (prod == 0) {
        if (uc.sig == 0) {
            if (prod_sign == uc.sign)
                return zero(f, prod_sign);
            return zero(f, mode == Rounding::Downward);
        }
        return roundPack(f, {uc.sign, uc.exp - 3, uc.sig << 3}, ctx, op);
    }
    if (uc.sig == 0) {
        int exp = prod_exp;
        std::uint64_t sig;
        if (prod >> 64) {
            const int top =
                highestSetBit(static_cast<std::uint64_t>(prod >> 64)) + 64;
            const int shift = top - 62;
            prod = shiftRightSticky128(prod, shift);
            exp += shift;
        }
        sig = static_cast<std::uint64_t>(prod);
        return roundPack(f, {prod_sign, exp, sig}, ctx, op);
    }

    // Common LSB scale. Normally the product's scale; when the addend
    // towers over the product, raise the scale so the addend keeps 60
    // guard bits and the product folds into them (or into sticky).
    // When the addend sits just below the product scale, lower the
    // scale to the addend's so a near-total cancellation stays exact
    // (the product has at most manBits+2 leading bits beyond 64 in
    // that regime, so a <=20-bit left shift cannot overflow 128).
    int scale = prod_exp;
    const int rel = uc.exp - prod_exp;
    if (rel > 60)
        scale = uc.exp - 60;
    else if (rel < 0 && rel >= -20)
        scale = uc.exp;

    // Sticky discipline for a right-shifted (jammed) addend. Two
    // invariants must hold before add/subtract, mirroring addCore:
    // (1) the minuend needs >= 3 zero guard bits under it, so that a
    // subtraction against the jammed-odd addend leaves an odd result
    // whose bit 0 still signals inexactness (otherwise "529 - tiny"
    // computes as exactly 528 and misrounds a would-be tie); (2) the
    // aligned product's MSB must clear roundPack's normalisation
    // point, or a later left shift would promote the sticky into a
    // value/round position (possible with subnormal operands). Both
    // are fixed by lowering the common scale — an exact left shift
    // of the product, with ample 128-bit headroom.
    if (uc.exp < scale) {
        const int prod_msb =
            prod >> 64
                ? highestSetBit(
                      static_cast<std::uint64_t>(prod >> 64)) + 64
                : highestSetBit(static_cast<std::uint64_t>(prod));
        const int norm_pos = static_cast<int>(f.manBits) + 3;
        const int aligned_msb = prod_msb + (prod_exp - scale);
        const int lower = std::max(3, norm_pos + 2 - aligned_msb);
        if (aligned_msb + lower <= 120)
            scale -= lower;
    }

    const U128 prod_s = scale >= prod_exp
        ? shiftRightSticky128(prod, scale - prod_exp)
        : prod << (prod_exp - scale);
    U128 c_s;
    if (uc.exp >= scale) {
        c_s = static_cast<U128>(uc.sig) << (uc.exp - scale);
    } else {
        c_s = shiftRightSticky128(static_cast<U128>(uc.sig),
                                  scale - uc.exp);
    }
    c_s = (c_s & ~U128{0xffffffffffffffffULL}) |
          detail::touch(ctx, op, Stage::AlignedSigA, 64,
                        static_cast<std::uint64_t>(c_s));

    bool sign;
    U128 sum;
    if (prod_sign == uc.sign) {
        sign = prod_sign;
        sum = prod_s + c_s;
    } else if (prod_s >= c_s) {
        sign = prod_sign;
        sum = prod_s - c_s;
    } else {
        sign = uc.sign;
        sum = c_s - prod_s;
    }
    if (sum == 0)
        return zero(f, mode == Rounding::Downward);

    int exp = scale;
    if (sum >> 64) {
        const int top =
            highestSetBit(static_cast<std::uint64_t>(sum >> 64)) + 64;
        const int shift = top - 62;
        sum = shiftRightSticky128(sum, shift);
        exp += shift;
    }
    return roundPack(f, {sign, exp, static_cast<std::uint64_t>(sum)},
                     ctx, op);
}

} // namespace mparch::fp
