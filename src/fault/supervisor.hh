/**
 * @file
 * Crash-safe campaign supervisor.
 *
 * Wraps the three campaign kinds (memory / datapath / persistent)
 * with the machinery that makes production-scale runs survivable:
 *
 *  - counter-based per-trial RNG (common/rng.hh trialRng), so every
 *    trial is replayable standalone and sharded runs agree exactly
 *    with unsharded ones;
 *  - an append-only trial journal (fault/journal.hh) flushed in
 *    configurable batches — a killed process loses at most one
 *    batch of trials;
 *  - resume: an existing journal is validated against the current
 *    configuration and golden-run fingerprint (refusing to resume
 *    across mismatches), completed trials are skipped, and the
 *    campaign continues where it stopped;
 *  - a structured trial-failure taxonomy with bounded per-trial
 *    retry for transient failures and graceful degradation: a
 *    pathological trial poisons itself, not the campaign, which
 *    completes and reports partial coverage;
 *  - SIGINT/SIGTERM-clean shutdown that flushes the journal and
 *    prints a resume hint.
 *
 * See docs/campaigns.md for the journal format and the operational
 * guide.
 */

#ifndef MPARCH_FAULT_SUPERVISOR_HH
#define MPARCH_FAULT_SUPERVISOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/journal.hh"

namespace mparch::fault {

/**
 * Why a trial (or the whole campaign) needed supervisor attention.
 *
 *  - HangWatchdog: the tick watchdog aborted the trial; classified
 *    as a DUE (it *is* a campaign outcome), counted here so hangs
 *    are visible separately in reports.
 *  - NonFiniteGolden: the fault-free reference output contains
 *    inf/NaN, so deviation-based classification is meaningless; the
 *    campaign refuses to run (campaign-level, not per-trial).
 *  - WorkloadException: Workload::execute()/reset() threw; retried
 *    up to SupervisorConfig::maxRetries, then the trial is poisoned.
 *  - JournalIo: appending or flushing the journal failed; journaling
 *    is disabled and the campaign continues in memory.
 */
enum class TrialFailure
{
    HangWatchdog,
    NonFiniteGolden,
    WorkloadException,
    JournalIo,
    NumFailures,
};

/** Name of a TrialFailure ("hang-watchdog", ...). */
const char *trialFailureName(TrialFailure failure);

/** Supervisor knobs, separate from the campaign's physics knobs. */
struct SupervisorConfig
{
    /** Journal file. Empty: derive from journalDir, or run without
     *  a journal when that is empty too. */
    std::string journalPath;

    /** Directory for derived journal file names
     *  (<workload>-<precision>-<tag>.mpj); created on demand. */
    std::string journalDir;

    /** Continue from an existing journal instead of truncating it. */
    bool resume = false;

    /** Trials per journal flush; a crash loses at most this many. */
    std::uint64_t batchSize = 256;

    /** Retries per trial before it is abandoned as poisoned. */
    int maxRetries = 2;

    /**
     * Shard this run executes: trial i is owned by shard
     * i % shardCount == shardIndex. Counter-based RNG guarantees
     * that merging all shards' results reproduces the unsharded
     * campaign exactly.
     */
    std::uint64_t shardCount = 1;
    std::uint64_t shardIndex = 0;

    /** Workload factory scale knob, recorded in the journal header
     *  so replay can rebuild the workload. */
    double scale = 1.0;

    /**
     * Worker threads executing trials: 1 runs the classic serial
     * loop, 0 uses every hardware thread, N uses N workers. Trials
     * execute out of order across workers, but outcomes are
     * accumulated and journaled strictly in index order, so the
     * journal bytes and the CampaignResult are identical for every
     * value of this knob (see docs/performance.md).
     */
    unsigned jobs = 1;

    /**
     * Reuse process-cached golden runs (see cachedGoldenRun). Only
     * safe when (workload name, precision, scale, inputSeed) fully
     * identifies the workload — true for factory-made workloads with
     * this config's scale; leave off for hand-built ones.
     */
    bool useGoldenCache = false;

    /** Install SIGINT/SIGTERM handlers for the duration of the run
     *  (flush journal + print resume hint). CLI front-ends enable
     *  this; library/test embeddings usually leave it off. */
    bool handleSignals = false;

    /** Optional cooperative stop: polled between trials. */
    std::function<bool()> shouldStop;
};

/** Outcome of a supervised campaign run. */
struct SupervisedCampaign
{
    /** Aggregated tallies over completed trials (resumed ones
     *  included). */
    CampaignResult result;

    /** Trials this shard owns in total. */
    std::uint64_t planned = 0;

    /** Trials loaded from the journal instead of executed. */
    std::uint64_t resumed = 0;

    /** Retry attempts that were spent (across all trials). */
    std::uint64_t retried = 0;

    /** Trials abandoned after exhausting retries. */
    std::uint64_t poisoned = 0;

    /** Per-cause counters, indexed by TrialFailure. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(TrialFailure::NumFailures)>
        failureCounts{};

    /** True when the run stopped early (signal / shouldStop). */
    bool interrupted = false;

    /** Journal file used, when any. */
    std::string journalPath;

    /** Campaign-level refusal (resume mismatch, non-finite golden,
     *  unopenable journal); empty on a normal run. */
    std::string error;

    /** Completed fraction of the planned trials (1.0 when all ran;
     *  poisoned trials reduce coverage). */
    double
    coverage() const
    {
        return planned ? static_cast<double>(result.trials) /
                             static_cast<double>(planned)
                       : 1.0;
    }

    /** All planned trials accounted for (completed or poisoned). */
    bool
    complete() const
    {
        return error.empty() && !interrupted &&
               result.trials + poisoned == planned;
    }
};

/**
 * Build the per-trial runner for any campaign kind (the supervisor's
 * and the replay tool's common factory).
 *
 * @param golden Optional pre-computed golden run to share (the
 *               golden-run cache); null recomputes it.
 */
std::unique_ptr<TrialRunner>
makeTrialRunner(workloads::Workload &w, CampaignKind kind,
                const CampaignConfig &config,
                fp::OpKind kind_filter = fp::OpKind::NumKinds,
                const std::vector<EngineAllocation> &engines = {},
                std::shared_ptr<const GoldenRun> golden = nullptr);

/**
 * Run one campaign under supervision.
 *
 * @param w           Workload (reset per trial, like the plain
 *                    campaign functions).
 * @param kind        Which campaign protocol to run.
 * @param config      Campaign physics knobs.
 * @param supervisor  Robustness knobs (journal, resume, shards...).
 * @param kind_filter Datapath campaigns: restrict to one op kind.
 * @param engines     Persistent campaigns: engine allocations.
 */
SupervisedCampaign
runSupervisedCampaign(workloads::Workload &w, CampaignKind kind,
                      const CampaignConfig &config,
                      const SupervisorConfig &supervisor,
                      fp::OpKind kind_filter = fp::OpKind::NumKinds,
                      const std::vector<EngineAllocation> &engines = {});

/**
 * Arch-model helper: supervised run when the supervisor options
 * carry a journal destination, plain in-memory supervised run
 * otherwise. @p tag disambiguates the derived journal file when one
 * study runs several campaigns per workload ("datapath", "bram"...).
 */
SupervisedCampaign
runCampaign(workloads::Workload &w, CampaignKind kind,
            const CampaignConfig &config,
            const SupervisorConfig &supervisor, const std::string &tag,
            fp::OpKind kind_filter = fp::OpKind::NumKinds,
            const std::vector<EngineAllocation> &engines = {});

/** Result of replaying one journaled trial. */
struct ReplayResult
{
    /** Fresh re-execution of the trial, with the fault site
     *  described (TrialOutcome::description). */
    TrialOutcome trial;

    /** The journaled record for the same index, when present. */
    TrialRecord journaled;
    bool hasJournaled = false;

    /** True when the journaled outcome matches the re-execution. */
    bool consistent = true;

    /** Non-empty when the replay could not run. */
    std::string error;
};

/**
 * Re-execute one journaled trial standalone and dump its anatomy.
 *
 * The caller rebuilds the workload from the journal header
 * (name/precision/scale); this function validates the golden-run
 * fingerprint, derives the trial's RNG stream from (seed, index)
 * and runs exactly that trial.
 */
ReplayResult replayTrial(workloads::Workload &w,
                         const Journal &journal, std::uint64_t index);

} // namespace mparch::fault

#endif // MPARCH_FAULT_SUPERVISOR_HH
