file(REMOVE_RECURSE
  "CMakeFiles/fig2_fpga_resources.dir/fig2_fpga_resources.cpp.o"
  "CMakeFiles/fig2_fpga_resources.dir/fig2_fpga_resources.cpp.o.d"
  "fig2_fpga_resources"
  "fig2_fpga_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
