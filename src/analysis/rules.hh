/**
 * @file
 * Internal declarations shared by the rule implementation files.
 *
 * Each rules_*.cc defines one Rule subclass and exposes it through a
 * singleton accessor; rules.cc assembles the registry in catalogue
 * order. Token-walking helpers used by several rules live here too.
 */

#ifndef MPARCH_ANALYSIS_RULES_HH
#define MPARCH_ANALYSIS_RULES_HH

#include <cstddef>

#include "analysis/lint.hh"

namespace mparch::analysis {

const Rule &bannedApiRule();
const Rule &rngDisciplineRule();
const Rule &orderedSerializationRule();
const Rule &hookCoverageRule();
const Rule &includeHygieneRule();
const Rule &registryShimRule();

namespace detail {

/** True if code[i] is qualified by a preceding `std::` or `::`. */
inline bool
stdQualified(const std::vector<Token> &code, std::size_t i)
{
    if (i < 1 || !code[i - 1].isPunct("::"))
        return false;
    return i < 2 || code[i - 2].isIdent("std") ||
           !(code[i - 2].kind == TokKind::Identifier);
}

/** True if code[i] is a member access (`.name` / `->name`). */
inline bool
memberAccess(const std::vector<Token> &code, std::size_t i)
{
    return i >= 1 &&
           (code[i - 1].isPunct(".") || code[i - 1].isPunct("->"));
}

/** Index of the `)` matching an opening `(` at @p open; npos-like
 *  code.size() if unbalanced. */
inline std::size_t
matchParen(const std::vector<Token> &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t j = open; j < code.size(); ++j) {
        if (code[j].isPunct("("))
            ++depth;
        else if (code[j].isPunct(")") && --depth == 0)
            return j;
    }
    return code.size();
}

/** Start of the declaration/signature that owns the brace at
 *  @p open: the token after the previous `;`, `{` or `}`. */
inline std::size_t
signatureBegin(const std::vector<Token> &code, std::size_t open)
{
    std::size_t begin = open;
    while (begin > 0) {
        const Token &t = code[begin - 1];
        if (t.isPunct(";") || t.isPunct("{") || t.isPunct("}"))
            break;
        --begin;
    }
    return begin;
}

} // namespace detail

} // namespace mparch::analysis

#endif // MPARCH_ANALYSIS_RULES_HH
