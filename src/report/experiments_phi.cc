/**
 * @file
 * Registry entries for the paper's Xeon Phi section (Section 5):
 * Table 2 and Figures 6-9 on the Knights Corner.
 */

#include <cmath>

#include "arch/phi/phi.hh"
#include "report/experiments.hh"
#include "workloads/workload.hh"

namespace mparch::report {

namespace {

using fp::Precision;

const std::vector<Precision> kPhiPrecisions = {Precision::Double,
                                               Precision::Single};

Experiment
table2PhiTime()
{
    Experiment e;
    e.id = "table2_phi_time";
    e.paperRef = "Table 2";
    e.kind = ExperimentKind::PaperTable;
    e.title = "Table 2: Xeon Phi execution time [s] (model vs "
              "paper)";
    e.shapeTarget = "single ~35% faster for LavaMD/LUD, ~13% slower "
                    "for MxM";
    e.defaultTrials = 0;
    e.defaultScale = 0.3;
    e.quick = true;
    e.paper = {{"lavamd/double/time", 1.307},
               {"lavamd/single/time", 0.801},
               {"mxm/double/time", 10.612},
               {"mxm/single/time", 12.028},
               {"lud/double/time", 1.264},
               {"lud/single/time", 0.818}};
    e.timings = {{"lud", kPhiPrecisions}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "model[s]",
                     "model single/double", "paper[s]",
                     "paper single/double"});
        for (const std::string name : {"lavamd", "mxm", "lud"}) {
            double model_double = 0.0;
            const double paper_double =
                self.paperValue(name + "/double/time");
            for (auto p : kPhiPrecisions) {
                auto w = workloads::makeWorkload(name, p, scale);
                const auto golden = reportGoldenRun(*w, scale);
                const double t = phi::phiTimeSeconds(*w, *golden);
                if (p == Precision::Double)
                    model_double = t;
                const double paper_t = self.paperValue(
                    name + "/" + precisionLabel(p) + "/time");
                table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({t, 7})
                    .cell({t / model_double, 3})
                    .cell({paper_t, 3})
                    .cell({paper_t / paper_double, 3});
            }
        }
        return doc;
    };
    e.checks = {
        ratioWithin("lavamd-single-speedup",
                    "single runs LavaMD substantially faster than "
                    "double (paper ratio: 0.613)",
                    sel("model[s]", {{"benchmark", "lavamd"},
                                     {"precision", "single"}}),
                    sel("model[s]", {{"benchmark", "lavamd"},
                                     {"precision", "double"}}),
                    0.40, 0.80),
        ratioWithin("lud-single-speedup",
                    "single runs LUD substantially faster than "
                    "double (paper ratio: 0.647)",
                    sel("model[s]", {{"benchmark", "lud"},
                                     {"precision", "single"}}),
                    sel("model[s]", {{"benchmark", "lud"},
                                     {"precision", "double"}}),
                    0.45, 0.85),
        exceeds("mxm-single-slower",
                "single runs MxM *slower* than double (the paper's "
                "prefetch-coverage finding, ratio 1.133)",
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "single"}}),
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "double"}})),
    };
    return e;
}

Experiment
fig6PhiFit()
{
    Experiment e;
    e.id = "fig6_phi_fit";
    e.paperRef = "Figure 6";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 6: Xeon Phi SDC and DUE FIT (a.u.)";
    e.shapeTarget = "SDC: single > double for LavaMD/MxM, equal for "
                    "LUD; DUE: single > double everywhere";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.paper = {{"lavamd/vreg-growth", 0.33},
               {"mxm/vreg-growth", 0.47},
               {"lud/vreg-growth", 0.0}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main",
            {"benchmark", "precision", "vregs", "fit-sdc(a.u.)",
             "fit-due(a.u.)", "sdc single/double",
             "due single/double"});
        for (const std::string name : {"lavamd", "mxm", "lud"}) {
            const auto result = runStudyFor(
                core::Architecture::XeonPhi, name, self, ctx);
            const auto *d = result.find(Precision::Double);
            const auto *s = result.find(Precision::Single);
            for (const auto *row : {d, s}) {
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row->precision))
                    .cell(static_cast<std::int64_t>(
                        row->vectorRegisters))
                    .cell({row->fitSdc, 0})
                    .cell({row->fitDue, 0})
                    .cell({row == s ? s->fitSdc / d->fitSdc : 1.0,
                           2})
                    .cell({row == s ? s->fitDue / d->fitDue : 1.0,
                           2});
            }
        }
        return doc;
    };
    e.checks = {
        exceeds("lavamd-sdc-single-higher",
                "single's SDC FIT exceeds double's for LavaMD (33% "
                "more vector registers)",
                sel("fit-sdc(a.u.)", {{"benchmark", "lavamd"},
                                      {"precision", "single"}}),
                sel("fit-sdc(a.u.)", {{"benchmark", "lavamd"},
                                      {"precision", "double"}}),
                1.10),
        exceeds("mxm-sdc-single-higher",
                "single's SDC FIT exceeds double's for MxM (47% "
                "more vector registers)",
                sel("fit-sdc(a.u.)", {{"benchmark", "mxm"},
                                      {"precision", "single"}}),
                sel("fit-sdc(a.u.)", {{"benchmark", "mxm"},
                                      {"precision", "double"}}),
                1.10),
        ratioWithin("lud-sdc-equal",
                    "LUD's SDC FIT is precision-insensitive (same "
                    "register allocation both builds)",
                    sel("fit-sdc(a.u.)", {{"benchmark", "lud"},
                                          {"precision", "single"}}),
                    sel("fit-sdc(a.u.)", {{"benchmark", "lud"},
                                          {"precision", "double"}}),
                    0.85, 1.15),
        exceeds("lavamd-due-single-higher",
                "single's DUE FIT exceeds double's for LavaMD (16 "
                "lanes carry twice the control bits)",
                sel("fit-due(a.u.)", {{"benchmark", "lavamd"},
                                      {"precision", "single"}}),
                sel("fit-due(a.u.)", {{"benchmark", "lavamd"},
                                      {"precision", "double"}}),
                1.10),
        exceeds("mxm-due-single-higher",
                "single's DUE FIT exceeds double's for MxM",
                sel("fit-due(a.u.)", {{"benchmark", "mxm"},
                                      {"precision", "single"}}),
                sel("fit-due(a.u.)", {{"benchmark", "mxm"},
                                      {"precision", "double"}}),
                1.10),
        exceeds("lud-due-single-higher",
                "single's DUE FIT exceeds double's for LUD",
                sel("fit-due(a.u.)", {{"benchmark", "lud"},
                                      {"precision", "single"}}),
                sel("fit-due(a.u.)", {{"benchmark", "lud"},
                                      {"precision", "double"}}),
                1.10),
    };
    return e;
}

Experiment
fig7PhiPvf()
{
    Experiment e;
    e.id = "fig7_phi_pvf";
    e.paperRef = "Figure 7";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 7: Xeon Phi PVF";
    e.shapeTarget = "PVF(single) ~= PVF(double) for every code";
    e.defaultTrials = 500;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"benchmark", "pvf-double", "pvf-single",
                     "|difference|"});
        for (const std::string name : {"lavamd", "mxm", "lud"}) {
            const auto result = runStudyFor(
                core::Architecture::XeonPhi, name, self, ctx);
            const double pd =
                result.find(Precision::Double)->pvf;
            const double ps =
                result.find(Precision::Single)->pvf;
            table.row()
                .cell(name)
                .cell({pd, 3})
                .cell({ps, 3})
                .cell({std::abs(pd - ps), 3});
        }
        return doc;
    };
    e.checks = {
        allBelow("pvf-precision-insensitive",
                 "PVF differs by < 0.05 between single and double "
                 "for every code (precision changes how often "
                 "faults occur, not how they propagate)",
                 sel("|difference|"), 0.05),
        allAbove("lud-pvf-near-one",
                 "LUD's PVF is near 1 (every element feeds the "
                 "decomposition)",
                 sel("pvf-double", {{"benchmark", "lud"}}), 0.90),
    };
    return e;
}

Experiment
fig8PhiTre()
{
    Experiment e;
    e.id = "fig8_phi_tre";
    e.paperRef = "Figure 8";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 8: Xeon Phi FIT reduction vs TRE";
    e.shapeTarget = "double reduces faster for LUD and (slightly) "
                    "MxM; paper's LavaMD inversion is a documented "
                    "deviation";
    e.defaultTrials = 500;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &summary = doc.addTable(
            "remaining-at-tre",
            {"benchmark", "double@0.1%", "single@0.1%"});
        for (const std::string name : {"lavamd", "mxm", "lud"}) {
            const auto result = runStudyFor(
                core::Architecture::XeonPhi, name, self, ctx);
            const auto *d = result.find(Precision::Double);
            const auto *s = result.find(Precision::Single);
            auto &curve = doc.addTable(
                name, {"tre", "double-remaining",
                       "single-remaining"});
            for (std::size_t i = 0; i < d->tre.thresholds.size();
                 ++i) {
                curve.row()
                    .cell({d->tre.thresholds[i], 4})
                    .cell({d->tre.remaining[i], 3})
                    .cell({s->tre.remaining[i], 3});
            }
            summary.row()
                .cell(name)
                .cell({d->tre.remaining[2], 3})
                .cell({s->tre.remaining[2], 3});
        }
        doc.notes.push_back(
            "Known deviation (EXPERIMENTS.md): the paper's LavaMD "
            "inversion (single reducing faster) needs the KNC's "
            "table-based transcendental unit; our polynomial exp() "
            "attenuates in-chain faults, so double reduces faster "
            "here too.");
        return doc;
    };
    e.checks = {
        exceeds("lud-double-reduces-faster",
                "double's FIT reduces faster than single's for LUD "
                "(less remains at 0.1% TRE)",
                sel("single@0.1%", {{"benchmark", "lud"}},
                    "remaining-at-tre"),
                sel("double@0.1%", {{"benchmark", "lud"}},
                    "remaining-at-tre")),
        exceeds("mxm-double-reduces-faster",
                "double's FIT reduces faster than single's for MxM",
                sel("single@0.1%", {{"benchmark", "mxm"}},
                    "remaining-at-tre"),
                sel("double@0.1%", {{"benchmark", "mxm"}},
                    "remaining-at-tre")),
    };
    return e;
}

Experiment
fig9PhiMebf()
{
    Experiment e;
    e.id = "fig9_phi_mebf";
    e.paperRef = "Figure 9";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 9: Xeon Phi MEBF (a.u.)";
    e.shapeTarget = "single wins LavaMD and LUD; double wins MxM";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"benchmark", "mebf-double", "mebf-single",
                     "single/double", "winner"});
        for (const std::string name : {"lavamd", "mxm", "lud"}) {
            const auto result = runStudyFor(
                core::Architecture::XeonPhi, name, self, ctx);
            const double md =
                result.find(Precision::Double)->mebf;
            const double ms =
                result.find(Precision::Single)->mebf;
            table.row()
                .cell(name)
                .cell({md, 4})
                .cell({ms, 4})
                .cell({ms / md, 2})
                .cell(ms > md ? "single" : "double");
        }
        return doc;
    };
    e.checks = {
        exceeds("lavamd-single-wins",
                "single's MEBF beats double's for LavaMD (the "
                "speedup outruns the higher FIT)",
                sel("mebf-single", {{"benchmark", "lavamd"}}),
                sel("mebf-double", {{"benchmark", "lavamd"}})),
        exceeds("lud-single-wins",
                "single's MEBF beats double's for LUD",
                sel("mebf-single", {{"benchmark", "lud"}}),
                sel("mebf-double", {{"benchmark", "lud"}})),
        exceeds("mxm-double-wins",
                "double's MEBF beats single's for MxM (single is "
                "both slower and more exposed)",
                sel("mebf-double", {{"benchmark", "mxm"}}),
                sel("mebf-single", {{"benchmark", "mxm"}})),
    };
    return e;
}

} // namespace

void
addPhiExperiments(std::vector<Experiment> &out)
{
    out.push_back(table2PhiTime());
    out.push_back(fig6PhiFit());
    out.push_back(fig7PhiPvf());
    out.push_back(fig8PhiTre());
    out.push_back(fig9PhiMebf());
}

} // namespace mparch::report
