/**
 * @file
 * Mixed-precision GEMM (extension workload).
 *
 * Volta's headline mixed-precision feature — absent from the paper's
 * benchmarks but implied by its title — is the tensor-core contract:
 * half-precision storage and multiplies with single-precision
 * accumulation. This workload implements exactly that contract on
 * the softfloat core (half operands widened exactly to single, FMA
 * accumulated in single), so campaigns can answer the natural
 * follow-up question: does mixed-precision accumulation keep half's
 * exposure benefits while recovering double-like criticality?
 */

#ifndef MPARCH_WORKLOADS_MXM_MIXED_HH
#define MPARCH_WORKLOADS_MXM_MIXED_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** GEMM with half storage and single-precision accumulation. */
class MxMMixedWorkload : public Workload
{
  public:
    using Half = fp::Fp<fp::Precision::Half>;
    using Single = fp::Fp<fp::Precision::Single>;

    /** @param scale Problem-size knob (matches MxMWorkload). */
    explicit MxMMixedWorkload(double scale = 1.0)
    {
        n_ = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   40.0 * std::cbrt(std::max(scale, 1e-3)))));
        a_.resize(n_ * n_);
        b_.resize(n_ * n_);
        c_.resize(n_ * n_);
    }

    std::string name() const override { return "mxm-mixed"; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<MxMMixedWorkload>(*this);
    }

    /** The compute (accumulation) precision. */
    fp::Precision
    precision() const override
    {
        return fp::Precision::Single;
    }

    /** Matrix dimension. */
    std::size_t dim() const { return n_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (auto &v : a_)
            v = Half::fromDouble(rng.uniform(-1.0, 1.0));
        for (auto &v : b_)
            v = Half::fromDouble(rng.uniform(-1.0, 1.0));
        std::fill(c_.begin(), c_.end(), Single{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        const fp::Format h = fp::kHalf;
        const fp::Format s = fp::kSingle;
        for (std::size_t i = 0; i < n_; ++i) {
            env.tick();
            if (env.aborted())
                return;
            for (std::size_t j = 0; j < n_; ++j) {
                std::uint64_t acc = 0;  // +0.0f
                for (std::size_t k = 0; k < n_; ++k) {
                    // Tensor-core contract: widen half operands
                    // exactly, multiply-accumulate in single.
                    const std::uint64_t wa = fp::fpConvert(
                        s, h, a_[i * n_ + k].bits());
                    const std::uint64_t wb = fp::fpConvert(
                        s, h, b_[k * n_ + j].bits());
                    acc = fp::fpFma(s, wa, wb, acc);
                }
                c_[i * n_ + j] = Single::fromBits(acc);
            }
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("A", a_), makeBufferView("B", b_),
                makeBufferView("C", c_)};
    }

    BufferView output() override { return makeBufferView("C", c_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 3;
        d.inputStreams = 2;
        d.arithmeticIntensity = 0.5;
        d.branchDensity = 0.04;
        return d;
    }

  private:
    std::size_t n_ = 0;
    std::vector<Half> a_, b_;
    std::vector<Single> c_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_MXM_MIXED_HH
