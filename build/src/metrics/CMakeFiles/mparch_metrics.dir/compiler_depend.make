# Empty compiler generated dependencies file for mparch_metrics.
# This may be replaced when dependencies are built.
