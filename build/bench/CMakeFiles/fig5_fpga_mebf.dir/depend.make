# Empty dependencies file for fig5_fpga_mebf.
# This may be replaced when dependencies are built.
