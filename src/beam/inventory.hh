/**
 * @file
 * Exposed-resource inventories and the analytic FIT estimator.
 *
 * The paper explains its beam results by decomposing FIT into "the
 * probability of a fault to occur" (how many sensitive bits are
 * exposed) times "the probability of a fault to propagate to the
 * output" (AVF/PVF, measured by injection) — Section 5.2. The
 * ResourceInventory encodes the first factor per resource class; the
 * architecture models fill in measured AVFs for the second.
 */

#ifndef MPARCH_BEAM_INVENTORY_HH
#define MPARCH_BEAM_INVENTORY_HH

#include <string>
#include <vector>

#include "beam/sensitivity.hh"

namespace mparch::beam {

/** One class of exposed resource with its measured vulnerability. */
struct ResourceEntry
{
    std::string name;       ///< e.g. "fp32-datapath", "vpu-control"
    BitClass bitClass = BitClass::DatapathLatch;
    double bits = 0.0;      ///< sensitive bits exposed on average
    double avfSdc = 0.0;    ///< P(upset here -> SDC), measured
    double avfDue = 0.0;    ///< P(upset here -> DUE)
};

/** The full exposure picture of one (device, workload, precision). */
struct ResourceInventory
{
    Node node = Node::Gpu12nm;
    std::vector<ResourceEntry> entries;

    /** Analytic SDC FIT in arbitrary units. */
    double
    fitSdc() const
    {
        double fit = 0.0;
        for (const auto &e : entries)
            fit += e.bits * bitSensitivity(node, e.bitClass) * e.avfSdc;
        return fit;
    }

    /** Analytic DUE FIT in arbitrary units. */
    double
    fitDue() const
    {
        double fit = 0.0;
        for (const auto &e : entries)
            fit += e.bits * bitSensitivity(node, e.bitClass) * e.avfDue;
        return fit;
    }

    /** Total raw fault arrival rate (before propagation masking). */
    double
    rawRate() const
    {
        double rate = 0.0;
        for (const auto &e : entries)
            rate += e.bits * bitSensitivity(node, e.bitClass);
        return rate;
    }
};

} // namespace mparch::beam

#endif // MPARCH_BEAM_INVENTORY_HH
