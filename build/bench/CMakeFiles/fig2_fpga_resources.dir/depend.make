# Empty dependencies file for fig2_fpga_resources.
# This may be replaced when dependencies are built.
