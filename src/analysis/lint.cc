#include "analysis/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace mparch::analysis {

namespace {

std::string
normalizeSlashes(std::string path)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    return path;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Classify every brace in the code stream and record function-body
 * ranges. Heuristic but calibrated against this codebase's style;
 * rules only depend on the Namespace/Type/Function distinction.
 */
void
analyzeStructure(SourceFile &file)
{
    const auto &code = file.code;
    file.scope.assign(code.size(), ScopeKind::Namespace);
    std::vector<std::pair<ScopeKind, std::size_t>> stack;

    auto classify = [&](std::size_t i) -> ScopeKind {
        const ScopeKind outer =
            stack.empty() ? ScopeKind::Namespace : stack.back().first;
        // Walk back to the previous statement boundary.
        std::size_t begin = i;
        while (begin > 0) {
            const Token &t = code[begin - 1];
            if (t.isPunct(";") || t.isPunct("{") || t.isPunct("}"))
                break;
            --begin;
        }
        bool sawClassKey = false;
        bool sawNamespace = false;
        bool sawEquals = false;
        int parenDepth = 0;
        for (std::size_t j = begin; j < i; ++j) {
            const Token &t = code[j];
            if (t.isPunct("("))
                ++parenDepth;
            else if (t.isPunct(")"))
                --parenDepth;
            else if (parenDepth == 0 &&
                     (t.isIdent("class") || t.isIdent("struct") ||
                      t.isIdent("union") || t.isIdent("enum")))
                sawClassKey = true;
            else if (parenDepth == 0 && t.isIdent("namespace"))
                sawNamespace = true;
            else if (parenDepth == 0 && t.isPunct("="))
                sawEquals = true;
        }
        if (sawNamespace)
            return ScopeKind::Namespace;
        if (i > 0) {
            const Token &prev = code[i - 1];
            if (prev.kind == TokKind::String && begin + 1 == i)
                return ScopeKind::Namespace;  // extern "C"
        }
        if (sawClassKey && !sawEquals)
            return ScopeKind::Type;
        if (outer == ScopeKind::Function || outer == ScopeKind::Block) {
            // Inside a function: distinguish nested statement blocks
            // and lambda/local-struct bodies from brace initializers.
            if (i == 0)
                return ScopeKind::Block;
            const Token &prev = code[i - 1];
            if (prev.isPunct("{") || prev.isPunct("}") ||
                prev.isPunct(";") || prev.isIdent("else") ||
                prev.isIdent("do") || prev.isIdent("try"))
                return ScopeKind::Block;
            if (prev.isPunct(")")) {
                // `) {` is a lambda body unless the paren group is a
                // control-flow head (if/for/while/switch/catch).
                int depth = 0;
                std::size_t j = i - 1;
                for (; j > 0; --j) {
                    if (code[j].isPunct(")"))
                        ++depth;
                    else if (code[j].isPunct("(") && --depth == 0)
                        break;
                }
                if (j > 0) {
                    const Token &head = code[j - 1];
                    if (head.isIdent("if") || head.isIdent("for") ||
                        head.isIdent("while") ||
                        head.isIdent("switch") ||
                        head.isIdent("catch"))
                        return ScopeKind::Block;
                }
                return ScopeKind::Function;  // lambda / local fn
            }
            if (prev.isIdent("noexcept") || prev.isIdent("mutable") ||
                prev.isPunct("]"))
                return ScopeKind::Function;  // lambda
            return ScopeKind::Init;
        }
        // Namespace or type scope: a `)`-trailer means a function
        // body (possibly through const/noexcept/override/-> type).
        for (std::size_t j = i; j > begin; --j) {
            const Token &t = code[j - 1];
            if (t.isPunct(")"))
                return ScopeKind::Function;
            if (t.kind == TokKind::Identifier &&
                (t.text == "const" || t.text == "noexcept" ||
                 t.text == "override" || t.text == "final" ||
                 t.text == "try"))
                continue;
            if (t.isPunct("->") || t.kind == TokKind::Identifier ||
                t.isPunct("::") || t.isPunct("<") || t.isPunct(">") ||
                t.isPunct("&") || t.isPunct("*") || t.isPunct(":") ||
                t.isPunct(",") || t.kind == TokKind::Number)
                continue;
            break;
        }
        if (sawEquals)
            return ScopeKind::Init;
        return ScopeKind::Type;  // brace-init of a member, etc.
    };

    for (std::size_t i = 0; i < code.size(); ++i) {
        file.scope[i] =
            stack.empty() ? ScopeKind::Namespace : stack.back().first;
        if (code[i].isPunct("{")) {
            const ScopeKind kind = classify(i);
            stack.emplace_back(kind, i);
        } else if (code[i].isPunct("}")) {
            if (!stack.empty()) {
                if (stack.back().first == ScopeKind::Function)
                    file.functions.emplace_back(stack.back().second, i);
                stack.pop_back();
            }
        }
    }
}

void
finishSource(SourceFile &file)
{
    file.tokens = lex(file.content);
    file.code.clear();
    for (const Token &t : file.tokens)
        if (t.kind != TokKind::Comment)
            file.code.push_back(t);
    file.lineCount =
        static_cast<std::size_t>(std::count(file.content.begin(),
                                            file.content.end(), '\n'));
    if (!file.content.empty() && file.content.back() != '\n')
        ++file.lineCount;
    analyzeStructure(file);
}

/** One parsed `mparch-lint:` comment. */
struct Suppression
{
    unsigned line = 0;
    bool aloneOnLine = false;
    std::string rule;
    std::string reason;
};

std::string
trimCopy(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    std::size_t e = s.find_last_not_of(" \t.");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/**
 * Parse suppressions out of comment tokens. Malformed ones (no
 * allow() clause, unknown rule, missing reason) become findings of
 * the pseudo-rule "lint-suppression".
 */
std::vector<Suppression>
collectSuppressions(const SourceFile &file, std::vector<Finding> &out)
{
    std::vector<Suppression> sups;
    static const std::string kTag = "mparch-lint:";
    for (const Token &t : file.tokens) {
        if (t.kind != TokKind::Comment)
            continue;
        const std::size_t tag = t.text.find(kTag);
        if (tag == std::string::npos)
            continue;
        // Only a tag that opens the comment (after decoration
        // characters) is a suppression attempt; prose that merely
        // mentions the syntax mid-comment is ignored.
        const bool anchored = std::all_of(
            t.text.begin(),
            t.text.begin() + static_cast<std::ptrdiff_t>(tag),
            [](char c) {
                return c == '/' || c == '*' || c == '!' ||
                       c == '<' || c == ' ' || c == '\t' ||
                       c == '\n' || c == '\r';
            });
        if (!anchored)
            continue;
        auto bad = [&](const std::string &why) {
            Finding f;
            f.rule = suppressionRuleName();
            f.path = file.path;
            f.line = t.line;
            f.col = t.col;
            f.message = why;
            f.hint = "write `// mparch-lint: allow(<rule>): <reason>` "
                     "with a non-empty reason";
            out.push_back(std::move(f));
        };
        std::string rest = t.text.substr(tag + kTag.size());
        // Strip a block-comment terminator if present.
        if (const std::size_t end = rest.find("*/");
            end != std::string::npos)
            rest = rest.substr(0, end);
        const std::size_t allow = rest.find("allow(");
        if (allow == std::string::npos) {
            bad("mparch-lint comment without an allow(<rule>) clause");
            continue;
        }
        const std::size_t open = allow + 5;
        const std::size_t close = rest.find(')', open);
        if (close == std::string::npos) {
            bad("unterminated allow( clause");
            continue;
        }
        Suppression s;
        s.line = t.line;
        s.rule = trimCopy(rest.substr(open + 1, close - open - 1));
        std::string reason = rest.substr(close + 1);
        if (!reason.empty() && (reason[0] == ':' || reason[0] == '-'))
            reason = reason.substr(reason.find_first_not_of(":- "));
        s.reason = trimCopy(reason);
        if (s.rule.empty() ||
            (findRule(s.rule) == nullptr &&
             s.rule != suppressionRuleName())) {
            bad("allow() names unknown rule '" + s.rule + "'");
            continue;
        }
        if (s.reason.empty()) {
            bad("allow(" + s.rule +
                ") without a reason — suppressions must be justified");
            continue;
        }
        s.aloneOnLine = std::none_of(
            file.code.begin(), file.code.end(),
            [&](const Token &c) { return c.line == t.line; });
        sups.push_back(std::move(s));
    }
    return sups;
}

void
applySuppressions(const std::vector<Suppression> &sups,
                  std::vector<Finding> &findings)
{
    for (Finding &f : findings) {
        if (f.rule == suppressionRuleName())
            continue;  // meta-findings cannot be waived inline
        for (const Suppression &s : sups) {
            if (s.rule != f.rule)
                continue;
            const bool sameLine = s.line == f.line;
            const bool lineAbove =
                s.aloneOnLine && s.line + 1 == f.line;
            if (sameLine || lineAbove) {
                f.suppressed = true;
                f.suppressReason = s.reason;
                break;
            }
        }
    }
}

} // namespace

bool
SourceFile::isHeader() const
{
    return hasSuffix(path, ".hh") || hasSuffix(path, ".h") ||
           hasSuffix(path, ".hpp");
}

bool
SourceFile::isBenchShim() const
{
    return pathHas("bench") && hasSuffix(path, ".cpp");
}

bool
SourceFile::pathHas(const std::string &part) const
{
    const std::string needle = "/" + part + "/";
    const std::string padded = "/" + path;
    return padded.find(needle) != std::string::npos;
}

std::string
SourceFile::stem() const
{
    const std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

std::vector<std::string>
SourceFile::quotedIncludes() const
{
    std::vector<std::string> result;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind == TokKind::Directive &&
            code[i].text == "include" &&
            code[i + 1].kind == TokKind::String) {
            const std::string &spelling = code[i + 1].text;
            if (spelling.size() >= 2)
                result.push_back(
                    spelling.substr(1, spelling.size() - 2));
        }
    }
    return result;
}

bool
SourceFile::includes(const std::string &header) const
{
    const auto list = quotedIncludes();
    return std::find(list.begin(), list.end(), header) != list.end();
}

SourceFile
sourceFromString(const std::string &path, const std::string &content)
{
    SourceFile file;
    file.path = normalizeSlashes(path);
    file.content = content;
    finishSource(file);
    return file;
}

bool
loadSource(const std::string &path, SourceFile &out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = sourceFromString(path, buffer.str());
    return true;
}

std::size_t
LintReport::active() const
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding &f) { return !f.suppressed; }));
}

std::size_t
LintReport::suppressedCount() const
{
    return findings.size() - active();
}

void
lintFile(const SourceFile &file, const LintOptions &options,
         LintReport &report)
{
    std::vector<Finding> found;
    const std::vector<Suppression> sups =
        collectSuppressions(file, found);
    for (const Rule *rule : allRules()) {
        if (!options.onlyRules.empty() &&
            std::find(options.onlyRules.begin(),
                      options.onlyRules.end(),
                      rule->name()) == options.onlyRules.end())
            continue;
        rule->check(file, found);
    }
    applySuppressions(sups, found);
    std::sort(found.begin(), found.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
    ++report.filesScanned;
    for (Finding &f : found)
        report.findings.push_back(std::move(f));
}

namespace {

bool
lintableExtension(const std::string &path)
{
    return hasSuffix(path, ".cc") || hasSuffix(path, ".cpp") ||
           hasSuffix(path, ".hh") || hasSuffix(path, ".h") ||
           hasSuffix(path, ".hpp");
}

bool
skipDirectory(const std::string &name)
{
    // Fixture corpora and build trees never join a parent sweep.
    return name == "data" || name.rfind("build", 0) == 0 ||
           name.rfind(".", 0) == 0;
}

void
collectFiles(const std::filesystem::path &dir,
             std::vector<std::string> &files,
             std::vector<std::string> &errors)
{
    std::error_code ec;
    std::vector<std::filesystem::path> entries;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec))
        entries.push_back(it->path());
    if (ec) {
        errors.push_back("cannot read directory " + dir.string() +
                         ": " + ec.message());
        return;
    }
    // Deterministic order regardless of readdir order.
    std::sort(entries.begin(), entries.end());
    for (const auto &entry : entries) {
        std::error_code typeEc;
        if (std::filesystem::is_directory(entry, typeEc)) {
            if (!skipDirectory(entry.filename().string()))
                collectFiles(entry, files, errors);
        } else if (lintableExtension(entry.string())) {
            files.push_back(entry.string());
        }
    }
}

} // namespace

LintReport
lintPaths(const std::vector<std::string> &paths,
          const LintOptions &options)
{
    LintReport report;
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (std::filesystem::is_directory(p, ec)) {
            collectFiles(p, files, report.errors);
        } else if (std::filesystem::exists(p, ec)) {
            files.push_back(p);
        } else {
            report.errors.push_back("no such file or directory: " + p);
        }
    }
    for (const std::string &path : files) {
        SourceFile file;
        std::string error;
        if (!loadSource(path, file, &error)) {
            report.errors.push_back(error);
            continue;
        }
        lintFile(file, options, report);
    }
    return report;
}

void
printReport(const LintReport &report, std::ostream &os,
            bool showSuppressed)
{
    for (const std::string &e : report.errors)
        os << "error: " << e << "\n";
    for (const Finding &f : report.findings) {
        if (f.suppressed && !showSuppressed)
            continue;
        os << f.path << ":" << f.line << ":" << f.col << ": ["
           << f.rule << "] " << f.message;
        if (f.suppressed)
            os << " (suppressed: " << f.suppressReason << ")";
        os << "\n";
        if (!f.hint.empty() && !f.suppressed)
            os << "    hint: " << f.hint << "\n";
    }
    os << report.filesScanned << " files scanned, " << report.active()
       << " findings";
    if (report.suppressedCount() > 0)
        os << " (+" << report.suppressedCount() << " suppressed)";
    os << "\n";
}

} // namespace mparch::analysis
