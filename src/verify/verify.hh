/**
 * @file
 * Differential oracle & exhaustive-verification subsystem for the
 * softfloat core.
 *
 * Every FIT/PVF/MEBF number the campaigns produce rests on mparch::fp
 * being bit-exact IEEE754-2008: a rounding bug in the production
 * datapath is indistinguishable from an injected fault. This
 * subsystem checks the production softfloat against three independent
 * oracles:
 *
 *  1. the host FPU (double/float/_Float16 hardware arithmetic, used
 *     only on paths where it is provably correctly rounded for the
 *     target format — see host_oracle.cc);
 *  2. an exact integer reference (exact significand arithmetic with
 *     one explicit round-to-nearest-even step, implemented
 *     independently of src/fp — see exact_oracle.cc);
 *  3. algebraic and taxonomy properties (commutativity, sign
 *     symmetry, NaN/Inf/subnormal classification, monotonic rounding,
 *     bounded-ULP envelopes for the transcendentals — properties.cc).
 *
 * On top of the oracles sit two engines:
 *
 *  - exhaustive/sampled *sweeps* over whole operand spaces (all 2^32
 *    binary16 pairs per binary op, all 2^16 inputs per unary op),
 *    fanned out over the common/parallel ThreadPool with
 *    deterministic chunking — the mismatch report is byte-identical
 *    for any --jobs;
 *  - a seeded property-based *fuzzer* with a special-value-biased
 *    operand generator and counterexample shrinking, whose failures
 *    are persisted to tests/data/fp_corpus/ and replayed first by
 *    every verify_quick run.
 *
 * All checks run round-to-nearest-even (the only mode the studied
 * hardware uses); directed modes are out of oracle scope.
 */

#ifndef MPARCH_VERIFY_VERIFY_HH
#define MPARCH_VERIFY_VERIFY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "fp/format.hh"

namespace mparch::verify {

/** Operations under verification (Log is distinct here even though
 *  the production core counts it in the Exp op class). */
enum class VOp
{
    Add, Sub, Mul, Div, Fma, Sqrt, Exp, Log, Convert,
    NumOps,
};

/** Name of a VOp ("add", "fma", "convert", ...). */
const char *vopName(VOp op);

/** Parse a VOp name; nullopt for unknown names. */
std::optional<VOp> parseVOp(std::string_view name);

/** Number of operands the op consumes (1, 2 or 3). */
unsigned vopArity(VOp op);

/** All ops, in declaration order. */
inline constexpr VOp allVOps[] = {
    VOp::Add, VOp::Sub, VOp::Mul, VOp::Div, VOp::Fma,
    VOp::Sqrt, VOp::Exp, VOp::Log, VOp::Convert,
};

/** Format name: "half", "single", "double", "bfloat16", "tf32". */
const char *formatName(fp::Format f);

/** Parse a format name; nullopt for unknown names. */
std::optional<fp::Format> parseFormat(std::string_view name);

/**
 * One verification case: an op, its operand format, and operand bit
 * patterns. For Convert, @c fmt is the source and @c dst the
 * destination format; for every other op @c dst is ignored.
 */
struct Case
{
    VOp op = VOp::Add;
    fp::Format fmt = fp::kHalf;
    fp::Format dst = fp::kHalf;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;

    /** Format of the result bit pattern. */
    fp::Format
    resultFormat() const
    {
        return op == VOp::Convert ? dst : fmt;
    }
};

/** Execute the case through the production softfloat core. */
std::uint64_t runProduction(const Case &c);

/** An oracle's verdict: unsupported, or the expected bit pattern. */
struct OracleResult
{
    bool supported = false;
    std::uint64_t bits = 0;
};

/**
 * Oracle 1: host FPU. Supported only where the host computation is
 * provably correctly rounded for the case's result format (see
 * host_oracle.cc for the double-rounding analysis); transcendentals
 * are never host-supported — they get a ULP envelope in the
 * property oracle instead.
 */
OracleResult hostOracle(const Case &c);

/**
 * Oracle 2: exact integer reference with one explicit RNE rounding.
 * Supports every op and every format (exp/log are re-derived from
 * the algorithm spec on top of the reference primitives).
 */
OracleResult exactOracle(const Case &c);

/** Knobs for the property oracle. */
struct PropertyOptions
{
    /**
     * Base ULP tolerance between the in-format transcendental and
     * the host libm result rounded into the format. The production
     * algorithms are *not* correctly rounded (Cody-Waite reduction +
     * finite Horner chain evaluated in-format), so the envelope is a
     * bound, not equality. For exp the checker adds |x * log2e| on
     * top of the base: the reduction replays ln2's representation
     * error k times and exp converts it into ~k/2 result ULPs.
     * Exhaustive 16-bit sweeps measure: exp within the scaled term
     * alone (base 0 suffices), log at most 2 ULPs; the defaults
     * leave a 4x margin.
     */
    int expUlpTol = 8;
    int logUlpTol = 8;
};

/**
 * Oracle 3: algebraic/property checks on a produced result. Returns
 * one human-readable violation string per broken property (empty =
 * clean). Re-executes the production op for the symmetry checks.
 */
std::vector<std::string>
checkProperties(const Case &c, std::uint64_t result,
                const PropertyOptions &opts);

/** A single oracle disagreement (or property violation). */
struct Mismatch
{
    Case c;
    std::uint64_t got = 0;
    std::uint64_t want = 0;      ///< meaningless for property violations
    std::string oracle;          ///< "host", "exact", or "property"
    std::string detail;          ///< free text (property description, ...)
};

/** Multi-line human-readable rendering with a copy-pasteable repro. */
std::string describeMismatch(const Mismatch &m);

/** The case as a corpus file line (see corpus.cc for the grammar). */
std::string corpusLine(const Case &c);

/** A mparch_verify CLI invocation reproducing the case. */
std::string reproCommand(const Case &c);

/** Which oracles to consult. */
struct CheckOptions
{
    bool host = true;
    bool exact = true;
    bool props = true;
    PropertyOptions prop;
};

/**
 * Run one case through the production core and every enabled oracle.
 * Returns true when everything agrees; on disagreement, appends to
 * @p out (when given) and returns false.
 */
bool checkCase(const Case &c, const CheckOptions &opts,
               std::vector<Mismatch> *out = nullptr);

/**
 * Distance between two bit patterns counted in representable values
 * of the format ("ULP distance" on the format grid). Sign-aware;
 * +0 and -0 coincide. Any NaN yields UINT64_MAX.
 */
std::uint64_t ulpDistance(fp::Format f, std::uint64_t x,
                          std::uint64_t y);

// ---------------------------------------------------------------- sweeps

/** Configuration shared by the sweep entry points. */
struct SweepConfig
{
    unsigned jobs = 1;           ///< worker threads; 0 = all hardware
    std::uint64_t samples = 0;   ///< 0 = exhaustive over the operand space
    std::uint64_t seed = 1;      ///< sampled-sweep RNG seed
    std::size_t maxReport = 32;  ///< mismatches kept for the report
    bool checkMonotone = true;   ///< unary/convert sweeps only
    CheckOptions check;
};

/** Outcome of a sweep. Deterministic for any jobs value. */
struct SweepReport
{
    std::uint64_t cases = 0;
    std::uint64_t mismatches = 0;
    std::vector<Mismatch> sample;  ///< first maxReport, operand order

    bool ok() const { return mismatches == 0; }
};

/**
 * Sweep a binary op (Add/Sub/Mul/Div) over operand pairs. Exhaustive
 * (samples == 0) requires a format of at most 16 bits — all 2^32
 * pairs are enumerated, chunked by first operand over the thread
 * pool. Otherwise @c samples pseudo-random biased pairs are drawn
 * from counter-based streams (deterministic in jobs).
 */
SweepReport sweepPairs(VOp op, fp::Format f, const SweepConfig &cfg);

/** Sweep a unary op (Sqrt/Exp/Log) over all (or sampled) inputs. */
SweepReport sweepUnary(VOp op, fp::Format f, const SweepConfig &cfg);

/** Sweep Convert from @p src to @p dst over all (or sampled) inputs. */
SweepReport sweepConvert(fp::Format src, fp::Format dst,
                         const SweepConfig &cfg);

// ---------------------------------------------------------------- fuzz

/** Configuration of a fuzzing run. */
struct FuzzConfig
{
    std::uint64_t trials = 1000000;
    std::uint64_t seed = 1;
    unsigned jobs = 1;           ///< worker threads; 0 = all hardware
    std::vector<VOp> ops;        ///< empty = all ops
    std::size_t maxFailures = 16;
    bool shrink = true;
    CheckOptions check;
};

/** One fuzzer counterexample, original and shrunk. */
struct FuzzFailure
{
    std::uint64_t trial = 0;
    Case original;
    Case shrunk;
    std::vector<Mismatch> mismatches;  ///< of the shrunk case
};

/** Outcome of a fuzzing run. Deterministic for any jobs value. */
struct FuzzReport
{
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
    std::vector<FuzzFailure> sample;  ///< first maxFailures, trial order

    bool ok() const { return failures == 0; }
};

/** Fuzz one format: counter-seeded trials, biased operands. */
FuzzReport fuzzFormat(fp::Format f, const FuzzConfig &cfg);

/**
 * Draw one special-value-biased operand: zeros, infinities, NaN,
 * exact powers of two, boundary mantissas, subnormals and plain
 * random patterns all appear with substantial probability.
 */
std::uint64_t genOperand(Rng &rng, fp::Format f);

/** Draw a whole case (op from @p ops or all, correlated operands). */
Case genCase(Rng &rng, fp::Format f, const std::vector<VOp> &ops);

/**
 * Greedily shrink a failing case to a minimal failing bit pattern:
 * operands are simplified (zeroed, sign-cleared, mantissa bits
 * dropped, exponents pulled toward the bias) while @p fails keeps
 * returning true. Deterministic; at most @p budget evaluations.
 */
Case shrinkCase(Case c, const std::function<bool(const Case &)> &fails,
                int budget = 400);

// ---------------------------------------------------------------- corpus

/**
 * Parse one corpus line. Grammar (one case per line, '#' comments):
 *
 *   <op> <format> <hex operand>...          e.g.  add half 0x3c00 0x3c01
 *   convert <src> <dst> <hex operand>       e.g.  convert single half 0x3f801000
 */
std::optional<Case> parseCorpusLine(std::string_view line,
                                    std::string *error = nullptr);

/** Load every case of one corpus file (fatal on malformed lines). */
std::vector<Case> loadCorpusFile(const std::string &path);

/** Load all *.txt files under @p dir, sorted by filename. */
std::vector<Case> loadCorpusDir(const std::string &dir);

} // namespace mparch::verify

#endif // MPARCH_VERIFY_VERIFY_HH
