#include "arch/gpu/gpu.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "arch/gpu/params.hh"
#include "arch/gpu/sm_sim.hh"
#include "metrics/metrics.hh"

namespace mparch::gpu {

using fp::Precision;
using workloads::Workload;

double
throughputEfficiency(const std::string &workload, Precision p)
{
    // Calibrated against the paper's Table 3 (see params.hh).
    if (workload == "mxm") {
        // Bandwidth-bound without shared-memory tiling: the extra
        // FP32/half2 cores cannot be fed, muting the speedups.
        switch (p) {
          case Precision::Double: return 0.50;
          case Precision::Single: return 0.305;
          case Precision::Half:   return 0.247;
          default:                return 0.247;
        }
    }
    if (workload == "yolite") {
        // The half build converts activations layer-by-layer between
        // half and float (darknet's half path), making half slower
        // than single despite cheaper arithmetic.
        switch (p) {
          case Precision::Double: return 0.50;
          case Precision::Single: return 0.42;
          case Precision::Half:   return 0.059;
          default:                return 0.059;
        }
    }
    // Compute-bound default (LavaMD-like): constant efficiency, so
    // speedups follow the core counts and half2 packing directly.
    return 0.25;
}

namespace {

/**
 * Measured P(scheduler-state upset -> DUE), from the SM simulator's
 * control-injection campaign (memoised per precision). Replaces the
 * assumed kControlDueFactor: the inventory's control entry now uses
 * an AVF that was measured, like every other entry.
 */
double
controlDueAvf(Precision p)
{
    static double cache[4] = {-1.0, -1.0, -1.0, -1.0};
    const auto idx = static_cast<std::size_t>(p);
    if (cache[idx] < 0.0) {
        SmConfig config;
        config.precision = p;
        WarpProgram prog;
        prog.instructions = 128;
        cache[idx] =
            measureControlAvf(config, prog, 1500, 17).avfDue();
    }
    return cache[idx];
}

/** Dependent-chain (latency-bound) micro kernels bypass the
 *  throughput model. */
bool
isMicro(const std::string &name)
{
    return name.rfind("micro-", 0) == 0;
}

} // namespace

double
gpuTimeSeconds(Workload &w, const fault::GoldenRun &golden)
{
    const auto ops = static_cast<double>(golden.ops.totalOps());
    const Precision p = w.precision();
    if (isMicro(w.name())) {
        // 32 dependent chains run in parallel; wall time is the
        // per-thread chain latency.
        const double per_thread = ops / 32.0 / packFactor(p);
        return per_thread * opLatencyCycles(p) * packFactor(p) /
               kClockHz;
    }
    const double issued = ops / packFactor(p);
    const double eff = throughputEfficiency(w.name(), p);
    return issued / (activeCores(p) * kClockHz * eff);
}

GpuEvaluation
evaluateGpu(Workload &w, const GpuOptions &options)
{
    GpuEvaluation eval;
    const fault::GoldenRun golden(w, /*input_seed=*/99);
    const workloads::KernelDesc desc = w.desc();
    const Precision p = w.precision();

    // Functional-unit strikes (beam-like AVF + TRE corpus).
    fault::CampaignConfig dp;
    dp.trials = options.datapathTrials;
    dp.seed = options.seed;
    const auto dp_run =
        fault::runCampaign(w, fault::CampaignKind::Datapath, dp,
                           options.supervisor, "datapath");
    eval.datapathCampaign = dp_run.result;

    // Data residing in caches / registers awaiting use; the Titan V
    // has no ECC (the paper triplicates only the HBM2 contents).
    fault::CampaignConfig mem;
    mem.trials = options.memoryTrials;
    mem.seed = options.seed + 1;
    const auto mem_run =
        fault::runCampaign(w, fault::CampaignKind::Memory, mem,
                           options.supervisor, "memory");
    eval.memoryCampaign = mem_run.result;
    eval.coverage = std::min(dp_run.coverage(), mem_run.coverage());
    eval.poisoned = dp_run.poisoned + mem_run.poisoned;

    // --- Exposure inventory ---------------------------------------
    const double fu_bits =
        static_cast<double>(activeCores(p)) *
        mixDatapathBitsPerCore(golden.ops, p);

    double footprint_bits = 0.0;
    for (const auto &view : w.buffers())
        footprint_bits += static_cast<double>(view.bits());
    const double mem_bits =
        footprint_bits * kResidencyScale /
        std::max(desc.arithmeticIntensity, kResidencyScale);

    // Control exposure scales with branch density; slower precisions
    // keep the sequencers occupied longer per instruction, which is
    // why the paper sees ~2x double-vs-half DUE on the FMA-dominated
    // codes (Section 6.1). opLatency/8 is that occupancy proxy
    // (1.0 double, 0.5 single, 0.375 half).
    const double time_now = gpuTimeSeconds(w, golden);
    const double control_bits =
        kSmCount * kSmControlBits * (0.1 + 25.0 * desc.branchDensity);
    const double due_prob =
        controlDueAvf(p) * (0.5 + 0.5 * opLatencyCycles(p) / 8.0);

    eval.inventory.node = beam::Node::Gpu12nm;
    eval.inventory.entries = {
        {"fu-datapath", beam::BitClass::DatapathLatch, fu_bits,
         eval.datapathCampaign.avfSdc(),
         eval.datapathCampaign.avfDue()},
        {"cache-resident-data", beam::BitClass::SramData, mem_bits,
         eval.memoryCampaign.avfSdc(), eval.memoryCampaign.avfDue()},
        {"sm-control", beam::BitClass::ControlLatch, control_bits,
         0.0, due_prob},
    };
    eval.fitSdc = eval.inventory.fitSdc();
    eval.fitDue = eval.inventory.fitDue();
    eval.timeSeconds = time_now;
    eval.mebf =
        metrics::mebf(eval.fitSdc + eval.fitDue, eval.timeSeconds);
    return eval;
}

} // namespace mparch::gpu
