/**
 * @file
 * Reproduces Figure 9: Mean Executions Between Failures on the Phi.
 *
 * Shape targets: single wins for LavaMD and LUD (its ~35% speedup
 * outruns its higher FIT), while double wins for MxM (single is both
 * slower and more exposed).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 9: Xeon Phi MEBF (a.u.)",
                  "single wins LavaMD and LUD; double wins MxM");

    Table table({"benchmark", "mebf-double", "mebf-single",
                 "single/double", "winner"});
    for (const std::string name : {"lavamd", "mxm", "lud"}) {
        const auto result =
            bench::study(core::Architecture::XeonPhi, name, args);
        const double md = result.find(fp::Precision::Double)->mebf;
        const double ms = result.find(fp::Precision::Single)->mebf;
        table.row()
            .cell(name)
            .cell(md, 4)
            .cell(ms, 4)
            .cell(ms / md, 2)
            .cell(ms > md ? "single" : "double");
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
