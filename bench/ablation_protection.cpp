/**
 * @file
 * Ablation: how much of each device's reliability comes from its
 * memory-protection machinery?
 *
 * The paper's devices differ sharply here: the Xeon Phi's MCA/ECC
 * protects the register file and caches (they never enter the
 * exposure inventory), while the Titan V has no ECC and the authors
 * had to *triplicate* HBM2 contents to keep main-memory strikes out
 * of their data (Section 3.2). This bench recomputes FIT with those
 * protections switched off: Phi with an unprotected register file,
 * GPU with unmirrored HBM2-resident data.
 */

#include "bench_util.hh"

#include "arch/gpu/gpu.hh"
#include "arch/phi/params.hh"
#include "arch/phi/phi.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.2);
    bench::banner("Ablation: ECC / triplication contribution",
                  "unprotected variants must dominate the baseline "
                  "FIT");

    Table phi_table({"benchmark", "precision", "fit-sdc(baseline)",
                     "fit-sdc(no ECC)", "ratio"});
    for (const std::string name : {"lavamd", "lud"}) {
        for (auto p :
             {fp::Precision::Double, fp::Precision::Single}) {
            auto w = workloads::makeWorkload(name, p, args.scale);
            phi::PhiOptions opt;
            opt.pvfTrials = args.trials;
            opt.datapathTrials = args.trials;
            auto eval = phi::evaluatePhi(*w, opt);
            const double base = eval.fitSdc;
            // Without MCA the architectural register file (32 x
            // 512-bit vector registers per core) joins the exposure,
            // propagating with the measured PVF.
            beam::ResourceInventory no_ecc = eval.inventory;
            no_ecc.entries.push_back(
                {"register-file(unprotected)",
                 beam::BitClass::SramData,
                 static_cast<double>(phi::kCores) *
                     phi::kVectorRegisters * phi::kVpuBits,
                 eval.pvfCampaign.avfSdc(), 0.0});
            phi_table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(base, 0)
                .cell(no_ecc.fitSdc(), 0)
                .cell(no_ecc.fitSdc() / base, 1);
        }
    }
    phi_table.setTitle("Xeon Phi: with vs without MCA/ECC");
    phi_table.print(std::cout);

    Table gpu_table({"benchmark", "precision", "fit-sdc(triplicated)",
                     "fit-sdc(raw HBM2)", "ratio"});
    for (const std::string name : {"mxm", "lavamd"}) {
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload(name, p, args.scale);
            gpu::GpuOptions opt;
            opt.datapathTrials = args.trials;
            opt.memoryTrials = args.trials / 2;
            auto eval = gpu::evaluateGpu(*w, opt);
            const double base = eval.fitSdc;
            // Without triplication every DRAM-resident copy of the
            // working set is exposed for the whole execution, not
            // just the cache-resident fraction. Model the HBM2
            // window as 64x the on-chip residency.
            beam::ResourceInventory raw = eval.inventory;
            for (auto &entry : raw.entries) {
                if (entry.name == "cache-resident-data")
                    entry.bits *= 65.0;
            }
            gpu_table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(base, 0)
                .cell(raw.fitSdc(), 0)
                .cell(raw.fitSdc() / base, 1);
        }
    }
    gpu_table.setTitle("Titan V: HBM2 triplicated vs raw");
    gpu_table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
