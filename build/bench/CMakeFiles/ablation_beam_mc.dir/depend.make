# Empty dependencies file for ablation_beam_mc.
# This may be replaced when dependencies are built.
