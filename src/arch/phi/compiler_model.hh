/**
 * @file
 * Vectorising-compiler register-allocation model for KNC.
 *
 * The paper derives its Xeon Phi reliability story from the Intel
 * compiler's optimisation reports: the single-precision builds of
 * LavaMD and MxM instantiate 33% / 47% more vector registers than the
 * double builds, while LUD allocates the same — and register pressure
 * proxies the use of unprotected functional units and queues
 * (Section 5). This model reproduces those register counts from the
 * kernels' structural descriptors instead of hard-coding them:
 *
 *   registers = streams * 2                (load + prefetch shadows)
 *             + transcendental interface   (precision-independent)
 *             + liveValues * depth         (software pipelining)
 *
 * where depth is 2 for full-rate single-precision FMA issue and 1
 * for double's half-rate issue — unless the loop bounds are data
 * dependent (LUD's shrinking triangles), which defeats static
 * unrolling and forces depth 1 for both.
 */

#ifndef MPARCH_ARCH_PHI_COMPILER_MODEL_HH
#define MPARCH_ARCH_PHI_COMPILER_MODEL_HH

#include "workloads/workload.hh"

namespace mparch::phi {

/** What the model says the compiler emitted for one kernel build. */
struct CompiledKernel
{
    int vectorRegisters = 0;  ///< instantiated vector registers
    int pipelineDepth = 1;    ///< unroll used to hide FMA latency
    int simdLanes = 8;        ///< elements per vector op
};

/** Model the compiler's output for one kernel at one precision. */
CompiledKernel compileKernel(const workloads::KernelDesc &desc,
                             fp::Precision p);

} // namespace mparch::phi

#endif // MPARCH_ARCH_PHI_COMPILER_MODEL_HH
