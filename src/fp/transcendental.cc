/**
 * @file
 * In-format exponential.
 *
 * exp() is evaluated with softfloat operations in the target format:
 * a Cody-Waite range reduction (x = k*ln2 + r) followed by a Horner
 * polynomial whose degree grows with precision (4 / 6 / 13). This
 * mirrors real software transcendental implementations — GPUs execute
 * exp() as a chain of FMA/MUL instructions — so datapath faults can
 * strike inside the chain and higher precisions genuinely execute
 * more vulnerable operations, the effect behind the paper's LavaMD
 * criticality discussion (Sections 5.3 and 6.3).
 */

#include "fp/softfloat.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fp/internal.hh"

namespace mparch::fp {

namespace {

/** Polynomial degree per precision. */
int
expDegree(Format f)
{
    if (f == kHalf)
        return 4;
    if (f == kSingle)
        return 6;
    return 13;
}

/** exp(x) overflows the format above this. */
double
overflowThreshold(Format f)
{
    return (f.maxExp() + 1) * std::log(2.0);
}

/** exp(x) is zero (below half the smallest subnormal) under this. */
double
underflowThreshold(Format f)
{
    return (f.minExp() - static_cast<int>(f.manBits) - 1) *
           std::log(2.0);
}

/** Multiply by 2^k without leaving the format. */
std::uint64_t
scaleByPow2(Format f, std::uint64_t x, long k)
{
    // Split so each factor is a representable normal power of two.
    while (k != 0) {
        long step = k;
        const long lo = f.minExp();
        const long hi = f.maxExp();
        if (step > hi)
            step = hi;
        if (step < lo)
            step = lo;
        const std::uint64_t factor = packFields(
            f, false, static_cast<int>(step) + f.bias(), 0);
        x = fpMul(f, x, factor);
        k -= step;
        if (isZero(f, x) || isInf(f, x) || isNaN(f, x))
            break;
    }
    return x;
}

} // namespace

std::uint64_t
fpExp(Format f, std::uint64_t a)
{
    const OpKind op = OpKind::Exp;
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return signOf(f, a) ? zero(f, false) : a;
    if (ca == FpClass::Zero)
        return one(f);

    // Range checks are control decisions (exact in real hardware's
    // early-out comparators), so the host double is fine here.
    const double xd = fpToDouble(f, a);
    if (xd > overflowThreshold(f))
        return infinity(f, false);
    if (xd < underflowThreshold(f))
        return zero(f, false);

    const std::uint64_t log2e = fpFromDouble(f, 1.4426950408889634);
    // Two-part ln2 so r = x - k*ln2 keeps extra effective precision.
    const std::uint64_t neg_ln2_hi =
        fpFromDouble(f, -0x1.62e42fefa38p-1);
    const std::uint64_t neg_ln2_lo =
        fpFromDouble(f, -0x1.ef35793c7673p-45);

    const std::uint64_t t = fpMul(f, a, log2e);
    // Clamp k against corrupted inputs (a datapath fault upstream can
    // make t non-finite; lround would then return LONG_MIN and the
    // scaling loop below would effectively never terminate).
    const double td = fpToDouble(f, t);
    const double k_limit = 2.0 * (f.maxExp() + f.manBits + 2);
    const long k = std::isfinite(td)
                       ? std::lround(std::clamp(td, -k_limit, k_limit))
                       : 0;
    const std::uint64_t kf = fpFromDouble(f, static_cast<double>(k));

    std::uint64_t r = fpFma(f, kf, neg_ln2_hi, a);
    r = fpFma(f, kf, neg_ln2_lo, r);

    // Horner over 1 + r + r^2/2! + ... + r^deg/deg!.
    const int deg = expDegree(f);
    double inv_fact = 1.0;
    std::vector<std::uint64_t> coeff(static_cast<std::size_t>(deg) + 1);
    for (int i = 0; i <= deg; ++i) {
        if (i > 1)
            inv_fact /= i;
        coeff[static_cast<std::size_t>(i)] = fpFromDouble(f, inv_fact);
    }
    std::uint64_t p = coeff[static_cast<std::size_t>(deg)];
    for (int i = deg - 1; i >= 0; --i)
        p = fpFma(f, p, r, coeff[static_cast<std::size_t>(i)]);

    std::uint64_t result = scaleByPow2(f, p, k);
    result = detail::touch(ctx, op, Stage::Result, f.totalBits, result) &
             f.valueMask();
    return result;
}

std::uint64_t
fpLog(Format f, std::uint64_t a)
{
    const OpKind op = OpKind::Exp;  // transcendental-unit op class
    const OpCtx ctx = detail::enterOp(op);
    a = detail::touch(ctx, op, Stage::OperandA, f.totalBits, a) &
        f.valueMask();

    const FpClass ca = classify(f, a);
    if (ca == FpClass::NaN)
        return quietNaN(f);
    if (ca == FpClass::Zero)
        return infinity(f, true);
    if (signOf(f, a))
        return quietNaN(f);
    if (ca == FpClass::Inf)
        return a;

    // a = m * 2^k with m in [1, 2); fold into [sqrt(1/2), sqrt(2))
    // so the atanh argument stays under ~0.172 and the series
    // converges to full precision in few terms.
    detail::Unpacked u = detail::normalize(f, detail::unpackFinite(f, a));
    long k = u.exp + static_cast<int>(f.manBits);
    std::uint64_t m =
        packFields(f, false, f.bias(),
                   u.sig & f.manMask());  // m in [1, 2)
    const std::uint64_t sqrt2 = fpFromDouble(f, 1.4142135623730951);
    if (!fpLess(f, m, sqrt2)) {
        m = fpMul(f, m, fpFromDouble(f, 0.5));
        ++k;
    }

    const std::uint64_t one_v = one(f);
    const std::uint64_t tt = fpDiv(f, fpSub(f, m, one_v),
                                   fpAdd(f, m, one_v));
    const std::uint64_t t2 = fpMul(f, tt, tt);

    const int terms = f == kHalf ? 3 : f == kSingle ? 6 : 10;
    // Horner over 1 + t2/3 + t2^2/5 + ...
    std::uint64_t poly =
        fpFromDouble(f, 1.0 / (2.0 * terms + 1.0));
    for (int i = terms - 1; i >= 0; --i) {
        poly = fpFma(f, poly, t2,
                     fpFromDouble(f, 1.0 / (2.0 * i + 1.0)));
    }
    std::uint64_t ln_m = fpMul(f, fpMul(f, tt, poly),
                               fpFromDouble(f, 2.0));

    const std::uint64_t kf = fpFromDouble(f, static_cast<double>(k));
    const std::uint64_t ln2 =
        fpFromDouble(f, 0.6931471805599453);
    std::uint64_t result = fpFma(f, kf, ln2, ln_m);
    result = detail::touch(ctx, op, Stage::Result, f.totalBits,
                           result) &
             f.valueMask();
    return result;
}

} // namespace mparch::fp
