# Empty dependencies file for beam_metrics_test.
# This may be replaced when dependencies are built.
