
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/gpu/datapath.cc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/datapath.cc.o" "gcc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/datapath.cc.o.d"
  "/root/repo/src/arch/gpu/gpu.cc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/gpu.cc.o" "gcc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/gpu.cc.o.d"
  "/root/repo/src/arch/gpu/regfile.cc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/regfile.cc.o" "gcc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/regfile.cc.o.d"
  "/root/repo/src/arch/gpu/sm_sim.cc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/sm_sim.cc.o" "gcc" "src/arch/gpu/CMakeFiles/mparch_gpu.dir/sm_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/mparch_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/mparch_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mparch_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mparch_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mparch_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mparch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
