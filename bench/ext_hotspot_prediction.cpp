/**
 * @file
 * Extension: an out-of-sample prediction from the paper's own logic.
 *
 * Section 6.1 explains LavaMD's FIT trend by its MUL-dominated mix
 * and MxM's by its FMA chain. Hotspot (not in the paper) is
 * ADDITION-dominated — neighbour sums in a 5-point stencil — so the
 * same logic predicts its precision trend should follow Micro-ADD:
 * single and half *above* double, the inverse of LavaMD. This bench
 * makes that prediction and tests it, printing each code's SDC FIT
 * trend next to the micro trend it is expected to track.
 */

#include "bench_util.hh"

#include <cmath>

namespace {

using namespace mparch;

/** Normalised-to-double FIT triple. */
struct Trend
{
    double d = 1.0, s = 0.0, h = 0.0;
};

Trend
trendOf(const core::StudyResult &result)
{
    Trend t;
    const double base = result.find(fp::Precision::Double)->fitSdc;
    t.s = result.find(fp::Precision::Single)->fitSdc / base;
    t.h = result.find(fp::Precision::Half)->fitSdc / base;
    return t;
}

double
distance(const Trend &a, const Trend &b)
{
    return std::abs(a.s - b.s) + std::abs(a.h - b.h);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.25);
    bench::banner("Extension: Hotspot trend prediction",
                  "the ADD-dominated stencil must track Micro-ADD "
                  "(single/half >= double), unlike LavaMD");

    const auto add = trendOf(
        bench::study(core::Architecture::Gpu, "micro-add", args));
    const auto mul = trendOf(
        bench::study(core::Architecture::Gpu, "micro-mul", args));
    const auto hotspot = trendOf(
        bench::study(core::Architecture::Gpu, "hotspot", args));
    const auto lavamd = trendOf(
        bench::study(core::Architecture::Gpu, "lavamd", args));

    Table table({"code", "single/double", "half/double",
                 "closer-to"});
    auto emit = [&](const char *name, const Trend &t) {
        const char *closer =
            distance(t, add) < distance(t, mul) ? "micro-add"
                                                : "micro-mul";
        table.row().cell(name).cell(t.s, 2).cell(t.h, 2).cell(
            closer);
    };
    table.row().cell("micro-add").cell(add.s, 2).cell(add.h, 2).cell(
        "-");
    table.row().cell("micro-mul").cell(mul.s, 2).cell(mul.h, 2).cell(
        "-");
    emit("hotspot", hotspot);
    emit("lavamd", lavamd);
    table.print(std::cout);

    std::cout << (distance(hotspot, add) < distance(hotspot, mul)
                      ? "prediction CONFIRMED: hotspot tracks "
                        "micro-add\n"
                      : "prediction FAILED: hotspot tracks "
                        "micro-mul\n");

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
