# Empty dependencies file for fig6_phi_fit.
# This may be replaced when dependencies are built.
