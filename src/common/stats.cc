#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace mparch {

namespace {

/** z value for a two-sided 95% normal interval. */
constexpr double z95 = 1.959963984540054;

} // namespace

void
RunningStat::push(double x)
{
    ++n_;
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::stderrMean() const
{
    return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

Interval
RunningStat::ci95() const
{
    const double half = z95 * stderrMean();
    return {mean_ - half, mean_ + half};
}

Interval
wilson95(std::uint64_t hits, std::uint64_t trials)
{
    if (trials == 0)
        return {0.0, 1.0};
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(hits) / n;
    const double z2 = z95 * z95;
    const double denom = 1.0 + z2 / n;
    const double centre = p + z2 / (2.0 * n);
    const double spread =
        z95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    return {std::max(0.0, (centre - spread) / denom),
            std::min(1.0, (centre + spread) / denom)};
}

Interval
poissonRate95(std::uint64_t events, double exposure)
{
    if (exposure <= 0.0)
        return {0.0, 0.0};
    const double k = static_cast<double>(events);
    // Normal approximation on the count, clamped at zero; adequate
    // for the >50-event campaigns mparch runs by default.
    const double half = z95 * std::sqrt(std::max(k, 1.0));
    return {std::max(0.0, k - half) / exposure, (k + half) / exposure};
}

} // namespace mparch
