/**
 * @file
 * The declarative experiment registry.
 *
 * Every table and figure of the paper's reproduction — plus the
 * ablations and beyond-the-paper extensions — is one Experiment
 * descriptor in a single table: identity, paper reference, default
 * campaign knobs, the paper's reference values as data, the shape
 * checks that make its prose claims executable, and a run function
 * producing a structured ResultDoc. The bench binaries and the
 * mparch_repro driver are both thin front-ends over this table; no
 * row-extraction logic lives anywhere else.
 */

#ifndef MPARCH_REPORT_REGISTRY_HH
#define MPARCH_REPORT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fp/format.hh"
#include "report/document.hh"
#include "report/shapecheck.hh"

namespace mparch::report {

/** What kind of reproduction target an experiment is. */
enum class ExperimentKind
{
    PaperTable,   ///< one of the paper's numbered tables
    PaperFigure,  ///< one of the paper's numbered figures
    Ablation,     ///< ablation of a DESIGN.md modelling decision
    Extension,    ///< beyond-the-paper study
    Engine,       ///< infrastructure benchmark (not a paper target)
};

/** Name of an ExperimentKind ("table" / "figure" / ...). */
const char *experimentKindName(ExperimentKind kind);

/**
 * A paper reference value carried as registry data (the numbers that
 * used to be hard-coded inside bench mains). Keys are free-form but
 * conventionally "<workload>/<precision>/<metric>".
 */
struct PaperValue
{
    std::string key;
    double value = 0.0;
};

/** Kernel-timing registration spec for the google-benchmark hook
 *  (consumed by the bench shims; ignored by the driver). */
struct TimingSpec
{
    std::string workload;
    std::vector<fp::Precision> precisions;
};

/** Effective knobs for one experiment run (0 = experiment default). */
struct RunContext
{
    std::uint64_t trials = 0;
    double scale = 0.0;

    /** Campaign worker threads: 0 = all hardware threads, 1 =
     *  serial. Results are bit-identical for every value. */
    unsigned jobs = 0;

    /** Progress feedback on stderr. */
    bool progress = true;
};

/** One registered experiment. */
struct Experiment
{
    std::string id;           ///< == bench binary name
    std::string paperRef;     ///< "Figure 3", "Table 1", "-"
    ExperimentKind kind = ExperimentKind::PaperFigure;
    std::string title;        ///< the bench banner headline
    std::string shapeTarget;  ///< the prose shape target

    std::uint64_t defaultTrials = 0;
    double defaultScale = 0.3;

    /** Deterministic (or campaign-light) enough for the quick
     *  scorecard tier at reduced trials. */
    bool quick = false;

    std::vector<PaperValue> paper;
    std::vector<TimingSpec> timings;
    std::vector<ShapeCheck> checks;

    /** Produce the result tables/notes (verdicts are appended by
     *  runExperiment). */
    std::function<ResultDoc(const Experiment &, const RunContext &)>
        run;

    /** Paper reference value by key; fatal() when absent (a registry
     *  authoring bug). */
    double paperValue(const std::string &key) const;

    /** Effective knobs after applying this experiment's defaults. */
    std::uint64_t trialsFor(const RunContext &ctx) const;
    double scaleFor(const RunContext &ctx) const;
};

/** The full registry, in paper presentation order. */
const std::vector<Experiment> &experiments();

/** Lookup by id; null when unknown. */
const Experiment *findExperiment(const std::string &id);

/**
 * Run one experiment: resolve knobs, execute, stamp metadata and
 * evaluate its shape checks into the document.
 */
ResultDoc runExperiment(const Experiment &experiment,
                        const RunContext &ctx);

/** Aggregate scorecard over several result documents. */
struct Scorecard
{
    std::uint64_t checksRun = 0;
    std::uint64_t checksPassed = 0;
    std::uint64_t experimentsRun = 0;
    std::uint64_t experimentsClean = 0;

    bool allPassed() const { return checksRun == checksPassed; }
};

/** Render the verdict table (one line per shape target) and return
 *  the tallies. */
Scorecard printScorecard(const std::vector<ResultDoc> &docs,
                         std::ostream &os);

} // namespace mparch::report

#endif // MPARCH_REPORT_REGISTRY_HH
