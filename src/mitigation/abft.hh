/**
 * @file
 * ABFT (algorithm-based fault tolerance) matrix multiplication.
 *
 * Huang & Abraham's checksum scheme: alongside C = A x B, compute
 * the expected row sums of C from A and the row-sum vector of B, and
 * the expected column sums from the column-sum vector of A and B.
 * After the multiply, rows/columns whose sums disagree beyond the
 * rounding tolerance locate a corrupted element, which is corrected
 * from its row checksum. Everything — including the checksum
 * arithmetic itself — runs in the target precision through the
 * instrumented softfloat core, so faults can strike the protection
 * machinery too, and the rounding tolerance (which grows as the
 * precision shrinks) genuinely weakens detection at half precision:
 * the precision-vs-protection tradeoff the paper's discussion points
 * towards.
 */

#ifndef MPARCH_MITIGATION_ABFT_HH
#define MPARCH_MITIGATION_ABFT_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::mitigation {

/** ABFT-protected matrix multiplication at precision P. */
template <fp::Precision P>
class AbftMxMWorkload : public workloads::Workload
{
  public:
    using Value = fp::Fp<P>;

    /** @param scale Problem-size knob (matches MxMWorkload). */
    explicit AbftMxMWorkload(double scale = 1.0)
    {
        n_ = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   40.0 * std::cbrt(std::max(scale, 1e-3)))));
        a_.resize(n_ * n_);
        b_.resize(n_ * n_);
        c_.resize(n_ * n_);
        row_chk_.resize(n_);
        col_chk_.resize(n_);
    }

    std::string name() const override { return "mxm-abft"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<workloads::Workload>
    clone() const override
    {
        return std::make_unique<AbftMxMWorkload<P>>(*this);
    }

    /** Matrix dimension. */
    std::size_t dim() const { return n_; }

    /** Elements repaired from checksums in the last execution. */
    std::uint64_t corrections() const { return corrections_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        for (auto &v : a_)
            v = Value::fromDouble(rng.uniform(-1.0, 1.0));
        for (auto &v : b_)
            v = Value::fromDouble(rng.uniform(-1.0, 1.0));
        std::fill(c_.begin(), c_.end(), Value{});
        std::fill(row_chk_.begin(), row_chk_.end(), Value{});
        std::fill(col_chk_.begin(), col_chk_.end(), Value{});
        detected_ = false;
        corrections_ = 0;
    }

    void
    execute(workloads::ExecutionEnv &env) override
    {
        // The protected product.
        for (std::size_t i = 0; i < n_; ++i) {
            env.tick();
            if (env.aborted())
                return;
            for (std::size_t j = 0; j < n_; ++j) {
                Value acc{};
                for (std::size_t k = 0; k < n_; ++k)
                    acc = fma(a_[i * n_ + k], b_[k * n_ + j], acc);
                c_[i * n_ + j] = acc;
            }
        }

        // Independent checksum products: row_chk_i = A_i . rowsum(B),
        // col_chk_j = colsum(A) . B_j.
        std::vector<Value> b_rowsum(n_), a_colsum(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            Value rs{}, cs{};
            for (std::size_t j = 0; j < n_; ++j)
                rs += b_[k * n_ + j];
            for (std::size_t i = 0; i < n_; ++i)
                cs += a_[i * n_ + k];
            b_rowsum[k] = rs;
            a_colsum[k] = cs;
        }
        env.tick();
        if (env.aborted())
            return;
        for (std::size_t i = 0; i < n_; ++i) {
            Value acc{};
            for (std::size_t k = 0; k < n_; ++k)
                acc = fma(a_[i * n_ + k], b_rowsum[k], acc);
            row_chk_[i] = acc;
        }
        for (std::size_t j = 0; j < n_; ++j) {
            Value acc{};
            for (std::size_t k = 0; k < n_; ++k)
                acc = fma(a_colsum[k], b_[k * n_ + j], acc);
            col_chk_[j] = acc;
        }
        env.tick();
        if (env.aborted())
            return;
        verifyAndCorrect();
    }

    std::vector<workloads::BufferView>
    buffers() override
    {
        return {workloads::makeBufferView("A", a_),
                workloads::makeBufferView("B", b_),
                workloads::makeBufferView("C", c_),
                workloads::makeBufferView("rowChk", row_chk_),
                workloads::makeBufferView("colChk", col_chk_)};
    }

    workloads::BufferView
    output() override
    {
        return workloads::makeBufferView("C", c_);
    }

    workloads::KernelDesc
    desc() const override
    {
        workloads::KernelDesc d;
        d.liveValues = 4;
        d.inputStreams = 2;
        d.arithmeticIntensity = 0.5;
        d.branchDensity = 0.06;  // checksum comparisons branch
        return d;
    }

    bool detectedError() const override { return detected_; }

  private:
    /**
     * Row/column checksum verification with a rounding-aware
     * tolerance; a single (row, column) intersection is corrected
     * from the row checksum.
     */
    void
    verifyAndCorrect()
    {
        // Tolerance: summing n rounded terms admits ~n/2 ulp drift;
        // use 4n eps relative to the row magnitude, where eps is the
        // format's unit roundoff — visibly looser at half precision.
        const double eps =
            std::ldexp(1.0, -static_cast<int>(
                                fp::formatOf(P).manBits));
        const double slack = 4.0 * static_cast<double>(n_) * eps;

        std::vector<std::size_t> bad_rows, bad_cols;
        std::vector<double> row_delta(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            Value sum{};
            double mag = 0.0;
            for (std::size_t j = 0; j < n_; ++j) {
                sum += c_[i * n_ + j];
                mag += std::abs(c_[i * n_ + j].toDouble());
            }
            const double delta =
                sum.toDouble() - row_chk_[i].toDouble();
            row_delta[i] = delta;
            if (std::abs(delta) > slack * std::max(mag, 1.0))
                bad_rows.push_back(i);
        }
        for (std::size_t j = 0; j < n_; ++j) {
            Value sum{};
            double mag = 0.0;
            for (std::size_t i = 0; i < n_; ++i) {
                sum += c_[i * n_ + j];
                mag += std::abs(c_[i * n_ + j].toDouble());
            }
            const double delta =
                sum.toDouble() - col_chk_[j].toDouble();
            if (std::abs(delta) > slack * std::max(mag, 1.0))
                bad_cols.push_back(j);
        }

        if (bad_rows.empty() && bad_cols.empty())
            return;  // clean (or corruption below tolerance)
        if (bad_rows.size() == 1 && bad_cols.size() == 1) {
            // Single-element corruption: subtract the row surplus.
            const std::size_t i = bad_rows[0], j = bad_cols[0];
            const Value fix = Value::fromDouble(row_delta[i]);
            c_[i * n_ + j] -= fix;
            ++corrections_;
            return;
        }
        // Multi-element or checksum-side corruption: detect only.
        detected_ = true;
    }

    std::size_t n_ = 0;
    std::vector<Value> a_, b_, c_;
    std::vector<Value> row_chk_, col_chk_;
    bool detected_ = false;
    std::uint64_t corrections_ = 0;
};

/** Factory matching the workload registries' signature. */
workloads::WorkloadPtr makeAbftMxM(fp::Precision p,
                                   double scale = 1.0);

} // namespace mparch::mitigation

#endif // MPARCH_MITIGATION_ABFT_HH
