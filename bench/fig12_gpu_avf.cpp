/**
 * @file
 * Reproduces Figure 12: Architectural Vulnerability Factor of the
 * Volta microbenchmarks, measured by flipping one bit of a randomly
 * selected register at a random execution instant and replaying the
 * dependent chain through the softfloat core.
 *
 * Shape targets: double's AVF is roughly twice single's for every
 * operation (a double occupies two 32-bit registers, so twice the
 * allocated bits are live), and single ~= half (half2 packs two live
 * half values into the same 32-bit register a single would use).
 */

#include "bench_util.hh"

#include "arch/gpu/regfile.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 4000, 1.0);
    bench::banner("Figure 12: Volta micro AVF (register injection)",
                  "AVF(double) ~ 2x AVF(single) ~ 2x; single ~ half");

    Table table({"micro", "precision", "avf", "ci95-lo", "ci95-hi",
                 "norm-to-single"});
    for (auto op : {workloads::MicroOp::Mul, workloads::MicroOp::Add,
                    workloads::MicroOp::Fma}) {
        const double single_avf =
            gpu::measureRegFileAvf(op, fp::Precision::Single,
                                   args.trials, 5)
                .avfSdc();
        for (auto p : fp::allPrecisions) {
            const auto r =
                gpu::measureRegFileAvf(op, p, args.trials, 5);
            const auto ci = r.avf95();
            table.row()
                .cell(std::string("micro-") +
                      workloads::microOpName(op))
                .cell(std::string(fp::precisionName(p)))
                .cell(r.avfSdc(), 3)
                .cell(ci.lo, 3)
                .cell(ci.hi, 3)
                .cell(r.avfSdc() / single_avf, 2);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
