file(REMOVE_RECURSE
  "libmparch_core.a"
)
