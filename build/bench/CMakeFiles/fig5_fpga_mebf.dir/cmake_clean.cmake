file(REMOVE_RECURSE
  "CMakeFiles/fig5_fpga_mebf.dir/fig5_fpga_mebf.cpp.o"
  "CMakeFiles/fig5_fpga_mebf.dir/fig5_fpga_mebf.cpp.o.d"
  "fig5_fpga_mebf"
  "fig5_fpga_mebf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fpga_mebf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
