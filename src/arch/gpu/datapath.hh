/**
 * @file
 * Per-core vulnerable datapath state model for Volta.
 *
 * The paper explains the micro FIT trends (Figure 10a) through the
 * amount of per-core state each operation needs at each precision:
 * an adder's aligners and normaliser scale linearly with the
 * significand, a multiplier's compressed partial-product state
 * subquadratically, and an FMA adds a triple-width aligned adder on
 * top of the multiplier. Half executes two packed lanes on an FP32
 * core, doubling the lane state but sharing the per-core control.
 */

#ifndef MPARCH_ARCH_GPU_DATAPATH_HH
#define MPARCH_ARCH_GPU_DATAPATH_HH

#include "fp/format.hh"
#include "fp/hooks.hh"

namespace mparch::gpu {

/**
 * Vulnerable latch bits in one core executing ops of @p kind at
 * precision @p p (lane state x packed lanes + per-core control).
 */
double datapathBitsPerCore(fp::OpKind kind, fp::Precision p);

/**
 * Mix-weighted per-core datapath bits for a whole kernel, from the
 * golden run's dynamic op counts.
 */
double mixDatapathBitsPerCore(const fp::FpContext &ops,
                              fp::Precision p);

} // namespace mparch::gpu

#endif // MPARCH_ARCH_GPU_DATAPATH_HH
