/**
 * @file
 * TRE explorer: how much FIT disappears if your application can
 * tolerate approximate outputs?
 *
 * For a chosen workload this sweeps the Tolerated Relative Error
 * from 0 to 10% at all three precisions, on both fault-site classes
 * (data at rest vs functional-unit datapaths), and prints where each
 * precision's acceptable-FIT curve crosses a target reduction — the
 * decision the paper's Section 7 asks system designers to make.
 *
 *   $ ./tre_explorer [workload] [trials]
 */

#include <iostream>

#include "fault/campaign.hh"
#include "common/table.hh"
#include "metrics/metrics.hh"
#include "nn/nn_workloads.hh"

namespace {

using namespace mparch;

/** First threshold where the remaining FIT drops below @p target. */
double
crossover(const metrics::TreCurve &curve, double target)
{
    for (std::size_t i = 0; i < curve.thresholds.size(); ++i)
        if (curve.remaining[i] <= target)
            return curve.thresholds[i];
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const std::string workload = argc > 1 ? argv[1] : "mxm";
    fault::CampaignConfig config;
    config.trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : 600;

    std::cout << "TRE sweep for " << workload << " (" << config.trials
              << " trials per campaign)\n\n";

    for (const bool datapath : {false, true}) {
        Table table({"tre", "double", "single", "half"});
        table.setTitle(datapath
                           ? "functional-unit faults (beam-like)"
                           : "data-at-rest faults (CAROL-FI)");
        metrics::TreCurve curves[3];
        int idx = 0;
        for (auto p : fp::allPrecisions) {
            auto w = nn::makeAnyWorkload(workload, p, 0.2);
            const auto r =
                datapath ? fault::runDatapathCampaign(*w, config)
                         : fault::runMemoryCampaign(*w, config);
            curves[idx++] = metrics::treCurve(r);
        }
        for (std::size_t i = 0;
             i < curves[0].thresholds.size(); ++i) {
            table.row()
                .cell(curves[0].thresholds[i], 4)
                .cell(curves[0].remaining[i], 3)
                .cell(curves[1].remaining[i], 3)
                .cell(curves[2].remaining[i], 3);
        }
        table.print(std::cout);

        std::cout << "TRE needed to halve the critical FIT: ";
        const char *names[] = {"double", "single", "half"};
        for (int i = 0; i < 3; ++i) {
            const double c = crossover(curves[i], 0.5);
            std::cout << names[i] << "=";
            if (c < 0.0)
                std::cout << ">10% ";
            else
                std::cout << c * 100.0 << "% ";
        }
        std::cout << "\n\n";
    }

    std::cout << "Lesson (paper Figures 4/8/11): the wider the "
                 "format, the cheaper it is to buy\nreliability with "
                 "output tolerance — faults in narrow formats strike "
                 "significant bits.\n";
    return 0;
}
