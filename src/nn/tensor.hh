/**
 * @file
 * Minimal dense tensor over softfloat values.
 *
 * Just enough machinery for the CNN workloads: contiguous storage,
 * CHW indexing, and conversion from host-double parameter blocks so
 * trained weights can be dropped to any precision without retraining
 * (the paper's protocol, Section 3.1).
 */

#ifndef MPARCH_NN_TENSOR_HH
#define MPARCH_NN_TENSOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "fp/value.hh"

namespace mparch::nn {

/** A rank-3 (channel, height, width) tensor of Fp<P> values. */
template <fp::Precision P>
class Tensor
{
  public:
    using Value = fp::Fp<P>;

    Tensor() = default;

    /** Allocate a zeroed c x h x w tensor. */
    Tensor(std::size_t c, std::size_t h, std::size_t w)
        : c_(c), h_(h), w_(w), data_(c * h * w)
    {}

    /** Channels. */
    std::size_t channels() const { return c_; }

    /** Height. */
    std::size_t height() const { return h_; }

    /** Width. */
    std::size_t width() const { return w_; }

    /** Total element count. */
    std::size_t size() const { return data_.size(); }

    /** Element access by (channel, row, col). */
    Value &
    at(std::size_t c, std::size_t y, std::size_t x)
    {
        return data_[(c * h_ + y) * w_ + x];
    }

    /** Const element access by (channel, row, col). */
    const Value &
    at(std::size_t c, std::size_t y, std::size_t x) const
    {
        return data_[(c * h_ + y) * w_ + x];
    }

    /** Flat element access. */
    Value &operator[](std::size_t i) { return data_[i]; }

    /** Const flat element access. */
    const Value &operator[](std::size_t i) const { return data_[i]; }

    /** Underlying storage (for BufferViews). */
    std::vector<Value> &storage() { return data_; }

    /** Zero every element. */
    void
    clear()
    {
        std::fill(data_.begin(), data_.end(), Value{});
    }

    /** Encode a block of host doubles (must match size()). */
    void
    loadDoubles(const std::vector<double> &values)
    {
        MPARCH_ASSERT(values.size() == data_.size(),
                      "tensor shape mismatch");
        for (std::size_t i = 0; i < values.size(); ++i)
            data_[i] = Value::fromDouble(values[i]);
    }

  private:
    std::size_t c_ = 0, h_ = 0, w_ = 0;
    std::vector<Value> data_;
};

} // namespace mparch::nn

#endif // MPARCH_NN_TENSOR_HH
