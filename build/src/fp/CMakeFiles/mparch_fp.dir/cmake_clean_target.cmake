file(REMOVE_RECURSE
  "libmparch_fp.a"
)
