file(REMOVE_RECURSE
  "CMakeFiles/beam_metrics_test.dir/beam_metrics_test.cc.o"
  "CMakeFiles/beam_metrics_test.dir/beam_metrics_test.cc.o.d"
  "beam_metrics_test"
  "beam_metrics_test.pdb"
  "beam_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
