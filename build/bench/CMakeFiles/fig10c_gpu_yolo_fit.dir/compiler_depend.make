# Empty compiler generated dependencies file for fig10c_gpu_yolo_fit.
# This may be replaced when dependencies are built.
