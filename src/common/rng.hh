/**
 * @file
 * Deterministic pseudo-random number generation for campaigns.
 *
 * All Monte Carlo machinery in mparch (fault-site sampling, Poisson
 * arrivals, dataset synthesis, weight initialisation) draws from this
 * xoshiro256** generator so that every experiment is reproducible from
 * a single seed. std::mt19937 is avoided because its state is large
 * and its distributions are not guaranteed bit-identical across
 * standard library implementations.
 */

#ifndef MPARCH_COMMON_RNG_HH
#define MPARCH_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "logging.hh"

namespace mparch {

/**
 * xoshiro256** PRNG (Blackman & Vigna) with distribution helpers.
 *
 * Deterministic, fast (sub-ns per draw), with a 2^256-1 period —
 * plenty for campaigns with billions of draws.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        MPARCH_ASSERT(bound > 0, "Rng::below needs a positive bound");
        // Debiased multiply-shift (Lemire).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        MPARCH_ASSERT(lo <= hi, "Rng::between needs lo <= hi");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal draw (Marsaglia polar method). */
    double
    normal()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double f = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * f;
        hasSpare_ = true;
        return u * f;
    }

    /** Normal draw with given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /**
     * Poisson draw with the given mean.
     *
     * Uses Knuth's product method for small means and a normal
     * approximation above 64 (adequate for fault-arrival counts).
     */
    std::uint64_t
    poisson(double mean)
    {
        MPARCH_ASSERT(mean >= 0.0, "Poisson mean must be non-negative");
        if (mean == 0.0)
            return 0;
        if (mean > 64.0) {
            const double draw = normal(mean, std::sqrt(mean));
            return draw <= 0.0 ? 0
                               : static_cast<std::uint64_t>(draw + 0.5);
        }
        const double limit = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform();
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }

    /** Exponential inter-arrival draw with the given rate. */
    double
    exponential(double rate)
    {
        MPARCH_ASSERT(rate > 0.0, "exponential rate must be positive");
        return -std::log(1.0 - uniform()) / rate;
    }

    /** Derive an independent child generator (for sub-campaigns). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xa0761d6478bd642fULL);
    }

    /**
     * Stateless 64-bit mix of two words (two rounds of the splitmix64
     * finaliser over a xor-folded combination). Used to derive
     * counter-based streams: the result depends on both inputs with
     * full avalanche, so adjacent counters yield independent seeds.
     */
    static std::uint64_t
    mix(std::uint64_t a, std::uint64_t b)
    {
        std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL +
                               (a << 6) + (a >> 2));
        (void)splitmix64(x);
        return splitmix64(x);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::array<std::uint64_t, 4> state_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Counter-based trial generator: the stream for trial @p index of a
 * campaign seeded with @p seed.
 *
 * Campaigns derive every per-trial draw from this instead of a shared
 * sequential stream, so (a) any single trial is replayable standalone
 * from (seed, index) alone, and (b) partitioning the index range
 * across shards cannot change any trial's sample — sharded and
 * unsharded campaigns agree bit-for-bit.
 */
inline Rng
trialRng(std::uint64_t seed, std::uint64_t index)
{
    return Rng(Rng::mix(seed, index));
}

} // namespace mparch

#endif // MPARCH_COMMON_RNG_HH
