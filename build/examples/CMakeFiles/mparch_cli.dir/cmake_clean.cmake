file(REMOVE_RECURSE
  "CMakeFiles/mparch_cli.dir/mparch_cli.cpp.o"
  "CMakeFiles/mparch_cli.dir/mparch_cli.cpp.o.d"
  "mparch_cli"
  "mparch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
