/**
 * @file
 * Tests for the neural-network substrate: dataset determinism,
 * training quality, precision-conversion accuracy (the paper's <2%
 * claim), detector behaviour, and CNN fault-injection severities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "fault/campaign.hh"
#include "nn/digits.hh"
#include "nn/mnistnet.hh"
#include "nn/nn_workloads.hh"
#include "nn/yolite.hh"

namespace mparch::nn {
namespace {

using fp::Precision;
using workloads::SdcSeverity;

TEST(Digits, GeneratorIsDeterministic)
{
    DigitGenerator a(5), b(5);
    for (int i = 0; i < 20; ++i) {
        const DigitSample sa = a.next();
        const DigitSample sb = b.next();
        EXPECT_EQ(sa.label, sb.label);
        EXPECT_EQ(sa.pixels, sb.pixels);
    }
}

TEST(Digits, PixelsInRangeAndClassesCovered)
{
    DigitGenerator gen(6);
    std::set<std::size_t> seen;
    for (int i = 0; i < 200; ++i) {
        const DigitSample s = gen.next();
        seen.insert(s.label);
        for (double px : s.pixels) {
            EXPECT_GE(px, 0.0);
            EXPECT_LE(px, 1.0);
        }
    }
    EXPECT_EQ(seen.size(), kDigitClasses);
}

TEST(Digits, GlyphsAreWellFormed)
{
    for (const char *glyph : DigitGenerator::glyphs()) {
        ASSERT_EQ(std::string(glyph).size(), kDigitSize * kDigitSize);
        EXPECT_NE(std::string(glyph).find('#'), std::string::npos);
    }
}

TEST(MnistTraining, ReachesHighAccuracy)
{
    const MnistParams &params = pretrainedMnist();
    const double acc = evaluateHostAccuracy(params, 1000, 123);
    EXPECT_GT(acc, 0.95);
}

TEST(MnistTraining, Deterministic)
{
    TrainConfig config;
    config.samples = 200;
    config.epochs = 2;
    const MnistParams a = trainMnist(config);
    const MnistParams b = trainMnist(config);
    EXPECT_EQ(a.fc2W, b.fc2W);
    EXPECT_EQ(a.convW, b.convW);
}

TEST(MnistNetTest, SoftfloatDoubleMatchesHostArgmax)
{
    const MnistParams &params = pretrainedMnist();
    MnistNet<Precision::Double> net(params);
    DigitGenerator gen(9);
    for (int i = 0; i < 50; ++i) {
        const DigitSample s = gen.next();
        std::vector<fp::FpDouble> image(s.pixels.size());
        for (std::size_t j = 0; j < s.pixels.size(); ++j)
            image[j] = fp::FpDouble::fromDouble(s.pixels[j]);
        std::array<fp::FpDouble, kDigitClasses> logits{};
        net.infer(image, logits);
        const auto host = inferHost(params, s.pixels);
        const auto host_arg = static_cast<std::size_t>(
            std::max_element(host.begin(), host.end()) - host.begin());
        EXPECT_EQ(argmaxLogits<Precision::Double>(logits), host_arg);
        // Logits agree closely (softfloat FMA vs host mul/add).
        for (std::size_t c = 0; c < kDigitClasses; ++c)
            EXPECT_NEAR(logits[c].toDouble(), host[c], 1e-6);
    }
}

/** Accuracy of the converted net at precision P over fresh samples. */
template <Precision P>
double
convertedAccuracy(std::size_t count, std::uint64_t seed)
{
    MnistNet<P> net(pretrainedMnist());
    DigitGenerator gen(seed);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const DigitSample s = gen.next();
        std::vector<fp::Fp<P>> image(s.pixels.size());
        for (std::size_t j = 0; j < s.pixels.size(); ++j)
            image[j] = fp::Fp<P>::fromDouble(s.pixels[j]);
        std::array<fp::Fp<P>, kDigitClasses> logits{};
        net.infer(image, logits);
        correct += argmaxLogits<P>(logits) == s.label;
    }
    return static_cast<double>(correct) / static_cast<double>(count);
}

TEST(MnistNetTest, ConversionCostsUnderTwoPercent)
{
    // Paper Section 3.1: converting (not retraining) the weights to
    // half costs less than 2% accuracy.
    const double acc_d = convertedAccuracy<Precision::Double>(400, 31);
    const double acc_s = convertedAccuracy<Precision::Single>(400, 31);
    const double acc_h = convertedAccuracy<Precision::Half>(400, 31);
    EXPECT_GT(acc_d, 0.95);
    EXPECT_GE(acc_s, acc_d - 0.02);
    EXPECT_GE(acc_h, acc_d - 0.02);
}

TEST(Yolite, FilterBankIsZeroMeanUnitNorm)
{
    const std::vector<double> bank = yoliteFilterBank();
    ASSERT_EQ(bank.size(), kYoliteClasses * kShapeSize * kShapeSize);
    for (std::size_t cls = 0; cls < kYoliteClasses; ++cls) {
        double sum = 0.0, norm = 0.0;
        for (std::size_t i = 0; i < kShapeSize * kShapeSize; ++i) {
            const double v = bank[cls * kShapeSize * kShapeSize + i];
            sum += v;
            norm += v * v;
        }
        EXPECT_NEAR(sum, 0.0, 1e-9);
        EXPECT_NEAR(norm, 1.0, 1e-9);
    }
}

TEST(Yolite, SceneGeneratorPlacesNonOverlappingObjects)
{
    SceneGenerator gen(3);
    for (int i = 0; i < 100; ++i) {
        const Scene scene = gen.next();
        ASSERT_GE(scene.objects.size(), 1u);
        ASSERT_LE(scene.objects.size(), 2u);
        if (scene.objects.size() == 2) {
            const auto &a = scene.objects[0];
            const auto &b = scene.objects[1];
            const bool apart =
                std::abs(static_cast<long>(a.y) -
                         static_cast<long>(b.y)) > 5 ||
                std::abs(static_cast<long>(a.x) -
                         static_cast<long>(b.x)) > 5;
            EXPECT_TRUE(apart);
        }
    }
}

/** Detection quality of the precision-P detector on clean truth. */
template <Precision P>
double
detectorRecall(std::size_t scenes, std::uint64_t seed)
{
    YoliteNet<P> net;
    SceneGenerator gen(seed);
    const double threshold = yoliteThreshold();
    std::size_t found = 0, total = 0;
    for (std::size_t i = 0; i < scenes; ++i) {
        const Scene scene = gen.next();
        std::vector<fp::Fp<P>> image(scene.pixels.size());
        for (std::size_t j = 0; j < scene.pixels.size(); ++j)
            image[j] = fp::Fp<P>::fromDouble(scene.pixels[j]);
        std::vector<fp::Fp<P>> out;
        net.detect(image, out);
        std::array<double, kYoliteOut> host{};
        for (std::size_t j = 0; j < kYoliteOut; ++j)
            host[j] = out[j].toDouble();
        const auto dets = decodeDetections(host, threshold);
        total += scene.objects.size();
        for (const auto &obj : scene.objects) {
            for (const auto &det : dets) {
                const long py = det.pos / static_cast<long>(kMapSize);
                const long px = det.pos % static_cast<long>(kMapSize);
                if (det.cls == obj.cls &&
                    std::abs(py - static_cast<long>(obj.y)) <= 1 &&
                    std::abs(px - static_cast<long>(obj.x)) <= 1) {
                    ++found;
                    break;
                }
            }
        }
    }
    return total ? static_cast<double>(found) /
                       static_cast<double>(total)
                 : 0.0;
}

TEST(Yolite, DetectorFindsObjectsAtAllPrecisions)
{
    EXPECT_GT(detectorRecall<Precision::Double>(60, 21), 0.9);
    EXPECT_GT(detectorRecall<Precision::Single>(60, 21), 0.9);
    EXPECT_GT(detectorRecall<Precision::Half>(60, 21), 0.88);
}

TEST(NnWorkloads, FactoryAndDeterminism)
{
    for (const char *name : {"mnist", "yolite"}) {
        auto w = makeNnWorkload(name, Precision::Single, 1.0);
        EXPECT_EQ(w->name(), name);
        const fault::GoldenRun a(*w, 3), b(*w, 3);
        EXPECT_EQ(a.outputBits, b.outputBits);
        EXPECT_GT(a.ops.count(fp::OpKind::Fma), 1000u);
    }
}

TEST(NnWorkloads, AnyFactoryCoversNumericToo)
{
    EXPECT_EQ(makeAnyWorkload("mxm", Precision::Half, 0.2)->name(),
              "mxm");
    EXPECT_EQ(makeAnyWorkload("mnist", Precision::Half)->name(),
              "mnist");
}

TEST(NnWorkloads, MnistSeveritySplitsTolerableAndCritical)
{
    auto w = makeNnWorkload("mnist", Precision::Single, 0.5);
    fault::CampaignConfig config;
    config.trials = 250;
    const fault::CampaignResult r = runMemoryCampaign(*w, config);
    ASSERT_GT(r.sdc, 20u);
    const double tolerable =
        r.severityFraction(SdcSeverity::Tolerable);
    const double critical =
        r.severityFraction(SdcSeverity::CriticalChange);
    EXPECT_NEAR(tolerable + critical, 1.0, 1e-9);
    // Paper Figure 3: critical errors are the minority.
    EXPECT_GT(tolerable, critical);
    EXPECT_GT(critical, 0.0);
}

TEST(NnWorkloads, YoliteSeverityUsesAllThreeClasses)
{
    auto w = makeNnWorkload("yolite", Precision::Half, 1.0);
    fault::CampaignConfig config;
    config.trials = 400;
    const fault::CampaignResult r = runMemoryCampaign(*w, config);
    ASSERT_GT(r.sdc, 30u);
    const double tol = r.severityFraction(SdcSeverity::Tolerable);
    const double det =
        r.severityFraction(SdcSeverity::DetectionChange);
    const double crit =
        r.severityFraction(SdcSeverity::CriticalChange);
    EXPECT_NEAR(tol + det + crit, 1.0, 1e-9);
    EXPECT_GT(tol, 0.0);
    EXPECT_GT(det + crit, 0.0);
}

TEST(NnWorkloads, LowerPrecisionMoreCriticalErrors)
{
    // Paper Figure 3 / Section 4.1: the critical share grows as
    // precision shrinks (5% -> 14% -> 20% on the FPGA MNIST).
    fault::CampaignConfig config;
    config.trials = 500;
    auto wd = makeNnWorkload("mnist", Precision::Double, 0.5);
    auto wh = makeNnWorkload("mnist", Precision::Half, 0.5);
    const auto rd = runMemoryCampaign(*wd, config);
    const auto rh = runMemoryCampaign(*wh, config);
    ASSERT_GT(rd.sdc, 30u);
    ASSERT_GT(rh.sdc, 30u);
    EXPECT_GT(
        rh.severityFraction(SdcSeverity::CriticalChange),
        rd.severityFraction(SdcSeverity::CriticalChange));
}

} // namespace
} // namespace mparch::nn
