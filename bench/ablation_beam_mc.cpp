/**
 * @file
 * Ablation (DESIGN.md section 5, decision 2): mparch estimates FIT
 * analytically as exposure x sensitivity x measured-AVF instead of
 * resolving every Poisson beam arrival with a fresh injected
 * execution. This bench validates that shortcut: it runs the full
 * Monte Carlo virtual beam — every neutron resolved by actually
 * executing the workload with a fresh fault — and compares the
 * measured FIT (with its Poisson confidence interval) against the
 * analytic estimator for the same inventory.
 */

#include "bench_util.hh"

#include "arch/gpu/gpu.hh"
#include "beam/virtual_beam.hh"
#include "fault/campaign.hh"

namespace {

using namespace mparch;

/** Resolve one beam fault by running a single injected execution. */
beam::BeamOutcome
resolveByExecution(workloads::Workload &w, std::size_t entry,
                   Rng &rng)
{
    fault::CampaignConfig one;
    one.trials = 1;
    one.seed = rng.next();
    const fault::CampaignResult r =
        entry == 0 ? fault::runDatapathCampaign(w, one)
                   : fault::runMemoryCampaign(w, one);
    if (r.due)
        return beam::BeamOutcome::Due;
    if (r.sdc)
        return beam::BeamOutcome::Sdc;
    return beam::BeamOutcome::Masked;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 0.15);
    bench::banner("Ablation: Monte Carlo beam vs analytic FIT",
                  "MC FIT confidence interval must cover the "
                  "analytic estimate");

    Table table({"precision", "analytic-fit", "mc-fit", "mc-ci95-lo",
                 "mc-ci95-hi", "mc-faults", "covered"});
    for (auto p : fp::allPrecisions) {
        auto w = workloads::makeWorkload("micro-mul", p, args.scale);
        gpu::GpuOptions opt;
        opt.datapathTrials = args.trials;
        opt.memoryTrials = args.trials / 2;
        const auto eval = gpu::evaluateGpu(*w, opt);

        // Strip the control entry (its DUEs are analytic-only) and
        // drive the SDC entries through real executions.
        beam::ResourceInventory inv = eval.inventory;
        inv.entries.resize(2);
        const double analytic = inv.fitSdc();

        Rng rng(97);
        const double fluence = 400.0 / inv.rawRate();
        const auto mc = beam::runBeam(
            inv, fluence, rng,
            [&w](std::size_t entry, Rng &r) {
                return resolveByExecution(*w, entry, r);
            });
        const Interval ci = mc.fitSdc95();
        table.row()
            .cell(std::string(fp::precisionName(p)))
            .cell(analytic, 0)
            .cell(mc.fitSdc(), 0)
            .cell(ci.lo, 0)
            .cell(ci.hi, 0)
            .cell(static_cast<std::int64_t>(mc.faults))
            .cell(ci.contains(analytic) ? "yes" : "NO");
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
