file(REMOVE_RECURSE
  "CMakeFiles/vpu_sim_test.dir/vpu_sim_test.cc.o"
  "CMakeFiles/vpu_sim_test.dir/vpu_sim_test.cc.o.d"
  "vpu_sim_test"
  "vpu_sim_test.pdb"
  "vpu_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpu_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
