/**
 * @file
 * Reproduces Figure 10c: SDC and DUE FIT of the object-detection CNN
 * (YOLite standing in for YOLOv3) on the Titan V.
 *
 * Shape targets: the detection CNN's DUE FIT is on par with or above
 * its SDC FIT, far above the arithmetic kernels' (paper: CNNs have a
 * much higher DUE probability), and grows with the precision's
 * occupancy (double worst).
 *
 * Known deviation (EXPERIMENTS.md): the paper measures half's SDC
 * FIT significantly below single/double; in our scaled-down detector
 * the per-fault visibility of half outweighs its 2-3x resource
 * reduction, so half's SDC FIT lands highest instead. The full-size
 * YOLOv3 dilutes each fault across ~1000x more arithmetic per output.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 1.0);
    bench::banner("Figure 10c: Volta YOLite (YOLOv3 stand-in) FIT",
                  "DUE high (CNN) and worst for double; paper's "
                  "half-lowest SDC is a documented deviation");

    const auto result =
        bench::study(core::Architecture::Gpu, "yolite", args);
    Table table({"precision", "fit-sdc(a.u.)", "fit-due(a.u.)",
                 "due/sdc"});
    for (const auto &row : result.rows) {
        table.row()
            .cell(std::string(fp::precisionName(row.precision)))
            .cell(row.fitSdc, 0)
            .cell(row.fitDue, 0)
            .cell(row.fitDue / row.fitSdc, 2);
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
