# Empty dependencies file for table1_fpga_time.
# This may be replaced when dependencies are built.
