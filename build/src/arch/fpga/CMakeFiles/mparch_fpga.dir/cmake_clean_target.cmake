file(REMOVE_RECURSE
  "libmparch_fpga.a"
)
