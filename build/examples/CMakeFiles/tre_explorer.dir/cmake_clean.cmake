file(REMOVE_RECURSE
  "CMakeFiles/tre_explorer.dir/tre_explorer.cpp.o"
  "CMakeFiles/tre_explorer.dir/tre_explorer.cpp.o.d"
  "tre_explorer"
  "tre_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tre_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
