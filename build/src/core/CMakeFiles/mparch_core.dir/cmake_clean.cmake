file(REMOVE_RECURSE
  "CMakeFiles/mparch_core.dir/study.cc.o"
  "CMakeFiles/mparch_core.dir/study.cc.o.d"
  "libmparch_core.a"
  "libmparch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
