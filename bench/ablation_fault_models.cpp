/**
 * @file
 * Thin shim over the "ablation_fault_models" experiment registry entry. All logic —
 * tables, paper reference values, shape checks, campaign knobs —
 * lives in src/report/; this binary only preserves the historical
 * name, CLI and google-benchmark timing hook.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    return mparch::bench::shimMain(argc, argv, "ablation_fault_models");
}
