/**
 * @file
 * Synthetic handwritten-digit dataset.
 *
 * Substitution note (DESIGN.md): the paper classifies 28x28 MNIST
 * images; no MNIST files are available offline, so we generate a
 * deterministic 12x12 ten-class glyph task — digit-like prototype
 * bitmaps perturbed by sub-pixel jitter and Gaussian noise. What the
 * reliability study needs from the dataset is only that a real
 * trained classifier with non-trivial decision boundaries sits on
 * top of it, so that injected faults can flip classifications with
 * realistic probability.
 */

#ifndef MPARCH_NN_DIGITS_HH
#define MPARCH_NN_DIGITS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace mparch::nn {

/** Image side length of the synthetic digit task. */
inline constexpr std::size_t kDigitSize = 12;

/** Number of classes. */
inline constexpr std::size_t kDigitClasses = 10;

/** One labelled sample in host-double pixels (0..1). */
struct DigitSample
{
    std::array<double, kDigitSize * kDigitSize> pixels{};
    std::size_t label = 0;
};

/**
 * Deterministic generator of digit samples.
 *
 * Prototypes are fixed glyph bitmaps; samples add +/-1 pixel shift
 * and i.i.d. Gaussian pixel noise, all drawn from the generator's
 * own seeded stream.
 */
class DigitGenerator
{
  public:
    /** @param seed  Stream seed (same seed -> same sample sequence).
     *  @param noise Pixel noise standard deviation. */
    explicit DigitGenerator(std::uint64_t seed, double noise = 0.15)
        : rng_(seed), noise_(noise)
    {}

    /** Draw the next sample (label chosen uniformly). */
    DigitSample next();

    /** Draw a sample of a specific class. */
    DigitSample sampleOf(std::size_t label);

    /** The clean prototype bitmap of a class (for tests). */
    static const std::array<const char *, kDigitClasses> &glyphs();

  private:
    Rng rng_;
    double noise_;
};

} // namespace mparch::nn

#endif // MPARCH_NN_DIGITS_HH
