#include "mitigation/abft.hh"

namespace mparch::mitigation {

workloads::WorkloadPtr
makeAbftMxM(fp::Precision p, double scale)
{
    switch (p) {
      case fp::Precision::Half:
        return std::make_unique<
            AbftMxMWorkload<fp::Precision::Half>>(scale);
      case fp::Precision::Single:
        return std::make_unique<
            AbftMxMWorkload<fp::Precision::Single>>(scale);
      case fp::Precision::Double:
        return std::make_unique<
            AbftMxMWorkload<fp::Precision::Double>>(scale);
      case fp::Precision::Bfloat16:
        return std::make_unique<
            AbftMxMWorkload<fp::Precision::Bfloat16>>(scale);
    }
    panic("unknown precision");
}

} // namespace mparch::mitigation
