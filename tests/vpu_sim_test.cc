/**
 * @file
 * Tests for the KNC VPU pipeline simulator.
 */

#include <gtest/gtest.h>

#include "arch/phi/compiler_model.hh"
#include "arch/phi/params.hh"
#include "arch/phi/vpu_sim.hh"
#include "workloads/workload.hh"

namespace mparch::phi {
namespace {

using fp::Precision;

TEST(VpuSim, SingleThreadUnrollOneIsLatencyBound)
{
    VpuConfig config;
    config.threads = 1;
    VpuProgram prog;
    prog.instructions = 100;
    prog.unroll = 1;
    const VpuStats s = simulateVpu(config, prog);
    // One in-flight slot, latency 4: one instruction per ~4 cycles.
    EXPECT_NEAR(static_cast<double>(s.cycles), 100.0 * 4.0, 8.0);
    EXPECT_LT(s.issueUtilization, 0.3);
}

TEST(VpuSim, UnrollHidesLatency)
{
    VpuConfig config;
    config.threads = 1;
    VpuProgram deep, shallow;
    deep.instructions = shallow.instructions = 256;
    shallow.unroll = 1;
    deep.unroll = 4;
    const VpuStats s_shallow = simulateVpu(config, shallow);
    const VpuStats s_deep = simulateVpu(config, deep);
    EXPECT_LT(s_deep.cycles, s_shallow.cycles);
    EXPECT_GT(s_deep.issueUtilization,
              1.9 * s_shallow.issueUtilization);
}

TEST(VpuSim, NoBackToBackIssueFromOneThread)
{
    // Even with unlimited independence, one thread can use at most
    // every other cycle — the KNC restriction.
    VpuConfig config;
    config.threads = 1;
    VpuProgram prog;
    prog.instructions = 200;
    prog.unroll = 16;
    const VpuStats s = simulateVpu(config, prog);
    EXPECT_LE(s.issueUtilization, 0.51);
    EXPECT_GE(static_cast<double>(s.cycles), 2.0 * 200.0 - 2.0);
}

TEST(VpuSim, TwoThreadsRestorePeakIssue)
{
    VpuConfig config;
    config.threads = 2;
    VpuProgram prog;
    prog.instructions = 256;
    prog.unroll = 2;
    const VpuStats s = simulateVpu(config, prog);
    EXPECT_GT(s.issueUtilization, 0.95);
}

TEST(VpuSim, CompilerDepthsReproduceThroughputGap)
{
    // The compiler model gives double depth 1 and single depth 2;
    // with KNC's 4 threads both saturate, but with 2 resident
    // threads the single build's deeper pipelining wins — the
    // structural reason the allocator spends registers on unroll.
    VpuConfig config;
    config.threads = 2;
    auto w = workloads::makeWorkload("lavamd", Precision::Double, 0.1);
    VpuProgram prog_d, prog_s;
    prog_d.instructions = prog_s.instructions = 256;
    prog_d.unroll =
        compileKernel(w->desc(), Precision::Double).pipelineDepth;
    prog_s.unroll =
        compileKernel(w->desc(), Precision::Single).pipelineDepth;
    ASSERT_LT(prog_d.unroll, prog_s.unroll);
    const VpuStats sd = simulateVpu(config, prog_d);
    const VpuStats ss = simulateVpu(config, prog_s);
    EXPECT_GE(sd.cycles, ss.cycles);
}

TEST(VpuSim, ControlBitsScaleWithLanes)
{
    VpuConfig d, s;
    d.precision = Precision::Double;
    s.precision = Precision::Single;
    VpuProgram prog;
    const double cd = simulateVpu(d, prog).controlBits;
    const double cs = simulateVpu(s, prog).controlBits;
    EXPECT_EQ(cs - cd, 8.0);  // 16 vs 8 lane-mask bits
}

TEST(VpuSim, ControlAvfAccountingAndOutcomeMix)
{
    VpuConfig config;
    VpuProgram prog;
    prog.instructions = 128;
    prog.unroll = 2;
    const auto r = measureVpuControlAvf(config, prog, 1500, 7);
    EXPECT_EQ(r.masked + r.sdc + r.due, r.trials);
    EXPECT_GT(r.avfDue(), 0.02);   // runaway counters
    EXPECT_GT(r.avfSdc(), 0.05);   // lane-mask / short programs
    EXPECT_GT(r.masked, 0u);       // dead counter bits
    // Determinism.
    const auto r2 = measureVpuControlAvf(config, prog, 1500, 7);
    EXPECT_EQ(r.due, r2.due);
    EXPECT_EQ(r.sdc, r2.sdc);
}

TEST(VpuSim, LaneMaskExposureRaisesSingleSdc)
{
    // Per-bit AVFs are similar, but single's wider lane mask makes a
    // random control flip land on a mask bit more often: its
    // control-SDC probability is at least double's.
    VpuConfig d, s;
    d.precision = Precision::Double;
    s.precision = Precision::Single;
    VpuProgram prog;
    prog.instructions = 128;
    prog.unroll = 2;
    const auto rd = measureVpuControlAvf(d, prog, 2000, 9);
    const auto rs = measureVpuControlAvf(s, prog, 2000, 9);
    EXPECT_GE(rs.avfSdc(), rd.avfSdc() - 0.03);
}

} // namespace
} // namespace mparch::phi
