# Empty compiler generated dependencies file for fig10b_gpu_app_fit.
# This may be replaced when dependencies are built.
