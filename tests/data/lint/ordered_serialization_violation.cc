// Fixture: unordered container in a file that writes JSON — the
// iteration order would leak into the serialized artefact.

#include <string>
#include <unordered_map>

#include "common/json.hh"

namespace fixture {

void
dumpTallies(const std::unordered_map<std::string, int> &tallies,
            std::ostream &os)
{
    mparch::json::Writer w(os);
    w.beginObject();
    for (const auto &[key, count] : tallies)  // nondeterministic order
        w.member(key, count);
    w.endObject();
}

} // namespace fixture
