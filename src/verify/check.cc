/**
 * @file
 * Case execution, naming, ULP metric, and the combined check driver.
 */

#include "verify/verify.hh"

#include <sstream>

#include "fp/softfloat.hh"

namespace mparch::verify {

using fp::Format;
using fp::isNaN;
using fp::kBfloat16;
using fp::kDouble;
using fp::kHalf;
using fp::kSingle;
using fp::kTf32;
using fp::signOf;

const char *
vopName(VOp op)
{
    switch (op) {
      case VOp::Add:     return "add";
      case VOp::Sub:     return "sub";
      case VOp::Mul:     return "mul";
      case VOp::Div:     return "div";
      case VOp::Fma:     return "fma";
      case VOp::Sqrt:    return "sqrt";
      case VOp::Exp:     return "exp";
      case VOp::Log:     return "log";
      case VOp::Convert: return "convert";
      case VOp::NumOps:  break;
    }
    return "?";
}

std::optional<VOp>
parseVOp(std::string_view name)
{
    for (VOp op : allVOps)
        if (name == vopName(op))
            return op;
    return std::nullopt;
}

unsigned
vopArity(VOp op)
{
    switch (op) {
      case VOp::Fma:
        return 3;
      case VOp::Add:
      case VOp::Sub:
      case VOp::Mul:
      case VOp::Div:
        return 2;
      default:
        return 1;
    }
}

const char *
formatName(fp::Format f)
{
    if (f == kHalf)
        return "half";
    if (f == kSingle)
        return "single";
    if (f == kDouble)
        return "double";
    if (f == kBfloat16)
        return "bfloat16";
    if (f == kTf32)
        return "tf32";
    return "?";
}

std::optional<fp::Format>
parseFormat(std::string_view name)
{
    for (Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32})
        if (name == formatName(f))
            return f;
    return std::nullopt;
}

std::uint64_t
runProduction(const Case &c)
{
    const Format f = c.fmt;
    switch (c.op) {
      case VOp::Add:     return fp::fpAdd(f, c.a, c.b);
      case VOp::Sub:     return fp::fpSub(f, c.a, c.b);
      case VOp::Mul:     return fp::fpMul(f, c.a, c.b);
      case VOp::Div:     return fp::fpDiv(f, c.a, c.b);
      case VOp::Fma:     return fp::fpFma(f, c.a, c.b, c.c);
      case VOp::Sqrt:    return fp::fpSqrt(f, c.a);
      case VOp::Exp:     return fp::fpExp(f, c.a);
      case VOp::Log:     return fp::fpLog(f, c.a);
      case VOp::Convert: return fp::fpConvert(c.dst, f, c.a);
      case VOp::NumOps:  break;
    }
    return 0;
}

std::uint64_t
ulpDistance(fp::Format f, std::uint64_t x, std::uint64_t y)
{
    if (isNaN(f, x) || isNaN(f, y))
        return UINT64_MAX;

    // Map the sign-magnitude pattern onto a signed line where
    // consecutive representable values (infinities included) differ
    // by one; +0 and -0 collapse onto the same point.
    const auto line = [&](std::uint64_t b) -> std::int64_t {
        const auto mag =
            static_cast<std::int64_t>(b & (f.valueMask() >> 1));
        return signOf(f, b) ? -mag : mag;
    };
    const std::int64_t lx = line(x);
    const std::int64_t ly = line(y);
    return lx >= ly ? static_cast<std::uint64_t>(lx - ly)
                    : static_cast<std::uint64_t>(ly - lx);
}

namespace {

void
appendHex(std::ostringstream &os, fp::Format f, std::uint64_t bits)
{
    os << "0x" << std::hex << bits << std::dec << " ("
       << fp::fpDescribe(f, bits) << ")";
}

} // namespace

std::string
corpusLine(const Case &c)
{
    std::ostringstream os;
    os << vopName(c.op) << ' ' << formatName(c.fmt);
    if (c.op == VOp::Convert)
        os << ' ' << formatName(c.dst);
    os << std::hex;
    os << " 0x" << c.a;
    const unsigned arity = vopArity(c.op);
    if (arity >= 2)
        os << " 0x" << c.b;
    if (arity >= 3)
        os << " 0x" << c.c;
    return os.str();
}

std::string
reproCommand(const Case &c)
{
    std::ostringstream os;
    os << "mparch_verify check --op " << vopName(c.op) << " --format "
       << formatName(c.fmt);
    if (c.op == VOp::Convert)
        os << " --dst " << formatName(c.dst);
    os << std::hex;
    os << " --a 0x" << c.a;
    const unsigned arity = vopArity(c.op);
    if (arity >= 2)
        os << " --b 0x" << c.b;
    if (arity >= 3)
        os << " --c 0x" << c.c;
    return os.str();
}

std::string
describeMismatch(const Mismatch &m)
{
    const Case &c = m.c;
    const Format rf = c.resultFormat();
    std::ostringstream os;
    os << vopName(c.op) << ' ' << formatName(c.fmt);
    if (c.op == VOp::Convert)
        os << " -> " << formatName(c.dst);
    os << " [" << m.oracle << "]\n";

    os << "  a = ";
    appendHex(os, c.fmt, c.a);
    const unsigned arity = vopArity(c.op);
    if (arity >= 2) {
        os << "\n  b = ";
        appendHex(os, c.fmt, c.b);
    }
    if (arity >= 3) {
        os << "\n  c = ";
        appendHex(os, c.fmt, c.c);
    }
    os << "\n  produced ";
    appendHex(os, rf, m.got);
    if (m.oracle != "property") {
        os << "\n  expected ";
        appendHex(os, rf, m.want);
    }
    if (!m.detail.empty())
        os << "\n  " << m.detail;
    os << "\n  repro: " << reproCommand(c)
       << "\n  corpus: " << corpusLine(c);
    return os.str();
}

bool
checkCase(const Case &c, const CheckOptions &opts,
          std::vector<Mismatch> *out)
{
    const std::uint64_t got = runProduction(c);
    bool ok = true;

    if (opts.host) {
        const OracleResult host = hostOracle(c);
        if (host.supported && host.bits != got) {
            ok = false;
            if (out)
                out->push_back({c, got, host.bits, "host", ""});
        }
    }
    if (opts.exact) {
        const OracleResult exact = exactOracle(c);
        if (exact.supported && exact.bits != got) {
            ok = false;
            if (out)
                out->push_back({c, got, exact.bits, "exact", ""});
        }
    }
    if (opts.props) {
        for (std::string &violation :
             checkProperties(c, got, opts.prop)) {
            ok = false;
            if (out)
                out->push_back(
                    {c, got, 0, "property", std::move(violation)});
        }
    }
    return ok;
}

} // namespace mparch::verify
