file(REMOVE_RECURSE
  "CMakeFiles/mparch_beam.dir/virtual_beam.cc.o"
  "CMakeFiles/mparch_beam.dir/virtual_beam.cc.o.d"
  "libmparch_beam.a"
  "libmparch_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
