/**
 * @file
 * Shared internals of the softfloat implementation files.
 *
 * Not part of the public API; included only by the fp .cc files and white-box
 * tests.
 */

#ifndef MPARCH_FP_INTERNAL_HH
#define MPARCH_FP_INTERNAL_HH

#include "fp/format.hh"
#include "fp/softfloat.hh"

namespace mparch::fp::detail {

using U128 = unsigned __int128;

/**
 * A finite operand in LSB-scale form: value = (-1)^sign * sig * 2^exp.
 *
 * Normals carry the hidden bit (sig in [2^manBits, 2^(manBits+1)));
 * subnormals have sig < 2^manBits. Zero has sig == 0.
 */
struct Unpacked
{
    bool sign;
    int exp;            ///< scale of sig's least significant bit
    std::uint64_t sig;  ///< significand including hidden bit
};

/** Unpack a finite (zero/subnormal/normal) bit pattern. */
inline Unpacked
unpackFinite(Format f, std::uint64_t bits)
{
    const bool sign = signOf(f, bits);
    const int be = biasedExpOf(f, bits);
    const std::uint64_t m = mantissaOf(f, bits);
    if (be == 0)
        return {sign, f.minExp() - static_cast<int>(f.manBits), m};
    return {sign, be - f.bias() - static_cast<int>(f.manBits),
            m | f.hiddenBit()};
}

/** Normalise an unpacked non-zero value so sig's MSB is at manBits. */
inline Unpacked
normalize(Format f, Unpacked u)
{
    MPARCH_ASSERT(u.sig != 0, "cannot normalise zero");
    const int hb = highestSetBit(u.sig);
    const int shift = static_cast<int>(f.manBits) - hb;
    if (shift > 0) {
        u.sig <<= shift;
        u.exp -= shift;
    } else if (shift < 0) {
        // Only possible for corrupted-width significands.
        u.sig >>= -shift;
        u.exp += -shift;
    }
    return u;
}

} // namespace mparch::fp::detail

#endif // MPARCH_FP_INTERNAL_HH
