/**
 * @file
 * Ablation: cycle-level scheduler simulation vs the closed-form GPU
 * occupancy/control model.
 *
 * The analytic model in gpu.cc assumes (a) the micro kernels' wall
 * time is chain-latency-bound at 8/4/6-per-pair cycles, (b) enough
 * warps keep issue utilisation near 1, and (c) scheduler-state
 * upsets become DUEs at a roughly precision-independent rate. The
 * SM simulator checks all three from first principles and measures
 * the split of control-fault outcomes (hang vs program-level SDC vs
 * masked) that the inventory's control entry otherwise assumes.
 */

#include "bench_util.hh"

#include <algorithm>

#include "arch/gpu/params.hh"
#include "arch/gpu/sm_sim.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 2500, 1.0);
    bench::banner("Ablation: SM scheduler simulation",
                  "simulated cycles match the latency model; "
                  "control-fault DUE rate ~precision-independent");

    gpu::WarpProgram prog;
    prog.instructions = 256;

    Table timing({"precision", "warps", "sim-cycles",
                  "latency-model-cycles", "issue-util",
                  "avg-inflight"});
    for (auto p : fp::allPrecisions) {
        for (int warps : {1, 4, 8}) {
            gpu::SmConfig config;
            config.precision = p;
            config.warps = warps;
            const auto s = gpu::simulateSm(config, prog);
            // Closed form: chains are latency-bound per warp until
            // the single issue slot saturates.
            const double instrs =
                static_cast<double>(prog.instructions);
            const double latency_model = std::max(
                instrs * gpu::opLatencyCycles(p) *
                    gpu::packFactor(p),
                instrs * warps);
            timing.row()
                .cell(std::string(fp::precisionName(p)))
                .cell(static_cast<std::int64_t>(warps))
                .cell(static_cast<std::int64_t>(s.cycles))
                .cell(latency_model, 0)
                .cell(s.issueUtilization, 3)
                .cell(s.avgInFlight, 2);
        }
    }
    timing.setTitle("fault-free schedule");
    timing.print(std::cout);

    Table control({"precision", "trials", "masked", "sdc(program)",
                   "due(hang)", "avf-due", "ci95"});
    for (auto p : fp::allPrecisions) {
        gpu::SmConfig config;
        config.precision = p;
        const auto r =
            gpu::measureControlAvf(config, prog, args.trials, 17);
        const auto ci = r.due95();
        char buf[48];
        std::snprintf(buf, sizeof(buf), "[%.3f, %.3f]", ci.lo,
                      ci.hi);
        control.row()
            .cell(std::string(fp::precisionName(p)))
            .cell(static_cast<std::int64_t>(r.trials))
            .cell(static_cast<std::int64_t>(r.masked))
            .cell(static_cast<std::int64_t>(r.sdc))
            .cell(static_cast<std::int64_t>(r.due))
            .cell(r.avfDue(), 3)
            .cell(buf);
    }
    control.setTitle("scheduler-state injection");
    control.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
