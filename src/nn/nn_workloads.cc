#include "nn/nn_workloads.hh"

#include <algorithm>
#include <cmath>

#include "nn/digits.hh"
#include "nn/mnistnet.hh"
#include "nn/yolite.hh"

namespace mparch::nn {

using workloads::BufferView;
using workloads::ExecutionEnv;
using workloads::KernelDesc;
using workloads::makeBufferView;
using workloads::SdcSeverity;
using workloads::Workload;
using workloads::WorkloadPtr;

const MnistParams &
pretrainedMnist()
{
    static const MnistParams params = [] {
        TrainConfig config;
        MnistParams p = trainMnist(config);
        const double acc = evaluateHostAccuracy(p, 500, 77);
        if (acc < 0.9) {
            warn("pretrained digit classifier accuracy ", acc,
                 " below 0.9; criticality results may be noisy");
        }
        return p;
    }();
    return params;
}

namespace {

/** MNIST-like classifier under injection. */
template <fp::Precision P>
class MnistWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    explicit MnistWorkload(double scale)
        : net_(pretrainedMnist())
    {
        batch_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::lround(4.0 * scale)));
        pixels_.resize(batch_ * kDigitSize * kDigitSize);
        logits_.resize(batch_ * kDigitClasses);
    }

    std::string name() const override { return "mnist"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<MnistWorkload<P>>(*this);
    }

    /** Images per execution. */
    std::size_t batch() const { return batch_; }

    void
    reset(std::uint64_t input_seed) override
    {
        // Weights may have been corrupted by a previous trial:
        // reload them (the FPGA/GPU reloads its binary per run).
        net_ = MnistNet<P>(pretrainedMnist());
        DigitGenerator gen(input_seed);
        for (std::size_t b = 0; b < batch_; ++b) {
            const DigitSample sample = gen.next();
            for (std::size_t i = 0; i < sample.pixels.size(); ++i)
                pixels_[b * sample.pixels.size() + i] =
                    Value::fromDouble(sample.pixels[i]);
        }
        std::fill(logits_.begin(), logits_.end(), Value{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        const std::size_t stride = kDigitSize * kDigitSize;
        std::vector<Value> image(stride);
        std::array<Value, kDigitClasses> out{};
        for (std::size_t b = 0; b < batch_; ++b) {
            env.tick();
            if (env.aborted())
                return;
            std::copy_n(pixels_.begin() + b * stride, stride,
                        image.begin());
            net_.infer(image, out);
            std::copy(out.begin(), out.end(),
                      logits_.begin() + b * kDigitClasses);
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("convW", net_.convW()),
                makeBufferView("convB", net_.convB()),
                makeBufferView("fc1W", net_.fc1W()),
                makeBufferView("fc1B", net_.fc1B()),
                makeBufferView("fc2W", net_.fc2W()),
                makeBufferView("fc2B", net_.fc2B()),
                makeBufferView("pixels", pixels_),
                makeBufferView("logits", logits_)};
    }

    BufferView
    output() override
    {
        return makeBufferView("logits", logits_);
    }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 6;
        d.inputStreams = 3;
        d.arithmeticIntensity = 4.0;
        d.usesTranscendental = false;
        d.regularAccess = true;
        d.branchDensity = 0.12;  // CNNs: layer dispatch, pooling
        return d;
    }

    std::vector<workloads::Engine>
    engines(const fp::FpContext &golden_ops) const override
    {
        (void)golden_ops;
        // Per-image FMA schedule: conv engine first, then the two
        // dense layers on a separate fully-connected engine. A
        // spatial design keeps these physically apart, so a broken
        // conv operator can only corrupt conv arithmetic — whose
        // errors must then survive ReLU, max-pooling and dilution
        // into 150-term dot products, the CNN masking the paper
        // credits for MNIST's low FIT (Section 4.1).
        constexpr std::uint64_t conv_ops =
            kConvFilters * kPoolOut * kPoolOut * 4 * kKernel * kKernel;
        constexpr std::uint64_t dense_ops =
            kHidden * kFlat + kDigitClasses * kHidden;
        constexpr std::uint64_t period = conv_ops + dense_ops;
        workloads::Engine conv{"conv", fp::OpKind::Fma, period, 0,
                               conv_ops};
        workloads::Engine dense{"dense", fp::OpKind::Fma, period,
                                conv_ops, period};
        return {conv, dense};
    }

    SdcSeverity
    classifySdc(const std::vector<std::uint64_t> &golden_bits) override
    {
        for (std::size_t b = 0; b < batch_; ++b) {
            std::array<Value, kDigitClasses> now{}, gold{};
            for (std::size_t c = 0; c < kDigitClasses; ++c) {
                now[c] = logits_[b * kDigitClasses + c];
                gold[c] = Value::fromBits(
                    golden_bits[b * kDigitClasses + c]);
            }
            if (argmaxLogits<P>(now) != argmaxLogits<P>(gold))
                return SdcSeverity::CriticalChange;
        }
        return SdcSeverity::Tolerable;
    }

  private:
    MnistNet<P> net_;
    std::size_t batch_;
    std::vector<Value> pixels_;
    std::vector<Value> logits_;
};

/** YOLite detector under injection. */
template <fp::Precision P>
class YoliteWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    explicit YoliteWorkload(double scale)
    {
        batch_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::lround(2.0 * scale)));
        pixels_.resize(batch_ * kSceneSize * kSceneSize);
        out_.resize(batch_ * kYoliteOut);
        threshold_ = yoliteThreshold();
    }

    std::string name() const override { return "yolite"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<YoliteWorkload<P>>(*this);
    }

    /** Scenes per execution. */
    std::size_t batch() const { return batch_; }

    void
    reset(std::uint64_t input_seed) override
    {
        net_ = YoliteNet<P>();  // reload weights
        SceneGenerator gen(input_seed);
        for (std::size_t b = 0; b < batch_; ++b) {
            const Scene scene = gen.next();
            for (std::size_t i = 0; i < scene.pixels.size(); ++i)
                pixels_[b * scene.pixels.size() + i] =
                    Value::fromDouble(scene.pixels[i]);
        }
        std::fill(out_.begin(), out_.end(), Value{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        const std::size_t stride = kSceneSize * kSceneSize;
        std::vector<Value> image(stride);
        std::vector<Value> det;
        for (std::size_t b = 0; b < batch_; ++b) {
            env.tick();
            if (env.aborted())
                return;
            std::copy_n(pixels_.begin() + b * stride, stride,
                        image.begin());
            net_.detect(image, det);
            std::copy(det.begin(), det.end(),
                      out_.begin() + b * kYoliteOut);
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("filters", net_.filters()),
                makeBufferView("pixels", pixels_),
                makeBufferView("out", out_)};
    }

    BufferView output() override { return makeBufferView("out", out_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 6;
        d.inputStreams = 2;
        d.arithmeticIntensity = 6.0;
        d.usesTranscendental = false;
        d.regularAccess = true;
        // Paper Section 6.1: object-detection CNNs have a much
        // higher DUE probability than arithmetic codes.
        d.branchDensity = 0.25;
        return d;
    }

    SdcSeverity
    classifySdc(const std::vector<std::uint64_t> &golden_bits) override
    {
        SdcSeverity worst = SdcSeverity::Tolerable;
        for (std::size_t b = 0; b < batch_; ++b) {
            const SdcSeverity s = classifyScene(b, golden_bits);
            if (static_cast<int>(s) > static_cast<int>(worst))
                worst = s;
        }
        return worst;
    }

  private:
    SdcSeverity
    classifyScene(std::size_t b,
                  const std::vector<std::uint64_t> &golden_bits) const
    {
        std::array<double, kYoliteOut> now{}, gold{};
        const fp::Format f = fp::formatOf(P);
        for (std::size_t i = 0; i < kYoliteOut; ++i) {
            now[i] = out_[b * kYoliteOut + i].toDouble();
            gold[i] =
                fp::fpToDouble(f, golden_bits[b * kYoliteOut + i]);
        }
        const auto dn = decodeDetections(now, threshold_);
        const auto dg = decodeDetections(gold, threshold_);
        if (dn.size() != dg.size())
            return SdcSeverity::DetectionChange;
        SdcSeverity worst = SdcSeverity::Tolerable;
        for (std::size_t i = 0; i < dn.size(); ++i) {
            if (dn[i].cell != dg[i].cell)
                return SdcSeverity::DetectionChange;
            if (dn[i].cls != dg[i].cls)
                return SdcSeverity::CriticalChange;
            if (dn[i].pos != dg[i].pos)
                worst = SdcSeverity::DetectionChange;
        }
        return worst;
    }

    YoliteNet<P> net_;
    std::size_t batch_ = 2;
    double threshold_ = 0.0;
    std::vector<Value> pixels_;
    std::vector<Value> out_;
};

/** Instantiate one adapter template at a runtime precision. */
template <template <fp::Precision> class W>
WorkloadPtr
dispatch(fp::Precision p, double scale)
{
    switch (p) {
      case fp::Precision::Half:
        return std::make_unique<W<fp::Precision::Half>>(scale);
      case fp::Precision::Single:
        return std::make_unique<W<fp::Precision::Single>>(scale);
      case fp::Precision::Double:
        return std::make_unique<W<fp::Precision::Double>>(scale);
      case fp::Precision::Bfloat16:
        return std::make_unique<W<fp::Precision::Bfloat16>>(scale);
    }
    panic("unknown precision");
}

} // namespace

WorkloadPtr
makeNnWorkload(const std::string &name, fp::Precision p, double scale)
{
    if (name == "mnist")
        return dispatch<MnistWorkload>(p, scale);
    if (name == "yolite")
        return dispatch<YoliteWorkload>(p, scale);
    fatal("unknown CNN workload '", name, "'");
}

WorkloadPtr
makeAnyWorkload(const std::string &name, fp::Precision p, double scale)
{
    if (name == "mnist" || name == "yolite")
        return makeNnWorkload(name, p, scale);
    return workloads::makeWorkload(name, p, scale);
}

} // namespace mparch::nn
