/**
 * @file
 * Reproduces Figure 7: Program Vulnerability Factor on the Xeon Phi,
 * measured CAROL-FI style (single bit flip in a random live variable
 * at a random execution instant).
 *
 * Shape target: PVF is similar for single and double within each
 * code — the precision changes how often faults *occur* (Figure 6),
 * not how they *propagate* — which is the paper's key decomposition
 * of its beam results (Section 5.2).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 500, 0.3);
    bench::banner("Figure 7: Xeon Phi PVF",
                  "PVF(single) ~= PVF(double) for every code");

    Table table({"benchmark", "pvf-double", "pvf-single",
                 "|difference|"});
    for (const std::string name : {"lavamd", "mxm", "lud"}) {
        const auto result =
            bench::study(core::Architecture::XeonPhi, name, args);
        const double pd = result.find(fp::Precision::Double)->pvf;
        const double ps = result.find(fp::Precision::Single)->pvf;
        table.row()
            .cell(name)
            .cell(pd, 3)
            .cell(ps, 3)
            .cell(std::abs(pd - ps), 3);
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
