file(REMOVE_RECURSE
  "CMakeFiles/mparch_fault.dir/campaign.cc.o"
  "CMakeFiles/mparch_fault.dir/campaign.cc.o.d"
  "CMakeFiles/mparch_fault.dir/hooks.cc.o"
  "CMakeFiles/mparch_fault.dir/hooks.cc.o.d"
  "libmparch_fault.a"
  "libmparch_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
