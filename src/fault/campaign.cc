#include "fault/campaign.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/hooks.hh"

namespace mparch::fault {

using workloads::BufferView;
using workloads::ExecutionEnv;
using workloads::Workload;

FaultAnatomy::Field
bitField(fp::Format f, int bit)
{
    if (bit == static_cast<int>(f.signPos()))
        return FaultAnatomy::Field::Sign;
    if (bit >= static_cast<int>(f.manBits))
        return FaultAnatomy::Field::Exponent;
    if (bit >= static_cast<int>(f.manBits) / 2)
        return FaultAnatomy::Field::MantissaHigh;
    return FaultAnatomy::Field::MantissaLow;
}

double
CampaignResult::fieldAvf(FaultAnatomy::Field field) const
{
    std::uint64_t hit = 0, total = 0;
    for (const auto &a : anatomy) {
        if (a.field != field)
            continue;
        ++total;
        hit += a.outcome == OutcomeKind::Sdc;
    }
    return total ? static_cast<double>(hit) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CampaignResult::survivingFraction(double tre) const
{
    if (corpus.empty())
        return 0.0;
    std::uint64_t surviving = 0;
    for (const auto &rec : corpus)
        if (rec.maxRel > tre)
            ++surviving;
    return static_cast<double>(surviving) /
           static_cast<double>(corpus.size());
}

double
CampaignResult::severityFraction(workloads::SdcSeverity severity) const
{
    if (corpus.empty())
        return 0.0;
    std::uint64_t n = 0;
    for (const auto &rec : corpus)
        if (rec.severity == severity)
            ++n;
    return static_cast<double>(n) /
           static_cast<double>(corpus.size());
}

void
CampaignResult::merge(const CampaignResult &other)
{
    trials += other.trials;
    masked += other.masked;
    sdc += other.sdc;
    due += other.due;
    detected += other.detected;
    corpus.insert(corpus.end(), other.corpus.begin(),
                  other.corpus.end());
}

GoldenRun::GoldenRun(Workload &w, std::uint64_t input_seed)
{
    w.reset(input_seed);
    ExecutionEnv env;
    {
        fp::FpEnvGuard guard(ops);
        w.execute(env);
    }
    ticks = env.ticks();
    const BufferView out = w.output();
    outputBits.resize(out.count);
    for (std::size_t i = 0; i < out.count; ++i)
        outputBits[i] = out.get(i);
}

namespace {

/** Relative deviation of a corrupted element from its golden value. */
double
relativeDeviation(fp::Format f, std::uint64_t corrupted,
                  std::uint64_t golden)
{
    const double g = fp::fpToDouble(f, golden);
    const double c = fp::fpToDouble(f, corrupted);
    if (!std::isfinite(c) || !std::isfinite(g))
        return std::numeric_limits<double>::infinity();
    if (g == 0.0)
        return c == 0.0 ? 0.0
                        : std::numeric_limits<double>::infinity();
    return std::abs((c - g) / g);
}

/** Compare the workload's output with golden and record the outcome. */
void
classify(Workload &w, const GoldenRun &golden, bool hung,
         CampaignResult &result)
{
    ++result.trials;
    if (hung) {
        ++result.due;
        return;
    }
    if (w.detectedError()) {
        // The workload's own checker caught the corruption before
        // the output was consumed: recoverable by re-execution.
        ++result.detected;
        return;
    }
    const BufferView out = w.output();
    MPARCH_ASSERT(out.count == golden.outputBits.size(),
                  "output size changed between runs");
    const fp::Format f = fp::formatOf(out.precision);
    double max_rel = 0.0;
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < out.count; ++i) {
        const std::uint64_t bits = out.get(i);
        if (bits == golden.outputBits[i])
            continue;
        ++diffs;
        max_rel = std::max(
            max_rel, relativeDeviation(f, bits, golden.outputBits[i]));
    }
    if (diffs == 0) {
        ++result.masked;
        return;
    }
    ++result.sdc;
    SdcRecord rec;
    rec.maxRel = max_rel;
    rec.corruptedFraction =
        static_cast<double>(diffs) / static_cast<double>(out.count);
    rec.severity = w.classifySdc(golden.outputBits);
    result.corpus.push_back(rec);
}

/** Run one armed execution under the watchdog. */
bool  // returns "hung"
executeArmed(Workload &w, const GoldenRun &golden,
             const CampaignConfig &config, fp::FpHook *hook,
             const std::function<void(std::uint64_t)> &on_tick)
{
    ExecutionEnv env;
    env.tickBudget = static_cast<std::uint64_t>(
        std::ceil(config.timeoutFactor *
                  static_cast<double>(golden.ticks)));
    env.onTick = on_tick;
    fp::FpContext ctx;
    ctx.hook = hook;
    {
        fp::FpEnvGuard guard(ctx);
        w.execute(env);
    }
    return env.aborted();
}

} // namespace

CampaignResult
runMemoryCampaign(Workload &w, const CampaignConfig &config)
{
    const GoldenRun golden(w, config.inputSeed);
    MPARCH_ASSERT(golden.ticks > 0, "workload must tick at least once");

    Rng rng(config.seed);
    CampaignResult result;
    for (std::uint64_t t = 0; t < config.trials; ++t) {
        w.reset(config.inputSeed);

        // Pick the target: buffer weighted by bit population, then a
        // uniform element, then the fault model's bit pattern.
        std::vector<BufferView> views = w.buffers();
        std::uint64_t total_bits = 0;
        for (const auto &view : views)
            total_bits += view.bits();
        MPARCH_ASSERT(total_bits > 0, "no injectable bits");
        std::uint64_t pick = rng.below(total_bits);
        std::size_t which = 0;
        while (pick >= views[which].bits()) {
            pick -= views[which].bits();
            ++which;
        }
        const BufferView &target = views[which];
        const std::size_t element = rng.below(target.count);
        const unsigned width = fp::formatOf(target.precision).totalBits;
        const std::uint64_t inject_tick = rng.below(golden.ticks);
        Rng payload_rng = rng.fork();

        int flipped_bit = -1;
        const auto on_tick = [&](std::uint64_t tick) {
            if (tick != inject_tick)
                return;
            if (config.model == FaultModel::WordBurst) {
                // A multi-bit upset along a physical row: the same
                // bit position flips in up to 4 adjacent words
                // (JESD89A-style MBU, paper reference [8]).
                const auto bit = static_cast<unsigned>(
                    payload_rng.below(width));
                const std::size_t span =
                    std::min<std::size_t>(4, target.count - element);
                for (std::size_t k = 0; k < span; ++k) {
                    target.set(element + k,
                               flipBit(target.get(element + k), bit));
                }
                flipped_bit = static_cast<int>(bit);
                return;
            }
            const std::uint64_t before = target.get(element);
            const std::uint64_t after = applyFault(
                config.model, payload_rng, width, before);
            if (config.model == FaultModel::SingleBitFlip)
                flipped_bit = highestSetBit(before ^ after);
            target.set(element, after);
        };
        const bool hung =
            executeArmed(w, golden, config, nullptr, on_tick);
        const std::uint64_t sdc_before = result.sdc;
        const std::uint64_t due_before = result.due;
        const std::uint64_t det_before = result.detected;
        classify(w, golden, hung, result);
        if (config.recordAnatomy && flipped_bit >= 0) {
            FaultAnatomy a;
            a.bit = flipped_bit;
            a.field = bitField(fp::formatOf(target.precision),
                               flipped_bit);
            if (result.due != due_before)
                a.outcome = OutcomeKind::Due;
            else if (result.detected != det_before)
                a.outcome = OutcomeKind::Detected;
            else if (result.sdc != sdc_before) {
                a.outcome = OutcomeKind::Sdc;
                a.maxRel = result.corpus.back().maxRel;
            } else {
                a.outcome = OutcomeKind::Masked;
            }
            result.anatomy.push_back(a);
        }
    }
    return result;
}

CampaignResult
runDatapathCampaign(Workload &w, const CampaignConfig &config,
                    fp::OpKind kind_filter)
{
    const GoldenRun golden(w, config.inputSeed);
    const fp::Format f = fp::formatOf(w.precision());

    // Candidate kinds and their dynamic op counts (Exp is excluded:
    // its constituent mul/fma operations are the real targets).
    std::vector<std::pair<fp::OpKind, std::uint64_t>> kinds;
    std::uint64_t total_ops = 0;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(fp::OpKind::NumKinds); ++k) {
        const auto kind = static_cast<fp::OpKind>(k);
        if (kind == fp::OpKind::Exp)
            continue;
        if (kind_filter != fp::OpKind::NumKinds && kind != kind_filter)
            continue;
        const std::uint64_t n = golden.ops.count(kind);
        if (n == 0)
            continue;
        kinds.emplace_back(kind, n);
        total_ops += n;
    }
    MPARCH_ASSERT(total_ops > 0, "no operations to strike");

    Rng rng(config.seed);
    CampaignResult result;
    for (std::uint64_t t = 0; t < config.trials; ++t) {
        w.reset(config.inputSeed);

        // Uniform over dynamic operations...
        std::uint64_t pick = rng.below(total_ops);
        std::size_t which = 0;
        while (pick >= kinds[which].second) {
            pick -= kinds[which].second;
            ++which;
        }
        const fp::OpKind kind = kinds[which].first;
        const std::uint64_t index = rng.below(kinds[which].second);

        // ...then a stage weighted by its bit population (optionally
        // restricted to the operand-read stages).
        std::size_t stage_count = 0;
        const auto &stages = stagesFor(kind, stage_count);
        const auto is_operand = [](fp::Stage s) {
            return s == fp::Stage::OperandA ||
                   s == fp::Stage::OperandB ||
                   s == fp::Stage::OperandC;
        };
        std::uint64_t weight_sum = 0;
        for (std::size_t s = 0; s < stage_count; ++s) {
            if (config.operandStagesOnly && !is_operand(stages[s]))
                continue;
            weight_sum += stageWidthEstimate(stages[s], f);
        }
        std::uint64_t spick = rng.below(weight_sum);
        std::size_t si = 0;
        for (;; ++si) {
            if (config.operandStagesOnly && !is_operand(stages[si]))
                continue;
            const std::uint64_t w = stageWidthEstimate(stages[si], f);
            if (spick < w)
                break;
            spick -= w;
        }
        OneShotDatapathHook hook(kind, index, stages[si],
                                 rng.uniform());

        const bool hung =
            executeArmed(w, golden, config, &hook, nullptr);
        classify(w, golden, hung, result);
    }
    return result;
}

CampaignResult
runPersistentCampaign(Workload &w, const CampaignConfig &config,
                      const std::vector<EngineAllocation> &engines)
{
    const GoldenRun golden(w, config.inputSeed);
    const fp::Format f = fp::formatOf(w.precision());

    std::uint64_t total_units = 0;
    for (const auto &alloc : engines)
        total_units += alloc.units;
    MPARCH_ASSERT(total_units > 0, "circuit has no physical units");

    Rng rng(config.seed);
    CampaignResult result;
    for (std::uint64_t t = 0; t < config.trials; ++t) {
        w.reset(config.inputSeed);

        // A configuration upset strikes a physical operator; sample
        // proportionally to each engine's instance count.
        std::uint64_t pick = rng.below(total_units);
        std::size_t which = 0;
        while (pick >= engines[which].units) {
            pick -= engines[which].units;
            ++which;
        }
        const auto &alloc = engines[which];
        const fp::OpKind kind = alloc.engine.kind;
        const std::uint64_t unit = rng.below(alloc.units);

        std::size_t stage_count = 0;
        const auto &stages = stagesFor(kind, stage_count);
        std::uint64_t weight_sum = 0;
        for (std::size_t s = 0; s < stage_count; ++s)
            weight_sum += stageWidthEstimate(stages[s], f);
        std::uint64_t spick = rng.below(weight_sum);
        std::size_t si = 0;
        while (spick >= stageWidthEstimate(stages[si], f)) {
            spick -= stageWidthEstimate(stages[si], f);
            ++si;
        }
        // Configuration upsets rewire logic: model as stuck-at of
        // either polarity, with an always-flip tail for upsets in
        // inverting logic (the gate computes the complement).
        const std::uint64_t mode_pick = rng.below(3);
        const PersistMode mode =
            mode_pick == 0 ? PersistMode::Flip
            : mode_pick == 1 ? PersistMode::StuckAt0
                             : PersistMode::StuckAt1;
        PersistentDatapathHook hook(kind, alloc.units, unit,
                                    stages[si], rng.uniform(),
                                    alloc.engine.period,
                                    alloc.engine.lo, alloc.engine.hi,
                                    mode);

        const bool hung =
            executeArmed(w, golden, config, &hook, nullptr);
        classify(w, golden, hung, result);
    }
    return result;
}

CampaignResult
runPersistentCampaign(
    Workload &w, const CampaignConfig &config,
    const std::function<std::uint64_t(fp::OpKind)> &physical_units)
{
    const GoldenRun golden(w, config.inputSeed);
    std::vector<EngineAllocation> engines;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(fp::OpKind::NumKinds); ++k) {
        const auto kind = static_cast<fp::OpKind>(k);
        if (kind == fp::OpKind::Exp)
            continue;
        if (golden.ops.count(kind) == 0)
            continue;
        const std::uint64_t units = physical_units(kind);
        if (units == 0)
            continue;
        EngineAllocation alloc;
        alloc.engine.name = fp::opKindName(kind);
        alloc.engine.kind = kind;
        alloc.units = units;
        engines.push_back(alloc);
    }
    return runPersistentCampaign(w, config, engines);
}

} // namespace mparch::fault
