#include "report/document.hh"

#include <cstdio>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace mparch::report {

double
Cell::asNumber(bool *ok) const
{
    if (ok)
        *ok = kind != Kind::Text;
    switch (kind) {
      case Kind::Real: return real;
      case Kind::Int:  return static_cast<double>(integer);
      case Kind::Text: return 0.0;
    }
    return 0.0;
}

std::string
Cell::formatted() const
{
    switch (kind) {
      case Kind::Text:
        return text;
      case Kind::Int:
        return std::to_string(integer);
      case Kind::Real: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", digits, real);
        return buf;
      }
    }
    return {};
}

ResultTable &
ResultTable::row()
{
    MPARCH_ASSERT(rows_.empty() ||
                      rows_.back().size() == columns_.size(),
                  "report: previous row incomplete");
    rows_.emplace_back();
    return *this;
}

ResultTable &
ResultTable::cell(Cell value)
{
    MPARCH_ASSERT(!rows_.empty(), "report: cell() before row()");
    MPARCH_ASSERT(rows_.back().size() < columns_.size(),
                  "report: row has more cells than columns");
    rows_.back().push_back(std::move(value));
    return *this;
}

int
ResultTable::columnIndex(const std::string &column) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i] == column)
            return static_cast<int>(i);
    return -1;
}

const Cell *
ResultTable::at(std::size_t row, const std::string &column) const
{
    const int col = columnIndex(column);
    if (col < 0 || row >= rows_.size())
        return nullptr;
    const auto &cells = rows_[row];
    if (static_cast<std::size_t>(col) >= cells.size())
        return nullptr;
    return &cells[static_cast<std::size_t>(col)];
}

ResultTable &
ResultDoc::addTable(std::string name,
                    std::vector<std::string> columns)
{
    tables.emplace_back(std::move(name), std::move(columns));
    return tables.back();
}

const ResultTable *
ResultDoc::table(const std::string &name) const
{
    for (const auto &t : tables)
        if (t.name() == name)
            return &t;
    return nullptr;
}

bool
ResultDoc::allPassed() const
{
    for (const auto &verdict : verdicts)
        if (!verdict.pass)
            return false;
    return true;
}

void
ResultDoc::print(std::ostream &os) const
{
    for (const auto &t : tables) {
        Table text(t.columns());
        if (t.name() != "main")
            text.setTitle(t.name());
        for (const auto &cells : t.rows()) {
            text.row();
            for (const auto &c : cells)
                text.cell(c.formatted());
        }
        text.print(os);
    }
    for (const auto &note : notes)
        os << note << "\n";
    if (!verdicts.empty()) {
        os << "shape checks:\n";
        for (const auto &verdict : verdicts) {
            os << "  [" << (verdict.pass ? "PASS" : "FAIL") << "] "
               << verdict.id << ": " << verdict.description << " ("
               << verdict.observed << ")\n";
        }
    }
}

void
ResultDoc::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject()
        .member("experiment", experiment)
        .member("paper_ref", paperRef)
        .member("kind", kind)
        .member("title", title)
        .member("shape_target", shapeTarget)
        .member("trials", trials)
        .member("scale", scale)
        .member("jobs", jobs);

    w.key("tables").beginArray();
    for (const auto &t : tables) {
        w.beginObject().member("name", t.name());
        w.key("columns").beginArray();
        for (const auto &column : t.columns())
            w.value(column);
        w.endArray();
        w.key("rows").beginArray();
        for (const auto &cells : t.rows()) {
            w.beginArray();
            for (const auto &c : cells) {
                switch (c.kind) {
                  case Cell::Kind::Text: w.value(c.text); break;
                  case Cell::Kind::Real: w.value(c.real); break;
                  case Cell::Kind::Int:  w.value(c.integer); break;
                }
            }
            w.endArray();
        }
        w.endArray().endObject();
    }
    w.endArray();

    w.key("notes").beginArray();
    for (const auto &note : notes)
        w.value(note);
    w.endArray();

    w.key("checks").beginArray();
    for (const auto &verdict : verdicts) {
        w.beginObject()
            .member("id", verdict.id)
            .member("description", verdict.description)
            .member("observed", verdict.observed)
            .member("pass", verdict.pass)
            .endObject();
    }
    w.endArray();

    w.member("all_passed", allPassed()).endObject();
    os << "\n";
}

void
ResultDoc::writeCsv(const ResultTable &table, std::ostream &os)
{
    Table text(table.columns());
    for (const auto &cells : table.rows()) {
        text.row();
        for (const auto &c : cells)
            text.cell(c.formatted());
    }
    text.printCsv(os);
}

} // namespace mparch::report
