/**
 * @file
 * mparch_lint — project-rule determinism & injectability linter.
 *
 * Usage:
 *   mparch_lint [options] <file-or-dir>...
 *
 * Options:
 *   --list-rules       print the rule catalogue and exit
 *   --rule <name>      run only this rule (repeatable)
 *   --json <path>      also write the machine-readable report
 *   --show-suppressed  print suppressed findings too
 *   -h, --help         usage
 *
 * Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O
 * error. Wired into tier-1 as the `lint_all` ctest entry.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hh"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: mparch_lint [--list-rules] [--rule <name>]...\n"
          "                   [--json <path>] [--show-suppressed]\n"
          "                   <file-or-dir>...\n"
          "\n"
          "Lints C++ sources against the project's determinism and\n"
          "injectability rules. Directories are walked recursively\n"
          "(skipping data/ and build*/). Exit status: 0 clean,\n"
          "1 findings, 2 usage/I-O error.\n";
}

void
listRules(std::ostream &os)
{
    for (const auto *rule : mparch::analysis::allRules())
        os << rule->name() << "\n    " << rule->summary() << "\n";
    os << mparch::analysis::suppressionRuleName()
       << "\n    (meta) malformed or unjustified "
          "`mparch-lint: allow(...)` comments\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch::analysis;

    LintOptions options;
    std::vector<std::string> paths;
    std::string jsonPath;
    bool showSuppressed = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--list-rules") {
            listRules(std::cout);
            return 0;
        }
        if (arg == "--show-suppressed") {
            showSuppressed = true;
            continue;
        }
        if (arg == "--rule" || arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << "mparch_lint: " << arg
                          << " needs an argument\n";
                usage(std::cerr);
                return 2;
            }
            const std::string value = argv[++i];
            if (arg == "--rule") {
                if (findRule(value) == nullptr) {
                    std::cerr << "mparch_lint: unknown rule '"
                              << value << "' (see --list-rules)\n";
                    return 2;
                }
                options.onlyRules.push_back(value);
            } else {
                jsonPath = value;
            }
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "mparch_lint: unknown option " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty()) {
        std::cerr << "mparch_lint: no files or directories given\n";
        usage(std::cerr);
        return 2;
    }

    const LintReport report = lintPaths(paths, options);
    printReport(report, std::cout, showSuppressed);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "mparch_lint: cannot write " << jsonPath
                      << "\n";
            return 2;
        }
        writeJsonReport(report, out);
    }
    if (!report.errors.empty())
        return 2;
    return report.active() == 0 ? 0 : 1;
}
