/**
 * @file
 * Reproduces Figure 13: Mean Executions Between Failures on the
 * Titan V for the microbenchmarks, LavaMD, MxM and the detection CNN.
 *
 * Shape targets: MEBF rises as precision shrinks for every
 * arithmetic benchmark, and the realistic codes gain far more than
 * the micro kernels (their reduced-precision runs are also much
 * faster). YOLite's half row inherits the Figure 10c deviation
 * (half SDC not lowest) plus the genuine half slowdown, so it is the
 * one row whose direction differs from the paper.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 13: Volta MEBF (a.u.)",
                  "MEBF rises with reduced precision; apps gain more "
                  "than micro kernels");

    Table table({"benchmark", "precision", "mebf(a.u.)",
                 "norm-to-double"});
    for (const std::string name :
         {"micro-mul", "micro-add", "micro-fma", "lavamd", "mxm",
          "yolite"}) {
        bench::BenchArgs a = args;
        if (name == "yolite")
            a.scale = 1.0;
        const auto result =
            bench::study(core::Architecture::Gpu, name, a);
        const double base = result.find(fp::Precision::Double)->mebf;
        for (const auto &row : result.rows) {
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.mebf, 4)
                .cell(row.mebf / base, 2);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
