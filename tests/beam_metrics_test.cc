/**
 * @file
 * Tests for the virtual beam engine and the metrics layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "beam/virtual_beam.hh"
#include "metrics/metrics.hh"

namespace mparch {
namespace {

using beam::BeamOutcome;
using beam::BitClass;
using beam::Node;
using beam::ResourceInventory;

ResourceInventory
demoInventory()
{
    ResourceInventory inv;
    inv.node = Node::Gpu12nm;
    inv.entries = {
        {"datapath", BitClass::DatapathLatch, 1e6, 0.4, 0.02},
        {"sram", BitClass::SramData, 2e6, 0.3, 0.0},
        {"control", BitClass::ControlLatch, 1e5, 0.0, 0.5},
    };
    return inv;
}

TEST(Sensitivity, RelativeOrdering)
{
    // SRAM is the most sensitive class; newer nodes are less
    // sensitive per bit.
    EXPECT_GT(bitSensitivity(Node::Fpga28nm, BitClass::SramConfig),
              bitSensitivity(Node::Fpga28nm, BitClass::DatapathLatch));
    EXPECT_GT(bitSensitivity(Node::Fpga28nm, BitClass::SramData),
              bitSensitivity(Node::Gpu12nm, BitClass::SramData));
    for (auto node : {Node::Fpga28nm, Node::Phi22nm, Node::Gpu12nm})
        for (auto c : {BitClass::SramConfig, BitClass::SramData,
                       BitClass::DatapathLatch,
                       BitClass::ControlLatch})
            EXPECT_GT(bitSensitivity(node, c), 0.0);
}

TEST(Inventory, AnalyticFitComposition)
{
    const ResourceInventory inv = demoInventory();
    // fitSdc must equal the manual sum.
    double expect_sdc = 0.0, expect_due = 0.0, expect_rate = 0.0;
    for (const auto &e : inv.entries) {
        const double s = bitSensitivity(inv.node, e.bitClass);
        expect_sdc += e.bits * s * e.avfSdc;
        expect_due += e.bits * s * e.avfDue;
        expect_rate += e.bits * s;
    }
    EXPECT_DOUBLE_EQ(inv.fitSdc(), expect_sdc);
    EXPECT_DOUBLE_EQ(inv.fitDue(), expect_due);
    EXPECT_DOUBLE_EQ(inv.rawRate(), expect_rate);
    EXPECT_GT(inv.fitSdc(), 0.0);
}

TEST(VirtualBeam, MonteCarloMatchesAnalyticFit)
{
    // The MC beam campaign with AVF-resolved outcomes must converge
    // to the analytic estimator (the validation the design leans on).
    const ResourceInventory inv = demoInventory();
    Rng rng(17);
    const double fluence = 2000.0 / inv.rawRate();  // ~2000 faults
    const auto result = beam::runBeam(inv, fluence, rng);
    EXPECT_GT(result.faults, 1000u);
    EXPECT_NEAR(result.fitSdc() / inv.fitSdc(), 1.0, 0.15);
    EXPECT_NEAR(result.fitDue() / inv.fitDue(), 1.0, 0.30);
    EXPECT_TRUE(result.fitSdc95().contains(result.fitSdc()));
}

TEST(VirtualBeam, ResolverModeDrivesOutcomes)
{
    ResourceInventory inv;
    inv.entries = {{"only", BitClass::SramData, 1000.0, 0.0, 0.0}};
    Rng rng(3);
    std::size_t calls = 0;
    const auto resolver = [&calls](std::size_t index, Rng &) {
        EXPECT_EQ(index, 0u);
        ++calls;
        return BeamOutcome::Sdc;
    };
    const auto result =
        beam::runBeam(inv, 0.5 / inv.rawRate() * 100.0, rng, resolver);
    EXPECT_EQ(calls, result.faults);
    EXPECT_EQ(result.sdc, result.faults);
}

TEST(VirtualBeam, ZeroRateProducesNoFaults)
{
    ResourceInventory inv;
    Rng rng(4);
    const auto result = beam::runBeam(inv, 100.0, rng);
    EXPECT_EQ(result.faults, 0u);
    EXPECT_EQ(result.fitSdc(), 0.0);
}

TEST(Metrics, MebfBasics)
{
    EXPECT_DOUBLE_EQ(metrics::mebf(2.0, 0.5), 1.0);
    EXPECT_GT(metrics::mebf(1.0, 0.1), metrics::mebf(1.0, 0.2));
    EXPECT_GT(metrics::mebf(1.0, 0.1), metrics::mebf(2.0, 0.1));
    EXPECT_DOUBLE_EQ(metrics::mebf(0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(metrics::mebf(1.0, 0.0), 0.0);
}

TEST(Metrics, NormalizeToMax)
{
    const auto out = metrics::normalizeToMax({2.0, 4.0, 1.0});
    EXPECT_DOUBLE_EQ(out[1], 1.0);
    EXPECT_DOUBLE_EQ(out[0], 0.5);
    EXPECT_DOUBLE_EQ(out[2], 0.25);
    const auto zeros = metrics::normalizeToMax({0.0, 0.0});
    EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

TEST(Metrics, TreCurveFromCorpus)
{
    fault::CampaignResult r;
    r.trials = 10;
    r.sdc = 4;
    r.corpus = {{1e-5, 0.1, workloads::SdcSeverity::CriticalChange},
                {1e-3, 0.1, workloads::SdcSeverity::CriticalChange},
                {1e-2, 0.1, workloads::SdcSeverity::CriticalChange},
                {1.0, 0.1, workloads::SdcSeverity::CriticalChange}};
    const auto curve = metrics::treCurve(r);
    ASSERT_EQ(curve.thresholds.size(), metrics::kTreThresholds.size());
    EXPECT_DOUBLE_EQ(curve.remaining.front(), 1.0);
    // At TRE = 1e-4 only three of four deviations survive.
    EXPECT_DOUBLE_EQ(curve.remaining[1], 0.75);
    // Monotone non-increasing.
    for (std::size_t i = 1; i < curve.remaining.size(); ++i)
        EXPECT_LE(curve.remaining[i], curve.remaining[i - 1]);
}

TEST(Metrics, CriticalitySplitSumsToOne)
{
    fault::CampaignResult r;
    r.corpus = {{0.1, 0.1, workloads::SdcSeverity::Tolerable},
                {0.1, 0.1, workloads::SdcSeverity::Tolerable},
                {0.1, 0.1, workloads::SdcSeverity::DetectionChange},
                {0.1, 0.1, workloads::SdcSeverity::CriticalChange}};
    const auto split = metrics::criticalitySplit(r);
    EXPECT_DOUBLE_EQ(split.tolerable, 0.5);
    EXPECT_DOUBLE_EQ(split.detectionChange, 0.25);
    EXPECT_DOUBLE_EQ(split.criticalChange, 0.25);
}

} // namespace
} // namespace mparch
