/**
 * @file
 * Tests for the report subsystem: the result-document model, the
 * shape-check predicate vocabulary (every predicate's pass, fail and
 * edge behaviour), the JSON writer/parser round trip with its
 * escaping and non-finite policy, and the registry's completeness
 * contract (every bench binary has a registry entry and vice versa).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "report/document.hh"
#include "report/registry.hh"
#include "report/shapecheck.hh"

namespace mparch::report {
namespace {

/** A small two-table document the predicate tests select from. */
ResultDoc
sampleDoc()
{
    ResultDoc doc;
    auto &main = doc.addTable(
        "main", {"benchmark", "precision", "fit", "share"});
    main.row().cell("mxm").cell("double").cell({100.0, 1}).cell(
        {0.05, 2});
    main.row().cell("mxm").cell("single").cell({60.0, 1}).cell(
        {0.14, 2});
    main.row().cell("mxm").cell("half").cell({30.0, 1}).cell(
        {0.20, 2});
    main.row().cell("lud").cell("double").cell({40.0, 1}).cell(
        {0.10, 2});
    auto &other = doc.addTable("other", {"k", "v"});
    other.row().cell("a").cell({2.0, 3});
    other.row().cell("b").cell({8.0, 3});
    return doc;
}

Selector
fitOf(const std::string &benchmark)
{
    return sel("fit", {{"benchmark", benchmark}});
}

// ---------------------------------------------------------------
// Document model
// ---------------------------------------------------------------

TEST(Document, CellFormattingAndNumericView)
{
    EXPECT_EQ(Cell("text").formatted(), "text");
    EXPECT_EQ(Cell(1.25, 2).formatted(), "1.25");
    EXPECT_EQ(Cell(std::int64_t{42}).formatted(), "42");

    bool ok = false;
    EXPECT_DOUBLE_EQ(Cell(1.25, 2).asNumber(&ok), 1.25);
    EXPECT_TRUE(ok);
    EXPECT_DOUBLE_EQ(Cell(std::int64_t{42}).asNumber(&ok), 42.0);
    EXPECT_TRUE(ok);
    Cell("nope").asNumber(&ok);
    EXPECT_FALSE(ok);
}

TEST(Document, TableLookup)
{
    const ResultDoc doc = sampleDoc();
    ASSERT_NE(doc.table("main"), nullptr);
    ASSERT_NE(doc.table("other"), nullptr);
    EXPECT_EQ(doc.table("absent"), nullptr);

    const ResultTable &t = *doc.table("main");
    EXPECT_EQ(t.rowCount(), 4u);
    EXPECT_EQ(t.columnIndex("fit"), 2);
    EXPECT_EQ(t.columnIndex("absent"), -1);
    ASSERT_NE(t.at(1, "precision"), nullptr);
    EXPECT_EQ(t.at(1, "precision")->formatted(), "single");
    EXPECT_EQ(t.at(99, "precision"), nullptr);
    EXPECT_EQ(t.at(0, "absent"), nullptr);
}

TEST(Document, AllPassedIsVacuouslyTrue)
{
    ResultDoc doc;
    EXPECT_TRUE(doc.allPassed());
    doc.verdicts.push_back({"a", "", "", true});
    EXPECT_TRUE(doc.allPassed());
    doc.verdicts.push_back({"b", "", "", false});
    EXPECT_FALSE(doc.allPassed());
}

// ---------------------------------------------------------------
// Selector extraction
// ---------------------------------------------------------------

TEST(Selector, ExtractsFilteredSeriesInRowOrder)
{
    const ResultDoc doc = sampleDoc();
    std::string error;
    const auto series = extract(doc, fitOf("mxm"), &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0], 100.0);
    EXPECT_DOUBLE_EQ(series[2], 30.0);
}

TEST(Selector, EmptyTableNameMeansFirstTable)
{
    const ResultDoc doc = sampleDoc();
    std::string error;
    const auto all = extract(doc, sel("fit"), &error);
    EXPECT_EQ(all.size(), 4u);

    const auto named = extract(doc, sel("v", {}, "other"), &error);
    ASSERT_EQ(named.size(), 2u);
    EXPECT_DOUBLE_EQ(named[1], 8.0);
}

TEST(Selector, ReportsMissingTableColumnRowsAndTextCells)
{
    const ResultDoc doc = sampleDoc();
    std::string error;

    EXPECT_TRUE(extract(doc, sel("fit", {}, "absent"), &error)
                    .empty());
    EXPECT_FALSE(error.empty());

    error.clear();
    EXPECT_TRUE(extract(doc, sel("absent"), &error).empty());
    EXPECT_FALSE(error.empty());

    error.clear();
    EXPECT_TRUE(
        extract(doc, sel("fit", {{"benchmark", "nope"}}), &error)
            .empty());
    EXPECT_FALSE(error.empty());

    error.clear();
    EXPECT_TRUE(extract(doc, sel("precision"), &error).empty());
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------
// Predicates: pass, fail and edge behaviour
// ---------------------------------------------------------------

CheckVerdict
runCheck(const ShapeCheck &check)
{
    return evaluate(check, sampleDoc());
}

TEST(Predicates, DecreasesAlong)
{
    EXPECT_TRUE(runCheck(decreasesAlong("d", "", fitOf("mxm"))).pass);
    EXPECT_FALSE(
        runCheck(decreasesAlong("d", "",
                                sel("share", {{"benchmark", "mxm"}})))
            .pass);
    // Slack admits a bounded uptick: series {2, 8} passes only with
    // an enormous slack.
    EXPECT_FALSE(
        runCheck(decreasesAlong("d", "", sel("v", {}, "other"))).pass);
    EXPECT_TRUE(
        runCheck(decreasesAlong("d", "", sel("v", {}, "other"), 4.0))
            .pass);
    // A single-row series cannot establish a trend.
    EXPECT_FALSE(
        runCheck(decreasesAlong("d", "", fitOf("lud"))).pass);
    // Selector errors are failures, not crashes.
    EXPECT_FALSE(
        runCheck(decreasesAlong("d", "", sel("absent"))).pass);
}

TEST(Predicates, IncreasesAlong)
{
    EXPECT_TRUE(
        runCheck(increasesAlong("i", "",
                                sel("share", {{"benchmark", "mxm"}})))
            .pass);
    EXPECT_FALSE(
        runCheck(increasesAlong("i", "", fitOf("mxm"))).pass);
    // Equal elements are not strict growth without slack.
    ResultDoc flat;
    flat.addTable("main", {"x"});
    auto &t = flat.tables[0];
    t.row().cell({5.0, 1});
    t.row().cell({5.0, 1});
    EXPECT_FALSE(
        evaluate(increasesAlong("i", "", sel("x")), flat).pass);
    EXPECT_TRUE(
        evaluate(increasesAlong("i", "", sel("x"), 0.01), flat).pass);
}

TEST(Predicates, ShareGrows)
{
    EXPECT_TRUE(
        runCheck(shareGrows("s", "",
                            sel("share", {{"benchmark", "mxm"}})))
            .pass);
    // Monotone but out of [0, 1] fails the share sanity check.
    EXPECT_FALSE(
        runCheck(shareGrows("s", "", sel("v", {}, "other"))).pass);
    // Non-monotone shares fail too.
    EXPECT_FALSE(runCheck(shareGrows("s", "", sel("share"))).pass);
}

TEST(Predicates, Exceeds)
{
    EXPECT_TRUE(runCheck(exceeds("e", "", fitOf("lud"),
                                 sel("fit", {{"precision", "half"}})))
                    .pass);
    EXPECT_FALSE(
        runCheck(exceeds("e", "",
                         sel("fit", {{"precision", "half"}}),
                         fitOf("lud")))
            .pass);
    // The factor scales the right-hand side: 40 > 1.4*30 fails.
    EXPECT_FALSE(
        runCheck(exceeds("e", "", fitOf("lud"),
                         sel("fit", {{"precision", "half"}}), 1.4))
            .pass);
    // A selector matching several rows is not a scalar.
    EXPECT_FALSE(runCheck(exceeds("e", "", fitOf("mxm"),
                                  fitOf("lud")))
                     .pass);
}

TEST(Predicates, RatioWithin)
{
    const auto half = sel("fit", {{"precision", "half"}});
    const auto lud = fitOf("lud");
    // 30 / 40 = 0.75.
    EXPECT_TRUE(
        runCheck(ratioWithin("r", "", half, lud, 0.7, 0.8)).pass);
    EXPECT_FALSE(
        runCheck(ratioWithin("r", "", half, lud, 0.8, 0.9)).pass);
    EXPECT_FALSE(
        runCheck(ratioWithin("r", "", half, lud, 0.5, 0.7)).pass);
}

TEST(Predicates, NearlyEqual)
{
    const auto half = sel("fit", {{"precision", "half"}});
    const auto lud = fitOf("lud");
    EXPECT_TRUE(
        runCheck(nearlyEqual("n", "", half, lud, 10.0)).pass);
    EXPECT_FALSE(
        runCheck(nearlyEqual("n", "", half, lud, 9.0)).pass);
}

TEST(Predicates, FlatWithin)
{
    // mxm fits span 100/30.
    EXPECT_TRUE(
        runCheck(flatWithin("f", "", fitOf("mxm"), 4.0)).pass);
    EXPECT_FALSE(
        runCheck(flatWithin("f", "", fitOf("mxm"), 3.0)).pass);
}

TEST(Predicates, AllBelowAllAbove)
{
    EXPECT_TRUE(
        runCheck(allBelow("b", "", fitOf("mxm"), 101.0)).pass);
    // Strict: an element equal to the bound fails.
    EXPECT_FALSE(
        runCheck(allBelow("b", "", fitOf("mxm"), 100.0)).pass);
    EXPECT_TRUE(
        runCheck(allAbove("a", "", fitOf("mxm"), 29.0)).pass);
    EXPECT_FALSE(
        runCheck(allAbove("a", "", fitOf("mxm"), 30.0)).pass);
}

TEST(Predicates, CrossoverAt)
{
    ResultDoc doc;
    auto &t = doc.addTable("main", {"a", "b"});
    t.row().cell({10.0, 1}).cell({5.0, 1});
    t.row().cell({6.0, 1}).cell({6.0, 1});
    t.row().cell({2.0, 1}).cell({7.0, 1});

    // First index with a < b is 2.
    EXPECT_TRUE(
        evaluate(crossoverAt("c", "", sel("a"), sel("b"), 1, 2), doc)
            .pass);
    EXPECT_FALSE(
        evaluate(crossoverAt("c", "", sel("a"), sel("b"), 0, 1), doc)
            .pass);
    // No crossing at all.
    EXPECT_FALSE(
        evaluate(crossoverAt("c", "", sel("b"), sel("a"), 0, 2), doc)
            .pass);
}

TEST(Predicates, CustomAndEvaluateAll)
{
    ResultDoc doc = sampleDoc();
    const auto yes = custom("yes", "always", [](const ResultDoc &) {
        return CheckOutcome{true, "ok"};
    });
    const auto no = custom("no", "never", [](const ResultDoc &) {
        return CheckOutcome{false, "nope"};
    });
    evaluateAll({yes, no}, doc);
    ASSERT_EQ(doc.verdicts.size(), 2u);
    EXPECT_TRUE(doc.verdicts[0].pass);
    EXPECT_EQ(doc.verdicts[0].observed, "ok");
    EXPECT_FALSE(doc.verdicts[1].pass);
    EXPECT_FALSE(doc.allPassed());
}

// ---------------------------------------------------------------
// JSON: escaping, non-finite policy, round trip
// ---------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(1.5)
        .endArray();

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(os.str(), v, &error)) << error;
    ASSERT_EQ(v.array.size(), 3u);
    EXPECT_TRUE(v.array[0].isNull());
    EXPECT_TRUE(v.array[1].isNull());
    EXPECT_DOUBLE_EQ(v.array[2].number, 1.5);
}

TEST(Json, WriterParserRoundTrip)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject()
        .member("name", "tab\tle \"x\"")
        .member("count", std::uint64_t{7})
        .member("ratio", 0.12345678901234567)
        .member("ok", true);
    w.key("rows").beginArray();
    w.beginObject().member("v", -3).endObject();
    w.endArray();
    w.key("none").null();
    w.endObject();

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(os.str(), v, &error)) << error;
    EXPECT_EQ(v.find("name")->string, "tab\tle \"x\"");
    EXPECT_DOUBLE_EQ(v.find("count")->number, 7.0);
    EXPECT_DOUBLE_EQ(v.find("ratio")->number, 0.12345678901234567);
    EXPECT_TRUE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("rows")->array.size(), 1u);
    EXPECT_DOUBLE_EQ(
        v.find("rows")->array[0].find("v")->number, -3.0);
    EXPECT_TRUE(v.find("none")->isNull());
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse("{\"a\": ", v, &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(json::parse("[1, 2,]", v, &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(json::parse("[1] trailing", v, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Json, ResultDocRoundTripPreservesFullPrecision)
{
    ResultDoc doc = sampleDoc();
    doc.experiment = "unit_doc";
    doc.title = "unit \"doc\"";
    doc.trials = 12;
    doc.scale = 0.25;
    // Display rounds to 1 digit; JSON must keep every bit.
    doc.tables[0].row().cell("pi").cell("x").cell(
        {3.141592653589793, 1});
    doc.tables[0].rows();
    doc.notes.push_back("line\nbreak");
    doc.verdicts.push_back({"check", "desc", "obs", true});

    std::ostringstream os;
    doc.writeJson(os);

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(os.str(), v, &error)) << error;
    EXPECT_EQ(v.find("experiment")->string, "unit_doc");
    EXPECT_EQ(v.find("title")->string, "unit \"doc\"");
    EXPECT_DOUBLE_EQ(v.find("trials")->number, 12.0);

    const auto &tables = v.find("tables")->array;
    ASSERT_EQ(tables.size(), 2u);
    const auto &rows = tables[0].find("rows")->array;
    const auto &pi_row = rows.back().array;
    EXPECT_DOUBLE_EQ(pi_row[2].number, 3.141592653589793);

    EXPECT_EQ(v.find("notes")->array[0].string, "line\nbreak");
    const auto &verdict = v.find("checks")->array[0];
    EXPECT_EQ(verdict.find("id")->string, "check");
    EXPECT_TRUE(verdict.find("pass")->boolean);
}

TEST(Json, CsvEscapesDelimiters)
{
    ResultTable table("t", {"a", "b"});
    table.row().cell("x,y").cell("quo\"te");
    std::ostringstream os;
    ResultDoc::writeCsv(table, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos) << out;
    EXPECT_NE(out.find("\"quo\"\"te\""), std::string::npos) << out;
}

// ---------------------------------------------------------------
// Registry
// ---------------------------------------------------------------

TEST(Registry, LookupAndKnobResolution)
{
    const Experiment *e = findExperiment("table1_fpga_time");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(findExperiment("no_such_experiment"), nullptr);

    RunContext ctx;
    EXPECT_EQ(e->trialsFor(ctx), e->defaultTrials);
    EXPECT_DOUBLE_EQ(e->scaleFor(ctx), e->defaultScale);
    ctx.trials = 7;
    ctx.scale = 0.9;
    EXPECT_EQ(e->trialsFor(ctx), 7u);
    EXPECT_DOUBLE_EQ(e->scaleFor(ctx), 0.9);

    EXPECT_DOUBLE_EQ(e->paperValue("mxm/double/time"), 2.730);
}

TEST(Registry, EveryEntryIsFullyDeclared)
{
    std::set<std::string> ids;
    for (const auto &e : experiments()) {
        EXPECT_TRUE(ids.insert(e.id).second)
            << "duplicate id " << e.id;
        EXPECT_TRUE(e.run != nullptr) << e.id;
        EXPECT_FALSE(e.title.empty()) << e.id;
        EXPECT_FALSE(e.shapeTarget.empty()) << e.id;
        EXPECT_FALSE(e.checks.empty())
            << e.id << " has no machine-checked shape target";
        for (const auto &check : e.checks) {
            EXPECT_FALSE(check.id.empty()) << e.id;
            EXPECT_TRUE(check.eval != nullptr) << e.id;
        }
    }
    EXPECT_GE(ids.size(), 24u);
}

TEST(Registry, QuickTierIsNonEmpty)
{
    std::size_t quick = 0;
    for (const auto &e : experiments())
        quick += e.quick ? 1 : 0;
    EXPECT_GE(quick, 4u);
}

/**
 * Completeness both ways: every registry entry has a bench shim of
 * the same name, and every bench source is a registered experiment.
 * This is the contract that lets the driver supersede the binaries.
 */
TEST(Registry, MatchesBenchBinariesBothWays)
{
    const std::filesystem::path bench_dir =
        std::filesystem::path(MPARCH_SOURCE_DIR) / "bench";
    ASSERT_TRUE(std::filesystem::is_directory(bench_dir))
        << bench_dir;

    std::set<std::string> bench_sources;
    for (const auto &entry :
         std::filesystem::directory_iterator(bench_dir)) {
        if (entry.path().extension() == ".cpp")
            bench_sources.insert(entry.path().stem().string());
    }

    std::set<std::string> registered;
    for (const auto &e : experiments())
        registered.insert(e.id);

    for (const auto &id : registered)
        EXPECT_TRUE(bench_sources.count(id))
            << "registry entry '" << id
            << "' has no bench/" << id << ".cpp shim";
    for (const auto &source : bench_sources)
        EXPECT_TRUE(registered.count(source))
            << "bench/" << source
            << ".cpp is not a registered experiment";
}

/**
 * End-to-end through runExperiment on the cheapest quick entry (a
 * pure timing-model experiment; no injection campaigns): metadata is
 * stamped and every declared check produces a verdict.
 */
TEST(Registry, RunExperimentStampsMetadataAndVerdicts)
{
    const Experiment *e = findExperiment("table1_fpga_time");
    ASSERT_NE(e, nullptr);
    RunContext ctx;
    ctx.trials = 2;
    ctx.scale = 0.1;
    ctx.progress = false;

    const ResultDoc doc = runExperiment(*e, ctx);
    EXPECT_EQ(doc.experiment, e->id);
    EXPECT_EQ(doc.paperRef, e->paperRef);
    EXPECT_EQ(doc.kind, "table");
    EXPECT_EQ(doc.trials, 2u);
    EXPECT_DOUBLE_EQ(doc.scale, 0.1);
    EXPECT_EQ(doc.verdicts.size(), e->checks.size());
    EXPECT_FALSE(doc.tables.empty());
}

TEST(Registry, ScorecardTallies)
{
    ResultDoc clean;
    clean.experiment = "clean";
    clean.verdicts.push_back({"a", "", "", true});
    clean.verdicts.push_back({"b", "", "", true});
    ResultDoc dirty;
    dirty.experiment = "dirty";
    dirty.verdicts.push_back({"c", "", "", false});

    std::ostringstream os;
    const Scorecard card = printScorecard({clean, dirty}, os);
    EXPECT_EQ(card.checksRun, 3u);
    EXPECT_EQ(card.checksPassed, 2u);
    EXPECT_EQ(card.experimentsRun, 2u);
    EXPECT_EQ(card.experimentsClean, 1u);
    EXPECT_FALSE(card.allPassed());
    EXPECT_NE(os.str().find("dirty"), std::string::npos);
}

} // namespace
} // namespace mparch::report
