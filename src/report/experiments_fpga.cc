/**
 * @file
 * Registry entries for the paper's FPGA section (Section 4):
 * Table 1 and Figures 2-5 on the Zynq-7000.
 */

#include "arch/fpga/fpga.hh"
#include "arch/fpga/params.hh"
#include "nn/nn_workloads.hh"
#include "report/experiments.hh"

namespace mparch::report {

namespace {

using fp::Precision;

Experiment
table1FpgaTime()
{
    Experiment e;
    e.id = "table1_fpga_time";
    e.paperRef = "Table 1";
    e.kind = ExperimentKind::PaperTable;
    e.title = "Table 1: Zynq-7000 execution time [s] (model vs "
              "paper)";
    e.shapeTarget = "time drops double->single; MxM half slightly "
                    "slower than single";
    e.defaultTrials = 0;
    e.defaultScale = 0.3;
    e.quick = true;
    e.paper = {{"mnist/double/time", 0.011},
               {"mnist/single/time", 0.009},
               {"mnist/half/time", 0.009},
               {"mxm/double/time", 2.730},
               {"mxm/single/time", 2.100},
               {"mxm/half/time", 2.310}};
    e.timings = {{"mxm",
                  {Precision::Double, Precision::Single,
                   Precision::Half}}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "model[s]",
                     "model(norm to double)", "paper[s]",
                     "paper(norm to double)"});
        for (const std::string name : {"mnist", "mxm"}) {
            double model_double = 0.0;
            const double paper_double =
                self.paperValue(name + "/double/time");
            for (auto p : fp::allPrecisions) {
                auto w = nn::makeAnyWorkload(name, p, scale);
                const auto golden = reportGoldenRun(*w, scale);
                const auto circuit = fpga::synthesize(*w, *golden);
                const double t = circuit.cycles / fpga::clockHz(p);
                if (p == Precision::Double)
                    model_double = t;
                const double paper_t = self.paperValue(
                    name + "/" + precisionLabel(p) + "/time");
                table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({t, 6})
                    .cell({t / model_double, 3})
                    .cell({paper_t, 3})
                    .cell({paper_t / paper_double, 3});
            }
        }
        return doc;
    };
    e.checks = {
        exceeds("mxm-single-faster",
                "MxM execution time drops from double to single",
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "double"}}),
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "single"}})),
        exceeds("mnist-single-faster",
                "MNIST execution time drops from double to single",
                sel("model[s]", {{"benchmark", "mnist"},
                                 {"precision", "double"}}),
                sel("model[s]", {{"benchmark", "mnist"},
                                 {"precision", "single"}})),
        exceeds("mxm-half-slower-than-single",
                "MxM half is slightly slower than single (half "
                "forgoes the DSP cascade)",
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "half"}}),
                sel("model[s]", {{"benchmark", "mxm"},
                                 {"precision", "single"}})),
    };
    return e;
}

Experiment
fig2FpgaResources()
{
    Experiment e;
    e.id = "fig2_fpga_resources";
    e.paperRef = "Figure 2";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 2: FPGA resource utilisation";
    e.shapeTarget = "MxM area -45% (D->S) then -36% (S->H); MNIST "
                    "-53% then -26%; MNIST > MxM";
    e.defaultTrials = 0;
    e.defaultScale = 0.3;
    e.quick = true;
    e.paper = {{"mxm/area-drop-d-to-s", 0.45},
               {"mxm/area-drop-s-to-h", 0.36},
               {"mnist/area-drop-d-to-s", 0.53},
               {"mnist/area-drop-s-to-h", 0.26}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "LUTs", "DSPs",
                     "BRAMs", "config-bits", "area-drop-vs-prev"});
        for (const std::string name : {"mxm", "mnist"}) {
            double prev_luts = 0.0;
            for (auto p : fp::allPrecisions) {
                auto w = nn::makeAnyWorkload(name, p, scale);
                const auto golden = reportGoldenRun(*w, scale);
                const auto c = fpga::synthesize(*w, *golden);
                std::string drop = "-";
                if (prev_luts > 0.0) {
                    char buf[32];
                    std::snprintf(buf, sizeof(buf), "%.0f%%",
                                  100.0 * (1.0 - c.luts / prev_luts));
                    drop = buf;
                }
                prev_luts = c.luts;
                table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({c.luts, 0})
                    .cell({c.dsps, 0})
                    .cell({c.brams, 0})
                    .cell({c.configBits, 0})
                    .cell(drop);
            }
        }
        return doc;
    };
    // Paper drops: MxM -45% then -36%, MNIST -53% then -26% (the
    // model lands at -40/-31 and -41/-32); windows accept both.
    e.checks = {
        ratioWithin("mxm-area-drop-d-to-s",
                    "MxM loses a large fraction of its LUTs from "
                    "double to single (paper: -45%)",
                    sel("LUTs", {{"benchmark", "mxm"},
                                 {"precision", "single"}}),
                    sel("LUTs", {{"benchmark", "mxm"},
                                 {"precision", "double"}}),
                    0.40, 0.80),
        ratioWithin("mxm-area-drop-s-to-h",
                    "MxM loses more area from single to half "
                    "(paper: -36%)",
                    sel("LUTs", {{"benchmark", "mxm"},
                                 {"precision", "half"}}),
                    sel("LUTs", {{"benchmark", "mxm"},
                                 {"precision", "single"}}),
                    0.40, 0.85),
        ratioWithin("mnist-area-drop-d-to-s",
                    "MNIST loses a large fraction of its LUTs from "
                    "double to single (paper: -53%)",
                    sel("LUTs", {{"benchmark", "mnist"},
                                 {"precision", "single"}}),
                    sel("LUTs", {{"benchmark", "mnist"},
                                 {"precision", "double"}}),
                    0.35, 0.80),
        exceeds("mnist-bigger-double",
                "MNIST occupies more fabric than MxM (double)",
                sel("LUTs", {{"benchmark", "mnist"},
                             {"precision", "double"}}),
                sel("LUTs", {{"benchmark", "mxm"},
                             {"precision", "double"}})),
        exceeds("mnist-bigger-half",
                "MNIST occupies more fabric than MxM (half)",
                sel("LUTs", {{"benchmark", "mnist"},
                             {"precision", "half"}}),
                sel("LUTs", {{"benchmark", "mxm"},
                             {"precision", "half"}})),
        decreasesAlong("mxm-dsp-collapse",
                       "MxM's DSP count collapses as precision "
                       "shrinks",
                       sel("DSPs", {{"benchmark", "mxm"}})),
    };
    return e;
}

Experiment
fig3FpgaFit()
{
    Experiment e;
    e.id = "fig3_fpga_fit";
    e.paperRef = "Figure 3";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 3: FPGA FIT of MxM and MNIST (a.u.)";
    e.shapeTarget = "FIT drops with precision; MNIST critical share "
                    "grows 5%->14%->20% as precision shrinks; no "
                    "DUEs";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.paper = {{"mnist/double/critical-share", 0.05},
               {"mnist/single/critical-share", 0.14},
               {"mnist/half/critical-share", 0.20}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main",
            {"benchmark", "precision", "fit-sdc(a.u.)",
             "fit-due(a.u.)", "critical-frac", "tolerable-frac",
             "paper-critical"});
        for (const std::string name : {"mxm", "mnist"}) {
            const auto result = runStudyFor(
                core::Architecture::Fpga, name, self, ctx);
            for (const auto &row : result.rows) {
                const double critical =
                    row.severity.criticalChange +
                    row.severity.detectionChange;
                const double paper_critical =
                    name == "mnist"
                        ? self.paperValue(
                              name + "/" +
                              precisionLabel(row.precision) +
                              "/critical-share")
                        : 1.0;
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row.precision))
                    .cell({row.fitSdc, 0})
                    .cell({row.fitDue, 0})
                    .cell({critical, 3})
                    .cell({row.severity.tolerable, 3})
                    .cell({paper_critical, 2});
            }
        }
        doc.notes.push_back(
            "Known deviation (EXPERIMENTS.md): the paper measures "
            "MNIST's FIT below MxM's; our operator-level model "
            "reproduces the masking direction but not the full "
            "per-gate AVF gap, so MNIST lands above MxM instead.");
        return doc;
    };
    e.checks = {
        decreasesAlong("mxm-fit-drops",
                       "MxM FIT shrinks with precision",
                       sel("fit-sdc(a.u.)", {{"benchmark", "mxm"}})),
        decreasesAlong("mnist-fit-drops",
                       "MNIST FIT shrinks with precision",
                       sel("fit-sdc(a.u.)",
                           {{"benchmark", "mnist"}})),
        allBelow("no-dues",
                 "no DUEs occur on the bare-metal FPGA design",
                 sel("fit-due(a.u.)"), 1e-9),
        shareGrows("mnist-critical-share-grows",
                   "MNIST's critical error share grows as precision "
                   "shrinks (paper: 5% -> 14% -> 20%)",
                   sel("critical-frac", {{"benchmark", "mnist"}})),
    };
    return e;
}

Experiment
fig4FpgaTre()
{
    Experiment e;
    e.id = "fig4_fpga_tre";
    e.paperRef = "Figure 4";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 4: FPGA MxM FIT reduction vs TRE";
    e.shapeTarget = "double drops fastest (~37% of FIT left at 0.1% "
                    "TRE), single less, half nearly flat";
    e.defaultTrials = 400;
    e.defaultScale = 0.3;
    e.paper = {{"mxm/double/remaining-at-0.1%", 0.37}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const auto result = runStudyFor(core::Architecture::Fpga,
                                        "mxm", self, ctx);
        const auto *d = result.find(Precision::Double);
        const auto *s = result.find(Precision::Single);
        const auto *h = result.find(Precision::Half);
        auto &curve = doc.addTable(
            "fraction of TRE=0 FIT remaining",
            {"tre", "double", "single", "half"});
        for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
            curve.row()
                .cell({d->tre.thresholds[i], 4})
                .cell({d->tre.remaining[i], 3})
                .cell({s->tre.remaining[i], 3})
                .cell({h->tre.remaining[i], 3});
        }
        auto &summary = doc.addTable(
            "remaining-at-tre",
            {"precision", "remain@0.1%", "remain@1%"});
        for (const auto *row : {d, s, h}) {
            summary.row()
                .cell(precisionLabel(row->precision))
                .cell({row->tre.remaining[2], 3})
                .cell({row->tre.remaining[4], 3});
        }
        return doc;
    };
    e.checks = {
        exceeds("single-above-double",
                "single keeps more of its FIT than double at 0.1% "
                "TRE",
                sel("remain@0.1%", {{"precision", "single"}},
                    "remaining-at-tre"),
                sel("remain@0.1%", {{"precision", "double"}},
                    "remaining-at-tre")),
        exceeds("half-above-single",
                "half keeps more of its FIT than single at 0.1% TRE",
                sel("remain@0.1%", {{"precision", "half"}},
                    "remaining-at-tre"),
                sel("remain@0.1%", {{"precision", "single"}},
                    "remaining-at-tre")),
        allBelow("double-collapses",
                 "double's FIT collapses fastest (paper: ~37% left "
                 "at 0.1% TRE)",
                 sel("remain@0.1%", {{"precision", "double"}},
                     "remaining-at-tre"),
                 0.75),
        allAbove("half-nearly-flat",
                 "half's curve stays nearly flat (a flip in a "
                 "narrow format strikes a significant bit)",
                 sel("remain@0.1%", {{"precision", "half"}},
                     "remaining-at-tre"),
                 0.90),
    };
    return e;
}

Experiment
fig5FpgaMebf()
{
    Experiment e;
    e.id = "fig5_fpga_mebf";
    e.paperRef = "Figure 5";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 5: FPGA MEBF (a.u.)";
    e.shapeTarget = "MEBF rises as precision drops; half/single "
                    "gain ~33% (MxM) and ~26% (MNIST)";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.paper = {{"mxm/half-over-single-gain", 0.33},
               {"mnist/half-over-single-gain", 0.26}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "mebf(a.u.)",
                     "norm-to-double", "gain-vs-prev"});
        for (const std::string name : {"mxm", "mnist"}) {
            const auto result = runStudyFor(
                core::Architecture::Fpga, name, self, ctx);
            double base = 0.0, prev = 0.0;
            for (const auto &row : result.rows) {
                if (row.precision == Precision::Double)
                    base = row.mebf;
                std::string gain = "-";
                if (prev > 0.0) {
                    char buf[32];
                    std::snprintf(buf, sizeof(buf), "+%.0f%%",
                                  100.0 * (row.mebf / prev - 1.0));
                    gain = buf;
                }
                prev = row.mebf;
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row.precision))
                    .cell({row.mebf, 5})
                    .cell({row.mebf / base, 2})
                    .cell(gain);
            }
        }
        return doc;
    };
    e.checks = {
        increasesAlong("mxm-mebf-rises",
                       "MxM MEBF grows monotonically as precision "
                       "shrinks",
                       sel("mebf(a.u.)", {{"benchmark", "mxm"}})),
        increasesAlong("mnist-mebf-rises",
                       "MNIST MEBF grows monotonically as precision "
                       "shrinks",
                       sel("mebf(a.u.)", {{"benchmark", "mnist"}})),
        ratioWithin("mxm-half-gain",
                    "MxM half completes noticeably more executions "
                    "between errors than single (paper: +33%)",
                    sel("mebf(a.u.)", {{"benchmark", "mxm"},
                                       {"precision", "half"}}),
                    sel("mebf(a.u.)", {{"benchmark", "mxm"},
                                       {"precision", "single"}}),
                    1.05, 1.80),
        ratioWithin("mnist-half-gain",
                    "MNIST half completes noticeably more "
                    "executions between errors than single (paper: "
                    "+26%)",
                    sel("mebf(a.u.)", {{"benchmark", "mnist"},
                                       {"precision", "half"}}),
                    sel("mebf(a.u.)", {{"benchmark", "mnist"},
                                       {"precision", "single"}}),
                    1.05, 1.80),
    };
    return e;
}

} // namespace

void
addFpgaExperiments(std::vector<Experiment> &out)
{
    out.push_back(table1FpgaTime());
    out.push_back(fig2FpgaResources());
    out.push_back(fig3FpgaFit());
    out.push_back(fig4FpgaTre());
    out.push_back(fig5FpgaMebf());
}

} // namespace mparch::report
