/**
 * @file
 * Reproduces Figure 10b: SDC and DUE FIT of LavaMD and MxM on the
 * Titan V.
 *
 * Shape targets: MxM sits far above LavaMD (memory-bound, data waits
 * exposed in unprotected caches/registers); LavaMD's precision trend
 * follows Micro-MUL (its mix is MUL-dominated) and MxM's follows
 * Micro-FMA (a fused multiply-accumulate chain); app DUE is roughly
 * an order of magnitude above the micro kernels', with double's
 * longer occupancy the worst.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 10b: Volta LavaMD and MxM FIT (a.u.)",
                  "MxM >> LavaMD; LavaMD tracks MUL, MxM tracks FMA; "
                  "app DUE ~10x micro DUE");

    Table table({"benchmark", "precision", "fit-sdc(a.u.)",
                 "fit-due(a.u.)", "sdc norm-to-double"});
    double lavamd_d = 0.0, mxm_d = 0.0;
    for (const std::string name : {"lavamd", "mxm"}) {
        const auto result =
            bench::study(core::Architecture::Gpu, name, args);
        const double base =
            result.find(fp::Precision::Double)->fitSdc;
        if (name == "lavamd")
            lavamd_d = base;
        else
            mxm_d = base;
        for (const auto &row : result.rows) {
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.fitSdc, 0)
                .cell(row.fitDue, 0)
                .cell(row.fitSdc / base, 2);
        }
    }
    table.print(std::cout);
    std::cout << "MxM / LavaMD SDC FIT ratio (double): "
              << mxm_d / lavamd_d << "\n";

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
