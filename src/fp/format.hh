/**
 * @file
 * IEEE754-2008 binary format descriptors.
 *
 * mparch implements half (binary16), single (binary32), and double
 * (binary64) arithmetic in software so that transient faults can be
 * injected into operand bits and into the internal datapath stages of
 * each operation — the paper's mixed-precision reliability questions
 * all hinge on how a bit flip at a given position propagates through
 * these formats.
 *
 * All values are carried as canonical bit patterns in the low
 * @c totalBits of a std::uint64_t (upper bits zero).
 */

#ifndef MPARCH_FP_FORMAT_HH
#define MPARCH_FP_FORMAT_HH

#include <cstdint>
#include <string_view>

#include "common/bits.hh"
#include "common/logging.hh"

namespace mparch::fp {

/**
 * Hardware-accelerated precisions. Half/Single/Double are the three
 * the paper studies; Bfloat16 extends the methodology to the format
 * that has since displaced binary16 in deep-learning hardware (same
 * exponent range as single, 8-bit significand).
 */
enum class Precision { Half, Single, Double, Bfloat16 };

/** Human-readable name ("half" / "single" / "double"). */
constexpr std::string_view
precisionName(Precision p)
{
    switch (p) {
      case Precision::Half:   return "half";
      case Precision::Single: return "single";
      case Precision::Double: return "double";
      case Precision::Bfloat16: return "bfloat16";
    }
    return "?";
}

/** All three precisions, in the paper's presentation order. */
inline constexpr Precision allPrecisions[] = {
    Precision::Double, Precision::Single, Precision::Half,
};

/**
 * Static description of an IEEE754 binary interchange format.
 *
 * @c manBits counts the stored (trailing) significand bits, i.e.
 * excludes the hidden leading bit.
 */
struct Format
{
    std::uint8_t expBits;
    std::uint8_t manBits;
    std::uint8_t totalBits;

    /** Exponent bias. */
    constexpr int bias() const { return (1 << (expBits - 1)) - 1; }

    /** All-ones biased exponent (inf/NaN marker). */
    constexpr int maxBiasedExp() const { return (1 << expBits) - 1; }

    /** Minimum unbiased exponent of a normal number. */
    constexpr int minExp() const { return 1 - bias(); }

    /** Maximum unbiased exponent of a finite number. */
    constexpr int maxExp() const { return maxBiasedExp() - 1 - bias(); }

    /** Bit position of the sign. */
    constexpr unsigned signPos() const { return totalBits - 1u; }

    /** Mask covering the stored significand field. */
    constexpr std::uint64_t manMask() const { return maskBits(manBits); }

    /** Mask covering all value bits of the format. */
    constexpr std::uint64_t valueMask() const
    {
        return maskBits(totalBits);
    }

    /** Hidden (integer) significand bit. */
    constexpr std::uint64_t hiddenBit() const
    {
        return 1ULL << manBits;
    }

    constexpr bool operator==(const Format &) const = default;
};

inline constexpr Format kHalf{5, 10, 16};
inline constexpr Format kSingle{8, 23, 32};
inline constexpr Format kDouble{11, 52, 64};

/** Google brain float: single's exponent, 7-bit significand. */
inline constexpr Format kBfloat16{8, 7, 16};

/** NVIDIA TensorFloat-32: single's exponent, half's significand.
 *  Usable with every fp-level routine (the softfloat core is fully
 *  format-generic); not wired into the Precision enum because no
 *  studied device stores it as a memory format. */
inline constexpr Format kTf32{8, 10, 19};

/** Map a precision tag to its format descriptor. */
constexpr Format
formatOf(Precision p)
{
    switch (p) {
      case Precision::Half:   return kHalf;
      case Precision::Single: return kSingle;
      case Precision::Double: return kDouble;
      case Precision::Bfloat16: return kBfloat16;
    }
    return kDouble;
}

/** Coarse classification of a bit pattern. */
enum class FpClass { Zero, Subnormal, Normal, Inf, NaN };

/** Sign bit of @p bits in format @p f. */
constexpr bool
signOf(Format f, std::uint64_t bits)
{
    return testBit(bits, f.signPos());
}

/** Biased exponent field of @p bits. */
constexpr int
biasedExpOf(Format f, std::uint64_t bits)
{
    return static_cast<int>(extractBits(bits, f.manBits, f.expBits));
}

/** Stored significand field of @p bits. */
constexpr std::uint64_t
mantissaOf(Format f, std::uint64_t bits)
{
    return bits & f.manMask();
}

/** Classify @p bits. */
constexpr FpClass
classify(Format f, std::uint64_t bits)
{
    const int e = biasedExpOf(f, bits);
    const std::uint64_t m = mantissaOf(f, bits);
    if (e == f.maxBiasedExp())
        return m ? FpClass::NaN : FpClass::Inf;
    if (e == 0)
        return m ? FpClass::Subnormal : FpClass::Zero;
    return FpClass::Normal;
}

/** Assemble a bit pattern from raw fields (no checking). */
constexpr std::uint64_t
packFields(Format f, bool sign, int biased_exp, std::uint64_t mantissa)
{
    return (static_cast<std::uint64_t>(sign) << f.signPos()) |
           (static_cast<std::uint64_t>(biased_exp) << f.manBits) |
           (mantissa & f.manMask());
}

/** Canonical quiet NaN. */
constexpr std::uint64_t
quietNaN(Format f)
{
    return packFields(f, false, f.maxBiasedExp(),
                      1ULL << (f.manBits - 1));
}

/** Signed infinity. */
constexpr std::uint64_t
infinity(Format f, bool negative)
{
    return packFields(f, negative, f.maxBiasedExp(), 0);
}

/** Signed zero. */
constexpr std::uint64_t
zero(Format f, bool negative)
{
    return packFields(f, negative, 0, 0);
}

/** Largest finite magnitude. */
constexpr std::uint64_t
maxFinite(Format f, bool negative)
{
    return packFields(f, negative, f.maxBiasedExp() - 1, f.manMask());
}

/** One in the given format. */
constexpr std::uint64_t
one(Format f)
{
    return packFields(f, false, f.bias(), 0);
}

/** True for NaN patterns. */
constexpr bool
isNaN(Format f, std::uint64_t bits)
{
    return classify(f, bits) == FpClass::NaN;
}

/** True for +/- infinity. */
constexpr bool
isInf(Format f, std::uint64_t bits)
{
    return classify(f, bits) == FpClass::Inf;
}

/** True for +/- zero. */
constexpr bool
isZero(Format f, std::uint64_t bits)
{
    return classify(f, bits) == FpClass::Zero;
}

/** True for anything that is neither NaN nor infinity. */
constexpr bool
isFinite(Format f, std::uint64_t bits)
{
    const FpClass c = classify(f, bits);
    return c != FpClass::NaN && c != FpClass::Inf;
}

} // namespace mparch::fp

#endif // MPARCH_FP_FORMAT_HH
