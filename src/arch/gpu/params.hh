/**
 * @file
 * NVIDIA Titan V (Volta) model parameters.
 *
 * Structural constants follow the Volta whitepaper [19] and the
 * microbenchmark study of Jia et al. [25], both cited by the paper:
 * 5,376 FP32 cores vs 2,688 FP64 cores, half precision executed as
 * two packed operations on an FP32 core, and per-op latencies of 8
 * (double), 4 (single) and 6 (two halves) cycles regardless of the
 * operation. Calibration constants are marked as such.
 */

#ifndef MPARCH_ARCH_GPU_PARAMS_HH
#define MPARCH_ARCH_GPU_PARAMS_HH

#include "fp/format.hh"
#include "workloads/micro.hh"

namespace mparch::gpu {

/** FP32 (and half2) cores. */
inline constexpr int kFp32Cores = 5376;

/** FP64 cores. */
inline constexpr int kFp64Cores = 2688;

/** Streaming multiprocessors. */
inline constexpr int kSmCount = 80;

/** Boost clock in Hz. */
inline constexpr double kClockHz = 1.455e9;

/** Resident threads for the paper's micro setup (256 per SM). */
inline constexpr int kResidentThreads = 256 * kSmCount;

/** 32-bit architectural registers allocated per micro thread. */
inline constexpr int kThreadRegs = 8;

/** Cores able to execute the given precision. */
constexpr int
activeCores(fp::Precision p)
{
    return p == fp::Precision::Double ? kFp64Cores : kFp32Cores;
}

/** Arithmetic latency in cycles (half: 6 cycles for TWO ops). */
constexpr double
opLatencyCycles(fp::Precision p)
{
    switch (p) {
      case fp::Precision::Double: return 8.0;
      case fp::Precision::Single: return 4.0;
      case fp::Precision::Half:   return 3.0;  // 6 per packed pair
      case fp::Precision::Bfloat16: return 3.0;  // packed like half2
    }
    return 8.0;
}

/** Packed operations per issued instruction (16-bit formats = 2). */
constexpr double
packFactor(fp::Precision p)
{
    return fp::formatOf(p).totalBits == 16 ? 2.0 : 1.0;
}

/** Fixed per-core sequencing/control latch bits. Calibration. */
inline constexpr double kCoreControlBits = 140.0;

/**
 * Exponent of the multiplier-array vulnerable-state scaling law.
 *
 * A radix-4 Booth multiplier's combinational array grows ~m^2, but
 * its *latchable* state (pipeline registers between compressor
 * stages) grows subquadratically; 1.6 reproduces the relative
 * MUL/FMA FIT magnitudes of Figure 10a. Calibration.
 */
inline constexpr double kMulBitExponent = 1.6;

/** Scheduler/dispatch control bits per SM. Calibration. */
inline constexpr double kSmControlBits = 900.0;

/** P(control upset -> DUE) baseline. Superseded at runtime by the
 *  SM simulator's measured control AVF (sm_sim.hh); kept as the
 *  documented analytic fallback magnitude. */
inline constexpr double kControlDueFactor = 0.25;

/** Cache/memory residency factor: exposed bit-seconds per footprint
 *  bit scale as kResidencyScale / arithmetic intensity. */
inline constexpr double kResidencyScale = 2.0;

/**
 * Sustained-throughput efficiency per (workload, precision) for the
 * timing model. Micro kernels are latency-bound dependent chains and
 * bypass this table. Calibrated against the paper's Table 3, with
 * two mechanisms worth naming: MxM (no shared-memory tiling) is
 * bandwidth-bound, so its gains from precision are muted; YOLOv3's
 * half build converts tensors layer-by-layer between half and float
 * (the known darknet half path), which makes half *slower* than
 * single despite the cheaper arithmetic.
 */
double throughputEfficiency(const std::string &workload,
                            fp::Precision p);

} // namespace mparch::gpu

#endif // MPARCH_ARCH_GPU_PARAMS_HH
