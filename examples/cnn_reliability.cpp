/**
 * @file
 * CNN reliability walkthrough: train the digit classifier once in
 * double precision, convert the weights (without retraining) to each
 * target precision — the paper's protocol — then measure how
 * injected faults split into tolerable and critical errors, and run
 * the object detector through the same lens.
 *
 *   $ ./cnn_reliability [trials]
 */

#include <iostream>

#include "fault/campaign.hh"
#include "common/table.hh"
#include "metrics/metrics.hh"
#include "nn/mnistnet.hh"
#include "nn/nn_workloads.hh"

namespace {

using namespace mparch;

template <fp::Precision P>
double
convertedAccuracy(std::size_t count)
{
    nn::MnistNet<P> net(nn::pretrainedMnist());
    nn::DigitGenerator gen(4242);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const nn::DigitSample s = gen.next();
        std::vector<fp::Fp<P>> image(s.pixels.size());
        for (std::size_t j = 0; j < s.pixels.size(); ++j)
            image[j] = fp::Fp<P>::fromDouble(s.pixels[j]);
        std::array<fp::Fp<P>, nn::kDigitClasses> logits{};
        net.infer(image, logits);
        correct += nn::argmaxLogits<P>(logits) == s.label;
    }
    return static_cast<double>(correct) / count;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const std::uint64_t trials =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;

    std::cout << "Training the digit classifier (host double, SGD + "
                 "backprop)...\n";
    const double host_acc =
        nn::evaluateHostAccuracy(nn::pretrainedMnist(), 1000, 9);
    std::cout << "  host accuracy: " << host_acc << "\n\n";

    std::cout << "Converting weights without retraining (paper "
                 "Section 3.1):\n";
    const double acc_d =
        convertedAccuracy<fp::Precision::Double>(500);
    const double acc_s =
        convertedAccuracy<fp::Precision::Single>(500);
    const double acc_h = convertedAccuracy<fp::Precision::Half>(500);
    std::cout << "  accuracy double/single/half: " << acc_d << " / "
              << acc_s << " / " << acc_h
              << "  (paper: half loses < 2%)\n\n";

    std::cout << "Classifier under CAROL-FI injection (" << trials
              << " trials):\n";
    Table table({"precision", "avf-sdc", "tolerable", "critical"});
    for (auto p : fp::allPrecisions) {
        auto w = nn::makeNnWorkload("mnist", p, 0.5);
        fault::CampaignConfig config;
        config.trials = trials;
        const auto r = fault::runMemoryCampaign(*w, config);
        const auto split = metrics::criticalitySplit(r);
        table.row()
            .cell(std::string(fp::precisionName(p)))
            .cell(r.avfSdc(), 3)
            .cell(split.tolerable, 3)
            .cell(split.criticalChange + split.detectionChange, 3);
    }
    table.print(std::cout);
    std::cout << "(the critical share grows as precision shrinks — "
                 "Figure 3's finding)\n\n";

    std::cout << "Detector (YOLite) under injection:\n";
    Table dtable({"precision", "avf-sdc", "tolerable",
                  "detection-change", "class-change"});
    for (auto p : fp::allPrecisions) {
        auto w = nn::makeNnWorkload("yolite", p, 1.0);
        fault::CampaignConfig config;
        config.trials = trials;
        const auto r = fault::runMemoryCampaign(*w, config);
        const auto split = metrics::criticalitySplit(r);
        dtable.row()
            .cell(std::string(fp::precisionName(p)))
            .cell(r.avfSdc(), 3)
            .cell(split.tolerable, 3)
            .cell(split.detectionChange, 3)
            .cell(split.criticalChange, 3);
    }
    dtable.print(std::cout);
    std::cout << "(detection changes track integer positions, so "
                 "they depend less on precision — Figure 11c)\n";
    return 0;
}
