/**
 * @file
 * Tests for the fault-injection framework: fault models, campaign
 * accounting, and the precision-criticality property the paper's TRE
 * analysis rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fault/campaign.hh"
#include "fault/hooks.hh"
#include "fault/model.hh"
#include "workloads/workload.hh"

namespace mparch::fault {
namespace {

using fp::OpKind;
using fp::Precision;
using fp::Stage;
using workloads::makeWorkload;

TEST(FaultModelTest, SingleBitFlipChangesExactlyOneBit)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next() & maskBits(16);
        const std::uint64_t c =
            applyFault(FaultModel::SingleBitFlip, rng, 16, v);
        EXPECT_EQ(popcount(v ^ c), 1);
        EXPECT_EQ(c & ~maskBits(16), 0u);
    }
}

TEST(FaultModelTest, DoubleBitFlipChangesAdjacentBits)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next();
        const std::uint64_t c =
            applyFault(FaultModel::DoubleBitFlip, rng, 64, v);
        const std::uint64_t diff = v ^ c;
        const int bits = popcount(diff);
        EXPECT_TRUE(bits == 2 || bits == 1);
        if (bits == 2) {
            const int lo = std::countr_zero(diff);
            EXPECT_TRUE(testBit(diff, static_cast<unsigned>(lo + 1)));
        }
    }
}

TEST(FaultModelTest, RandomByteConfinedToOneByte)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next() & maskBits(32);
        const std::uint64_t c =
            applyFault(FaultModel::RandomByte, rng, 32, v);
        const std::uint64_t diff = v ^ c;
        if (diff == 0)
            continue;
        const int lo = std::countr_zero(diff) / 8;
        EXPECT_EQ(diff & ~(0xffULL << (8 * lo)), 0u);
    }
}

TEST(FaultModelTest, RandomValueStaysInWidth)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t c =
            applyFault(FaultModel::RandomValue, rng, 10, 0x3ff);
        EXPECT_EQ(c & ~maskBits(10), 0u);
    }
}

TEST(GoldenRunTest, CapturesOutputTicksAndOps)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    const GoldenRun golden(*w, 42);
    EXPECT_GT(golden.ticks, 0u);
    EXPECT_FALSE(golden.outputBits.empty());
    EXPECT_GT(golden.ops.count(OpKind::Fma), 0u);
    // Re-running with the same seed reproduces the same golden.
    const GoldenRun again(*w, 42);
    EXPECT_EQ(golden.outputBits, again.outputBits);
    EXPECT_EQ(golden.ticks, again.ticks);
}

TEST(MemoryCampaignTest, AccountingIsConsistent)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 300;
    const CampaignResult r = runMemoryCampaign(*w, config);
    EXPECT_EQ(r.trials, 300u);
    EXPECT_EQ(r.masked + r.sdc + r.due, r.trials);
    EXPECT_EQ(r.corpus.size(), r.sdc);
    // A GEMM where every buffer feeds the output: a good share of
    // flips must propagate, but low mantissa flips in already-written
    // outputs always count as SDC too, so AVF is well above zero.
    EXPECT_GT(r.avfSdc(), 0.2);
    EXPECT_LE(r.avfSdc(), 1.0);
    const Interval ci = r.avfSdc95();
    EXPECT_TRUE(ci.contains(r.avfSdc()));
}

TEST(MemoryCampaignTest, DeterministicGivenSeed)
{
    auto w = makeWorkload("lud", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 100;
    config.seed = 5;
    const CampaignResult a = runMemoryCampaign(*w, config);
    const CampaignResult b = runMemoryCampaign(*w, config);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.due, b.due);
}

TEST(MemoryCampaignTest, PvfSimilarAcrossPrecisions)
{
    // Paper Section 5.2: with the same algorithm and hardware, the
    // probability of propagation (PVF) is similar for single and
    // double. Allow a generous band.
    CampaignConfig config;
    config.trials = 400;
    auto wd = makeWorkload("mxm", Precision::Double, 0.1);
    auto ws = makeWorkload("mxm", Precision::Single, 0.1);
    const double pd = runMemoryCampaign(*wd, config).avfSdc();
    const double ps = runMemoryCampaign(*ws, config).avfSdc();
    EXPECT_NEAR(pd, ps, 0.15);
}

TEST(DatapathCampaignTest, AccountingAndDeterminism)
{
    auto w = makeWorkload("micro-mul", Precision::Half, 0.1);
    CampaignConfig config;
    config.trials = 200;
    const CampaignResult a = runDatapathCampaign(*w, config);
    EXPECT_EQ(a.trials, 200u);
    EXPECT_EQ(a.masked + a.sdc + a.due, a.trials);
    const CampaignResult b = runDatapathCampaign(*w, config);
    EXPECT_EQ(a.sdc, b.sdc);
}

TEST(DatapathCampaignTest, KindFilterRestrictsStrikes)
{
    // lavamd executes mul, add, sub, fma; filtering to Mul must still
    // produce a valid campaign.
    auto w = makeWorkload("lavamd", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 100;
    const CampaignResult r =
        runDatapathCampaign(*w, config, OpKind::Mul);
    EXPECT_EQ(r.trials, 100u);
    EXPECT_GT(r.sdc + r.masked, 0u);
}

TEST(DatapathCampaignTest, DoubleDeviationsSmallerThanHalf)
{
    // The paper's central criticality claim (Figures 4, 8, 11): a
    // fault in lower-precision data/operations deviates the output
    // more. Median SDC deviation for half must exceed double's.
    CampaignConfig config;
    config.trials = 600;
    auto wd = makeWorkload("micro-mul", Precision::Double, 0.1);
    auto wh = makeWorkload("micro-mul", Precision::Half, 0.1);
    const CampaignResult rd = runDatapathCampaign(*wd, config);
    const CampaignResult rh = runDatapathCampaign(*wh, config);
    // Fraction of SDCs with deviation above 0.1%: half's errors are
    // concentrated in high-impact bits.
    EXPECT_GT(rh.survivingFraction(0.001),
              rd.survivingFraction(0.001));
}

TEST(CampaignResultTest, SurvivingFractionMonotone)
{
    auto w = makeWorkload("mxm", Precision::Half, 0.1);
    CampaignConfig config;
    config.trials = 300;
    const CampaignResult r = runMemoryCampaign(*w, config);
    ASSERT_GT(r.sdc, 10u);
    double prev = 1.1;
    for (double tre : {0.0, 1e-4, 1e-2, 1.0, 100.0}) {
        const double s = r.survivingFraction(tre);
        EXPECT_LE(s, prev);
        prev = s;
    }
    EXPECT_DOUBLE_EQ(r.survivingFraction(0.0), 1.0);
}

TEST(CampaignResultTest, MergeAddsTallies)
{
    CampaignResult a, b;
    a.trials = 10;
    a.sdc = 2;
    a.masked = 8;
    a.corpus.resize(2);
    b.trials = 5;
    b.due = 1;
    b.masked = 4;
    a.merge(b);
    EXPECT_EQ(a.trials, 15u);
    EXPECT_EQ(a.due, 1u);
    EXPECT_EQ(a.corpus.size(), 2u);
}

TEST(CampaignResultTest, MergePreservesAnatomy)
{
    // Regression: merge() used to drop the anatomy vector, silently
    // breaking fieldAvf() on merged (e.g. sharded) campaigns.
    CampaignResult a, b;
    a.trials = b.trials = 2;
    a.sdc = b.sdc = 1;
    a.masked = b.masked = 1;
    FaultAnatomy hit;
    hit.bit = 30;
    hit.field = FaultAnatomy::Field::Exponent;
    hit.outcome = OutcomeKind::Sdc;
    FaultAnatomy miss;
    miss.bit = 0;
    miss.field = FaultAnatomy::Field::MantissaLow;
    miss.outcome = OutcomeKind::Masked;
    a.anatomy = {hit, miss};
    b.anatomy = {hit, hit};
    a.merge(b);
    ASSERT_EQ(a.anatomy.size(), 4u);
    EXPECT_DOUBLE_EQ(a.fieldAvf(FaultAnatomy::Field::Exponent), 1.0);
    EXPECT_DOUBLE_EQ(a.fieldAvf(FaultAnatomy::Field::MantissaLow),
                     0.0);
}

TEST(CampaignConfigTest, RejectsNonPositiveTimeoutFactor)
{
    CampaignConfig config;
    config.timeoutFactor = 0.0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "timeoutFactor");
    config.timeoutFactor = -2.0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "timeoutFactor");
    config.timeoutFactor = 0.5;
    config.validate();  // legal (if suspiciously tight)
}

TEST(RelativeDeviationTest, ZeroGoldenRecordsAbsoluteDeviation)
{
    const fp::Format f = fp::formatOf(Precision::Single);
    const std::uint64_t zero = fp::fpFromDouble(f, 0.0);
    const std::uint64_t half = fp::fpFromDouble(f, 0.5);
    const std::uint64_t four = fp::fpFromDouble(f, 4.0);
    // Zero golden: absolute deviation, not infinity.
    EXPECT_DOUBLE_EQ(relativeDeviation(f, half, zero), 0.5);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, zero, zero), 0.0);
    // Non-zero golden: the usual relative measure.
    EXPECT_DOUBLE_EQ(relativeDeviation(f, half, four), 0.875);
    // Non-finite values still classify as unbounded deviation.
    const std::uint64_t inf = fp::fpFromDouble(f, 1e39);
    EXPECT_TRUE(std::isinf(relativeDeviation(f, inf, four)));
}

TEST(PersistentCampaignTest, BrokenOperatorCorruptsMoreOutput)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 150;
    const auto units = [](OpKind kind) -> std::uint64_t {
        return kind == OpKind::Fma ? 16 : 0;
    };
    const CampaignResult persistent =
        runPersistentCampaign(*w, config, units);
    const CampaignResult transient = runDatapathCampaign(*w, config);
    EXPECT_EQ(persistent.trials, 150u);
    ASSERT_GT(persistent.sdc, 0u);
    // A broken physical unit touches many operations; the average
    // corrupted output fraction must exceed the one-shot case.
    auto mean_frac = [](const CampaignResult &r) {
        double sum = 0.0;
        for (const auto &rec : r.corpus)
            sum += rec.corruptedFraction;
        return r.corpus.empty() ? 0.0 : sum / r.corpus.size();
    };
    EXPECT_GT(mean_frac(persistent), mean_frac(transient));
}

TEST(OneShotHookTest, FiresExactlyOnce)
{
    OneShotDatapathHook hook(OpKind::Mul, 1, Stage::Result, 0.0);
    fp::FpContext ctx;
    ctx.hook = &hook;
    fp::FpEnvGuard guard(ctx);
    const auto a = fp::FpSingle::fromDouble(1.5);
    const auto r0 = a * a;  // op 0: untouched
    const auto r1 = a * a;  // op 1: corrupted result bit 0
    const auto r2 = a * a;  // op 2: untouched
    EXPECT_TRUE(hook.fired());
    EXPECT_EQ(r0.bits(), r2.bits());
    EXPECT_EQ(r1.bits() ^ 1u, r0.bits());
}

TEST(PersistentHookTest, HitsEveryNthOp)
{
    PersistentDatapathHook hook(OpKind::Add, 4, 2, Stage::Result, 0.0);
    fp::FpContext ctx;
    ctx.hook = &hook;
    fp::FpEnvGuard guard(ctx);
    const auto a = fp::FpSingle::fromDouble(1.0);
    for (int i = 0; i < 12; ++i)
        (void)(a + a);
    EXPECT_EQ(hook.hits(), 3u);  // ops 2, 6, 10
}

TEST(StageTablesTest, WeightsPositiveForAllListedStages)
{
    for (auto kind : {OpKind::Add, OpKind::Sub, OpKind::Mul,
                      OpKind::Fma, OpKind::Div, OpKind::Sqrt,
                      OpKind::Convert}) {
        std::size_t count = 0;
        const auto &stages = stagesFor(kind, count);
        ASSERT_GT(count, 0u);
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_GT(stageWidthEstimate(stages[i], fp::kHalf), 0u);
            EXPECT_GT(stageWidthEstimate(stages[i], fp::kDouble), 0u);
        }
    }
}

} // namespace
} // namespace mparch::fault

namespace mparch::fault {
namespace {

TEST(FaultAnatomyTest, BitFieldClassification)
{
    using F = FaultAnatomy::Field;
    // binary16: bit 15 sign, 10..14 exponent, 5..9 high, 0..4 low.
    EXPECT_EQ(bitField(fp::kHalf, 15), F::Sign);
    EXPECT_EQ(bitField(fp::kHalf, 14), F::Exponent);
    EXPECT_EQ(bitField(fp::kHalf, 10), F::Exponent);
    EXPECT_EQ(bitField(fp::kHalf, 9), F::MantissaHigh);
    EXPECT_EQ(bitField(fp::kHalf, 5), F::MantissaHigh);
    EXPECT_EQ(bitField(fp::kHalf, 4), F::MantissaLow);
    EXPECT_EQ(bitField(fp::kHalf, 0), F::MantissaLow);
    // binary64: bit 63 sign, 52..62 exponent.
    EXPECT_EQ(bitField(fp::kDouble, 63), F::Sign);
    EXPECT_EQ(bitField(fp::kDouble, 52), F::Exponent);
    EXPECT_EQ(bitField(fp::kDouble, 51), F::MantissaHigh);
    EXPECT_EQ(bitField(fp::kDouble, 25), F::MantissaLow);
}

TEST(FaultAnatomyTest, MemoryCampaignRecordsEveryTrial)
{
    auto w = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    CampaignConfig config;
    config.trials = 200;
    config.recordAnatomy = true;
    const CampaignResult r = runMemoryCampaign(*w, config);
    EXPECT_EQ(r.anatomy.size(), r.trials);
    std::uint64_t sdc = 0;
    for (const auto &a : r.anatomy) {
        EXPECT_GE(a.bit, 0);
        EXPECT_LT(a.bit, 16);
        sdc += a.outcome == OutcomeKind::Sdc;
    }
    EXPECT_EQ(sdc, r.sdc);
    // Exponent flips propagate at least as often as low-mantissa
    // ones, and their SDCs are (weakly) larger.
    EXPECT_GT(r.fieldAvf(FaultAnatomy::Field::Exponent), 0.3);
}

TEST(FaultAnatomyTest, DisabledByDefault)
{
    auto w = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    CampaignConfig config;
    config.trials = 50;
    const CampaignResult r = runMemoryCampaign(*w, config);
    EXPECT_TRUE(r.anatomy.empty());
}

// ---------------------------------------------------------------------
// relativeDeviation edge cases. The SDC severity histograms and the
// paper's TRE threshold sweep are built on this one function, so its
// conventions at the boundaries are load-bearing: non-finite values
// saturate to infinity (any NaN/Inf corruption is maximally severe),
// a zero golden value falls back to absolute deviation, and signed
// zeros compare equal.
// ---------------------------------------------------------------------

TEST(RelativeDeviationTest, FiniteValuesAreRelative)
{
    const auto f = fp::kDouble;
    const auto golden = fp::fpFromDouble(f, 2.0);
    const auto corrupted = fp::fpFromDouble(f, 2.5);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, corrupted, golden), 0.25);
    // Symmetric in sign of the deviation, not of the arguments.
    const auto below = fp::fpFromDouble(f, 1.5);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, below, golden), 0.25);
    const auto neg = fp::fpFromDouble(f, -2.0);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, corrupted, neg), 2.25);
}

TEST(RelativeDeviationTest, IdenticalBitsDeviateByZero)
{
    const auto f = fp::kHalf;
    for (const std::uint64_t bits : {0x3c00ULL, 0x0001ULL, 0xfbffULL})
        EXPECT_EQ(relativeDeviation(f, bits, bits), 0.0);
}

TEST(RelativeDeviationTest, NonFiniteCorruptionSaturates)
{
    const auto f = fp::kHalf;
    const auto golden = fp::fpFromDouble(f, 1.0);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(relativeDeviation(f, fp::quietNaN(f), golden), inf);
    EXPECT_EQ(relativeDeviation(f, fp::infinity(f, false), golden), inf);
    EXPECT_EQ(relativeDeviation(f, fp::infinity(f, true), golden), inf);
}

TEST(RelativeDeviationTest, NonFiniteGoldenSaturates)
{
    // A golden Inf/NaN output makes a relative measure meaningless;
    // the campaign records it as maximally severe rather than 0/0.
    const auto f = fp::kHalf;
    const auto finite = fp::fpFromDouble(f, 1.0);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(relativeDeviation(f, finite, fp::quietNaN(f)), inf);
    EXPECT_EQ(relativeDeviation(f, finite, fp::infinity(f, false)), inf);
    // Both non-finite — even bit-identical NaNs — still saturate.
    EXPECT_EQ(relativeDeviation(f, fp::quietNaN(f), fp::quietNaN(f)),
              inf);
    EXPECT_EQ(relativeDeviation(f, fp::infinity(f, false),
                                fp::infinity(f, false)),
              inf);
}

TEST(RelativeDeviationTest, ZeroGoldenFallsBackToAbsolute)
{
    const auto f = fp::kHalf;
    const auto zero = fp::zero(f, false);
    const auto half = fp::fpFromDouble(f, 0.5);
    const auto negq = fp::fpFromDouble(f, -0.25);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, half, zero), 0.5);
    EXPECT_DOUBLE_EQ(relativeDeviation(f, negq, zero), 0.25);
    // ... for either sign of the golden zero.
    EXPECT_DOUBLE_EQ(relativeDeviation(f, half, fp::zero(f, true)),
                     0.5);
}

TEST(RelativeDeviationTest, SignedZerosCompareEqual)
{
    // -0 vs +0 is a bit flip in the sign position but numerically no
    // deviation at all; the severity metric must not flag it.
    const auto f = fp::kHalf;
    EXPECT_EQ(relativeDeviation(f, fp::zero(f, true), fp::zero(f, false)),
              0.0);
    EXPECT_EQ(relativeDeviation(f, fp::zero(f, false), fp::zero(f, true)),
              0.0);
}

TEST(RelativeDeviationTest, SubnormalGoldenStaysRelative)
{
    // Subnormals are finite and non-zero: the relative path applies,
    // with no hidden flush to the absolute fallback.
    const auto f = fp::kHalf;
    const std::uint64_t one_ulp = 0x0001;   // smallest subnormal
    const std::uint64_t two_ulp = 0x0002;
    EXPECT_DOUBLE_EQ(relativeDeviation(f, two_ulp, one_ulp), 1.0);
}

TEST(RelativeDeviationTest, LowMantissaFlipIsSmallHighIsLarge)
{
    // The shape the whole bit-anatomy argument rests on, in one line:
    // flipping mantissa bit 0 of 1.0 deviates by one ULP; flipping
    // the top exponent bit deviates by far more than 100%.
    const auto f = fp::kHalf;
    const auto golden = fp::fpFromDouble(f, 1.0);
    EXPECT_NEAR(relativeDeviation(f, golden ^ 1u, golden), 0x1.0p-10,
                1e-12);
    EXPECT_GT(relativeDeviation(f, golden ^ (1ull << 14), golden), 1.0);
}

TEST(FaultAnatomyTest, LowMantissaCriticalityGrowsAsPrecisionShrinks)
{
    // The paper's introductory hypothesis, quantified: the share of
    // low-mantissa SDCs exceeding 1% deviation is ~0 in double and
    // substantial in half.
    CampaignConfig config;
    config.trials = 600;
    config.recordAnatomy = true;
    auto critical_share = [&](Precision p) {
        auto w = workloads::makeWorkload("mxm", p, 0.1);
        const CampaignResult r = runMemoryCampaign(*w, config);
        std::uint64_t sdc = 0, critical = 0;
        for (const auto &a : r.anatomy) {
            if (a.field != FaultAnatomy::Field::MantissaLow ||
                a.outcome != OutcomeKind::Sdc) {
                continue;
            }
            ++sdc;
            critical += a.maxRel > 0.01;
        }
        return sdc ? static_cast<double>(critical) / sdc : 0.0;
    };
    const double d = critical_share(Precision::Double);
    const double h = critical_share(Precision::Half);
    EXPECT_LT(d, 0.05);
    EXPECT_GT(h, d + 0.1);
}

} // namespace
} // namespace mparch::fault
