#include "report/registry.hh"

#include <cstdio>
#include <ostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "report/experiments.hh"

namespace mparch::report {

const char *
experimentKindName(ExperimentKind kind)
{
    switch (kind) {
      case ExperimentKind::PaperTable:  return "table";
      case ExperimentKind::PaperFigure: return "figure";
      case ExperimentKind::Ablation:    return "ablation";
      case ExperimentKind::Extension:   return "extension";
      case ExperimentKind::Engine:      return "engine";
    }
    return "?";
}

double
Experiment::paperValue(const std::string &key) const
{
    for (const auto &ref : paper)
        if (ref.key == key)
            return ref.value;
    fatal("experiment ", id, " has no paper value '", key, "'");
    return 0.0;
}

std::uint64_t
Experiment::trialsFor(const RunContext &ctx) const
{
    return ctx.trials ? ctx.trials : defaultTrials;
}

double
Experiment::scaleFor(const RunContext &ctx) const
{
    return ctx.scale > 0.0 ? ctx.scale : defaultScale;
}

const std::vector<Experiment> &
experiments()
{
    static const std::vector<Experiment> table = [] {
        std::vector<Experiment> out;
        addFpgaExperiments(out);
        addPhiExperiments(out);
        addGpuExperiments(out);
        addAblationExperiments(out);
        addExtensionExperiments(out);
        addEngineExperiments(out);
        return out;
    }();
    return table;
}

const Experiment *
findExperiment(const std::string &id)
{
    for (const auto &experiment : experiments())
        if (experiment.id == id)
            return &experiment;
    return nullptr;
}

ResultDoc
runExperiment(const Experiment &experiment, const RunContext &ctx)
{
    MPARCH_ASSERT(experiment.run, "experiment has no run function");
    ResultDoc doc = experiment.run(experiment, ctx);
    doc.experiment = experiment.id;
    doc.paperRef = experiment.paperRef;
    doc.kind = experimentKindName(experiment.kind);
    doc.title = experiment.title;
    doc.shapeTarget = experiment.shapeTarget;
    doc.trials = experiment.trialsFor(ctx);
    doc.scale = experiment.scaleFor(ctx);
    doc.jobs = ctx.jobs;
    evaluateAll(experiment.checks, doc);
    return doc;
}

Scorecard
printScorecard(const std::vector<ResultDoc> &docs, std::ostream &os)
{
    Scorecard card;
    Table table({"experiment", "paper-ref", "check", "verdict",
                 "observed"});
    table.setTitle("scorecard: machine-checked shape targets vs "
                   "the paper");
    for (const auto &doc : docs) {
        ++card.experimentsRun;
        bool clean = true;
        for (const auto &verdict : doc.verdicts) {
            ++card.checksRun;
            if (verdict.pass)
                ++card.checksPassed;
            else
                clean = false;
            table.row()
                .cell(doc.experiment)
                .cell(doc.paperRef)
                .cell(verdict.id)
                .cell(verdict.pass ? "pass" : "FAIL")
                .cell(verdict.observed);
        }
        if (clean)
            ++card.experimentsClean;
    }
    table.print(os);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%llu/%llu shape targets reproduced; %llu/%llu "
                  "experiments clean\n",
                  static_cast<unsigned long long>(card.checksPassed),
                  static_cast<unsigned long long>(card.checksRun),
                  static_cast<unsigned long long>(
                      card.experimentsClean),
                  static_cast<unsigned long long>(
                      card.experimentsRun));
    os << line;
    return card;
}

} // namespace mparch::report
