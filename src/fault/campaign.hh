/**
 * @file
 * Fault-injection campaigns over workloads.
 *
 * A campaign repeats: reset the workload with a fixed input seed, arm
 * one fault (in memory, in a datapath stage, or persistently in a
 * "physical operator"), execute, and classify the outcome against a
 * golden run. The aggregate gives the AVF/PVF (probability that a
 * fault propagates to the output — the paper's Figures 7 and 12) and
 * an SDC corpus of output deviations that feeds the TRE analysis
 * (Figures 4, 8 and 11).
 */

#ifndef MPARCH_FAULT_CAMPAIGN_HH
#define MPARCH_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "fault/model.hh"
#include "fp/hooks.hh"
#include "workloads/workload.hh"

namespace mparch::fault {

/** How one injected execution ended. */
enum class OutcomeKind { Masked, Sdc, Due, Detected };

/** Name of an OutcomeKind ("masked" / "sdc" / "due" / "detected"). */
const char *outcomeKindName(OutcomeKind outcome);

/**
 * Anatomy of one injected fault, for bit-position-resolved analysis
 * (recorded by memory campaigns when CampaignConfig::recordAnatomy
 * is set).
 */
struct FaultAnatomy
{
    /** Flipped bit position within the value (single-bit model). */
    int bit = -1;

    /** Field the bit belongs to in the target's format. */
    enum class Field { Sign, Exponent, MantissaHigh, MantissaLow };
    Field field = Field::MantissaLow;

    OutcomeKind outcome = OutcomeKind::Masked;

    /** Output deviation when the outcome was an SDC. */
    double maxRel = 0.0;
};

/** Classify a bit position into its IEEE754 field. */
FaultAnatomy::Field bitField(fp::Format f, int bit);

/** One silent data corruption captured for post-processing. */
struct SdcRecord
{
    /** Largest element-wise relative deviation from the golden run
     *  (infinity when the corrupted output is non-finite). */
    double maxRel = 0.0;

    /** Fraction of output elements that differ from golden. */
    double corruptedFraction = 0.0;

    /** Workload-assigned semantic severity. */
    workloads::SdcSeverity severity =
        workloads::SdcSeverity::CriticalChange;
};

/** Aggregate result of an injection campaign. */
struct CampaignResult
{
    std::uint64_t trials = 0;
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;
    std::uint64_t due = 0;

    /** Errors caught by the workload's own detector (DWC mismatch,
     *  uncorrectable ABFT checksum): recoverable, so counted apart
     *  from both SDCs and DUEs. */
    std::uint64_t detected = 0;

    /** Per-SDC deviation records (the corpus). */
    std::vector<SdcRecord> corpus;

    /** Per-trial fault anatomy (memory campaigns with
     *  CampaignConfig::recordAnatomy; empty otherwise). */
    std::vector<FaultAnatomy> anatomy;

    /** P(SDC | flip in the given field), from the anatomy log. */
    double fieldAvf(FaultAnatomy::Field field) const;

    /** P(fault -> SDC): the AVF/PVF point estimate. */
    double
    avfSdc() const
    {
        return trials ? static_cast<double>(sdc) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /** Wilson 95% interval on avfSdc(). */
    Interval avfSdc95() const { return wilson95(sdc, trials); }

    /** P(fault -> DUE). */
    double
    avfDue() const
    {
        return trials ? static_cast<double>(due) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /** P(fault -> detected-and-recoverable). */
    double
    avfDetected() const
    {
        return trials ? static_cast<double>(detected) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /**
     * Fraction of SDCs whose deviation exceeds the tolerated
     * relative error — the FIT-reduction curve ordinate for a given
     * TRE abscissa (1.0 at TRE = 0 when every SDC deviates).
     */
    double survivingFraction(double tre) const;

    /** Fraction of SDCs at the given semantic severity. */
    double severityFraction(workloads::SdcSeverity severity) const;

    /** Merge another campaign's tallies into this one. */
    void merge(const CampaignResult &other);
};

/** Common campaign knobs. */
struct CampaignConfig
{
    std::uint64_t trials = 1000;
    FaultModel model = FaultModel::SingleBitFlip;
    std::uint64_t seed = 1;        ///< fault-sampling seed
    std::uint64_t inputSeed = 99;  ///< workload input seed

    /**
     * Hang watchdog: a trial whose tick count exceeds
     * golden ticks x timeoutFactor is aborted and classified as a
     * DUE (the fault turned the run into a hang/crash).
     *
     * Must be strictly positive; campaign construction rejects 0 or
     * negative values via fatal(), since they would classify every
     * trial — including fault-free ones — as a DUE. Values in (0, 1]
     * are legal but almost always a configuration mistake (the
     * budget is below the fault-free execution length); choose > 1,
     * typically 2-10.
     */
    double timeoutFactor = 4.0;

    /**
     * Datapath campaigns only: restrict strikes to the operand
     * stages (register-read values) instead of the full internal
     * datapath. Supports the operand-vs-datapath criticality
     * ablation (DESIGN.md section 5, decision 1).
     */
    bool operandStagesOnly = false;

    /**
     * Memory campaigns only: log each trial's flipped bit position,
     * IEEE754 field and outcome into CampaignResult::anatomy
     * (single-bit-flip model required).
     */
    bool recordAnatomy = false;

    /** Reject invalid knob combinations via fatal(). */
    void validate() const;
};

/**
 * Fault-free reference execution: output bits, tick count, op mix.
 */
struct GoldenRun
{
    /** Execute @p w fault-free with @p input_seed and capture. */
    GoldenRun(workloads::Workload &w, std::uint64_t input_seed);

    std::vector<std::uint64_t> outputBits;
    std::uint64_t ticks = 0;
    fp::FpContext ops;  ///< per-kind dynamic operation counts
};

/**
 * Element-wise deviation of a corrupted output value from its golden
 * value: relative (|c-g|/|g|) for non-zero golden values, absolute
 * (|c|) when golden is exactly zero (a relative measure would report
 * infinity for any perturbation of a benign zero and skew TRE
 * curves), and infinity when either value is non-finite.
 */
double relativeDeviation(fp::Format f, std::uint64_t corrupted,
                         std::uint64_t golden);

/**
 * Outcome of one replayable trial, before aggregation.
 *
 * Produced by TrialRunner::runTrial(); the campaign supervisor
 * journals these one record per trial, and accumulate() folds them
 * into a CampaignResult.
 */
struct TrialOutcome
{
    OutcomeKind outcome = OutcomeKind::Masked;

    /** Deviation record; meaningful only when outcome == Sdc. */
    SdcRecord sdc;

    /** Anatomy of the injected fault, when the campaign records it. */
    bool hasAnatomy = false;
    FaultAnatomy anatomy;

    /** Human-readable fault-site description (replay/debug only;
     *  empty unless runTrial() was asked to describe). */
    std::string description;
};

/** Fold one trial outcome into the campaign tallies. */
void accumulate(CampaignResult &result, const TrialOutcome &trial);

/**
 * A prepared campaign that executes trials one at a time.
 *
 * Construction runs the golden reference and builds the sampling
 * tables; runTrial(i) then derives every random choice of trial i
 * from trialRng(config.seed, i) — a counter-based stream — so any
 * trial can be re-executed standalone (replay) and the set of
 * outcomes is independent of how the index range is partitioned
 * across processes (sharding).
 *
 * The three factories below correspond to runMemoryCampaign /
 * runDatapathCampaign / runPersistentCampaign, which are now thin
 * index loops over this interface.
 */
class TrialRunner
{
  public:
    virtual ~TrialRunner() = default;

    /**
     * Execute trial @p index and classify it against the golden run.
     *
     * @param describe Also fill TrialOutcome::description with the
     *                 sampled fault site (costs a string; off on the
     *                 campaign hot path).
     */
    virtual TrialOutcome runTrial(std::uint64_t index,
                                  bool describe = false) = 0;

    /**
     * A runner over workload @p w (a clone of this runner's workload)
     * that shares the immutable golden run and sampling tables
     * instead of recomputing them. Forks drive the parallel campaign
     * engine: one fork per worker thread, each over its own clone,
     * produces bit-identical trials to this runner.
     */
    virtual std::unique_ptr<TrialRunner>
    fork(workloads::Workload &w) const = 0;

    /** The fault-free reference this campaign classifies against. */
    const GoldenRun &golden() const { return *golden_; }

    /** The campaign knobs this runner was built with. */
    const CampaignConfig &config() const { return config_; }

  protected:
    /**
     * @param golden Pre-computed golden run to share (golden-run
     *               cache, forks); null recomputes it from @p w.
     */
    TrialRunner(workloads::Workload &w, const CampaignConfig &config,
                std::shared_ptr<const GoldenRun> golden = nullptr)
        : workload_(w), config_(config), golden_(std::move(golden))
    {
        config.validate();
        if (!golden_) {
            golden_ =
                std::make_shared<const GoldenRun>(w, config.inputSeed);
        }
    }

    workloads::Workload &workload_;
    CampaignConfig config_;
    std::shared_ptr<const GoldenRun> golden_;
};

/**
 * Process-wide golden-run cache.
 *
 * A study runs several campaigns (memory, datapath, persistent,
 * several fault models) over the same workload instance; each one
 * re-executing the identical fault-free reference is pure waste.
 * This returns a shared golden run keyed on (workload name,
 * precision, scale, inputSeed), executing the workload only on the
 * first request for a key.
 *
 * The key must fully determine the workload's behaviour, which holds
 * for factory-made workloads (makeWorkload and the mitigation
 * wrappers) when @p scale is the factory scale. Hand-built workloads
 * whose behaviour varies beyond that key must not use the cache.
 * Thread-safe.
 */
std::shared_ptr<const GoldenRun>
cachedGoldenRun(workloads::Workload &w, std::uint64_t input_seed,
                double scale);

/** Drop every cached golden run (tests, FP-model experiments). */
void clearGoldenRunCache();

/** Prepare a CAROL-FI-style memory campaign (see runMemoryCampaign).
 *  @param golden Optional pre-computed golden run to share. */
std::unique_ptr<TrialRunner>
makeMemoryTrialRunner(workloads::Workload &w,
                      const CampaignConfig &config,
                      std::shared_ptr<const GoldenRun> golden = nullptr);

/** Prepare a functional-unit campaign (see runDatapathCampaign). */
std::unique_ptr<TrialRunner>
makeDatapathTrialRunner(workloads::Workload &w,
                        const CampaignConfig &config,
                        fp::OpKind kind_filter = fp::OpKind::NumKinds,
                        std::shared_ptr<const GoldenRun> golden = nullptr);

/** One engine of a spatial design and its physical operator count. */
struct EngineAllocation
{
    workloads::Engine engine;
    std::uint64_t units = 1;
};

/** Prepare an FPGA config-memory campaign (see
 *  runPersistentCampaign). */
std::unique_ptr<TrialRunner>
makePersistentTrialRunner(workloads::Workload &w,
                          const CampaignConfig &config,
                          const std::vector<EngineAllocation> &engines,
                          std::shared_ptr<const GoldenRun> golden = nullptr);

/**
 * CAROL-FI-style campaign: corrupt a random element of a random live
 * buffer (weighted by bit population) at a random tick.
 */
CampaignResult runMemoryCampaign(workloads::Workload &w,
                                 const CampaignConfig &config);

/**
 * Functional-unit campaign: corrupt one datapath stage of one random
 * dynamic operation (uniform over executed operations; stage chosen
 * proportionally to its bit population).
 *
 * @param kind_filter Restrict strikes to one operation kind; pass
 *                    OpKind::NumKinds for "any".
 */
CampaignResult runDatapathCampaign(
    workloads::Workload &w, const CampaignConfig &config,
    fp::OpKind kind_filter = fp::OpKind::NumKinds);

/**
 * FPGA configuration-memory campaign: break one physical operator of
 * one engine persistently for the whole execution. Broken operators
 * are sampled proportionally to each engine's unit count.
 */
CampaignResult runPersistentCampaign(
    workloads::Workload &w, const CampaignConfig &config,
    const std::vector<EngineAllocation> &engines);

/**
 * Convenience overload: one engine per operation kind, with the
 * physical unit count given by @p physical_units (0 = kind absent).
 */
CampaignResult runPersistentCampaign(
    workloads::Workload &w, const CampaignConfig &config,
    const std::function<std::uint64_t(fp::OpKind)> &physical_units);

} // namespace mparch::fault

#endif // MPARCH_FAULT_CAMPAIGN_HH
