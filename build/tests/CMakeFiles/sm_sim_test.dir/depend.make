# Empty dependencies file for sm_sim_test.
# This may be replaced when dependencies are built.
