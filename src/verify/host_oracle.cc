/**
 * @file
 * Oracle 1: the host FPU.
 *
 * The host computes in hardware binary32/binary64 (and, where the
 * compiler provides it, _Float16). That is only a valid oracle where
 * the host result is *provably* the correctly rounded target-format
 * result. The governing analysis is Figueroa's double-rounding
 * theorem: carrying out an operation on p-bit operands in a P-bit
 * format and then rounding to p bits equals the directly rounded
 * result whenever
 *
 *     P >= 2p + 2   for division, square root, and conversions
 *                   of arbitrary reals,
 *     P >= 2p + 1   for addition/subtraction,
 *     P >= 2p       for multiplication.
 *
 * What that admits here:
 *
 *  - binary64: native hardware arithmetic, std::sqrt, std::fma
 *    (glibc's fma is correctly rounded with or without hardware FMA).
 *  - binary32: native float arithmetic, sqrtf, std::fmaf.
 *  - binary16 (p = 11): GCC's x86 _Float16 evaluates each operation
 *    in float and rounds back — float's P = 24 meets 2p+2 = 24
 *    exactly, so +,-,*,/ are all correctly rounded. sqrt goes through
 *    double (53 >= 24). fma is NOT admitted: the exact a*b+c would
 *    need the sum of a 22-bit product and an 11-bit addend rounded
 *    once, and no native path provides that without a double-rounding
 *    hazard — the exact oracle covers it.
 *  - bfloat16 (p = 8): compute in float (24 >= 2p+2 = 18 for every
 *    basic op), then narrow with one explicit round-to-nearest-even.
 *    fma is again not admitted (exact product has 16 bits; 24 < 2*16+1).
 *  - conversions: widenings are exact; narrowings must be a *single*
 *    rounding from the source value (native casts are — libgcc's
 *    __truncdfhf2 narrows double to half in one step). Chained
 *    narrowings are NOT admitted even when P >= 2p+2: that margin
 *    protects arithmetic on p-bit operands, but a conversion source
 *    can sit one source-ULP above a target tie and collapse onto it
 *    in the intermediate format (see hostConvert for the concrete
 *    double -> bfloat16 counterexample the corpus pinned).
 *  - exp/log: never supported — the production algorithms are not
 *    correctly rounded, so no bit-exact host expectation exists (the
 *    property oracle bounds them in ULPs instead).
 *  - tf32: never supported (no native type; the exact oracle covers it).
 *
 * NaN results are canonicalised to the format's quiet NaN before
 * comparison, matching the production core's (and the paper
 * hardware's) canonical-qNaN convention.
 */

#include "verify/verify.hh"

#include <bit>
#include <cmath>

#if defined(__FLT16_MANT_DIG__) && __FLT16_MANT_DIG__ == 11
#define MPARCH_VERIFY_HAVE_FLOAT16 1
#else
#define MPARCH_VERIFY_HAVE_FLOAT16 0
#endif

namespace mparch::verify {

using fp::Format;
using fp::isNaN;
using fp::kBfloat16;
using fp::kDouble;
using fp::kHalf;
using fp::kSingle;
using fp::quietNaN;

namespace {

double
decodeDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

float
decodeSingle(std::uint64_t bits)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

float
decodeBfloat16(std::uint64_t bits)
{
    // bfloat16 is exactly the top 16 bits of a binary32 pattern.
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits) << 16);
}

std::uint64_t
encodeDouble(double v)
{
    const auto bits = std::bit_cast<std::uint64_t>(v);
    return isNaN(kDouble, bits) ? quietNaN(kDouble) : bits;
}

std::uint64_t
encodeSingle(float v)
{
    const std::uint64_t bits = std::bit_cast<std::uint32_t>(v);
    return isNaN(kSingle, bits) ? quietNaN(kSingle) : bits;
}

/** One explicit float -> bfloat16 round-to-nearest-even narrowing. */
std::uint64_t
encodeBfloat16(float v)
{
    const auto u = std::bit_cast<std::uint32_t>(v);
    if (std::isnan(v))
        return quietNaN(kBfloat16);
    // Round-half-to-even on the 16 dropped bits: adding 0x7fff plus
    // the current LSB of the kept part implements ties-to-even; the
    // carry, if any, correctly bumps the exponent (and saturates a
    // maximal finite into infinity).
    const std::uint32_t r = u + 0x7fff + ((u >> 16) & 1);
    return r >> 16;
}

#if MPARCH_VERIFY_HAVE_FLOAT16
_Float16
decodeHalf(std::uint64_t bits)
{
    return std::bit_cast<_Float16>(static_cast<std::uint16_t>(bits));
}

std::uint64_t
encodeHalf(_Float16 v)
{
    const std::uint64_t bits = std::bit_cast<std::uint16_t>(v);
    return isNaN(kHalf, bits) ? quietNaN(kHalf) : bits;
}
#endif

OracleResult
hostArithDouble(const Case &c)
{
    const double a = decodeDouble(c.a);
    const double b = decodeDouble(c.b);
    const double x = decodeDouble(c.c);
    switch (c.op) {
      case VOp::Add:  return {true, encodeDouble(a + b)};
      case VOp::Sub:  return {true, encodeDouble(a - b)};
      case VOp::Mul:  return {true, encodeDouble(a * b)};
      case VOp::Div:  return {true, encodeDouble(a / b)};
      case VOp::Fma:  return {true, encodeDouble(std::fma(a, b, x))};
      case VOp::Sqrt: return {true, encodeDouble(std::sqrt(a))};
      default:        return {};
    }
}

OracleResult
hostArithSingle(const Case &c)
{
    const float a = decodeSingle(c.a);
    const float b = decodeSingle(c.b);
    const float x = decodeSingle(c.c);
    switch (c.op) {
      case VOp::Add:  return {true, encodeSingle(a + b)};
      case VOp::Sub:  return {true, encodeSingle(a - b)};
      case VOp::Mul:  return {true, encodeSingle(a * b)};
      case VOp::Div:  return {true, encodeSingle(a / b)};
      case VOp::Fma:  return {true, encodeSingle(std::fmaf(a, b, x))};
      case VOp::Sqrt: return {true, encodeSingle(std::sqrt(a))};
      default:        return {};
    }
}

OracleResult
hostArithHalf(const Case &c)
{
#if MPARCH_VERIFY_HAVE_FLOAT16
    const _Float16 a = decodeHalf(c.a);
    const _Float16 b = decodeHalf(c.b);
    switch (c.op) {
      case VOp::Add:  return {true, encodeHalf(a + b)};
      case VOp::Sub:  return {true, encodeHalf(a - b)};
      case VOp::Mul:  return {true, encodeHalf(a * b)};
      case VOp::Div:  return {true, encodeHalf(a / b)};
      case VOp::Sqrt:
        // Correctly rounded to 53 bits, then to 11: 53 >= 2*11+2.
        return {true, encodeHalf(static_cast<_Float16>(
                          std::sqrt(static_cast<double>(a))))};
      default:
        return {};  // fma: double-rounding hazard, exact oracle only
    }
#else
    (void)c;
    return {};
#endif
}

OracleResult
hostArithBfloat16(const Case &c)
{
    const float a = decodeBfloat16(c.a);
    const float b = decodeBfloat16(c.b);
    switch (c.op) {
      case VOp::Add:  return {true, encodeBfloat16(a + b)};
      case VOp::Sub:  return {true, encodeBfloat16(a - b)};
      case VOp::Mul:  return {true, encodeBfloat16(a * b)};
      case VOp::Div:  return {true, encodeBfloat16(a / b)};
      case VOp::Sqrt: return {true, encodeBfloat16(std::sqrt(a))};
      default:
        return {};  // fma: 24-bit float < 2*16+1, exact oracle only
    }
}

OracleResult
hostConvert(const Case &c)
{
    const Format src = c.fmt;
    const Format dst = c.dst;

    // A NaN converts to the destination's canonical quiet NaN no
    // matter the route; handle it up front so payload-preserving
    // native casts can't differ.
    if (isNaN(src, c.a))
        return {true, quietNaN(dst)};

    // Decode the source into a double when that is exact (it is for
    // every supported source format: 53 bits and 11 exponent bits
    // dominate half, single and bfloat16 alike).
    double wide;
    if (src == kDouble)
        wide = decodeDouble(c.a);
    else if (src == kSingle)
        wide = decodeSingle(c.a);
    else if (src == kBfloat16)
        wide = decodeBfloat16(c.a);
#if MPARCH_VERIFY_HAVE_FLOAT16
    else if (src == kHalf)
        wide = static_cast<double>(decodeHalf(c.a));
#endif
    else
        return {};

    if (dst == kDouble)
        return {true, encodeDouble(wide)};
    if (dst == kSingle)
        return {true, encodeSingle(static_cast<float>(wide))};
    if (dst == kBfloat16) {
        // Only when the float intermediate is exact. A double source
        // would double-round: 0x3ff0100000000001 (one ULP above the
        // bfloat16 tie at 1 + 2^-8) first rounds *onto* the tie in
        // float, then ties-to-even drops what direct rounding keeps.
        // The 2p+2 margin protects arithmetic on p-bit operands, not
        // the conversion of an arbitrary 53-bit real.
        if (src == kDouble)
            return {};
        return {true, encodeBfloat16(static_cast<float>(wide))};
    }
#if MPARCH_VERIFY_HAVE_FLOAT16
    if (dst == kHalf)
        return {true, encodeHalf(static_cast<_Float16>(wide))};
#endif
    return {};
}

} // namespace

OracleResult
hostOracle(const Case &c)
{
    switch (c.op) {
      case VOp::Exp:
      case VOp::Log:
        return {};  // not correctly rounded; property-oracle territory
      case VOp::Convert:
        return hostConvert(c);
      default:
        break;
    }
    if (c.fmt == kDouble)
        return hostArithDouble(c);
    if (c.fmt == kSingle)
        return hostArithSingle(c);
    if (c.fmt == kHalf)
        return hostArithHalf(c);
    if (c.fmt == kBfloat16)
        return hostArithBfloat16(c);
    return {};
}

} // namespace mparch::verify
