/**
 * @file
 * Project-rule lint engine: files, findings, rules, suppressions.
 *
 * Everything this reproduction claims — byte-identical journal
 * resume, --jobs-invariant campaign results, oracle-verified
 * softfloat — rests on invariants that are easy to break with one
 * innocent-looking line: an ad-hoc std::mt19937, an unordered_map
 * iterated into a journal, a wall-clock call in a trial path. The
 * linter turns those project rules into compile-time facts: a rule
 * registry sweeps every source tree and any unsuppressed finding
 * fails the build's `lint_all` test.
 *
 * Suppression is explicit and audited: a finding can only be waived
 * by an inline `// mparch-lint: allow(<rule>): <reason>` comment on
 * the same line (or alone on the line above), and the reason string
 * is mandatory — a bare allow() is itself a finding.
 */

#ifndef MPARCH_ANALYSIS_LINT_HH
#define MPARCH_ANALYSIS_LINT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/lexer.hh"

namespace mparch::analysis {

/** What kind of scope a brace opens (structural pre-pass result). */
enum class ScopeKind
{
    Namespace,  ///< namespace body (also extern "C" and file scope)
    Type,       ///< class / struct / union / enum body
    Function,   ///< function, constructor or lambda body
    Init,       ///< braced initializer
    Block,      ///< plain compound statement inside a function
};

/**
 * A lexed source file plus the derived context rules match against.
 *
 * `code` is the comment-stripped token stream (what most rules walk);
 * `tokens` keeps comments for suppression parsing. `scope` parallels
 * `code`: the innermost enclosing scope of each token. Paths are
 * normalized to forward slashes; `pathHas(part)` answers "is this
 * file under <part>/" for tree-scoped rules, so fixture files under
 * tests/data/lint/src/fp/ exercise the same predicates as real
 * src/fp/ sources.
 */
struct SourceFile
{
    std::string path;                 ///< as given, slash-normalized
    std::string content;
    std::vector<Token> tokens;        ///< full stream incl. comments
    std::vector<Token> code;          ///< comments stripped
    std::vector<ScopeKind> scope;     ///< per `code` token
    std::vector<std::pair<std::size_t, std::size_t>> functions;
        ///< [open,close] brace index ranges into `code`
    std::size_t lineCount = 0;

    bool isHeader() const;            ///< .hh / .h / .hpp
    bool isBenchShim() const;         ///< bench/*.cpp

    /** True if a path component sequence appears, e.g. "src/fp". */
    bool pathHas(const std::string &part) const;

    /** Basename without extension ("arith" for src/fp/arith.cc). */
    std::string stem() const;

    /** Quoted include spellings in file order (text without quotes). */
    std::vector<std::string> quotedIncludes() const;

    /** True if any quoted include equals @p header. */
    bool includes(const std::string &header) const;
};

/** Build a SourceFile from an in-memory buffer (tests, fixtures). */
SourceFile sourceFromString(const std::string &path,
                            const std::string &content);

/** Load and lex a file from disk; empty content + error on failure. */
bool loadSource(const std::string &path, SourceFile &out,
                std::string *error);

/** One rule violation (or suppressed would-be violation). */
struct Finding
{
    std::string rule;
    std::string path;
    unsigned line = 0;
    unsigned col = 0;
    std::string message;
    std::string hint;            ///< fix-it guidance, may be empty
    bool suppressed = false;
    std::string suppressReason;  ///< non-empty iff suppressed
};

/** A lint rule: a named predicate over one SourceFile. */
class Rule
{
  public:
    virtual ~Rule() = default;

    virtual const char *name() const = 0;

    /** One-line description for --list-rules and the rule catalogue. */
    virtual const char *summary() const = 0;

    virtual void check(const SourceFile &file,
                       std::vector<Finding> &out) const = 0;
};

/** All registered rules, in stable (documentation) order. */
const std::vector<const Rule *> &allRules();

/** Look up a rule by name; nullptr if unknown. Recognises the
 *  pseudo-rule "lint-suppression" (malformed allow() comments). */
const Rule *findRule(const std::string &name);

/** Name of the pseudo-rule covering malformed suppressions. */
inline const char *suppressionRuleName() { return "lint-suppression"; }

struct LintOptions
{
    /** Restrict to these rule names; empty = all rules. */
    std::vector<std::string> onlyRules;
};

struct LintReport
{
    std::vector<Finding> findings;     ///< suppressed entries included
    std::size_t filesScanned = 0;
    std::vector<std::string> errors;   ///< I/O or traversal failures

    /** Unsuppressed finding count — the exit-status driver. */
    std::size_t active() const;
    std::size_t suppressedCount() const;
};

/** Run rules over one already-lexed file, honouring suppressions. */
void lintFile(const SourceFile &file, const LintOptions &options,
              LintReport &report);

/**
 * Lint files and directory trees.
 *
 * Directories are walked recursively for .cc/.hh/.cpp/.h/.hpp files;
 * subdirectories named "data" and "build*" are skipped so test
 * fixtures and build output never join a sweep of their parent tree
 * (point the walker *at* a data directory to lint fixtures).
 */
LintReport lintPaths(const std::vector<std::string> &paths,
                     const LintOptions &options);

/** Write the machine-readable report (common/json writer). */
void writeJsonReport(const LintReport &report, std::ostream &os);

/** Render findings gcc-style ("path:line:col: [rule] message"). */
void printReport(const LintReport &report, std::ostream &os,
                 bool showSuppressed);

} // namespace mparch::analysis

#endif // MPARCH_ANALYSIS_LINT_HH
