/**
 * @file
 * Tests for the three architecture models. Each test pins one of the
 * paper's qualitative findings (the "shape targets" of DESIGN.md);
 * campaign sizes are kept small, so assertions use generous margins.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/fpga/fpga.hh"
#include "arch/fpga/opcost.hh"
#include "arch/gpu/datapath.hh"
#include "arch/gpu/gpu.hh"
#include "arch/gpu/regfile.hh"
#include "arch/phi/compiler_model.hh"
#include "arch/phi/phi.hh"
#include "nn/nn_workloads.hh"

namespace mparch {
namespace {

using fp::OpKind;
using fp::Precision;
using workloads::MicroOp;

// ---------------------------------------------------------------
// FPGA
// ---------------------------------------------------------------

TEST(FpgaOpCost, AreaGrowsWithPrecision)
{
    for (auto kind : {OpKind::Add, OpKind::Mul, OpKind::Fma,
                      OpKind::Div}) {
        const auto h = fpga::operatorCost(kind, fp::kHalf);
        const auto s = fpga::operatorCost(kind, fp::kSingle);
        const auto d = fpga::operatorCost(kind, fp::kDouble);
        EXPECT_LT(h.luts, s.luts);
        EXPECT_LT(s.luts, d.luts);
        EXPECT_LE(h.dsps, s.dsps);
        EXPECT_LE(s.dsps, d.dsps);
    }
}

TEST(FpgaOpCost, MultiplierDspTiling)
{
    // 11/24/53-bit significands tile onto 1 / 2 / 12 DSP slices.
    EXPECT_DOUBLE_EQ(fpga::operatorCost(OpKind::Mul, fp::kHalf).dsps,
                     1.0);
    EXPECT_DOUBLE_EQ(
        fpga::operatorCost(OpKind::Mul, fp::kSingle).dsps, 2.0);
    EXPECT_GE(fpga::operatorCost(OpKind::Mul, fp::kDouble).dsps, 8.0);
}

TEST(FpgaSynthesis, AreaRatiosMatchFigure2)
{
    // Paper Figure 2: MxM loses ~45% of its area from double to
    // single and ~36% more from single to half.
    auto make = [](Precision p) {
        auto w = workloads::makeWorkload("mxm", p, 0.15);
        const fault::GoldenRun golden(*w, 99);
        return fpga::synthesize(*w, golden);
    };
    const auto d = make(Precision::Double);
    const auto s = make(Precision::Single);
    const auto h = make(Precision::Half);
    const double drop_ds = 1.0 - s.luts / d.luts;
    const double drop_sh = 1.0 - h.luts / s.luts;
    EXPECT_NEAR(drop_ds, 0.45, 0.12);
    EXPECT_NEAR(drop_sh, 0.36, 0.12);
    EXPECT_GT(d.configBits, s.configBits);
    EXPECT_GT(s.configBits, h.configBits);
}

TEST(FpgaSynthesis, MnistUsesMoreResourcesThanMxm)
{
    // Paper Figure 2: the CNN occupies more fabric than the 128x128
    // MxM at every precision.
    auto report = [](const char *name, Precision p) {
        auto w = nn::makeAnyWorkload(name, p, 0.5);
        const fault::GoldenRun golden(*w, 99);
        return fpga::synthesize(*w, golden);
    };
    for (auto p : fp::allPrecisions) {
        EXPECT_GT(report("mnist", p).luts, report("mxm", p).luts);
    }
}

TEST(FpgaEvaluation, FitDecreasesWithPrecisionAndNoDue)
{
    fpga::FpgaOptions opt;
    opt.configTrials = 150;
    opt.bramTrials = 100;
    double prev = 1e300;
    for (auto p : fp::allPrecisions) {  // double, single, half
        auto w = workloads::makeWorkload("mxm", p, 0.15);
        const auto eval = fpga::evaluateFpga(*w, opt);
        EXPECT_LT(eval.fitSdc, prev);
        EXPECT_DOUBLE_EQ(eval.fitDue, 0.0);  // paper: no FPGA DUEs
        EXPECT_GT(eval.mebf, 0.0);
        prev = eval.fitSdc;
    }
}

TEST(FpgaEvaluation, MebfImprovesWithReducedPrecision)
{
    fpga::FpgaOptions opt;
    opt.configTrials = 150;
    opt.bramTrials = 100;
    auto ws = workloads::makeWorkload("mxm", Precision::Single, 0.15);
    auto wh = workloads::makeWorkload("mxm", Precision::Half, 0.15);
    const auto es = fpga::evaluateFpga(*ws, opt);
    const auto eh = fpga::evaluateFpga(*wh, opt);
    // Paper Figure 5: half completes ~33% more executions between
    // failures than single.
    EXPECT_GT(eh.mebf, es.mebf);
}

TEST(FpgaEvaluation, MnistCriticalShareGrowsAsPrecisionShrinks)
{
    fpga::FpgaOptions opt;
    opt.configTrials = 250;
    opt.bramTrials = 100;
    auto wd = nn::makeAnyWorkload("mnist", Precision::Double, 0.5);
    auto wh = nn::makeAnyWorkload("mnist", Precision::Half, 0.5);
    const auto ed = fpga::evaluateFpga(*wd, opt);
    const auto eh = fpga::evaluateFpga(*wh, opt);
    using workloads::SdcSeverity;
    const double crit_d = ed.configCampaign.severityFraction(
        SdcSeverity::CriticalChange);
    const double crit_h = eh.configCampaign.severityFraction(
        SdcSeverity::CriticalChange);
    // Paper Figure 3: 5% critical at double vs 20% at half.
    EXPECT_GT(crit_h, crit_d);
    EXPECT_LT(crit_d, 0.35);
}

TEST(FpgaTiming, HalfMxmSlowerThanSingle)
{
    // Paper Table 1: MxM takes 2.10s in single but 2.31s in half.
    fpga::FpgaOptions opt;
    opt.configTrials = 60;
    opt.bramTrials = 40;
    auto ws = workloads::makeWorkload("mxm", Precision::Single, 0.15);
    auto wh = workloads::makeWorkload("mxm", Precision::Half, 0.15);
    const double ts = fpga::evaluateFpga(*ws, opt).timeSeconds;
    const double th = fpga::evaluateFpga(*wh, opt).timeSeconds;
    EXPECT_GT(th, ts);
    EXPECT_LT(th / ts, 1.3);
}

// ---------------------------------------------------------------
// Xeon Phi
// ---------------------------------------------------------------

TEST(PhiCompiler, RegisterDeltasMatchReports)
{
    // Paper Section 5: single uses 33% (LavaMD) and 47% (MxM) more
    // vector registers; LUD allocates identically.
    auto regs = [](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.1);
        return phi::compileKernel(w->desc(), p).vectorRegisters;
    };
    const double lava_ratio =
        static_cast<double>(regs("lavamd", Precision::Single)) /
        regs("lavamd", Precision::Double);
    const double mxm_ratio =
        static_cast<double>(regs("mxm", Precision::Single)) /
        regs("mxm", Precision::Double);
    EXPECT_NEAR(lava_ratio, 1.33, 0.15);
    EXPECT_NEAR(mxm_ratio, 1.47, 0.15);
    EXPECT_EQ(regs("lud", Precision::Single),
              regs("lud", Precision::Double));
}

TEST(PhiCompiler, LaneCounts)
{
    auto w = workloads::makeWorkload("mxm", Precision::Single, 0.1);
    EXPECT_EQ(phi::compileKernel(w->desc(), Precision::Single)
                  .simdLanes,
              16);
    EXPECT_EQ(phi::compileKernel(w->desc(), Precision::Double)
                  .simdLanes,
              8);
}

TEST(PhiEvaluation, RejectsHalfPrecision)
{
    auto w = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    EXPECT_DEATH((void)phi::evaluatePhi(*w),
                 "KNC does not implement half");
}

TEST(PhiEvaluation, Figure6Shapes)
{
    phi::PhiOptions opt;
    opt.pvfTrials = 150;
    opt.datapathTrials = 150;
    auto eval = [&](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.15);
        return phi::evaluatePhi(*w, opt);
    };
    const auto lava_d = eval("lavamd", Precision::Double);
    const auto lava_s = eval("lavamd", Precision::Single);
    const auto mxm_d = eval("mxm", Precision::Double);
    const auto mxm_s = eval("mxm", Precision::Single);
    const auto lud_d = eval("lud", Precision::Double);
    const auto lud_s = eval("lud", Precision::Single);

    // SDC: single above double for LavaMD and MxM; LUD similar.
    EXPECT_GT(lava_s.fitSdc, lava_d.fitSdc);
    EXPECT_GT(mxm_s.fitSdc, mxm_d.fitSdc);
    EXPECT_NEAR(lud_s.fitSdc / lud_d.fitSdc, 1.0, 0.25);
    // DUE: single above double for all three (16 vs 8 lanes).
    EXPECT_GT(lava_s.fitDue, lava_d.fitDue);
    EXPECT_GT(mxm_s.fitDue, mxm_d.fitDue);
    EXPECT_GT(lud_s.fitDue, lud_d.fitDue);
    // PVF (Figure 7): similar across precisions per code.
    EXPECT_NEAR(lava_s.pvfCampaign.avfSdc(),
                lava_d.pvfCampaign.avfSdc(), 0.15);
    EXPECT_NEAR(mxm_s.pvfCampaign.avfSdc(),
                mxm_d.pvfCampaign.avfSdc(), 0.15);
    // Table 2: single ~35% faster for LavaMD/LUD, slower for MxM.
    EXPECT_LT(lava_s.timeSeconds, 0.8 * lava_d.timeSeconds);
    EXPECT_LT(lud_s.timeSeconds, 0.8 * lud_d.timeSeconds);
    EXPECT_GT(mxm_s.timeSeconds, mxm_d.timeSeconds);
    // Figure 9: MEBF favours single except for MxM.
    EXPECT_GT(lava_s.mebf, lava_d.mebf);
    EXPECT_GT(lud_s.mebf, lud_d.mebf);
    EXPECT_GT(mxm_d.mebf, mxm_s.mebf);
}

// ---------------------------------------------------------------
// GPU
// ---------------------------------------------------------------

TEST(GpuDatapath, PerOpBitOrderings)
{
    // FMA needs the most lane state, ADD the least; double lanes are
    // the widest.
    for (auto p : fp::allPrecisions) {
        const double add = gpu::datapathBitsPerCore(OpKind::Add, p);
        const double mul = gpu::datapathBitsPerCore(OpKind::Mul, p);
        const double fma = gpu::datapathBitsPerCore(OpKind::Fma, p);
        EXPECT_GT(fma, mul);
        EXPECT_GT(mul, add);
    }
    EXPECT_GT(gpu::datapathBitsPerCore(OpKind::Mul, Precision::Double),
              gpu::datapathBitsPerCore(OpKind::Mul,
                                       Precision::Single));
}

TEST(GpuRegfile, Figure12DoubleTwiceSingleAndHalf)
{
    for (auto op : {MicroOp::Add, MicroOp::Mul, MicroOp::Fma}) {
        const double d =
            gpu::measureRegFileAvf(op, Precision::Double, 2000, 5)
                .avfSdc();
        const double s =
            gpu::measureRegFileAvf(op, Precision::Single, 2000, 5)
                .avfSdc();
        const double h =
            gpu::measureRegFileAvf(op, Precision::Half, 2000, 5)
                .avfSdc();
        EXPECT_NEAR(d / s, 2.0, 0.5) << microOpName(op);
        EXPECT_NEAR(h / s, 1.0, 0.35) << microOpName(op);
    }
}

TEST(GpuMicro, Figure10aShapes)
{
    gpu::GpuOptions opt;
    opt.datapathTrials = 250;
    opt.memoryTrials = 100;
    auto eval = [&](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.15);
        return gpu::evaluateGpu(*w, opt);
    };
    const auto mul_d = eval("micro-mul", Precision::Double);
    const auto mul_s = eval("micro-mul", Precision::Single);
    const auto mul_h = eval("micro-mul", Precision::Half);
    const auto add_d = eval("micro-add", Precision::Double);
    const auto add_s = eval("micro-add", Precision::Single);
    const auto add_h = eval("micro-add", Precision::Half);
    const auto fma_d = eval("micro-fma", Precision::Double);
    const auto fma_h = eval("micro-fma", Precision::Half);

    // MUL: double > single > half.
    EXPECT_GT(mul_d.fitSdc, mul_s.fitSdc);
    EXPECT_GT(mul_s.fitSdc, mul_h.fitSdc);
    // ADD: the opposite — single/half above double, similar to each
    // other.
    EXPECT_GT(add_s.fitSdc, add_d.fitSdc);
    EXPECT_NEAR(add_h.fitSdc / add_s.fitSdc, 1.0, 0.35);
    // FMA > MUL > ADD at fixed precision; half benefits most.
    EXPECT_GT(fma_d.fitSdc, mul_d.fitSdc);
    EXPECT_GT(mul_d.fitSdc, add_d.fitSdc);
    EXPECT_GT(fma_d.fitSdc, fma_h.fitSdc);
    // Micro DUE well below app DUE (checked next test), and roughly
    // flat across precisions.
    EXPECT_NEAR(add_h.fitDue / add_d.fitDue, 1.0, 0.5);
}

TEST(GpuApps, Figure10bShapes)
{
    gpu::GpuOptions opt;
    opt.datapathTrials = 200;
    opt.memoryTrials = 150;
    auto eval = [&](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.15);
        return gpu::evaluateGpu(*w, opt);
    };
    const auto mxm_d = eval("mxm", Precision::Double);
    const auto mxm_h = eval("mxm", Precision::Half);
    const auto lava_d = eval("lavamd", Precision::Double);
    const auto lava_h = eval("lavamd", Precision::Half);
    const auto micro = eval("micro-mul", Precision::Double);

    // MxM well above LavaMD (memory-bound exposure).
    EXPECT_GT(mxm_d.fitSdc, 1.5 * lava_d.fitSdc);
    // Both follow their dominant-op trend: reduced precision lowers
    // SDC FIT.
    EXPECT_GT(mxm_d.fitSdc, mxm_h.fitSdc);
    EXPECT_GT(lava_d.fitSdc, lava_h.fitSdc);
    // Apps have much higher DUE rates than micro kernels.
    EXPECT_GT(lava_d.fitDue, 3.0 * micro.fitDue);
}

TEST(GpuTiming, Table3Ratios)
{
    auto time = [](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.15);
        const fault::GoldenRun golden(*w, 99);
        return gpu::gpuTimeSeconds(*w, golden);
    };
    // Micro: latency ratios 8 : 4 : 3 (paper 6.0 : 3.0 : 2.23).
    const double md = time("micro-fma", Precision::Double);
    const double ms = time("micro-fma", Precision::Single);
    const double mh = time("micro-fma", Precision::Half);
    EXPECT_NEAR(md / ms, 2.0, 0.05);
    EXPECT_NEAR(ms / mh, 4.0 / 3.0, 0.05);
    // MxM: muted gains (paper 2.33 / 1.91 / 1.18 => ~0.82 and ~0.62).
    const double xd = time("mxm", Precision::Double);
    const double xs = time("mxm", Precision::Single);
    const double xh = time("mxm", Precision::Half);
    EXPECT_NEAR(xs / xd, 0.82, 0.1);
    EXPECT_NEAR(xh / xs, 0.62, 0.1);
}

TEST(GpuYolite, HalfSlowerAndDueHigh)
{
    gpu::GpuOptions opt;
    opt.datapathTrials = 150;
    opt.memoryTrials = 100;
    auto es = [&](Precision p) {
        auto w = nn::makeAnyWorkload("yolite", p, 1.0);
        return gpu::evaluateGpu(*w, opt);
    };
    const auto d = es(Precision::Double);
    const auto s = es(Precision::Single);
    const auto h = es(Precision::Half);
    // Table 3: YOLO half is slower than single (conversion overhead).
    EXPECT_GT(h.timeSeconds, s.timeSeconds);
    EXPECT_GT(d.timeSeconds, s.timeSeconds);
    // Detection CNN: DUE on par with or above SDC (paper Fig. 10c).
    EXPECT_GT(d.fitDue, 0.5 * d.fitSdc);
}

TEST(GpuMebf, Figure13MicroAndApps)
{
    gpu::GpuOptions opt;
    opt.datapathTrials = 150;
    opt.memoryTrials = 100;
    auto eval = [&](const char *name, Precision p) {
        auto w = workloads::makeWorkload(name, p, 0.15);
        return gpu::evaluateGpu(*w, opt);
    };
    for (const char *name : {"micro-mul", "lavamd", "mxm"}) {
        const double d = eval(name, Precision::Double).mebf;
        const double s = eval(name, Precision::Single).mebf;
        const double h = eval(name, Precision::Half).mebf;
        EXPECT_GT(s, d) << name;
        EXPECT_GT(h, s) << name;
    }
}

} // namespace
} // namespace mparch
