/**
 * @file
 * Generality tests: the softfloat core must be correct for *any*
 * IEEE754-shaped format, not just the five named ones. Random
 * (expBits, manBits) combinations are swept with the double-compute-
 * then-round oracle, which is exact for every format with
 * 2*manBits + 2 <= 53 (Figueroa's innocuous-double-rounding bound),
 * plus algebraic properties for the wider ones.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.hh"
#include "fp/softfloat.hh"

namespace mparch::fp {
namespace {

std::uint64_t
d2u(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Random finite pattern in an arbitrary format. */
std::uint64_t
randomBits(Rng &rng, Format f)
{
    const int kind = static_cast<int>(rng.below(8));
    switch (kind) {
      case 0: return zero(f, rng.chance(0.5));
      case 1: // subnormal
        return packFields(f, rng.chance(0.5), 0,
                          rng.below(f.manMask()) + 1);
      case 2: // near max
        return packFields(f, rng.chance(0.5), f.maxBiasedExp() - 1,
                          rng.below(f.manMask() + 1));
      default:
        return packFields(
            f, rng.chance(0.5),
            1 + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(f.maxBiasedExp() - 1))),
            rng.below(f.manMask() + 1));
    }
}

/** Formats small enough for the exact double oracle. */
Format
randomNarrowFormat(Rng &rng)
{
    // manBits <= 25 keeps 2m+2 <= 52 < 53; expBits in [3, 10].
    const auto exp_bits =
        static_cast<std::uint8_t>(3 + rng.below(8));
    const auto man_bits =
        static_cast<std::uint8_t>(2 + rng.below(24));
    const auto total = static_cast<std::uint8_t>(
        1 + exp_bits + man_bits);
    return Format{exp_bits, man_bits, total};
}

TEST(RandomFormats, AddMulDivSqrtMatchDoubleOracle)
{
    Rng rng(71);
    for (int fmt = 0; fmt < 60; ++fmt) {
        const Format f = randomNarrowFormat(rng);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t a = randomBits(rng, f);
            const std::uint64_t b = randomBits(rng, f);
            const double da = fpToDouble(f, a);
            const double db = fpToDouble(f, b);
            const auto oracle = [&](double v) {
                return fpConvertSilent(f, kDouble, d2u(v));
            };
            ASSERT_EQ(oracle(da + db), fpAdd(f, a, b))
                << "add e=" << int(f.expBits) << " m="
                << int(f.manBits) << " a=" << a << " b=" << b;
            ASSERT_EQ(oracle(da * db), fpMul(f, a, b))
                << "mul e=" << int(f.expBits) << " m="
                << int(f.manBits) << " a=" << a << " b=" << b;
            if (db != 0.0) {
                ASSERT_EQ(oracle(da / db), fpDiv(f, a, b))
                    << "div e=" << int(f.expBits) << " m="
                    << int(f.manBits) << " a=" << a << " b=" << b;
            }
            if (da >= 0.0) {
                ASSERT_EQ(oracle(std::sqrt(da)), fpSqrt(f, a))
                    << "sqrt e=" << int(f.expBits) << " m="
                    << int(f.manBits) << " a=" << a;
            }
        }
    }
}

TEST(RandomFormats, ConversionLatticeIsExactUpwards)
{
    // Widening to any format with more exponent AND mantissa bits
    // and back must be the identity.
    Rng rng(72);
    for (int fmt = 0; fmt < 100; ++fmt) {
        const Format small = randomNarrowFormat(rng);
        Format big = small;
        big.expBits = static_cast<std::uint8_t>(small.expBits + 1);
        big.manBits = static_cast<std::uint8_t>(small.manBits + 3);
        big.totalBits =
            static_cast<std::uint8_t>(1 + big.expBits + big.manBits);
        if (big.totalBits > 64)
            continue;
        for (int i = 0; i < 500; ++i) {
            const std::uint64_t a = randomBits(rng, small);
            ASSERT_EQ(fpConvertSilent(
                          small, big,
                          fpConvertSilent(big, small, a)),
                      a)
                << "e=" << int(small.expBits) << " m="
                << int(small.manBits) << " a=" << a;
        }
    }
}

TEST(RandomFormats, AlgebraicPropertiesForWideFormats)
{
    // Wider-than-oracle formats (m up to 52): identity/commutativity.
    Rng rng(73);
    for (int fmt = 0; fmt < 30; ++fmt) {
        const auto exp_bits =
            static_cast<std::uint8_t>(5 + rng.below(7));
        const auto man_bits =
            static_cast<std::uint8_t>(26 + rng.below(27));
        const Format f{exp_bits, man_bits,
                       static_cast<std::uint8_t>(
                           std::min<int>(1 + exp_bits + man_bits,
                                         64))};
        if (1 + exp_bits + man_bits > 64)
            continue;
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t a = randomBits(rng, f);
            const std::uint64_t b = randomBits(rng, f);
            ASSERT_EQ(fpAdd(f, a, b), fpAdd(f, b, a));
            ASSERT_EQ(fpMul(f, a, b), fpMul(f, b, a));
            ASSERT_EQ(fpMul(f, a, one(f)), a);
            if (isFinite(f, a)) {
                ASSERT_EQ(fpSub(f, a, a), zero(f, false));
            }
        }
    }
}

TEST(RandomFormats, FmaIsCorrectlyRoundedToHalfUlp)
{
    // The FMA theorem that *is* pointwise true: one rounding, so the
    // result is within half an ulp of the exact a*b + c. (The weaker
    // folk claim "fma is never worse than mul-then-add" is false —
    // the two-step path's two roundings can cancel luckily.)
    Rng rng(74);
    for (int fmt = 0; fmt < 40; ++fmt) {
        const Format f = randomNarrowFormat(rng);
        if (f.manBits > 12)
            continue;  // keep the exact product within double
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t a = randomBits(rng, f);
            const std::uint64_t b = randomBits(rng, f);
            const std::uint64_t c = randomBits(rng, f);
            const double exact = fpToDouble(f, a) * fpToDouble(f, b) +
                                 fpToDouble(f, c);
            if (!std::isfinite(exact) || exact == 0.0)
                continue;
            const std::uint64_t r = fpFma(f, a, b, c);
            if (!isFinite(f, r))
                continue;
            const double via_fma = fpToDouble(f, r);
            // ulp in the binade of the *exact* value (a result that
            // rounds down onto a binade boundary is a full
            // lower-binade ulp away), floored at the subnormal step.
            int e_exact = 0;
            std::frexp(exact, &e_exact);
            --e_exact;  // frexp mantissa is in [0.5, 1)
            e_exact = std::max(e_exact, f.minExp());
            const double ulp = std::ldexp(
                1.0, e_exact - static_cast<int>(f.manBits));
            ASSERT_LE(std::abs(via_fma - exact), 0.5 * ulp * 1.0001)
                << "e=" << int(f.expBits) << " m=" << int(f.manBits)
                << " a=" << a << " b=" << b << " c=" << c;
        }
    }
}

} // namespace
} // namespace mparch::fp
