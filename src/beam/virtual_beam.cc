#include "beam/virtual_beam.hh"

#include "common/logging.hh"

namespace mparch::beam {

BeamResult
runBeam(const ResourceInventory &inventory, double fluence, Rng &rng,
        const FaultResolver &resolver)
{
    MPARCH_ASSERT(fluence > 0.0, "fluence must be positive");
    const double rate = inventory.rawRate();
    BeamResult result;
    result.fluence = fluence;
    if (rate <= 0.0)
        return result;

    result.faults = rng.poisson(rate * fluence);

    // Cumulative weights for class selection.
    std::vector<double> weight;
    weight.reserve(inventory.entries.size());
    double total = 0.0;
    for (const auto &e : inventory.entries) {
        total += e.bits * bitSensitivity(inventory.node, e.bitClass);
        weight.push_back(total);
    }

    for (std::uint64_t fault = 0; fault < result.faults; ++fault) {
        const double draw = rng.uniform(0.0, total);
        std::size_t index = 0;
        while (index + 1 < weight.size() && draw >= weight[index])
            ++index;

        BeamOutcome outcome;
        if (resolver) {
            outcome = resolver(index, rng);
        } else {
            const auto &e = inventory.entries[index];
            const double u = rng.uniform();
            outcome = u < e.avfSdc ? BeamOutcome::Sdc
                      : u < e.avfSdc + e.avfDue ? BeamOutcome::Due
                                                : BeamOutcome::Masked;
        }
        if (outcome == BeamOutcome::Sdc)
            ++result.sdc;
        else if (outcome == BeamOutcome::Due)
            ++result.due;
    }
    return result;
}

} // namespace mparch::beam
