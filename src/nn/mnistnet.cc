/**
 * @file
 * Host-double training (SGD + backprop through conv/pool/dense) and
 * host-side inference for the MNIST-like classifier.
 */

#include "nn/mnistnet.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mparch::nn {

namespace {

/** Forward activations kept for backprop. */
struct ForwardState
{
    // conv pre-activation, full resolution
    std::array<double, kConvFilters * kConvOut * kConvOut> convPre{};
    // pooled (post-ReLU, post-pool) activations and argmax routing
    std::array<double, kFlat> pooled{};
    std::array<std::size_t, kFlat> poolArg{};
    std::array<double, kHidden> hiddenPre{};
    std::array<double, kHidden> hidden{};
    std::array<double, kDigitClasses> logits{};
};

void
forward(const MnistParams &p,
        const std::array<double, kDigitSize * kDigitSize> &px,
        ForwardState &fs)
{
    for (std::size_t f = 0; f < kConvFilters; ++f) {
        for (std::size_t y = 0; y < kConvOut; ++y) {
            for (std::size_t x = 0; x < kConvOut; ++x) {
                double acc = p.convB[f];
                for (std::size_t ky = 0; ky < kKernel; ++ky)
                    for (std::size_t kx = 0; kx < kKernel; ++kx)
                        acc += p.convW[(f * kKernel + ky) * kKernel +
                                       kx] *
                               px[(y + ky) * kDigitSize + x + kx];
                fs.convPre[(f * kConvOut + y) * kConvOut + x] = acc;
            }
        }
        for (std::size_t py = 0; py < kPoolOut; ++py) {
            for (std::size_t qx = 0; qx < kPoolOut; ++qx) {
                double best = -1e300;
                std::size_t arg = 0;
                for (std::size_t wy = 0; wy < 2; ++wy) {
                    for (std::size_t wx = 0; wx < 2; ++wx) {
                        const std::size_t idx =
                            (f * kConvOut + 2 * py + wy) * kConvOut +
                            2 * qx + wx;
                        const double v =
                            std::max(0.0, fs.convPre[idx]);
                        if (v > best) {
                            best = v;
                            arg = idx;
                        }
                    }
                }
                const std::size_t o =
                    (f * kPoolOut + py) * kPoolOut + qx;
                fs.pooled[o] = best;
                fs.poolArg[o] = arg;
            }
        }
    }
    for (std::size_t h = 0; h < kHidden; ++h) {
        double acc = p.fc1B[h];
        for (std::size_t i = 0; i < kFlat; ++i)
            acc += p.fc1W[h * kFlat + i] * fs.pooled[i];
        fs.hiddenPre[h] = acc;
        fs.hidden[h] = std::max(0.0, acc);
    }
    for (std::size_t c = 0; c < kDigitClasses; ++c) {
        double acc = p.fc2B[c];
        for (std::size_t h = 0; h < kHidden; ++h)
            acc += p.fc2W[c * kHidden + h] * fs.hidden[h];
        fs.logits[c] = acc;
    }
}

/** One SGD step on one sample; returns the cross-entropy loss. */
double
step(MnistParams &p,
     const std::array<double, kDigitSize * kDigitSize> &px,
     std::size_t label, double lr)
{
    ForwardState fs;
    forward(p, px, fs);

    // softmax + cross entropy
    double max_logit = fs.logits[0];
    for (double v : fs.logits)
        max_logit = std::max(max_logit, v);
    double denom = 0.0;
    std::array<double, kDigitClasses> prob{};
    for (std::size_t c = 0; c < kDigitClasses; ++c) {
        prob[c] = std::exp(fs.logits[c] - max_logit);
        denom += prob[c];
    }
    for (auto &v : prob)
        v /= denom;
    const double loss = -std::log(std::max(prob[label], 1e-12));

    // dL/dlogit
    std::array<double, kDigitClasses> dlogit = prob;
    dlogit[label] -= 1.0;

    // fc2 backward
    std::array<double, kHidden> dhidden{};
    for (std::size_t c = 0; c < kDigitClasses; ++c) {
        for (std::size_t h = 0; h < kHidden; ++h) {
            dhidden[h] += dlogit[c] * p.fc2W[c * kHidden + h];
            p.fc2W[c * kHidden + h] -= lr * dlogit[c] * fs.hidden[h];
        }
        p.fc2B[c] -= lr * dlogit[c];
    }

    // fc1 backward (through ReLU)
    std::array<double, kFlat> dpooled{};
    for (std::size_t h = 0; h < kHidden; ++h) {
        if (fs.hiddenPre[h] <= 0.0)
            continue;
        const double dh = dhidden[h];
        for (std::size_t i = 0; i < kFlat; ++i) {
            dpooled[i] += dh * p.fc1W[h * kFlat + i];
            p.fc1W[h * kFlat + i] -= lr * dh * fs.pooled[i];
        }
        p.fc1B[h] -= lr * dh;
    }

    // pool + ReLU + conv backward
    for (std::size_t f = 0; f < kConvFilters; ++f) {
        for (std::size_t o = 0; o < kPoolOut * kPoolOut; ++o) {
            const std::size_t flat_idx =
                f * kPoolOut * kPoolOut + o;
            const double grad = dpooled[flat_idx];
            if (grad == 0.0)
                continue;
            const std::size_t arg = fs.poolArg[flat_idx];
            if (fs.convPre[arg] <= 0.0)
                continue;  // ReLU gate
            const std::size_t in_f = arg / (kConvOut * kConvOut);
            const std::size_t rem = arg % (kConvOut * kConvOut);
            const std::size_t y = rem / kConvOut;
            const std::size_t x = rem % kConvOut;
            MPARCH_ASSERT(in_f == f, "pool routing crossed filters");
            for (std::size_t ky = 0; ky < kKernel; ++ky)
                for (std::size_t kx = 0; kx < kKernel; ++kx)
                    p.convW[(f * kKernel + ky) * kKernel + kx] -=
                        lr * grad *
                        px[(y + ky) * kDigitSize + x + kx];
            p.convB[f] -= lr * grad;
        }
    }
    return loss;
}

} // namespace

MnistParams
trainMnist(const TrainConfig &config)
{
    MnistParams p;
    Rng rng(config.seed);
    auto init = [&rng](std::vector<double> &w, std::size_t n,
                       double scale) {
        w.resize(n);
        for (auto &v : w)
            v = rng.normal(0.0, scale);
    };
    init(p.convW, kConvFilters * kKernel * kKernel, 0.35);
    init(p.convB, kConvFilters, 0.01);
    init(p.fc1W, kHidden * kFlat, std::sqrt(2.0 / kFlat));
    init(p.fc1B, kHidden, 0.01);
    init(p.fc2W, kDigitClasses * kHidden, std::sqrt(2.0 / kHidden));
    init(p.fc2B, kDigitClasses, 0.01);

    // Fixed training set, reshuffled view via fresh index draws.
    DigitGenerator gen(config.seed + 1, config.noise);
    std::vector<DigitSample> train_set(config.samples);
    for (auto &sample : train_set)
        sample = gen.next();

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        const double lr = config.learningRate /
                          (1.0 + 0.2 * static_cast<double>(epoch));
        for (std::size_t i = 0; i < train_set.size(); ++i) {
            const auto &sample =
                train_set[rng.below(train_set.size())];
            step(p, sample.pixels, sample.label, lr);
        }
    }
    return p;
}

std::array<double, kDigitClasses>
inferHost(const MnistParams &params,
          const std::array<double, kDigitSize * kDigitSize> &pixels)
{
    ForwardState fs;
    forward(params, pixels, fs);
    return fs.logits;
}

double
evaluateHostAccuracy(const MnistParams &params, std::size_t count,
                     std::uint64_t seed, double noise)
{
    DigitGenerator gen(seed, noise);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const DigitSample sample = gen.next();
        const auto logits = inferHost(params, sample.pixels);
        const std::size_t pred = static_cast<std::size_t>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        correct += pred == sample.label;
    }
    return static_cast<double>(correct) / static_cast<double>(count);
}

} // namespace mparch::nn
