# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fp")
subdirs("fault")
subdirs("workloads")
subdirs("nn")
subdirs("mitigation")
subdirs("arch/fpga")
subdirs("arch/phi")
subdirs("arch/gpu")
subdirs("beam")
subdirs("metrics")
subdirs("core")
