#include "arch/phi/vpu_sim.hh"

#include <vector>

#include "arch/phi/params.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace mparch::phi {

namespace {

constexpr unsigned kCounterBits = 32;

struct ControlFlip
{
    std::uint64_t cycle = ~0ULL;
    int thread = 0;
    /** [0,32): counter; 32: RR pointer; 33+: lane-mask bit. */
    unsigned bit = 0;
};

struct RunResult
{
    std::uint64_t cycles = 0;
    std::uint64_t issued = 0;
    std::uint64_t issue_busy = 0;
    bool hang = false;
    bool lane_corrupt = false;
};

RunResult
run(const VpuConfig &config, const VpuProgram &program,
    const ControlFlip *flip, std::uint64_t hard_cap)
{
    struct ThreadState
    {
        std::uint64_t remaining = 0;
        // Completion times of the in-flight window; a thread can
        // issue when fewer than `unroll` instructions are pending
        // (software pipelining exposes that much independence).
        std::vector<std::uint64_t> pending;
    };
    std::vector<ThreadState> threads(
        static_cast<std::size_t>(config.threads));
    for (auto &t : threads)
        t.remaining = program.instructions;
    std::uint64_t lane_mask =
        maskBits(static_cast<unsigned>(lanes(config.precision)));
    const std::uint64_t full_mask = lane_mask;

    RunResult result;
    int rr = 0;          // round-robin pointer
    int last_issued = -1;  // KNC: no back-to-back same-thread issue
    std::uint64_t cycle = 0;

    auto all_done = [&threads] {
        for (const auto &t : threads)
            if (t.remaining > 0 || !t.pending.empty())
                return false;
        return true;
    };

    while (!all_done()) {
        if (cycle >= hard_cap) {
            result.hang = true;
            break;
        }
        if (flip && cycle == flip->cycle) {
            if (flip->bit < kCounterBits) {
                auto &t = threads[static_cast<std::size_t>(
                    flip->thread)];
                t.remaining = flipBit(
                    t.remaining & maskBits(kCounterBits), flip->bit);
            } else if (flip->bit == kCounterBits) {
                rr = (rr + (config.threads / 2)) % config.threads;
            } else {
                lane_mask = flipBit(
                    lane_mask, flip->bit - kCounterBits - 1);
            }
        }

        // Retire.
        for (auto &t : threads) {
            std::erase_if(t.pending, [cycle](std::uint64_t c) {
                return c <= cycle;
            });
        }

        // Issue at most one vector instruction, round-robin, never
        // from the thread that issued last cycle.
        bool issued = false;
        for (int probe = 0; probe < config.threads; ++probe) {
            const int idx = (rr + probe) % config.threads;
            if (idx == last_issued)
                continue;  // KNC: no consecutive-cycle same-thread
            auto &t = threads[static_cast<std::size_t>(idx)];
            if (t.remaining == 0)
                continue;
            if (t.pending.size() >=
                static_cast<std::size_t>(program.unroll)) {
                continue;
            }
            --t.remaining;
            t.pending.push_back(
                cycle + static_cast<std::uint64_t>(config.latency));
            ++result.issued;
            if (lane_mask != full_mask)
                result.lane_corrupt = true;
            rr = (idx + 1) % config.threads;
            last_issued = idx;
            issued = true;
            break;
        }
        if (issued)
            ++result.issue_busy;
        else
            last_issued = -1;  // idle cycle clears the restriction
        ++cycle;
    }
    result.cycles = cycle;
    return result;
}

} // namespace

VpuStats
simulateVpu(const VpuConfig &config, const VpuProgram &program)
{
    const RunResult r = run(config, program, nullptr, ~0ULL >> 1);
    VpuStats stats;
    stats.cycles = r.cycles;
    stats.issueUtilization =
        r.cycles ? static_cast<double>(r.issue_busy) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    stats.controlBits =
        config.threads * (kCounterBits + 0.0) + 2.0 +
        lanes(config.precision);
    return stats;
}

VpuControlAvf
measureVpuControlAvf(const VpuConfig &config,
                     const VpuProgram &program, std::uint64_t trials,
                     std::uint64_t seed, double watchdog_factor)
{
    const RunResult golden = run(config, program, nullptr,
                                 ~0ULL >> 1);
    const auto hard_cap = static_cast<std::uint64_t>(
        watchdog_factor * static_cast<double>(golden.cycles));
    const unsigned control_span =
        kCounterBits + 1 +
        static_cast<unsigned>(lanes(config.precision));

    Rng rng(seed);
    VpuControlAvf result;
    for (std::uint64_t t = 0; t < trials; ++t) {
        ControlFlip flip;
        flip.cycle = rng.below(golden.cycles);
        flip.thread = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(config.threads)));
        flip.bit = static_cast<unsigned>(rng.below(control_span));
        const RunResult r = run(config, program, &flip, hard_cap);
        ++result.trials;
        if (r.hang)
            ++result.due;
        else if (r.issued != golden.issued || r.lane_corrupt)
            ++result.sdc;
        else
            ++result.masked;
    }
    return result;
}

} // namespace mparch::phi
