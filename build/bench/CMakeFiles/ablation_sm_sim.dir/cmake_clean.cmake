file(REMOVE_RECURSE
  "CMakeFiles/ablation_sm_sim.dir/ablation_sm_sim.cpp.o"
  "CMakeFiles/ablation_sm_sim.dir/ablation_sm_sim.cpp.o.d"
  "ablation_sm_sim"
  "ablation_sm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
