/**
 * @file
 * ordered-serialization: no unordered containers near serialized
 * output.
 *
 * Journals must be byte-identical on resume, ResultDocs must render
 * the same JSON/CSV on every run, and scorecard diffs must be
 * meaningful. std::unordered_{map,set} iteration order depends on
 * the standard library, the hash seed and the insertion history, so
 * a single range-for over one of them feeding a Writer silently
 * breaks all three guarantees — and only on *some* platforms. The
 * rule is deliberately blunt: in any file that can write serialized
 * artefacts (includes common/json.hh, fault/journal.hh,
 * report/document.hh or core/study.hh, or lives in src/report/ or
 * src/fault/), unordered containers are banned outright rather than
 * traced to a particular loop; std::map's ordering costs nothing at
 * these sizes and removes the hazard class.
 */

#include "analysis/rules.hh"

namespace mparch::analysis {

namespace {

const char *const kUnordered[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "flat_hash_map", "flat_hash_set",
};

class OrderedSerializationRule final : public Rule
{
  public:
    const char *
    name() const override
    {
        return "ordered-serialization";
    }

    const char *
    summary() const override
    {
        return "no unordered containers in files that write "
               "journals, ResultDocs or JSON";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        if (!serializes(file))
            return;
        for (const Token &t : file.code) {
            if (t.kind != TokKind::Identifier &&
                t.kind != TokKind::HeaderName)
                continue;
            for (const char *banned : kUnordered) {
                if (t.text != banned)
                    continue;
                Finding f;
                f.rule = name();
                f.path = file.path;
                f.line = t.line;
                f.col = t.col;
                f.message =
                    t.text + " in a serializing file: iteration "
                    "order is nondeterministic and can leak into "
                    "journals/JSON";
                f.hint = "use std::map / std::set, or collect into a "
                         "vector and sort before writing";
                out.push_back(std::move(f));
                break;
            }
        }
    }

  private:
    static bool
    serializes(const SourceFile &file)
    {
        return file.includes("common/json.hh") ||
               file.includes("fault/journal.hh") ||
               file.includes("report/document.hh") ||
               file.includes("core/study.hh") ||
               file.pathHas("src/report") || file.pathHas("src/fault");
    }
};

} // namespace

const Rule &
orderedSerializationRule()
{
    static const OrderedSerializationRule rule;
    return rule;
}

} // namespace mparch::analysis
