# Empty compiler generated dependencies file for fig11a_gpu_micro_tre.
# This may be replaced when dependencies are built.
