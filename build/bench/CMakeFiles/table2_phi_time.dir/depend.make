# Empty dependencies file for table2_phi_time.
# This may be replaced when dependencies are built.
