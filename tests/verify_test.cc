/**
 * @file
 * Unit tests for the verification subsystem itself: the reference
 * rounding step, oracle cross-agreement, the property checker, corpus
 * serialisation, the shrinker, and the jobs-determinism of the sweep
 * and fuzz engines. The big differential runs live in verify_quick
 * and the exhaustive ctest tier; this file tests the test machinery.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "fp/softfloat.hh"
#include "verify/internal.hh"
#include "verify/verify.hh"

namespace mparch::verify {
namespace {

using fp::Format;
using fp::kBfloat16;
using fp::kDouble;
using fp::kHalf;
using fp::kSingle;
using fp::kTf32;

// ------------------------------------------------------------- names

TEST(VerifyNames, OpNamesRoundTrip)
{
    for (const VOp op : allVOps) {
        const auto parsed = parseVOp(vopName(op));
        ASSERT_TRUE(parsed.has_value()) << vopName(op);
        EXPECT_EQ(*parsed, op);
    }
    EXPECT_FALSE(parseVOp("frobnicate").has_value());
    EXPECT_FALSE(parseVOp("").has_value());
}

TEST(VerifyNames, FormatNamesRoundTrip)
{
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32}) {
        const auto parsed = parseFormat(formatName(f));
        ASSERT_TRUE(parsed.has_value()) << formatName(f);
        EXPECT_EQ(parsed->totalBits, f.totalBits);
        EXPECT_EQ(parsed->manBits, f.manBits);
    }
    EXPECT_FALSE(parseFormat("octuple").has_value());
}

TEST(VerifyNames, Arity)
{
    EXPECT_EQ(vopArity(VOp::Add), 2u);
    EXPECT_EQ(vopArity(VOp::Sub), 2u);
    EXPECT_EQ(vopArity(VOp::Mul), 2u);
    EXPECT_EQ(vopArity(VOp::Div), 2u);
    EXPECT_EQ(vopArity(VOp::Fma), 3u);
    EXPECT_EQ(vopArity(VOp::Sqrt), 1u);
    EXPECT_EQ(vopArity(VOp::Exp), 1u);
    EXPECT_EQ(vopArity(VOp::Log), 1u);
    EXPECT_EQ(vopArity(VOp::Convert), 1u);
}

// ------------------------------------------------------- ulp distance

TEST(UlpDistance, CountsGridSteps)
{
    EXPECT_EQ(ulpDistance(kHalf, 0x3c00, 0x3c00), 0u);
    EXPECT_EQ(ulpDistance(kHalf, 0x3c00, 0x3c01), 1u);
    EXPECT_EQ(ulpDistance(kHalf, 0x3c01, 0x3c00), 1u);
    // Across an exponent boundary the encoding is still monotone.
    EXPECT_EQ(ulpDistance(kHalf, 0x3bff, 0x3c01), 2u);
}

TEST(UlpDistance, SignedZerosCoincide)
{
    EXPECT_EQ(ulpDistance(kHalf, 0x0000, 0x8000), 0u);
    // -smallest_subnormal .. +smallest_subnormal = 2 steps.
    EXPECT_EQ(ulpDistance(kHalf, 0x8001, 0x0001), 2u);
}

TEST(UlpDistance, NaNIsMaximal)
{
    EXPECT_EQ(ulpDistance(kHalf, fp::quietNaN(kHalf), 0x3c00),
              UINT64_MAX);
    EXPECT_EQ(ulpDistance(kHalf, 0x3c00, fp::quietNaN(kHalf)),
              UINT64_MAX);
}

// ------------------------------------------- reference rounding step

using detail::roundExactRNE;
using detail::U128;

TEST(RoundExactRNE, ExactValuesPassThrough)
{
    // 1.0 = 1024 * 2^-10 in binary16.
    EXPECT_EQ(roundExactRNE(kHalf, false, 1024, -10, false), 0x3c00u);
    EXPECT_EQ(roundExactRNE(kHalf, true, 1024, -10, false), 0xbc00u);
    // 1.5, with the significand over-shifted (trailing zeros dropped
    // exactly).
    EXPECT_EQ(roundExactRNE(kHalf, false, U128(1536) << 40, -50, false),
              0x3e00u);
    EXPECT_EQ(roundExactRNE(kHalf, false, 0, 0, false), 0x0000u);
}

TEST(RoundExactRNE, TiesGoToEven)
{
    // 1 + 2^-11 sits exactly between 1.0 (mantissa even) and 1+2^-10:
    // ties-to-even keeps 1.0.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2049, -11, false), 0x3c00u);
    // 1 + 3*2^-11 sits between 1+2^-10 (odd) and 1+2^-9 (even): up.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2051, -11, false), 0x3c02u);
}

TEST(RoundExactRNE, RestBreaksTies)
{
    // The same would-be tie with a strictly positive sub-LSB
    // remainder must round up instead.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2049, -11, true), 0x3c01u);
    // And a rest below an already-below-half fraction changes nothing.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2048 * 2 + 1, -12, true),
              0x3c00u);
}

TEST(RoundExactRNE, CarryPropagatesIntoExponent)
{
    // 1.9999... one ULP below 2.0 plus a tie rounds up to 2.0 with a
    // clean significand carry.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2 * 2047 + 1, -11, false),
              0x4000u);
}

TEST(RoundExactRNE, SubnormalBoundary)
{
    // Smallest subnormal: 2^-24 = 1 * 2^-24.
    EXPECT_EQ(roundExactRNE(kHalf, false, 1, -24, false), 0x0001u);
    // Half of it is a tie with zero (even): rounds to zero...
    EXPECT_EQ(roundExactRNE(kHalf, false, 1, -25, false), 0x0000u);
    // ...unless a remainder pushes it over.
    EXPECT_EQ(roundExactRNE(kHalf, false, 1, -25, true), 0x0001u);
    // Sign survives an underflow to zero.
    EXPECT_EQ(roundExactRNE(kHalf, true, 1, -26, false), 0x8000u);
    // Largest subnormal and the first normal are adjacent.
    EXPECT_EQ(roundExactRNE(kHalf, false, 1023, -24, false), 0x03ffu);
    EXPECT_EQ(roundExactRNE(kHalf, false, 1024, -24, false), 0x0400u);
}

TEST(RoundExactRNE, OverflowSaturatesToInfinity)
{
    // maxFinite in binary16 is (2 - 2^-10) * 2^15 = 2047 * 2^5.
    EXPECT_EQ(roundExactRNE(kHalf, false, 2047, 5, false), 0x7bffu);
    // One ULP above: infinity (RNE overflows at > maxFinite + 1/2 ulp;
    // 2048 * 2^5 = 2^16 is far past the rounding boundary).
    EXPECT_EQ(roundExactRNE(kHalf, false, 2048, 5, false), 0x7c00u);
    EXPECT_EQ(roundExactRNE(kHalf, true, 2048, 5, false), 0xfc00u);
}

TEST(RoundExactRNE, AgreesWithProductionOnWideMantissas)
{
    // Pseudo-exhaustive differential against fpFromDouble: every
    // binary16 pattern, decoded to (sign, mag, exp), re-rounded.
    for (std::uint64_t bits = 0; bits <= 0xffff; ++bits) {
        if (fp::isNaN(kHalf, bits) || fp::isInf(kHalf, bits))
            continue;
        const auto d = detail::decodeBits(kHalf, bits);
        // Shift left by 37 and compensate: exercises the wide path.
        const U128 mag = U128(d.mag) << 37;
        EXPECT_EQ(roundExactRNE(kHalf, d.sign, mag, d.exp - 37, false),
                  bits)
            << bits;
    }
}

TEST(HighestSetBit128, Basics)
{
    EXPECT_EQ(detail::highestSetBit128(0), -1);
    EXPECT_EQ(detail::highestSetBit128(1), 0);
    EXPECT_EQ(detail::highestSetBit128(U128(1) << 64), 64);
    EXPECT_EQ(detail::highestSetBit128(U128(1) << 127), 127);
    EXPECT_EQ(detail::highestSetBit128((U128(1) << 100) | 5), 100);
}

TEST(DecodeBits, NormalSubnormalZero)
{
    const auto one = detail::decodeBits(kHalf, 0x3c00);
    EXPECT_FALSE(one.sign);
    EXPECT_EQ(one.mag, 1024u);
    EXPECT_EQ(one.exp, -10);

    const auto sub = detail::decodeBits(kHalf, 0x0001);
    EXPECT_EQ(sub.mag, 1u);
    EXPECT_EQ(sub.exp, -24);

    const auto negz = detail::decodeBits(kHalf, 0x8000);
    EXPECT_TRUE(negz.sign);
    EXPECT_EQ(negz.mag, 0u);
}

// --------------------------------------------------- oracle agreement

TEST(Oracles, ExactMatchesHostOnRandomCases)
{
    // The two oracles share no code (host = hardware FPU, exact =
    // integer arithmetic): agreement on biased random cases is strong
    // evidence for both. Production is deliberately not consulted.
    std::uint64_t compared = 0;
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16}) {
        Rng rng(0x0aac1e ^ f.totalBits);
        for (int i = 0; i < 4000; ++i) {
            const Case c = genCase(rng, f, {});
            const OracleResult host = hostOracle(c);
            if (!host.supported)
                continue;
            const OracleResult exact = exactOracle(c);
            ASSERT_TRUE(exact.supported);
            ASSERT_EQ(exact.bits, host.bits)
                << corpusLine(c) << "\n  host:  "
                << fp::fpDescribe(c.resultFormat(), host.bits)
                << "\n  exact: "
                << fp::fpDescribe(c.resultFormat(), exact.bits);
            ++compared;
        }
    }
    // The host oracle must actually have covered a healthy share.
    EXPECT_GT(compared, 8000u);
}

TEST(Oracles, ExactSpotValues)
{
    // A few independently hand-computed anchors.
    const Case add{VOp::Add, kHalf, kHalf, 0x3c00, 0x3c00, 0};
    EXPECT_EQ(exactOracle(add).bits, 0x4000u);  // 1 + 1 = 2

    // 2^-14 * 2^-1 = 2^-15: exactly the subnormal 0x0200.
    const Case mul{VOp::Mul, kHalf, kHalf, 0x0400, 0x3800, 0};
    EXPECT_EQ(exactOracle(mul).bits, 0x0200u);

    // 1 / 3 in binary16 = 0x3555 (RNE).
    const Case div{VOp::Div, kHalf, kHalf, 0x3c00, 0x4200, 0};
    EXPECT_EQ(exactOracle(div).bits, 0x3555u);

    // sqrt(2) in binary16 = 0x3da8.
    const Case sq{VOp::Sqrt, kHalf, kHalf, 0x4000, 0, 0};
    EXPECT_EQ(exactOracle(sq).bits, 0x3da8u);

    // fma(maxFinite, maxFinite, -inf) = -inf (no spurious NaN).
    const Case fma{VOp::Fma, kHalf, kHalf, 0x7bff, 0x7bff, 0xfc00};
    EXPECT_EQ(exactOracle(fma).bits, 0xfc00u);

    // Widening conversions are exact.
    Case cv{VOp::Convert, kHalf, kSingle, 0x3c01, 0, 0};
    EXPECT_EQ(exactOracle(cv).bits, 0x3f802000u);
}

TEST(Oracles, HostDeclinesDoubleRoundingHazards)
{
    // The corpus-pinned counterexample: double -> bfloat16 through a
    // float intermediate double-rounds, so the host must decline.
    const Case c{VOp::Convert, kDouble, kBfloat16,
                 0x3ff0100000000001ULL, 0, 0};
    EXPECT_FALSE(hostOracle(c).supported);
    // ...while the exact oracle gets the direct rounding right.
    EXPECT_EQ(exactOracle(c).bits, 0x3f81u);

    // Half fma: no correctly rounded native path.
    const Case hf{VOp::Fma, kHalf, kHalf, 0x3c01, 0x3c01, 0x8400};
    EXPECT_FALSE(hostOracle(hf).supported);

    // Transcendentals are never host territory.
    const Case ex{VOp::Exp, kDouble, kDouble, 0x3ff0000000000000ULL,
                  0, 0};
    EXPECT_FALSE(hostOracle(ex).supported);
}

// ----------------------------------------------------------- property

TEST(Properties, CleanResultHasNoViolations)
{
    const Case c{VOp::Add, kHalf, kHalf, 0x3c00, 0x4000, 0};
    const auto v = checkProperties(c, runProduction(c), {});
    EXPECT_TRUE(v.empty());
}

TEST(Properties, TaxonomyCatchesWrongSpecials)
{
    // sqrt(-1) must be the canonical quiet NaN; hand it 1.0 instead.
    const Case c{VOp::Sqrt, kHalf, kHalf, 0xbc00, 0, 0};
    EXPECT_FALSE(checkProperties(c, 0x3c00, {}).empty());
    EXPECT_TRUE(checkProperties(c, fp::quietNaN(kHalf), {}).empty());

    // A non-canonical (payload-carrying) NaN is also a violation.
    EXPECT_FALSE(checkProperties(c, 0x7e01, {}).empty());

    // x / 0 with finite nonzero x must be a signed infinity.
    const Case d{VOp::Div, kHalf, kHalf, 0xbc00, 0x0000, 0};
    EXPECT_TRUE(checkProperties(d, 0xfc00, {}).empty());
    EXPECT_FALSE(checkProperties(d, 0x7c00, {}).empty());
}

TEST(Properties, EnvelopeBoundsTranscendentals)
{
    // The production exp is within the envelope...
    const Case c{VOp::Exp, kHalf, kHalf, 0x3c00, 0, 0};
    EXPECT_TRUE(checkProperties(c, runProduction(c), {}).empty());
    // ...but a result 64 ULPs off is not.
    EXPECT_FALSE(
        checkProperties(c, runProduction(c) + 64, {}).empty());
}

TEST(Properties, CheckCaseAggregatesOracles)
{
    // End to end: production against all three oracles on anchors
    // drawn from every op class.
    const Case cases[] = {
        {VOp::Add, kHalf, kHalf, 0x3c00, 0x3c01, 0},
        {VOp::Sub, kSingle, kSingle, 0x3f800000, 0x3f800001, 0},
        {VOp::Mul, kBfloat16, kBfloat16, 0x3f80, 0x4049, 0},
        {VOp::Div, kDouble, kDouble, 0x3ff0000000000000ULL,
         0x4008000000000000ULL, 0},
        {VOp::Fma, kHalf, kHalf, 0x3c01, 0x3c01, 0xbc02},
        {VOp::Sqrt, kHalf, kHalf, 0x4000, 0, 0},
        {VOp::Exp, kHalf, kHalf, 0xc000, 0, 0},
        {VOp::Log, kHalf, kHalf, 0x3e00, 0, 0},
        {VOp::Convert, kSingle, kHalf, 0x3f801000, 0, 0},
    };
    for (const Case &c : cases) {
        std::vector<Mismatch> out;
        EXPECT_TRUE(checkCase(c, {}, &out)) << corpusLine(c);
        EXPECT_TRUE(out.empty());
    }
}

TEST(Properties, MismatchRenderingIsActionable)
{
    // Force a mismatch via a property violation and check the report
    // carries a repro command and a corpus line.
    const Case c{VOp::Sqrt, kHalf, kHalf, 0x4400, 0, 0};
    Mismatch m{c, 0x4000, 0x4001, "exact", ""};
    const std::string text = describeMismatch(m);
    EXPECT_NE(text.find("mparch_verify"), std::string::npos);
    EXPECT_NE(text.find("sqrt half 0x4400"), std::string::npos);
    EXPECT_NE(text.find("exact"), std::string::npos);
}

// ------------------------------------------------------------- corpus

TEST(Corpus, LineRoundTripsThroughParser)
{
    Rng rng(0xc0b905);
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32}) {
        for (int i = 0; i < 200; ++i) {
            const Case c = genCase(rng, f, {});
            std::string err;
            const auto parsed = parseCorpusLine(corpusLine(c), &err);
            ASSERT_TRUE(parsed.has_value()) << corpusLine(c) << ": "
                                            << err;
            EXPECT_EQ(static_cast<int>(parsed->op),
                      static_cast<int>(c.op));
            EXPECT_EQ(parsed->fmt.totalBits, c.fmt.totalBits);
            EXPECT_EQ(parsed->a, c.a);
            if (vopArity(c.op) >= 2) {
                EXPECT_EQ(parsed->b, c.b);
            }
            if (vopArity(c.op) >= 3) {
                EXPECT_EQ(parsed->c, c.c);
            }
            if (c.op == VOp::Convert) {
                EXPECT_EQ(parsed->dst.totalBits, c.dst.totalBits);
            }
        }
    }
}

TEST(Corpus, CommentsAndBlanksAreSkipped)
{
    std::string err;
    EXPECT_FALSE(parseCorpusLine("", &err).has_value());
    EXPECT_TRUE(err.empty());
    EXPECT_FALSE(parseCorpusLine("   # only a comment", &err)
                     .has_value());
    EXPECT_TRUE(err.empty());
    // Trailing comments on a case line are fine.
    EXPECT_TRUE(parseCorpusLine("add half 0x1 0x2  # note", &err)
                    .has_value());
}

TEST(Corpus, MalformedLinesReportErrors)
{
    const char *bad[] = {
        "frobnicate half 0x1 0x2",       // unknown op
        "add octuple 0x1 0x2",           // unknown format
        "add half 0x1",                  // missing operand
        "add half 0x1 0x2 0x3",          // extra operand
        "add half 0x1 zzz",              // bad hex
        "add half 0x1 0x12345",          // operand exceeds the format
        "convert half 0x3c00",           // missing destination format
        "sqrt",                          // missing everything
    };
    for (const char *line : bad) {
        std::string err;
        EXPECT_FALSE(parseCorpusLine(line, &err).has_value()) << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

// ---------------------------------------------------------- generator

TEST(Generator, OperandsStayInFormatAndHitSpecials)
{
    for (const Format f : {kHalf, kBfloat16, kTf32}) {
        Rng rng(0x9e4 ^ f.totalBits);
        bool saw_zero = false, saw_inf = false, saw_nan = false,
             saw_sub = false;
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t v = genOperand(rng, f);
            ASSERT_EQ(v & ~f.valueMask(), 0u);
            saw_zero |= fp::isZero(f, v);
            saw_inf |= fp::isInf(f, v);
            saw_nan |= fp::isNaN(f, v);
            saw_sub |= fp::classify(f, v) == fp::FpClass::Subnormal;
        }
        EXPECT_TRUE(saw_zero && saw_inf && saw_nan && saw_sub);
    }
}

TEST(Generator, RespectsOpRestriction)
{
    Rng rng(7);
    const std::vector<VOp> only{VOp::Div, VOp::Sqrt};
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(static_cast<int>(genCase(rng, kHalf, only).op));
    EXPECT_LE(seen.size(), 2u);
    for (const int op : seen) {
        EXPECT_TRUE(op == static_cast<int>(VOp::Div) ||
                    op == static_cast<int>(VOp::Sqrt));
    }
}

// ----------------------------------------------------------- shrinker

TEST(Shrinker, ReducesToMinimalFailingPattern)
{
    // Synthetic predicate: fails whenever operand a has its top
    // mantissa bit set. The shrinker simplifies toward that bit alone
    // on an exponent pulled to the bias (a value in [1, 2)) and zeros
    // the irrelevant operand.
    const auto fails = [](const Case &c) {
        return (c.a >> 9) & 1;
    };
    Case c{VOp::Add, kHalf, kHalf, 0x7abf, 0x1234, 0};
    ASSERT_TRUE(fails(c));
    const Case s = shrinkCase(c, fails);
    EXPECT_TRUE(fails(s));
    EXPECT_EQ(s.a, 0x3e00u);  // 1.5: biased exp 15, lone mantissa bit 9
    EXPECT_EQ(s.b, 0u);       // irrelevant operand shrinks to zero
}

TEST(Shrinker, IsDeterministicAndNeverPassesUp)
{
    // Whatever the predicate, the shrunk case must still fail and two
    // runs must agree bit for bit.
    Rng rng(0x517);
    for (int i = 0; i < 50; ++i) {
        Case c = genCase(rng, kHalf, {});
        const std::uint64_t mask = rng.next() & 0x3ff;
        const auto fails = [mask](const Case &k) {
            return (k.a & mask) != 0 || (k.b & mask) != 0;
        };
        if (!fails(c))
            continue;
        const Case s1 = shrinkCase(c, fails);
        const Case s2 = shrinkCase(c, fails);
        EXPECT_TRUE(fails(s1));
        EXPECT_EQ(s1.a, s2.a);
        EXPECT_EQ(s1.b, s2.b);
        EXPECT_EQ(s1.c, s2.c);
    }
}

// ------------------------------------------------- jobs determinism

TEST(SweepDeterminism, ExhaustiveUnaryReportIndependentOfJobs)
{
    SweepConfig one;
    one.jobs = 1;
    SweepConfig three;
    three.jobs = 3;
    const SweepReport a = sweepUnary(VOp::Sqrt, kHalf, one);
    const SweepReport b = sweepUnary(VOp::Sqrt, kHalf, three);
    EXPECT_EQ(a.cases, 0x10000u);
    EXPECT_EQ(a.cases, b.cases);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(a.sample.size(), b.sample.size());
}

TEST(SweepDeterminism, SampledPairReportIndependentOfJobs)
{
    SweepConfig cfg;
    cfg.samples = 20000;
    cfg.seed = 42;
    cfg.jobs = 1;
    const SweepReport a = sweepPairs(VOp::Mul, kSingle, cfg);
    cfg.jobs = 3;
    const SweepReport b = sweepPairs(VOp::Mul, kSingle, cfg);
    EXPECT_EQ(a.cases, 20000u);
    EXPECT_EQ(a.cases, b.cases);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.mismatches, 0u);
}

TEST(SweepDeterminism, ConvertSweepCoversSpaceExactly)
{
    SweepConfig cfg;
    cfg.jobs = 2;
    const SweepReport r = sweepConvert(kHalf, kSingle, cfg);
    EXPECT_EQ(r.cases, 0x10000u);
    EXPECT_TRUE(r.ok());
}

TEST(FuzzDeterminism, ReportIndependentOfJobs)
{
    FuzzConfig cfg;
    cfg.trials = 20000;
    cfg.seed = 3;
    cfg.jobs = 1;
    const FuzzReport a = fuzzFormat(kHalf, cfg);
    cfg.jobs = 3;
    const FuzzReport b = fuzzFormat(kHalf, cfg);
    EXPECT_EQ(a.trials, 20000u);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(a.sample.size(), b.sample.size());
}

TEST(FuzzDeterminism, Tf32FuzzIsCleanToo)
{
    // tf32 has no host oracle at all: this leg leans entirely on the
    // exact reference and the property checks.
    FuzzConfig cfg;
    cfg.trials = 20000;
    cfg.seed = 5;
    cfg.jobs = 2;
    EXPECT_TRUE(fuzzFormat(kTf32, cfg).ok());
}

} // namespace
} // namespace mparch::verify
