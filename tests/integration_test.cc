/**
 * @file
 * End-to-end integration tests: the paper's Section 7 "Discussion"
 * claims, asserted across the whole stack (workloads -> campaigns ->
 * architecture models -> metrics), plus the beam-planning helpers.
 */

#include <gtest/gtest.h>

#include "beam/exposure.hh"
#include "core/study.hh"

namespace mparch {
namespace {

using core::Architecture;
using core::StudyConfig;
using core::StudyResult;
using core::runStudy;
using fp::Precision;

StudyResult
quickStudy(Architecture arch, const std::string &workload)
{
    StudyConfig config;
    config.arch = arch;
    config.workload = workload;
    config.trials = 150;
    config.scale = 0.15;
    return runStudy(config);
}

/**
 * Section 7, claim 1: "if computing resources are tailored to data
 * precision, reduced precision reduces the FIT rate" — true on the
 * FPGA and (per-op) on the GPU; on the Phi the compiler's register
 * allocation can invert it.
 */
TEST(Section7, TailoredHardwareFitShrinksWithPrecision)
{
    for (auto arch : {Architecture::Fpga, Architecture::Gpu}) {
        const auto result = quickStudy(arch, "mxm");
        const auto *d = result.find(Precision::Double);
        const auto *h = result.find(Precision::Half);
        ASSERT_NE(d, nullptr);
        ASSERT_NE(h, nullptr);
        EXPECT_GT(d->fitSdc, h->fitSdc)
            << core::architectureName(arch);
    }
    // Shared-hardware counter-case: Phi single FIT is *higher*.
    const auto phi = quickStudy(Architecture::XeonPhi, "mxm");
    EXPECT_GT(phi.find(Precision::Single)->fitSdc,
              phi.find(Precision::Double)->fitSdc);
}

/**
 * Section 7, claim 2: "as a general result, reducing precision
 * increases the MEBF" — with the paper's own exception (Phi MxM).
 */
TEST(Section7, ReducedPrecisionRaisesMebf)
{
    for (auto arch : {Architecture::Fpga, Architecture::Gpu}) {
        const auto result = quickStudy(arch, "mxm");
        EXPECT_GT(result.find(Precision::Half)->mebf,
                  result.find(Precision::Double)->mebf)
            << core::architectureName(arch);
    }
    const auto phi_lud = quickStudy(Architecture::XeonPhi, "lud");
    EXPECT_GT(phi_lud.find(Precision::Single)->mebf,
              phi_lud.find(Precision::Double)->mebf);
    // The exception the paper calls out:
    const auto phi_mxm = quickStudy(Architecture::XeonPhi, "mxm");
    EXPECT_LT(phi_mxm.find(Precision::Single)->mebf,
              phi_mxm.find(Precision::Double)->mebf);
}

/**
 * Section 7, claim 3: "a fault in a double value is less likely to
 * significantly impact the output than a fault in single/half" — the
 * TRE curves must order double below single below half on the
 * tailored-hardware architectures.
 */
TEST(Section7, WiderFormatsAbsorbFaults)
{
    for (auto arch : {Architecture::Fpga, Architecture::Gpu}) {
        const auto result = quickStudy(arch, "mxm");
        const auto *d = result.find(Precision::Double);
        const auto *s = result.find(Precision::Single);
        const auto *h = result.find(Precision::Half);
        // Index 2 is TRE = 0.1%.
        EXPECT_LT(d->tre.remaining[2], s->tre.remaining[2])
            << core::architectureName(arch);
        EXPECT_LE(s->tre.remaining[2], h->tre.remaining[2] + 0.05)
            << core::architectureName(arch);
    }
}

/**
 * Cross-architecture sanity: the same workload/precision yields
 * different absolute FIT per device (different inventories), but
 * every evaluation is internally consistent.
 */
TEST(Integration, EveryArchitectureProducesConsistentRows)
{
    for (auto arch : {Architecture::Fpga, Architecture::XeonPhi,
                      Architecture::Gpu}) {
        const auto result = quickStudy(arch, "lavamd");
        for (const auto &row : result.rows) {
            EXPECT_GE(row.fitSdc, 0.0);
            EXPECT_GE(row.fitDue, 0.0);
            EXPECT_GT(row.timeSeconds, 0.0);
            EXPECT_GT(row.mebf, 0.0);
            EXPECT_GE(row.avfDatapath, 0.0);
            EXPECT_LE(row.avfDatapath, 1.0);
            ASSERT_FALSE(row.tre.remaining.empty());
            // 1.0 whenever any SDC occurred, 0.0 for an empty corpus.
            EXPECT_TRUE(row.tre.remaining.front() == 1.0 ||
                        row.tre.remaining.front() == 0.0);
        }
    }
}

TEST(BeamExposure, PaperCampaignArithmetic)
{
    // "8 orders of magnitude above 13 n/cm2h".
    const double acc = beam::accelerationFactor(13.0 * 1e6);
    EXPECT_DOUBLE_EQ(acc, 1e6);
    // "each configuration was tested for at least 100 hours, which
    // is equivalent to more than 11,000 years".
    EXPECT_NEAR(beam::naturalYearsEquivalent(100.0, 1e6), 11408.0,
                10.0);
    // Single-fault regime bookkeeping.
    EXPECT_TRUE(beam::singleFaultRegime(9e-4));
    EXPECT_FALSE(beam::singleFaultRegime(2e-3));
    EXPECT_LT(beam::multiFaultProbability(1e-3), 1e-6);
    // Beam-time planning: 0.5 errors/hour, want 100 errors.
    EXPECT_DOUBLE_EQ(beam::beamHoursForErrors(0.5, 100.0), 200.0);
}

} // namespace
} // namespace mparch
