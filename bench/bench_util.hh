/**
 * @file
 * Shared plumbing for the reproduction benches.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper: it prints the same rows/series the paper reports (FIT in
 * arbitrary units, so shapes — orderings, ratios, crossovers — are
 * the comparison targets, not absolute values), then optionally runs
 * a google-benchmark timing of the underlying simulated kernels.
 *
 * Usage: <bench> [trials] [scale]
 *   trials  injection trials per campaign (default per bench)
 *   scale   workload problem-size knob (default per bench)
 */

#ifndef MPARCH_BENCH_BENCH_UTIL_HH
#define MPARCH_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/study.hh"
#include "nn/nn_workloads.hh"

namespace mparch::bench {

/** Command-line knobs common to all benches. */
struct BenchArgs
{
    std::uint64_t trials;
    double scale;
};

/** Parse "[trials] [scale]" with bench-specific defaults. */
inline BenchArgs
parseArgs(int argc, char **argv, std::uint64_t default_trials,
          double default_scale)
{
    BenchArgs args{default_trials, default_scale};
    if (argc > 1 && std::atoll(argv[1]) > 0)
        args.trials = static_cast<std::uint64_t>(std::atoll(argv[1]));
    if (argc > 2 && std::atof(argv[2]) > 0.0)
        args.scale = std::atof(argv[2]);
    return args;
}

/** Print the bench banner: what is reproduced and what must hold. */
inline void
banner(const std::string &what, const std::string &shape_target)
{
    std::cout << "=============================================="
                 "==============\n"
              << what << "\n"
              << "shape target: " << shape_target << "\n"
              << "=============================================="
                 "==============\n";
}

/** Run one study, with progress feedback on stderr. */
inline core::StudyResult
study(core::Architecture arch, const std::string &workload,
      const BenchArgs &args,
      std::vector<fp::Precision> precisions = {})
{
    core::StudyConfig config;
    config.arch = arch;
    config.workload = workload;
    config.trials = args.trials;
    config.scale = args.scale;
    config.precisions = std::move(precisions);
    std::fprintf(stderr, "[bench] %s/%s: running campaigns...\n",
                 core::architectureName(arch), workload.c_str());
    return core::runStudy(config);
}

/**
 * Register a google-benchmark that times one fault-free execution of
 * the simulated kernel (the cost of the softfloat substrate itself).
 */
inline void
registerKernelTiming(const std::string &workload, fp::Precision p,
                     double scale)
{
    const std::string label = "simulate/" + workload + "/" +
                              std::string(fp::precisionName(p));
    benchmark::RegisterBenchmark(
        label.c_str(),
        [workload, p, scale](benchmark::State &state) {
            auto w = nn::makeAnyWorkload(workload, p, scale);
            w->reset(1);
            for (auto _ : state) {
                workloads::ExecutionEnv env;
                w->execute(env);
                benchmark::DoNotOptimize(env.ticks());
            }
        });
}

/** Run any registered google-benchmarks (after table output). */
inline void
runRegisteredBenchmarks(int *argc, char **argv)
{
    benchmark::Initialize(argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
}

} // namespace mparch::bench

#endif // MPARCH_BENCH_BENCH_UTIL_HH
