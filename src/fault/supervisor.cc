#include "fault/supervisor.hh"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <sstream>

#include "common/parallel.hh"

namespace mparch::fault {

using workloads::Workload;

const char *
trialFailureName(TrialFailure failure)
{
    switch (failure) {
      case TrialFailure::HangWatchdog:      return "hang-watchdog";
      case TrialFailure::NonFiniteGolden:   return "non-finite-golden";
      case TrialFailure::WorkloadException: return "workload-exception";
      case TrialFailure::JournalIo:         return "journal-io-error";
      case TrialFailure::NumFailures:       break;
    }
    return "?";
}

namespace {

/** Last signal delivered while a supervised campaign was running. */
volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

/** Scoped SIGINT/SIGTERM handler installation. */
class SignalScope
{
  public:
    explicit SignalScope(bool install) : installed_(install)
    {
        if (!installed_)
            return;
        g_signal = 0;
        previousInt_ = std::signal(SIGINT, onSignal);
        previousTerm_ = std::signal(SIGTERM, onSignal);
    }

    ~SignalScope()
    {
        if (!installed_)
            return;
        std::signal(SIGINT, previousInt_);
        std::signal(SIGTERM, previousTerm_);
    }

    bool
    fired() const
    {
        return installed_ && g_signal != 0;
    }

  private:
    bool installed_;
    void (*previousInt_)(int) = SIG_DFL;
    void (*previousTerm_)(int) = SIG_DFL;
};

void
bumpFailure(SupervisedCampaign &run, TrialFailure failure)
{
    ++run.failureCounts[static_cast<std::size_t>(failure)];
}

/** True when any golden output element decodes to inf/NaN. */
bool
goldenIsNonFinite(Workload &w, const GoldenRun &golden)
{
    const fp::Format f = fp::formatOf(w.output().precision);
    for (std::uint64_t bits : golden.outputBits) {
        if (!std::isfinite(fp::fpToDouble(f, bits)))
            return true;
    }
    return false;
}

JournalHeader
makeHeader(Workload &w, CampaignKind kind,
           const CampaignConfig &config,
           const SupervisorConfig &supervisor, fp::OpKind kind_filter,
           const std::vector<EngineAllocation> &engines,
           const GoldenRun &golden)
{
    JournalHeader header;
    header.kind = kind;
    header.workload = w.name();
    header.precision = w.precision();
    header.scale = supervisor.scale;
    header.config = config;
    header.kindFilter = kind_filter;
    header.engines = engines;
    header.shardCount =
        supervisor.shardCount ? supervisor.shardCount : 1;
    header.shardIndex = supervisor.shardIndex;
    header.goldenFingerprint = goldenFingerprint(golden);
    return header;
}

/**
 * Everything the supervisor needs to know about one executed trial:
 * the outcome plus the retry bookkeeping. Produced by workers (or
 * the serial loop) and folded into the campaign by commit() on the
 * supervising thread, strictly in index order.
 */
struct TrialCell
{
    std::uint64_t index = 0;
    TrialOutcome trial;
    int throws = 0;        ///< exceptions caught (== serial `attempts`)
    bool completed = false;
    std::string error;     ///< last exception message when poisoned
};

/**
 * Run one trial with bounded retry. A trial that keeps throwing is
 * poisoned and the campaign moves on (graceful degradation; the
 * report carries the reduced coverage).
 */
TrialCell
runSupervisedTrial(TrialRunner &runner, std::uint64_t index,
                   int max_retries)
{
    TrialCell cell;
    cell.index = index;
    for (;;) {
        try {
            cell.trial = runner.runTrial(index);
            cell.completed = true;
            return cell;
        } catch (const std::exception &e) {
            if (cell.throws++ >= max_retries) {
                cell.error = e.what();
                return cell;
            }
        }
    }
}

} // namespace

std::unique_ptr<TrialRunner>
makeTrialRunner(Workload &w, CampaignKind kind,
                const CampaignConfig &config, fp::OpKind kind_filter,
                const std::vector<EngineAllocation> &engines,
                std::shared_ptr<const GoldenRun> golden)
{
    switch (kind) {
      case CampaignKind::Memory:
        return makeMemoryTrialRunner(w, config, std::move(golden));
      case CampaignKind::Datapath:
        return makeDatapathTrialRunner(w, config, kind_filter,
                                       std::move(golden));
      case CampaignKind::Persistent:
        return makePersistentTrialRunner(w, config, engines,
                                         std::move(golden));
    }
    panic("unknown campaign kind");
}

SupervisedCampaign
runSupervisedCampaign(Workload &w, CampaignKind kind,
                      const CampaignConfig &config,
                      const SupervisorConfig &supervisor,
                      fp::OpKind kind_filter,
                      const std::vector<EngineAllocation> &engines)
{
    SupervisedCampaign run;
    run.journalPath = supervisor.journalPath;

    const std::uint64_t shards =
        supervisor.shardCount ? supervisor.shardCount : 1;
    if (supervisor.shardIndex >= shards) {
        run.error = "shard index out of range";
        return run;
    }
    for (std::uint64_t i = supervisor.shardIndex; i < config.trials;
         i += shards) {
        ++run.planned;
    }

    // Golden reference + sampling tables (also validates config).
    std::shared_ptr<const GoldenRun> golden;
    if (supervisor.useGoldenCache) {
        golden =
            cachedGoldenRun(w, config.inputSeed, supervisor.scale);
    }
    const auto runner = makeTrialRunner(w, kind, config, kind_filter,
                                        engines, std::move(golden));
    if (goldenIsNonFinite(w, runner->golden())) {
        bumpFailure(run, TrialFailure::NonFiniteGolden);
        run.error =
            "golden run produced non-finite output; deviation-based "
            "classification is meaningless (check workload inputs)";
        return run;
    }

    const JournalHeader header =
        makeHeader(w, kind, config, supervisor, kind_filter, engines,
                   runner->golden());

    // Resume: load completed trials and validate provenance.
    std::vector<bool> done;
    bool append = false;
    if (supervisor.resume && !supervisor.journalPath.empty() &&
        std::filesystem::exists(supervisor.journalPath)) {
        std::string why;
        const auto journal =
            readJournal(supervisor.journalPath, &why);
        if (!journal) {
            run.error = "refusing to resume: " + why;
            return run;
        }
        why = journal->header.mismatch(header);
        if (!why.empty()) {
            run.error = "refusing to resume from '" +
                        supervisor.journalPath + "': " + why;
            return run;
        }
        done.assign(config.trials, false);
        for (const auto &rec : journal->records) {
            if (rec.index >= config.trials || done[rec.index])
                continue;
            if (rec.index % shards != supervisor.shardIndex)
                continue;
            done[rec.index] = true;
            accumulate(run.result, rec);
            ++run.resumed;
        }
        // Cut any torn tail (a record half-written when the previous
        // process died) so appended records start on a fresh line.
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(supervisor.journalPath, ec);
        if (!ec && journal->validBytes < size) {
            std::filesystem::resize_file(supervisor.journalPath,
                                         journal->validBytes, ec);
        }
        append = true;
    }

    // Journal writer (fresh header unless appending after resume).
    std::unique_ptr<JournalWriter> writer;
    if (!supervisor.journalPath.empty()) {
        writer = std::make_unique<JournalWriter>(
            supervisor.journalPath, header, supervisor.batchSize,
            /*truncate=*/!append);
        if (!writer->ok()) {
            bumpFailure(run, TrialFailure::JournalIo);
            warn("cannot write journal '", supervisor.journalPath,
                 "'; continuing without crash safety");
            writer.reset();
        }
    }

    SignalScope signals(supervisor.handleSignals);
    const auto stopping = [&] {
        return signals.fired() ||
               (supervisor.shouldStop && supervisor.shouldStop());
    };

    // Indices this run still has to execute, in order.
    std::vector<std::uint64_t> pending;
    pending.reserve(run.planned - run.resumed);
    for (std::uint64_t i = supervisor.shardIndex; i < config.trials;
         i += shards) {
        if (done.empty() || !done[i])
            pending.push_back(i);
    }
    run.result.corpus.reserve(run.result.corpus.size() +
                              pending.size());
    if (config.recordAnatomy) {
        run.result.anatomy.reserve(run.result.anatomy.size() +
                                   pending.size());
    }

    // Fold one finished trial into the campaign: retry/poison
    // bookkeeping, tallies, journal. Called strictly in index order
    // on this thread, so serial and parallel runs produce identical
    // journal bytes and CampaignResults.
    const auto commit = [&](const TrialCell &cell) {
        for (int t = 0; t < cell.throws; ++t)
            bumpFailure(run, TrialFailure::WorkloadException);
        if (!cell.completed) {
            if (cell.throws > 0)
                run.retried += static_cast<std::uint64_t>(
                    cell.throws - 1);
            warn("trial ", cell.index, " poisoned after ",
                 cell.throws, " attempts: ", cell.error);
            ++run.poisoned;
            return;
        }
        run.retried += static_cast<std::uint64_t>(cell.throws);
        if (cell.trial.outcome == OutcomeKind::Due)
            bumpFailure(run, TrialFailure::HangWatchdog);

        accumulate(run.result, cell.trial);
        if (writer) {
            writer->append(
                makeTrialRecord(cell.index, cell.trial, cell.throws));
            if (!writer->ok()) {
                bumpFailure(run, TrialFailure::JournalIo);
                warn("journal write to '", supervisor.journalPath,
                     "' failed; continuing without crash safety");
                writer.reset();
            }
        }
    };

    const unsigned jobs = pending.size() > 1
                              ? parallel::resolveJobs(supervisor.jobs)
                              : 1;
    if (jobs <= 1) {
        for (std::uint64_t index : pending) {
            if (stopping()) {
                run.interrupted = true;
                break;
            }
            commit(runSupervisedTrial(*runner, index,
                                      supervisor.maxRetries));
        }
    } else {
        // Parallel path: workers claim chunks of the pending list,
        // run trials on their own workload clone + runner fork, and
        // hand cells through a bounded reorder window; this thread
        // commits them in index order. Counter-based trial RNG makes
        // every trial independent of execution order, so the result
        // is bit-identical to the serial loop.
        const std::uint64_t chunk = std::clamp<std::uint64_t>(
            pending.size() / (static_cast<std::uint64_t>(jobs) * 4),
            1, 32);
        parallel::IndexChunker chunker(pending.size(), chunk);
        parallel::OrderedChannel<TrialCell> channel(
            std::max<std::size_t>(jobs * chunk * 4, 256), jobs);

        // Clones and forks are built up front, on this thread, so
        // construction failures surface before any worker starts.
        std::vector<workloads::WorkloadPtr> clones;
        std::vector<std::unique_ptr<TrialRunner>> forks;
        clones.reserve(jobs);
        forks.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j) {
            clones.push_back(w.clone());
            forks.push_back(runner->fork(*clones.back()));
        }

        parallel::ThreadPool pool(jobs);
        pool.start([&](unsigned worker) {
            TrialRunner &mine = *forks[worker];
            std::uint64_t begin = 0, end = 0;
            while (chunker.next(begin, end)) {
                for (std::uint64_t pos = begin; pos < end; ++pos) {
                    TrialCell cell;
                    try {
                        cell = runSupervisedTrial(
                            mine, pending[pos],
                            supervisor.maxRetries);
                    } catch (...) {
                        // Non-std exception: poison, don't terminate.
                        cell.index = pending[pos];
                        cell.throws = supervisor.maxRetries + 1;
                        cell.error = "non-standard exception";
                    }
                    channel.put(pos, std::move(cell));
                }
            }
            channel.producerDone();
        });

        std::size_t committed = 0;
        bool stopRequested = false;
        for (;;) {
            // Cooperative stop, honoured between commits: stop
            // handing out chunks; claimed chunks drain into the
            // window and are committed below.
            if (!stopRequested && stopping()) {
                stopRequested = true;
                chunker.stop();
            }
            auto cell = channel.take();
            if (!cell)
                break;
            commit(*cell);
            ++committed;
        }
        pool.wait();
        if (committed < pending.size())
            run.interrupted = true;
    }

    if (writer)
        writer->flush();
    if (run.interrupted) {
        std::ostringstream os;
        os << "campaign interrupted after " << run.result.trials
           << "/" << run.planned << " trials";
        if (writer && writer->ok()) {
            os << "; journal flushed to '" << supervisor.journalPath
               << "' — re-run with --resume to continue";
        }
        inform(os.str());
    }
    return run;
}

SupervisedCampaign
runCampaign(Workload &w, CampaignKind kind,
            const CampaignConfig &config,
            const SupervisorConfig &supervisor, const std::string &tag,
            fp::OpKind kind_filter,
            const std::vector<EngineAllocation> &engines)
{
    SupervisorConfig resolved = supervisor;
    if (resolved.journalPath.empty() && !resolved.journalDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(resolved.journalDir, ec);
        std::ostringstream name;
        name << w.name() << "-" << fp::precisionName(w.precision())
             << "-" << tag;
        if (resolved.shardCount > 1)
            name << "-shard" << resolved.shardIndex;
        name << ".mpj";
        resolved.journalPath =
            (std::filesystem::path(resolved.journalDir) / name.str())
                .string();
    }
    return runSupervisedCampaign(w, kind, config, resolved,
                                 kind_filter, engines);
}

ReplayResult
replayTrial(Workload &w, const Journal &journal, std::uint64_t index)
{
    ReplayResult replay;
    const JournalHeader &h = journal.header;
    if (index >= h.config.trials) {
        replay.error = "trial index out of range";
        return replay;
    }
    if (h.workload != w.name() || h.precision != w.precision()) {
        replay.error = "workload does not match the journal header";
        return replay;
    }

    const auto runner = makeTrialRunner(w, h.kind, h.config,
                                        h.kindFilter, h.engines);
    if (goldenFingerprint(runner->golden()) != h.goldenFingerprint) {
        replay.error =
            "golden-run fingerprint mismatch: the workload, its "
            "inputs or the FP model changed since the journal was "
            "written";
        return replay;
    }

    replay.trial = runner->runTrial(index, /*describe=*/true);
    for (const auto &rec : journal.records) {
        if (rec.index != index)
            continue;
        replay.journaled = rec;
        replay.hasJournaled = true;
        replay.consistent = rec.outcome == replay.trial.outcome;
        break;
    }
    return replay;
}

} // namespace mparch::fault
