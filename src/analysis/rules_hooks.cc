/**
 * @file
 * hook-coverage: every softfloat datapath stage stays injectable.
 *
 * The paper's methodology (CAROL-FI-style injection into every
 * datapath stage) only holds if every arithmetic path in the
 * softfloat core routes through the OpCtx hook machinery: an op
 * entry captures dispatch state once via detail::enterOp(op), and
 * every internal stage value passes through detail::touch(ctx, ...).
 * A new code path that rounds or manipulates significands without
 * threading the OpCtx is invisible to fault injection — campaigns
 * still run, but silently under-cover the datapath, skewing FIT/TRE
 * results in ways no dynamic test notices. Two checks over
 * src/fp sources:
 *
 *  1. Every roundPack(...) call threads an OpCtx argument (the
 *     rounding stage is where PreRoundSig/ExponentLogic/Result
 *     faults strike).
 *  2. Every function that touches a datapath stage either captures
 *     the dispatch state itself (calls detail::enterOp) or receives
 *     it from its caller (takes an OpCtx parameter).
 */

#include "analysis/rules.hh"

namespace mparch::analysis {

namespace {

using detail::matchParen;
using detail::signatureBegin;

bool
rangeHasIdent(const std::vector<Token> &code, std::size_t begin,
              std::size_t end, const char *ident)
{
    for (std::size_t j = begin; j < end && j < code.size(); ++j)
        if (code[j].isIdent(ident))
            return true;
    return false;
}

class HookCoverageRule final : public Rule
{
  public:
    const char *name() const override { return "hook-coverage"; }

    const char *
    summary() const override
    {
        return "softfloat arithmetic threads OpCtx so every datapath "
               "stage remains fault-injectable";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        if (!file.pathHas("src/fp") || file.isHeader())
            return;
        const auto &code = file.code;
        // 1. roundPack call sites must carry the OpCtx.
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (!code[i].isIdent("roundPack") ||
                !code[i + 1].isPunct("("))
                continue;
            const std::size_t close = matchParen(code, i + 1);
            if (rangeHasIdent(code, i + 1, close, "ctx") ||
                rangeHasIdent(code, i + 1, close, "oc") ||
                rangeHasIdent(code, i + 1, close, "OpCtx"))
                continue;
            Finding f;
            f.rule = name();
            f.path = file.path;
            f.line = code[i].line;
            f.col = code[i].col;
            f.message =
                "roundPack called without threading the OpCtx — "
                "faults in the rounding stages (PreRoundSig, "
                "ExponentLogic, Result) would be invisible to hooks";
            f.hint = "pass the OpCtx captured by detail::enterOp(op) "
                     "at the operation entry point";
            out.push_back(std::move(f));
        }
        // 2. touch() users must have op-dispatch state in scope.
        for (const auto &[open, close] : file.functions) {
            bool touches = false;
            unsigned line = 0, col = 0;
            for (std::size_t j = open; j < close; ++j) {
                if (code[j].isIdent("touch") && j + 1 < code.size() &&
                    code[j + 1].isPunct("(")) {
                    touches = true;
                    line = code[j].line;
                    col = code[j].col;
                    break;
                }
            }
            if (!touches)
                continue;
            const std::size_t sig = signatureBegin(code, open);
            if (rangeHasIdent(code, open, close, "enterOp") ||
                rangeHasIdent(code, sig, open, "OpCtx"))
                continue;
            Finding f;
            f.rule = name();
            f.path = file.path;
            f.line = line;
            f.col = col;
            f.message =
                "datapath stage touched outside a hooked operation: "
                "no detail::enterOp(op) call and no OpCtx parameter "
                "in this function";
            f.hint = "capture dispatch state once at the op entry "
                     "(const OpCtx ctx = detail::enterOp(op)) or "
                     "accept the caller's OpCtx";
            out.push_back(std::move(f));
        }
    }
};

} // namespace

const Rule &
hookCoverageRule()
{
    static const HookCoverageRule rule;
    return rule;
}

} // namespace mparch::analysis
