/**
 * @file
 * Reproduces Table 2: benchmark execution times on the Xeon Phi.
 *
 * Shape targets: single is ~35% faster for LavaMD and LUD (twice the
 * SIMD lanes, partially offset by fixed overheads) but ~13% *slower*
 * for MxM (the prefetcher covers fewer bytes per element stream in
 * single — the paper's compiler-report finding, Section 5.4).
 */

#include "bench_util.hh"

#include "arch/phi/phi.hh"
#include "fault/campaign.hh"

namespace {

using namespace mparch;

double
paperTime(const std::string &w, fp::Precision p)
{
    const bool d = p == fp::Precision::Double;
    if (w == "lavamd")
        return d ? 1.307 : 0.801;
    if (w == "mxm")
        return d ? 10.612 : 12.028;
    return d ? 1.264 : 0.818;  // lud
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 0, 0.3);
    bench::banner(
        "Table 2: Xeon Phi execution time [s] (model vs paper)",
        "single ~35% faster for LavaMD/LUD, ~13% slower for MxM");

    Table table({"benchmark", "precision", "model[s]",
                 "model single/double", "paper[s]",
                 "paper single/double"});
    for (const std::string name : {"lavamd", "mxm", "lud"}) {
        double model_double = 0.0;
        for (auto p :
             {fp::Precision::Double, fp::Precision::Single}) {
            auto w = workloads::makeWorkload(name, p, args.scale);
            const fault::GoldenRun golden(*w, 99);
            const double t = phi::phiTimeSeconds(*w, golden);
            if (p == fp::Precision::Double)
                model_double = t;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(t, 7)
                .cell(t / model_double, 3)
                .cell(paperTime(name, p), 3)
                .cell(paperTime(name, p) /
                          paperTime(name, fp::Precision::Double),
                      3);
        }
    }
    table.print(std::cout);

    for (auto p : {fp::Precision::Double, fp::Precision::Single})
        bench::registerKernelTiming("lud", p, args.scale);
    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
