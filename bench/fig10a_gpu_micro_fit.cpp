/**
 * @file
 * Reproduces Figure 10a: SDC and DUE FIT of the Volta
 * microbenchmarks (Micro-MUL / ADD / FMA) at the three precisions.
 *
 * Shape targets (paper Section 6.1): MUL orders double > single >
 * half (wider multiplier state dominates); ADD orders the opposite
 * way with single and half very close (more active FP32 cores
 * dominate the thinner adder); FMA combines both (double high,
 * single close, half clearly lowest); FMA > MUL > ADD at fixed
 * precision; DUE is roughly flat and far below the full apps'.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 400, 0.3);
    bench::banner("Figure 10a: Volta micro FIT (a.u.)",
                  "MUL: D>S>H; ADD: S~H>D; FMA: D~S>H; FMA>MUL>ADD");

    Table table({"micro", "precision", "fit-sdc(a.u.)",
                 "fit-due(a.u.)", "sdc norm-to-double"});
    for (const std::string name :
         {"micro-mul", "micro-add", "micro-fma"}) {
        const auto result =
            bench::study(core::Architecture::Gpu, name, args);
        const double base =
            result.find(fp::Precision::Double)->fitSdc;
        for (const auto &row : result.rows) {
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.fitSdc, 0)
                .cell(row.fitDue, 0)
                .cell(row.fitSdc / base, 2);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
