/**
 * @file
 * Extension: tensor-core-style mixed precision under injection.
 *
 * The natural question after the paper: Volta's tensor cores store
 * and multiply in half but accumulate in single — does that recover
 * the criticality half gives up? This bench runs the CAROL-FI memory
 * campaign on three GEMM variants: pure half, pure single, and the
 * mixed tensor-core contract, comparing SDC AVF and the criticality
 * tail. Expectation: the mixed variant's *storage* exposure stays
 * half-sized, while its accumulator faults behave like single's —
 * the criticality profile lands between the pure variants, closer to
 * single.
 */

#include "bench_util.hh"

#include "fault/campaign.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 500, 0.15);
    bench::banner("Extension: tensor-core mixed-precision GEMM",
                  "mixed (half-in, single-accumulate) criticality "
                  "falls between pure half and pure single");

    struct Variant
    {
        const char *label;
        workloads::WorkloadPtr w;
    };
    std::vector<Variant> variants;
    variants.push_back(
        {"half", workloads::makeWorkload("mxm", fp::Precision::Half,
                                         args.scale)});
    variants.push_back(
        {"mixed(h->s)",
         workloads::makeWorkload("mxm-mixed", fp::Precision::Single,
                                 args.scale)});
    variants.push_back(
        {"single", workloads::makeWorkload(
                       "mxm", fp::Precision::Single, args.scale)});

    Table table({"variant", "storage-bits", "avf-sdc",
                 "remain@0.1%", "remain@1%"});
    for (auto &variant : variants) {
        variant.w->reset(1);
        std::uint64_t bits = 0;
        for (const auto &view : variant.w->buffers())
            bits += view.bits();
        fault::CampaignConfig config;
        config.trials = args.trials;
        const auto r = fault::runMemoryCampaign(*variant.w, config);
        table.row()
            .cell(variant.label)
            .cell(static_cast<std::int64_t>(bits))
            .cell(r.avfSdc(), 3)
            .cell(r.survivingFraction(1e-3), 3)
            .cell(r.survivingFraction(1e-2), 3);
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
