# Empty dependencies file for ext_tensorcore.
# This may be replaced when dependencies are built.
