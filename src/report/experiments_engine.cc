/**
 * @file
 * Registry entry for the campaign-engine throughput benchmark. Not a
 * paper target: it validates the parallel executor's contract
 * (identical tallies at every job count) and measures its speedup.
 */

#include <chrono>

#include "arch/fpga/fpga.hh"
#include "common/parallel.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "report/experiments.hh"
#include "workloads/workload.hh"

namespace mparch::report {

namespace {

double
seconds(std::chrono::steady_clock::time_point begin,
        std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/** Tallies equal (the corpus makes the check order-sensitive). */
bool
sameResult(const fault::CampaignResult &a,
           const fault::CampaignResult &b)
{
    if (a.trials != b.trials || a.masked != b.masked ||
        a.sdc != b.sdc || a.due != b.due ||
        a.detected != b.detected ||
        a.corpus.size() != b.corpus.size())
        return false;
    for (std::size_t i = 0; i < a.corpus.size(); ++i)
        if (a.corpus[i].maxRel != b.corpus[i].maxRel)
            return false;
    return true;
}

Experiment
benchCampaignThroughput()
{
    Experiment e;
    e.id = "bench_campaign_throughput";
    e.paperRef = "-";
    e.kind = ExperimentKind::Engine;
    e.title = "Campaign throughput: serial loop vs thread-pooled "
              "executor";
    e.shapeTarget = "identical tallies at every job count; speedup "
                    "bounded by physical cores";
    e.defaultTrials = 400;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        const unsigned jobs = parallel::resolveJobs(ctx.jobs);

        fault::CampaignConfig config;
        config.trials = self.trialsFor(ctx);
        config.seed = 29;

        auto w = workloads::makeWorkload(
            "mxm", fp::Precision::Single, scale);
        const fault::GoldenRun golden(*w, config.inputSeed);
        const auto circuit = fpga::synthesize(*w, golden);

        struct KindResult
        {
            std::string kind;
            double serialSeconds = 0.0;
            double parallelSeconds = 0.0;
            bool identical = false;
        };
        const auto benchKind =
            [&](fault::CampaignKind kind, const std::string &label,
                const std::vector<fault::EngineAllocation>
                    &engines) {
                KindResult out;
                out.kind = label;
                fault::SupervisorConfig serial;
                serial.jobs = 1;
                fault::SupervisorConfig parallel_cfg;
                parallel_cfg.jobs = jobs;
                const auto t0 = std::chrono::steady_clock::now();
                const auto a = fault::runSupervisedCampaign(
                    *w, kind, config, serial, fp::OpKind::NumKinds,
                    engines);
                const auto t1 = std::chrono::steady_clock::now();
                const auto b = fault::runSupervisedCampaign(
                    *w, kind, config, parallel_cfg,
                    fp::OpKind::NumKinds, engines);
                const auto t2 = std::chrono::steady_clock::now();
                out.serialSeconds = seconds(t0, t1);
                out.parallelSeconds = seconds(t1, t2);
                out.identical = sameResult(a.result, b.result);
                return out;
            };

        std::vector<KindResult> rows;
        rows.push_back(
            benchKind(fault::CampaignKind::Memory, "memory", {}));
        rows.push_back(benchKind(fault::CampaignKind::Datapath,
                                 "datapath", {}));
        rows.push_back(benchKind(fault::CampaignKind::Persistent,
                                 "persistent", circuit.engines));

        auto &table = doc.addTable(
            "main",
            {"campaign", "trials", "serial-trials/s",
             "jobs=" + std::to_string(jobs) + "-trials/s",
             "speedup", "identical"});
        const double trials =
            static_cast<double>(config.trials);
        for (const auto &row : rows) {
            table.row()
                .cell(row.kind)
                .cell({trials, 0})
                .cell({trials / row.serialSeconds, 1})
                .cell({trials / row.parallelSeconds, 1})
                .cell({row.serialSeconds / row.parallelSeconds, 2})
                .cell(row.identical ? "yes" : "NO");
        }
        doc.notes.push_back(
            "speedup scales with physical cores (" +
            std::to_string(parallel::hardwareJobs()) +
            " here); on a single-core host the parallel leg "
            "measures pure executor overhead (~1x)");
        return doc;
    };
    e.checks = {
        custom("tallies-identical",
               "the serial and thread-pooled runs produce "
               "bit-identical tallies for every campaign kind",
               [](const ResultDoc &doc) {
                   CheckOutcome out;
                   const auto *table = doc.table("main");
                   out.pass = true;
                   for (std::size_t r = 0; r < table->rowCount();
                        ++r) {
                       const bool same =
                           table->at(r, "identical")->formatted() ==
                           "yes";
                       out.pass = out.pass && same;
                       if (!out.observed.empty())
                           out.observed += ", ";
                       out.observed +=
                           table->at(r, "campaign")->formatted() +
                           (same ? "=identical" : "=DIVERGED");
                   }
                   return out;
               }),
    };
    return e;
}

} // namespace

void
addEngineExperiments(std::vector<Experiment> &out)
{
    out.push_back(benchCampaignThroughput());
}

} // namespace mparch::report
