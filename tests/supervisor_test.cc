/**
 * @file
 * Tests for the crash-safe campaign supervisor: counter-based trial
 * RNG, journal round-trips, kill-and-resume bit-exactness, sharding,
 * trial replay, and the structured failure taxonomy.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "fault/supervisor.hh"
#include "workloads/workload.hh"

namespace mparch::fault {
namespace {

using fp::Precision;
using workloads::makeWorkload;
using workloads::Workload;

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::path(::testing::TempDir()) / name)
        .string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Tally-level equality (corpus compared element-wise). */
void
expectSameResult(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.detected, b.detected);
    ASSERT_EQ(a.corpus.size(), b.corpus.size());
    for (std::size_t i = 0; i < a.corpus.size(); ++i) {
        EXPECT_EQ(a.corpus[i].maxRel, b.corpus[i].maxRel);
        EXPECT_EQ(a.corpus[i].corruptedFraction,
                  b.corpus[i].corruptedFraction);
        EXPECT_EQ(a.corpus[i].severity, b.corpus[i].severity);
    }
    ASSERT_EQ(a.anatomy.size(), b.anatomy.size());
    for (std::size_t i = 0; i < a.anatomy.size(); ++i) {
        EXPECT_EQ(a.anatomy[i].bit, b.anatomy[i].bit);
        EXPECT_EQ(a.anatomy[i].field, b.anatomy[i].field);
        EXPECT_EQ(a.anatomy[i].outcome, b.anatomy[i].outcome);
    }
}

/**
 * Minimal workload for failure-taxonomy tests. Its iteration count
 * lives in a corruptible buffer and is re-read every tick, so an
 * exponent flip makes the loop overrun the watchdog budget (a hang);
 * an optional callback turns chosen execute() calls into exceptions.
 */
class ToyWorkload : public Workload
{
  public:
    using Single = fp::Fp<Precision::Single>;

    explicit ToyWorkload(double steps = 8.0) : initialSteps_(steps)
    {
        steps_.assign(1, Single::fromDouble(steps));
        out_.assign(4, Single::fromDouble(0.0));
    }

    std::string name() const override { return "toy"; }
    Precision precision() const override { return Precision::Single; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<ToyWorkload>(*this);
    }

    void
    reset(std::uint64_t) override
    {
        steps_[0] = Single::fromDouble(initialSteps_);
        for (auto &v : out_)
            v = Single::fromDouble(0.0);
    }

    void
    execute(workloads::ExecutionEnv &env) override
    {
        ++executions;
        if (throwOn && throwOn(executions))
            throw std::runtime_error("injected transient failure");
        double acc = outputBias;
        for (double i = 0.0;
             i < steps_[0].toDouble() && !env.aborted(); i += 1.0) {
            env.tick();
            acc += i;
        }
        for (std::size_t i = 0; i < out_.size(); ++i)
            out_[i] = Single::fromDouble(acc + static_cast<double>(i));
    }

    std::vector<workloads::BufferView>
    buffers() override
    {
        return {workloads::makeBufferView("steps", steps_),
                workloads::makeBufferView("out", out_)};
    }

    workloads::BufferView
    output() override
    {
        return workloads::makeBufferView("out", out_);
    }

    workloads::KernelDesc desc() const override { return {}; }

    /** Execution counter (1 == the golden run). */
    int executions = 0;

    /** When set, execute() throws on calls where this returns true. */
    std::function<bool(int)> throwOn;

    /** Added to every output element (golden perturbation knob). */
    double outputBias = 0.0;

  private:
    double initialSteps_;
    std::vector<Single> steps_;
    std::vector<Single> out_;
};

TEST(TrialRngTest, CounterBasedAndOrderIndependent)
{
    // Drawing trial 5's stream never depends on trials 0..4 having
    // been drawn — the property sharding and replay rest on.
    Rng direct = trialRng(7, 5);
    for (std::uint64_t i = 0; i < 5; ++i)
        (void)trialRng(7, i).next();
    Rng again = trialRng(7, 5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(direct.next(), again.next());
}

TEST(TrialRngTest, DistinctIndicesDistinctStreams)
{
    EXPECT_NE(trialRng(7, 0).next(), trialRng(7, 1).next());
    EXPECT_NE(trialRng(7, 1).next(), trialRng(8, 1).next());
}

TEST(JournalTest, HeaderAndRecordsRoundTrip)
{
    JournalHeader header;
    header.kind = CampaignKind::Persistent;
    header.workload = "mxm";
    header.precision = Precision::Half;
    header.scale = 0.35;
    header.config.trials = 123;
    header.config.seed = 99;
    header.config.model = FaultModel::RandomByte;
    header.config.timeoutFactor = 2.5;
    header.config.recordAnatomy = true;
    header.kindFilter = fp::OpKind::Mul;
    header.engines = {{{"fma", fp::OpKind::Fma, 16, 0, 8}, 4}};
    header.shardCount = 3;
    header.shardIndex = 1;
    header.goldenFingerprint = 0xdeadbeefcafe1234ULL;

    const std::string path = tempPath("roundtrip.mpj");
    {
        JournalWriter writer(path, header, /*batch=*/2,
                             /*truncate=*/true);
        TrialRecord rec;
        rec.index = 1;
        rec.outcome = OutcomeKind::Sdc;
        rec.maxRel = 0.125;
        rec.corruptedFraction = 0.5;
        rec.severity = 2;
        rec.bit = 30;
        rec.field = 1;
        writer.append(rec);
        rec.index = 4;
        rec.outcome = OutcomeKind::Due;
        writer.append(rec);
        EXPECT_TRUE(writer.ok());
    }

    std::string error;
    const auto journal = readJournal(path, &error);
    ASSERT_TRUE(journal.has_value()) << error;
    EXPECT_TRUE(journal->header.mismatch(header).empty())
        << journal->header.mismatch(header);
    ASSERT_EQ(journal->records.size(), 2u);
    EXPECT_EQ(journal->records[0].index, 1u);
    EXPECT_EQ(journal->records[0].outcome, OutcomeKind::Sdc);
    EXPECT_EQ(journal->records[0].maxRel, 0.125);
    EXPECT_EQ(journal->records[0].bit, 30);
    EXPECT_EQ(journal->records[1].outcome, OutcomeKind::Due);
}

TEST(JournalTest, HeaderMismatchIsDetectedAndReadable)
{
    JournalHeader a;
    a.workload = "mxm";
    a.config.trials = 100;
    JournalHeader b = a;
    b.config.trials = 200;
    const std::string why = a.mismatch(b);
    EXPECT_NE(why.find("trials"), std::string::npos) << why;
    b = a;
    b.goldenFingerprint = 1;
    EXPECT_FALSE(a.mismatch(b).empty());
}

TEST(JournalTest, TornFinalLineIsDiscarded)
{
    JournalHeader header;
    header.workload = "toy";
    header.config.trials = 10;
    const std::string path = tempPath("torn.mpj");
    {
        JournalWriter writer(path, header, 1, true);
        TrialRecord rec;
        rec.index = 0;
        writer.append(rec);
    }
    // Simulate a crash mid-append: a partial record with no newline.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "1,sdc,0.5";
    }
    const auto journal = readJournal(path);
    ASSERT_TRUE(journal.has_value());
    ASSERT_EQ(journal->records.size(), 1u);
    EXPECT_EQ(journal->records[0].index, 0u);
}

TEST(SupervisorTest, SameSeedTwiceIdenticalTallies)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 80;
    config.seed = 3;
    config.recordAnatomy = true;
    const SupervisorConfig supervisor;
    const auto a = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    const auto b = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(a.error.empty()) << a.error;
    expectSameResult(a.result, b.result);

    const auto c = runSupervisedCampaign(
        *w, CampaignKind::Datapath, config, supervisor);
    const auto d = runSupervisedCampaign(
        *w, CampaignKind::Datapath, config, supervisor);
    expectSameResult(c.result, d.result);
}

TEST(SupervisorTest, SupervisedMatchesLegacyCampaign)
{
    // The supervisor is a wrapper, not a different experiment: with
    // no journal and one shard it reproduces runMemoryCampaign.
    auto w = makeWorkload("lud", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 60;
    config.seed = 11;
    const auto supervised = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, SupervisorConfig{});
    const auto legacy = runMemoryCampaign(*w, config);
    expectSameResult(supervised.result, legacy);
}

TEST(SupervisorTest, ShardedRunsMergeToUnshardedResult)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 90;
    config.seed = 13;
    config.recordAnatomy = true;

    const auto whole = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, SupervisorConfig{});

    CampaignResult merged;
    std::uint64_t planned = 0;
    for (std::uint64_t shard = 0; shard < 3; ++shard) {
        SupervisorConfig supervisor;
        supervisor.shardCount = 3;
        supervisor.shardIndex = shard;
        const auto part = runSupervisedCampaign(
            *w, CampaignKind::Memory, config, supervisor);
        EXPECT_TRUE(part.error.empty()) << part.error;
        planned += part.planned;
        merged.merge(part.result);
    }
    EXPECT_EQ(planned, config.trials);
    // Counter-based trial RNG makes shard tallies add up exactly.
    EXPECT_EQ(merged.trials, whole.result.trials);
    EXPECT_EQ(merged.masked, whole.result.masked);
    EXPECT_EQ(merged.sdc, whole.result.sdc);
    EXPECT_EQ(merged.due, whole.result.due);
    EXPECT_EQ(merged.detected, whole.result.detected);
    EXPECT_EQ(merged.corpus.size(), whole.result.corpus.size());
    EXPECT_EQ(merged.anatomy.size(), whole.result.anatomy.size());
}

TEST(SupervisorTest, KillAndResumeBitIdentical)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 60;
    config.seed = 21;
    config.recordAnatomy = true;

    // Reference: uninterrupted journaled run.
    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("kill-reference.mpj");
    supervisor.batchSize = 8;
    const auto whole = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(whole.error.empty()) << whole.error;
    EXPECT_TRUE(whole.complete());

    // Simulate a kill after ~2 batches: truncate the reference
    // journal mid-record (a torn final line) and resume from it.
    const std::string full = slurp(supervisor.journalPath);
    const std::string marker = "\n20,";
    const auto cut = full.find(marker);
    ASSERT_NE(cut, std::string::npos);
    SupervisorConfig resume = supervisor;
    resume.journalPath = tempPath("kill-resume.mpj");
    // Keep a torn tail so the reader's crash tolerance is exercised.
    spit(resume.journalPath, full.substr(0, cut + marker.size()));
    resume.resume = true;
    const auto resumed = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, resume);
    EXPECT_TRUE(resumed.error.empty()) << resumed.error;
    EXPECT_EQ(resumed.resumed, 20u);
    expectSameResult(resumed.result, whole.result);

    // The resumed journal itself replays to the same tallies again.
    const auto third = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, resume);
    EXPECT_EQ(third.resumed, config.trials);
    expectSameResult(third.result, whole.result);
}

TEST(SupervisorTest, InterruptedRunFlushesAndResumes)
{
    auto w = makeWorkload("lud", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 50;
    config.seed = 31;

    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("interrupt.mpj");
    supervisor.batchSize = 4;
    std::uint64_t started = 0;
    supervisor.shouldStop = [&] { return ++started > 30; };
    const auto partial = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.result.trials, config.trials);
    EXPECT_LT(partial.coverage(), 1.0);
    EXPECT_FALSE(partial.complete());

    SupervisorConfig resume = supervisor;
    resume.shouldStop = nullptr;
    resume.resume = true;
    const auto resumed = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.resumed, partial.result.trials);
    EXPECT_TRUE(resumed.complete());

    const auto whole = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, SupervisorConfig{});
    expectSameResult(resumed.result, whole.result);
}

TEST(SupervisorTest, ResumeRefusesMismatchedConfig)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 20;
    config.seed = 41;

    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("mismatch.mpj");
    const auto first = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(first.error.empty()) << first.error;

    supervisor.resume = true;
    config.seed = 42;
    const auto second = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_NE(second.error.find("refusing to resume"),
              std::string::npos)
        << second.error;
    EXPECT_EQ(second.result.trials, 0u);
}

TEST(SupervisorTest, ResumeRefusesChangedGoldenFingerprint)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 20;
    config.seed = 43;

    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("golden-mismatch.mpj");
    const auto first = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(first.error.empty()) << first.error;

    // Corrupt the recorded fingerprint: the journal now claims it
    // was written against different golden data.
    std::string text = slurp(supervisor.journalPath);
    const auto pos = text.find("#golden=");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 8] = text[pos + 8] == '0' ? '1' : '0';
    spit(supervisor.journalPath, text);

    supervisor.resume = true;
    const auto second = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_NE(second.error.find("golden"), std::string::npos)
        << second.error;
}

TEST(SupervisorTest, TransientExceptionsAreRetried)
{
    // Every trial's first attempt throws; the retry succeeds.
    ToyWorkload w;
    w.throwOn = [](int execution) {
        return execution > 1 && execution % 2 == 0;
    };
    CampaignConfig config;
    config.trials = 10;
    SupervisorConfig supervisor;
    supervisor.maxRetries = 2;
    const auto run = runSupervisedCampaign(
        w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(run.error.empty()) << run.error;
    EXPECT_EQ(run.result.trials, 10u);
    EXPECT_EQ(run.retried, 10u);
    EXPECT_EQ(run.poisoned, 0u);
    EXPECT_EQ(run.failureCounts[static_cast<std::size_t>(
                  TrialFailure::WorkloadException)],
              10u);
    EXPECT_TRUE(run.complete());
}

TEST(SupervisorTest, PersistentFailuresArePoisonedNotFatal)
{
    // Every injected execution throws: all trials exhaust their
    // retries, yet the campaign completes and reports coverage 0.
    ToyWorkload w;
    w.throwOn = [](int execution) { return execution > 1; };
    CampaignConfig config;
    config.trials = 6;
    SupervisorConfig supervisor;
    supervisor.maxRetries = 1;
    const auto run = runSupervisedCampaign(
        w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(run.error.empty()) << run.error;
    EXPECT_EQ(run.result.trials, 0u);
    EXPECT_EQ(run.poisoned, 6u);
    EXPECT_EQ(run.coverage(), 0.0);
    // Poisoned trials are accounted for: the campaign "completes"
    // with degraded coverage rather than aborting.
    EXPECT_TRUE(run.complete());
    EXPECT_EQ(run.failureCounts[static_cast<std::size_t>(
                  TrialFailure::WorkloadException)],
              12u);  // 6 trials x (1 attempt + 1 retry)
}

TEST(SupervisorTest, HangsAreClassifiedAsDueAndCounted)
{
    // Exponent flips in the loop-bound buffer inflate the iteration
    // count past the watchdog budget.
    ToyWorkload w;
    CampaignConfig config;
    config.trials = 200;
    config.seed = 5;
    const auto run = runSupervisedCampaign(
        w, CampaignKind::Memory, config, SupervisorConfig{});
    EXPECT_TRUE(run.error.empty()) << run.error;
    EXPECT_EQ(run.result.trials, 200u);
    EXPECT_GT(run.result.due, 0u);
    EXPECT_EQ(run.failureCounts[static_cast<std::size_t>(
                  TrialFailure::HangWatchdog)],
              run.result.due);
    EXPECT_EQ(run.result.masked + run.result.sdc + run.result.due +
                  run.result.detected,
              run.result.trials);
}

TEST(SupervisorTest, NonFiniteGoldenIsRefusedUpFront)
{
    ToyWorkload w;
    w.outputBias = 1e39;  // overflows single precision: golden = inf
    CampaignConfig config;
    config.trials = 10;
    const auto run = runSupervisedCampaign(
        w, CampaignKind::Memory, config, SupervisorConfig{});
    EXPECT_NE(run.error.find("non-finite"), std::string::npos)
        << run.error;
    EXPECT_EQ(run.result.trials, 0u);
    EXPECT_EQ(run.failureCounts[static_cast<std::size_t>(
                  TrialFailure::NonFiniteGolden)],
              1u);
}

TEST(ReplayTest, JournaledTrialsReplayConsistently)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 30;
    config.seed = 51;
    config.recordAnatomy = true;
    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("replay.mpj");
    supervisor.scale = 0.1;
    const auto run = runSupervisedCampaign(
        *w, CampaignKind::Memory, config, supervisor);
    EXPECT_TRUE(run.complete());

    const auto journal = readJournal(supervisor.journalPath);
    ASSERT_TRUE(journal.has_value());
    ASSERT_EQ(journal->records.size(), 30u);
    for (std::uint64_t index : {0u, 7u, 29u}) {
        const auto replay = replayTrial(*w, *journal, index);
        EXPECT_TRUE(replay.error.empty()) << replay.error;
        ASSERT_TRUE(replay.hasJournaled);
        EXPECT_TRUE(replay.consistent);
        EXPECT_EQ(replay.trial.outcome, replay.journaled.outcome);
        EXPECT_FALSE(replay.trial.description.empty());
        if (replay.trial.outcome == OutcomeKind::Sdc) {
            EXPECT_EQ(replay.trial.sdc.maxRel,
                      replay.journaled.maxRel);
        }
    }
}

TEST(ReplayTest, RejectsWrongWorkloadAndStaleGolden)
{
    auto w = makeWorkload("mxm", Precision::Single, 0.1);
    CampaignConfig config;
    config.trials = 10;
    SupervisorConfig supervisor;
    supervisor.journalPath = tempPath("replay-reject.mpj");
    (void)runSupervisedCampaign(*w, CampaignKind::Memory, config,
                                supervisor);
    const auto journal = readJournal(supervisor.journalPath);
    ASSERT_TRUE(journal.has_value());

    auto other = makeWorkload("lud", Precision::Single, 0.1);
    EXPECT_FALSE(replayTrial(*other, *journal, 0).error.empty());

    auto resized = makeWorkload("mxm", Precision::Single, 0.2);
    const auto stale = replayTrial(*resized, *journal, 0);
    EXPECT_NE(stale.error.find("fingerprint"), std::string::npos)
        << stale.error;

    EXPECT_FALSE(
        replayTrial(*w, *journal, config.trials).error.empty());
}

} // namespace
} // namespace mparch::fault
